"""Figure 15 (appendix) — convergence on the remaining hard graphs (2/2).

Same harness as Figure 10 on cnr-2000, eu-2005, uk-2002 and uk-2005.
"""

from conftest import emit

from repro.bench import load, render_convergence, run_convergence_suite

GRAPHS = ["cnr-2000-sim", "eu-2005-sim", "uk-2002-sim", "uk-2005-sim"]
TIME_BUDGET = 2.0


def test_fig15_convergence(benchmark):
    def run_all():
        return {name: run_convergence_suite(load(name), TIME_BUDGET, seed=15) for name in GRAPHS}

    suites = benchmark.pedantic(run_all, rounds=1, iterations=1)
    blocks = []
    for name in GRAPHS:
        runs = suites[name]
        blocks.append(render_convergence(name, runs))
        best = max(run.final_size for run in runs.values())
        assert runs["ARW-NL"].first_size >= 0.97 * best
    emit("fig15_convergence", "\n\n".join(blocks))
