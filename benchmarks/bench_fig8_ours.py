"""Figure 8 — time and memory of BDOne, BDTwo, LinearTime, NearLinear (+ exact).

Paper shape: BDOne, LinearTime and NearLinear run in similar (linear) time;
BDTwo is slower and uses ~3× the memory (6m vs 2m edge words); the exact
VCSolver-style search costs at least an order of magnitude more wherever a
kernel survives.
"""

import pytest
from conftest import emit

from repro.analysis import model_words
from repro.bench import dataset_names, format_seconds, load, render_table
from repro.core import bdtwo
from repro.errors import BudgetExceededError
from repro.exact import maximum_independent_set

#: Display name -> solver-family key; BDTwo has a single-backend driver and
#: is fetched directly, the rest resolve through the ``--backend`` option
#: (see ``conftest.solvers``).
ALGORITHMS = {
    "BDOne": "bdone",
    "BDTwo": None,
    "LinearTime": "linear_time",
    "NearLinear": "near_linear",
}

_timings = {}


@pytest.mark.parametrize("name", list(ALGORITHMS))
def test_fig8_our_algorithms_sweep(benchmark, name, solvers):
    key = ALGORITHMS[name]
    algorithm = bdtwo if key is None else solvers[key]
    graphs = [load(graph_name) for graph_name in dataset_names("easy")]

    def sweep():
        return [algorithm(graph) for graph in graphs]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)
    _timings[name] = {r.graph_name: r.elapsed for r in results}
    if len(_timings) == len(ALGORITHMS):
        _emit_tables(graphs)


def test_fig8_exact_solver_reference(benchmark):
    """VCSolver reference point on a few instances (pedantic, one round)."""
    names = ["GrQc-sim", "Email-sim", "Epinions-sim"]

    def solve_all():
        out = {}
        for graph_name in names:
            try:
                result = maximum_independent_set(load(graph_name), node_budget=60_000)
                out[graph_name] = result.elapsed
            except BudgetExceededError:
                out[graph_name] = float("inf")
        return out

    timings = benchmark.pedantic(solve_all, rounds=1, iterations=1)
    rows = [[name, format_seconds(t) if t != float("inf") else "budget"] for name, t in timings.items()]
    emit(
        "fig8_exact_reference",
        render_table(
            ["Graph", "VCSolver time"],
            rows,
            title="Figure 8 (reference): exact branch-and-reduce runtime",
        ),
    )


def _emit_tables(graphs):
    time_rows = []
    memory_rows = []
    for graph in graphs:
        time_rows.append(
            [graph.name]
            + [format_seconds(_timings[name][graph.name]) for name in ALGORITHMS]
        )
        memory_rows.append(
            [graph.name] + [model_words(name, graph) for name in ALGORITHMS]
        )
    emit(
        "fig8a_our_times",
        render_table(
            ["Graph"] + list(ALGORITHMS),
            time_rows,
            title="Figure 8(a): processing time of the reducing-peeling algorithms",
        ),
    )
    emit(
        "fig8b_our_memory",
        render_table(
            ["Graph"] + list(ALGORITHMS),
            memory_rows,
            title="Figure 8(b): memory usage (Table-1 word model)",
        ),
    )
    # Shape assertions: BDTwo's memory model is ~3x BDOne's, and the three
    # light algorithms finish within a small factor of each other overall.
    for graph in graphs:
        assert model_words("BDTwo", graph) > 2.0 * model_words("BDOne", graph) - 10 * graph.n
    totals = {name: sum(times.values()) for name, times in _timings.items()}
    assert totals["LinearTime"] < 5 * totals["BDOne"] + 1.0
