"""Future-work check — semi-external BDOne's I/O cost (edge-list passes).

The paper's closing future-work item is I/O-efficient computation; the
semi-external model's cost metric is the number of sequential passes over
the edge list.  This benchmark measures pass counts of
:func:`repro.external.semi_external_bdone` across the easy suite and
confirms (a) solution quality matches in-memory BDOne, and (b) the pass
count stays tiny relative to n — the property that makes the approach
viable on graphs that do not fit in memory.
"""

from conftest import emit

from repro.bench import dataset_names, load, render_table
from repro.core import bdone
from repro.core.result import STAT_PASSES
from repro.external import semi_external_bdone


def _sweep():
    rows = []
    for name in dataset_names("easy"):
        graph = load(name)
        external = semi_external_bdone(graph)
        internal = bdone(graph)
        rows.append(
            [
                name,
                graph.n,
                external.stats[STAT_PASSES],
                external.size,
                internal.size,
                "yes" if external.is_exact else "no",
            ]
        )
    return rows


def test_external_pass_counts(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "external_passes",
        render_table(
            ["Graph", "n", "Passes", "SemiExt size", "BDOne size", "certified"],
            rows,
            title="Semi-external BDOne: edge-list passes and quality vs in-memory",
        ),
    )
    for _, n, passes, ext_size, int_size, _ in rows:
        assert passes < n  # far sub-linear in practice
        assert ext_size >= 0.97 * int_size
