"""Shared fixtures and helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures, prints it
(run with ``-s`` to see it inline) and writes it to
``benchmarks/results/<name>.txt``.  Expensive ground truths (independence
numbers of the easy instances) are memoised per session.
"""

from __future__ import annotations

import functools
import os

import pytest

from repro.bench import load, resolve_backend
from repro.errors import BudgetExceededError
from repro.exact import maximum_independent_set

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def pytest_addoption(parser):
    parser.addoption(
        "--backend",
        default="flat",
        choices=["legacy", "flat", "vectorized", "auto"],
        help="execution backend for the reducing-peeling family "
        "(bdone / linear_time / near_linear) in the benchmark scripts",
    )


@pytest.fixture(scope="session")
def backend(request) -> str:
    """The ``--backend`` name selected for this benchmark run."""
    return request.config.getoption("--backend")


@pytest.fixture(scope="session")
def solvers(backend):
    """The reducing-peeling solver family for the selected backend."""
    return resolve_backend(backend)


def emit(name: str, text: str, data=None) -> None:
    """Print a rendered table and persist it under benchmarks/results/.

    ``data`` (any JSON-serialisable object) is additionally written to
    ``<name>.json`` for downstream tooling.
    """
    import json

    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    if data is not None:
        with open(os.path.join(RESULTS_DIR, f"{name}.json"), "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=2, default=str)


@functools.lru_cache(maxsize=None)
def independence_number_of(dataset_name: str) -> int | None:
    """α of an easy stand-in via branch-and-reduce (``None`` if over budget)."""
    graph = load(dataset_name)
    try:
        return maximum_independent_set(graph, node_budget=60_000).size
    except BudgetExceededError:
        return None


@pytest.fixture(scope="session")
def results_dir() -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR
