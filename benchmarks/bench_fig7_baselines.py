"""Figure 7 — time and memory of Greedy, DU, SemiE and BDOne.

The paper's Figure 7 shows, across the easy graphs sorted by size, that
(a) Greedy is fastest, BDOne beats DU thanks to the lazy bucket updates,
and SemiE is slowest (two-k swaps); (b) the four consume similar memory
(all 2m + O(n) structures).

Each algorithm's sweep over the whole easy suite is timed as one benchmark
round; the table reports per-graph wall time and the Table-1 memory model.
"""

import pytest
from conftest import emit

from repro.analysis import model_words
from repro.baselines import du, greedy, semi_external
from repro.bench import dataset_names, format_seconds, load, render_table
from repro.core import bdone

ALGORITHMS = {
    "Greedy": greedy,
    "DU": du,
    "SemiE": semi_external,
    "BDOne": bdone,
}

_timings = {}


@pytest.mark.parametrize("name", list(ALGORITHMS))
def test_fig7_baseline_sweep(benchmark, name):
    algorithm = ALGORITHMS[name]
    graphs = [load(graph_name) for graph_name in dataset_names("easy")]

    def sweep():
        return [algorithm(graph) for graph in graphs]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)
    _timings[name] = {r.graph_name: r.elapsed for r in results}
    if len(_timings) == len(ALGORITHMS):
        _emit_tables(graphs)


def _emit_tables(graphs):
    time_rows = []
    memory_rows = []
    for graph in graphs:
        time_rows.append(
            [graph.name]
            + [format_seconds(_timings[name][graph.name]) for name in ALGORITHMS]
        )
        memory_rows.append(
            [graph.name] + [model_words(name, graph) for name in ALGORITHMS]
        )
    emit(
        "fig7a_baseline_times",
        render_table(
            ["Graph"] + list(ALGORITHMS),
            time_rows,
            title="Figure 7(a): processing time of the linear-space heuristics",
        ),
    )
    emit(
        "fig7b_baseline_memory",
        render_table(
            ["Graph"] + list(ALGORITHMS),
            memory_rows,
            title="Figure 7(b): memory usage (Table-1 word model)",
        ),
    )
    # Shape assertions: SemiE is the slowest overall; the four memory
    # models agree within a constant factor (all 2m + O(n)).
    totals = {name: sum(times.values()) for name, times in _timings.items()}
    assert totals["SemiE"] >= totals["Greedy"]
    for graph in graphs:
        words = [model_words(name, graph) for name in ALGORITHMS]
        assert max(words) < 2 * min(words) + 10 * graph.n
