"""Table 5 — power-law random graphs, β ∈ [1.9, 2.7].

The paper generates nine PLR graphs with 10⁷ vertices (we scale to 2·10⁴)
and reports that *all* reducing-peeling algorithms certify a maximum
independent set on every one of them, while Greedy and SemiE leave gaps and
DU matches the optimum without being able to certify it.
"""

from conftest import emit

from repro.baselines import du, greedy, semi_external
from repro.bench import render_table
from repro.core import bdtwo
from repro.graphs import power_law_sequence_graph

N = 20_000
BETAS = [1.9, 2.0, 2.1, 2.2, 2.3, 2.4, 2.5, 2.6, 2.7]


def _table(solvers):
    bdone = solvers["bdone"]
    linear_time = solvers["linear_time"]
    near_linear = solvers["near_linear"]
    rows = []
    all_certified = True
    for index, beta in enumerate(BETAS):
        graph = power_law_sequence_graph(N, beta, seed=500 + index)
        near = near_linear(graph)
        if not near.is_exact:
            all_certified = False
        alpha = near.size if near.is_exact else None
        row = [f"PLR{index + 1}", beta, alpha if alpha is not None else "?"]
        for algorithm in (greedy, du, semi_external):
            result = algorithm(graph)
            row.append(alpha - result.size if alpha is not None else "?")
        for algorithm in (bdone, bdtwo, linear_time):
            result = algorithm(graph)
            gap = alpha - result.size if alpha is not None else "?"
            row.append(f"{gap}{'*' if result.is_exact else ''}")
        row.append(f"0{'*' if near.is_exact else ''}")
        rows.append(row)
    return rows, all_certified


def test_table5_power_law(benchmark, solvers):
    rows, all_certified = benchmark.pedantic(
        _table, args=(solvers,), rounds=1, iterations=1
    )
    emit(
        "table5_powerlaw",
        render_table(
            ["Graph", "beta", "alpha", "Greedy", "DU", "SemiE", "BDOne", "BDTwo", "LinearTime", "NearLinear"],
            rows,
            title="Table 5: gaps on power-law random graphs (* = certified maximum)",
        ),
    )
    # Paper: every reducing-peeling algorithm reports a maximum on PLR
    # graphs.  At minimum NearLinear must certify all nine.
    assert all_certified
    # And the certified gaps of the reducing-peeling family are all zero.
    for row in rows:
        for cell in row[6:]:
            assert str(cell).startswith("0")
