"""Table 1 — the complexity/space overview, checked empirically.

Two measurable claims are validated:

* **linear-time scaling** — BDOne and LinearTime runtime grows ~linearly
  with m (doubling the graph roughly doubles the time, far below a
  quadratic trend);
* **space model** — the word-count model reproduces Table 1's 2m/4m/6m
  ratios, and measured Python heap usage orders the same way
  (BDTwo > NearLinear > LinearTime ≈ BDOne).
"""

from conftest import emit

from repro.analysis import measure_peak_bytes, model_words
from repro.bench import format_seconds, render_table
from repro.core import bdone, bdtwo, linear_time, near_linear
from repro.graphs import power_law_graph

SIZES = [10_000, 20_000, 40_000]


def test_table1_time_scaling(benchmark, solvers):
    def sweep():
        out = {}
        for n in SIZES:
            graph = power_law_graph(n, 2.2, average_degree=6.0, seed=42)
            out[n] = {
                "m": graph.m,
                "BDOne": solvers["bdone"](graph).elapsed,
                "LinearTime": solvers["linear_time"](graph).elapsed,
                "NearLinear": solvers["near_linear"](graph).elapsed,
                "BDTwo": bdtwo(graph).elapsed,
            }
        return out

    records = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [n, records[n]["m"]]
        + [format_seconds(records[n][a]) for a in ("BDOne", "LinearTime", "NearLinear", "BDTwo")]
        for n in SIZES
    ]
    emit(
        "table1_time_scaling",
        render_table(
            ["n", "m", "BDOne", "LinearTime", "NearLinear", "BDTwo"],
            rows,
            title="Table 1 check: runtime scaling on power-law graphs",
        ),
    )
    # Quadrupling the graph must cost well below the quadratic factor 16.
    for algorithm in ("BDOne", "LinearTime"):
        ratio = records[SIZES[-1]][algorithm] / max(records[SIZES[0]][algorithm], 1e-9)
        assert ratio < 12.0


def test_table1_space_model(benchmark):
    graph = power_law_graph(20_000, 2.2, average_degree=6.0, seed=43)

    def measure():
        out = {}
        for name, algorithm in (
            ("BDOne", bdone),
            ("LinearTime", linear_time),
            ("NearLinear", near_linear),
            ("BDTwo", bdtwo),
        ):
            _, peak = measure_peak_bytes(lambda a=algorithm: a(graph))
            out[name] = (model_words(name, graph), peak)
        return out

    records = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [[name, words, peak] for name, (words, peak) in records.items()]
    emit(
        "table1_space_model",
        render_table(
            ["Algorithm", "Model words", "Measured peak bytes"],
            rows,
            title="Table 1 check: space model vs measured heap peak",
        ),
    )
    assert records["BDTwo"][0] > 2.0 * records["BDOne"][0] - 10 * graph.n
    assert records["NearLinear"][0] > records["LinearTime"][0]
    # Measured: BDTwo's dynamic sets dominate the array workspaces.
    assert records["BDTwo"][1] > records["BDOne"][1]
