"""Ablation — NearLinear's preprocessing phases (Section 5).

The paper prepends two one-shot phases to Algorithm 5: the one-pass
dominance sweep (shrinks Δ) and the LP reduction.  This ablation runs
NearLinear with and without them across the easy suite and reports solution
size, peel count and time.

Expected: identical-or-better quality with preprocessing, and fewer peels
(the phases remove exactly the vertices that would otherwise force
high-degree peeling or survive into the kernel).
"""

from conftest import emit

from repro.bench import dataset_names, format_seconds, load, render_table
from repro.core import near_linear


def _sweep():
    rows = []
    totals = {"with": [0, 0.0], "without": [0, 0.0]}  # [peels, time]
    for name in dataset_names("easy"):
        graph = load(name)
        with_prep = near_linear(graph, preprocess=True)
        without_prep = near_linear(graph, preprocess=False)
        totals["with"][0] += with_prep.peeled
        totals["with"][1] += with_prep.elapsed
        totals["without"][0] += without_prep.peeled
        totals["without"][1] += without_prep.elapsed
        rows.append(
            [
                name,
                with_prep.size,
                without_prep.size,
                with_prep.peeled,
                without_prep.peeled,
                format_seconds(with_prep.elapsed),
                format_seconds(without_prep.elapsed),
            ]
        )
    return rows, totals


def test_ablation_preprocessing(benchmark):
    rows, totals = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "ablation_preprocessing",
        render_table(
            [
                "Graph",
                "size (prep)",
                "size (no prep)",
                "peels (prep)",
                "peels (no prep)",
                "time (prep)",
                "time (no prep)",
            ],
            rows,
            title="Ablation: NearLinear with vs without one-pass dominance + LP",
        ),
    )
    # Quality is essentially unchanged (same rules eventually fire) …
    for row in rows:
        assert abs(row[1] - row[2]) <= max(3, 0.002 * row[1])
