"""Table 7 — upper bounds on the independence number.

Compares the best *existing* bound of [1] — min(clique cover, LP, cycle
cover), computed on the raw input — with the Reducing-Peeling by-product
bound ``|I| + |R|`` of Theorem 6.1 (obtained for free from a NearLinear
run).

Paper shape: the by-product bound is never looser, and is slightly tighter
on most graphs.
"""

from conftest import emit, independence_number_of

from repro.bench import dataset_names, load, render_table
from repro.core import near_linear
from repro.exact.bounds import clique_cover_bound, cycle_cover_bound
from repro.core.lp_reduction import lp_upper_bound


def _table():
    rows = []
    ours_not_looser = 0
    for name in dataset_names("easy"):
        graph = load(name)
        clique = clique_cover_bound(graph)
        lp = int(lp_upper_bound(graph))
        cycle = cycle_cover_bound(graph)
        existing = min(clique, lp, cycle)
        ours = near_linear(graph).upper_bound
        alpha = independence_number_of(name)
        rows.append([name, alpha, clique, lp, cycle, existing, ours])
        if ours <= existing:
            ours_not_looser += 1
    return rows, ours_not_looser


def test_table7_upper_bounds(benchmark):
    rows, ours_not_looser = benchmark.pedantic(_table, rounds=1, iterations=1)
    emit(
        "table7_upper_bounds",
        render_table(
            ["Graph", "alpha", "CliqueCover", "LP", "CycleCover", "Existing(min)", "Ours(|I|+|R|)"],
            rows,
            title="Table 7: upper bounds on the independence number",
        ),
    )
    for row in rows:
        alpha, ours = row[1], row[6]
        if alpha is not None:
            assert ours >= alpha  # validity
    # Our bound is at least as tight as the existing one on most graphs.
    assert ours_not_looser >= len(rows) - 2
