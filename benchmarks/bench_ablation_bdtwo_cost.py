"""Ablation — Theorem 3.1: BDTwo's superlinear folding cost.

The paper proves BDTwo is Ω(m + n log n) by exhibiting a four-layer family
with Θ(n) edges on which the degree-two foldings cascade for log n rounds
(:func:`repro.graphs.named.bdtwo_lower_bound_family`).  This benchmark
instantiates the family at growing sizes and reports, per instance,

* the number of folds BDTwo performs and its wall time, versus
* LinearTime's wall time (which stays linear: its path rules skip the
  fold-only configuration entirely).

Expected shape: folds grow as Θ(n) but BDTwo's *work per fold* grows with
the cascade depth, so time ratios per doubling exceed LinearTime's.
"""

from conftest import emit

from repro.bench import format_seconds, render_table
from repro.core import bdtwo, linear_time
from repro.core.result import STAT_DEGREE_TWO_FOLDING
from repro.graphs import bdtwo_lower_bound_family

LEVELS = [6, 8, 10, 12]


def _sweep():
    rows = []
    for levels in LEVELS:
        graph = bdtwo_lower_bound_family(levels)
        two = bdtwo(graph)
        lt = linear_time(graph)
        assert two.size == lt.size  # both solve the family optimally
        rows.append(
            [
                levels,
                graph.n,
                graph.m,
                two.stats.get(STAT_DEGREE_TWO_FOLDING, 0),
                format_seconds(two.elapsed),
                format_seconds(lt.elapsed),
            ]
        )
    return rows


def test_ablation_bdtwo_folding_cost(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "ablation_bdtwo_cost",
        render_table(
            ["levels", "n", "m", "BDTwo folds", "BDTwo time", "LinearTime time"],
            rows,
            title="Ablation (Theorem 3.1): folding cascade cost on the lower-bound family",
        ),
    )
    # Folding must actually cascade: more folds than round-1 triggers.
    for levels, n, _, folds, _, _ in rows:
        third_layer = 1 << levels
        assert folds > third_layer // 2
