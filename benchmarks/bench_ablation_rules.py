"""Ablation — what each rule family buys (peels avoided per rule set).

Peeling is the only inexact step, so "how often must we peel" is the
framework's quality currency.  This ablation reports, across the easy
suite, each algorithm's peel count, the Theorem-6.1 slack ``|R|``, and the
per-rule application counters — quantifying the paper's claim that richer
rule sets peel less and certify more.
"""

from conftest import emit

from repro.bench import dataset_names, load, render_table
from repro.core import bdone, bdtwo, linear_time, near_linear

ALGORITHMS = [
    ("BDOne", bdone),
    ("BDTwo", bdtwo),
    ("LinearTime", linear_time),
    ("NearLinear", near_linear),
]


def _sweep():
    rows = []
    peel_totals = {name: 0 for name, _ in ALGORITHMS}
    slack_totals = {name: 0 for name, _ in ALGORITHMS}
    for graph_name in dataset_names("easy"):
        graph = load(graph_name)
        row = [graph_name]
        for name, algorithm in ALGORITHMS:
            result = algorithm(graph)
            peel_totals[name] += result.peeled
            slack_totals[name] += result.surviving_peels
            row.append(f"{result.peeled}/{result.surviving_peels}")
        rows.append(row)
    return rows, peel_totals, slack_totals


def test_ablation_rule_families(benchmark):
    rows, peel_totals, slack_totals = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit(
        "ablation_rules",
        render_table(
            ["Graph"] + [f"{name} peels/|R|" for name, _ in ALGORITHMS],
            rows,
            title="Ablation: peel counts and Theorem-6.1 slack per rule set",
        ),
    )
    # Richer rule sets peel less in aggregate.
    assert peel_totals["NearLinear"] <= peel_totals["BDOne"]
    assert peel_totals["LinearTime"] <= peel_totals["BDOne"]
    # And the certificate slack shrinks with rule strength.
    assert slack_totals["NearLinear"] <= slack_totals["BDOne"]
