"""Table 6 — G(n, m) random graphs with average degree 2 … 3.

The paper's R1–R5 (GTGraph random graphs, 10⁶ vertices; we scale to 5·10⁴)
show the reducing-peeling algorithms certifying maxima up to average degree
~2.75, with the densest instance (avg 3) leaving every algorithm short —
the random-graph phase transition where cores stop being reducible.
"""

from conftest import emit

from repro.baselines import du, semi_external
from repro.bench import render_table
from repro.core import bdone, bdtwo, near_linear
from repro.graphs import gnm_random_graph

N = 50_000
AVERAGE_DEGREES = [2.0, 2.25, 2.5, 2.75, 3.0]


def _table():
    rows = []
    certified_sparse = 0
    for index, avg in enumerate(AVERAGE_DEGREES):
        graph = gnm_random_graph(N, int(N * avg / 2), seed=600 + index)
        results = {
            "DU": du(graph),
            "SemiE": semi_external(graph),
            "BDOne": bdone(graph),
            "BDTwo": bdtwo(graph),
            "NearLinear": near_linear(graph),
        }
        best = max(result.size for result in results.values())
        row = [f"R{index + 1}", avg, best]
        for name in ("DU", "SemiE", "BDOne", "BDTwo", "NearLinear"):
            result = results[name]
            marker = "*" if getattr(result, "is_exact", False) else ""
            row.append(f"{best - result.size}{marker}")
        if avg <= 2.5 and results["NearLinear"].is_exact:
            certified_sparse += 1
        rows.append(row)
    return rows, certified_sparse


def test_table6_random_graphs(benchmark):
    rows, certified_sparse = benchmark.pedantic(_table, rounds=1, iterations=1)
    emit(
        "table6_random",
        render_table(
            ["Graph", "avg d", "Best size", "DU", "SemiE", "BDOne", "BDTwo", "NearLinear"],
            rows,
            title="Table 6: gap to the best result on random graphs (* = certified)",
        ),
    )
    # Paper shape: the sparse instances (R1–R3) are certified optimal by
    # the reducing-peeling algorithms.
    assert certified_sparse == 3
