"""Table 2 — statistics of the benchmark graphs.

Prints, for every stand-in, the paper graph it replaces (with the original
n, m from Table 2) and the stand-in's own statistics; the benchmarked
operation is dataset materialisation (generator throughput).
"""

from conftest import emit

from repro.bench import ALL_DATASETS, load, render_table
from repro.bench.datasets import _CACHE


def test_table2_dataset_statistics(benchmark):
    def build_all():
        _CACHE.clear()
        return [load(spec.name) for spec in ALL_DATASETS]

    graphs = benchmark.pedantic(build_all, rounds=1, iterations=1)
    rows = []
    for spec, graph in zip(ALL_DATASETS, graphs):
        rows.append(
            [
                spec.name,
                spec.family,
                spec.paper_n,
                spec.paper_m,
                graph.n,
                graph.m,
                round(graph.average_degree(), 2),
            ]
        )
    emit(
        "table2_datasets",
        render_table(
            ["Graph", "Family", "Paper #V", "Paper #E", "#Vertices", "#Edges", "avg d"],
            rows,
            title="Table 2: benchmark graphs (paper originals vs synthetic stand-ins)",
        ),
    )
    assert len(graphs) == 20
