"""Eval-III (Figure 9) — kernelization time and kernel size by rule set.

Compares three kernelizers on the easy suite:

* ``LinearTime``  — degree-one + degree-two path rules (fastest, largest
  kernel);
* ``NearLinear``  — adds dominance + LP (the balance point);
* ``KernelReduMIS`` — the full rule set of [1] via
  :func:`repro.exact.full_kernelize` (smallest kernel, most expensive).

Paper shape: time(KernelReduMIS) ≫ time(NearLinear) ≥ time(LinearTime) and
size(KernelReduMIS) ≤ size(NearLinear) ≤ size(LinearTime).
"""

import time

import pytest
from conftest import emit

from repro.bench import dataset_names, format_seconds, load, render_table
from repro.core import kernelize
from repro.exact import full_kernelize

KERNELIZERS = {
    "LinearTime": lambda graph: kernelize(graph, method="linear_time"),
    "NearLinear": lambda graph: kernelize(graph, method="near_linear"),
    "KernelReduMIS": full_kernelize,
}

_records = {}


@pytest.mark.parametrize("name", list(KERNELIZERS))
def test_fig9_kernelization(benchmark, name):
    kernelizer = KERNELIZERS[name]
    graphs = [load(graph_name) for graph_name in dataset_names("easy")]

    def sweep():
        out = {}
        for graph in graphs:
            start = time.perf_counter()
            result = kernelizer(graph)
            out[graph.name] = (time.perf_counter() - start, result.kernel.n)
        return out

    _records[name] = benchmark.pedantic(sweep, rounds=1, iterations=1)
    if len(_records) == len(KERNELIZERS):
        _emit(graphs)


def _emit(graphs):
    time_rows = []
    size_rows = []
    for graph in graphs:
        time_rows.append(
            [graph.name]
            + [format_seconds(_records[k][graph.name][0]) for k in KERNELIZERS]
        )
        size_rows.append(
            [graph.name] + [_records[k][graph.name][1] for k in KERNELIZERS]
        )
    emit(
        "fig9a_kernel_times",
        render_table(
            ["Graph"] + list(KERNELIZERS),
            time_rows,
            title="Figure 9(a): kernelization time by rule set",
        ),
    )
    emit(
        "fig9b_kernel_sizes",
        render_table(
            ["Graph"] + list(KERNELIZERS),
            size_rows,
            title="Figure 9(b): kernel size by rule set",
        ),
    )
    # Shape assertions.
    for graph in graphs:
        lt_size = _records["LinearTime"][graph.name][1]
        nl_size = _records["NearLinear"][graph.name][1]
        full_size = _records["KernelReduMIS"][graph.name][1]
        assert full_size <= nl_size <= lt_size
    total = lambda k: sum(v[0] for v in _records[k].values())  # noqa: E731
    assert total("KernelReduMIS") >= total("NearLinear")
