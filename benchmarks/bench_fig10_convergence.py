"""Figure 10 — convergence of the local-search family on hard graphs (1/2).

Runs ARW, OnlineMIS, ReduMIS, ARW-LT and ARW-NL under a shared wall-clock
budget on the first four hard stand-ins (the paper uses soc-pokec,
indochina, webbase, it-2004; the budget is scaled from five hours to
seconds — DESIGN.md §4).

Paper shape: the boosted variants take the lead immediately — ARW-NL's
*first* solution is already within a fraction of a percent of the best
anyone reaches — while ReduMIS starts late (full kernelization) and plain
ARW needs the entire budget to catch up.
"""

from conftest import emit

from repro.bench import load, render_convergence, run_convergence_suite

GRAPHS = ["soc-pokec-sim", "indochina-sim", "webbase-sim", "it-2004-sim"]
TIME_BUDGET = 2.0


def test_fig10_convergence(benchmark):
    def run_all():
        return {name: run_convergence_suite(load(name), TIME_BUDGET, seed=7) for name in GRAPHS}

    suites = benchmark.pedantic(run_all, rounds=1, iterations=1)
    blocks = []
    for name in GRAPHS:
        runs = suites[name]
        blocks.append(render_convergence(name, runs))
        best = max(run.final_size for run in runs.values())
        # ARW-NL's first reported solution is near the overall best
        # (paper: >= 99.9% at full scale; >= 97% at this scale).
        first = runs["ARW-NL"].first_size
        assert first >= 0.97 * best
        # The boosted variants never end below plain ARW.
        assert runs["ARW-NL"].final_size >= 0.97 * runs["ARW"].final_size
    emit("fig10_convergence", "\n\n".join(blocks))
