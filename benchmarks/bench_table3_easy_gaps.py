"""Table 3 — gap to the independence number on the twelve easy instances.

For each easy stand-in the independence number is certified by the
branch-and-reduce solver; the table reports the gap of Greedy, DU, SemiE,
BDOne, BDTwo, LinearTime and NearLinear, plus NearLinear's accuracy and
kernel size — the same columns as the paper's Table 3.  ``*`` marks results
the reducing-peeling algorithms *certified* maximum (Theorem 6.1).

Expected shape (paper): Greedy ≫ DU ≥ the reducing-peeling family;
NearLinear's accuracy ≥ 99.9% everywhere, with several certified-maximum
rows and empty kernels.
"""

from conftest import emit, independence_number_of

from repro.baselines import du, greedy, semi_external
from repro.bench import dataset_names, load, render_table
from repro.core import bdone, bdtwo, linear_time, near_linear, near_linear_reduce

ALGORITHMS = [
    ("Greedy", greedy),
    ("DU", du),
    ("SemiE", semi_external),
    ("BDOne", bdone),
    ("BDTwo", bdtwo),
    ("LinearTime", linear_time),
    ("NearLinear", near_linear),
]


def _full_table():
    rows = []
    certified = 0
    for name in dataset_names("easy"):
        graph = load(name)
        alpha = independence_number_of(name)
        row = [name, alpha]
        for _, algorithm in ALGORITHMS:
            result = algorithm(graph)
            if alpha is None:
                row.append("?")
                continue
            marker = "*" if result.is_exact else ""
            if result.is_exact:
                certified += 1
            row.append(f"{alpha - result.size}{marker}")
        near = near_linear(graph)
        accuracy = 100.0 * near.size / alpha if alpha else 100.0
        kernel, _, _ = near_linear_reduce(graph)
        row.append(f"{accuracy:.3f}%")
        row.append(kernel.n)
        rows.append(row)
    return rows, certified


def test_table3_easy_gaps(benchmark):
    rows, certified = benchmark.pedantic(_full_table, rounds=1, iterations=1)
    headers = (
        ["Graph", "alpha"] + [name for name, _ in ALGORITHMS] + ["NL accuracy", "NL kernel"]
    )
    emit(
        "table3_easy_gaps",
        render_table(
            headers,
            rows,
            title=(
                "Table 3: gap to the independence number (easy instances);"
                " * = certified maximum by Theorem 6.1"
            ),
        ),
        data=[dict(zip(headers, row)) for row in rows],
    )
    # Paper shape assertions: NearLinear accuracy >= 99.8% everywhere and
    # it certifies a maximum on several instances.
    for row in rows:
        accuracy = float(row[-2].rstrip("%"))
        assert accuracy >= 99.8
    assert certified >= 5
