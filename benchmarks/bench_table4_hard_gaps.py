"""Table 4 — gap to the best result size on the eight hard instances.

VCSolver cannot finish on these, so (as in the paper) the reference is the
best size any local-search algorithm reaches; the table reports the gap of
each one-shot heuristic against it.

Paper shape: Greedy ≫ DU / SemiE ≫ BDOne, with BDTwo / LinearTime /
NearLinear closest to the local-search reference.
"""

from conftest import emit

from repro.baselines import du, greedy, semi_external
from repro.bench import dataset_names, load, render_table
from repro.core import bdone, bdtwo, linear_time, near_linear
from repro.localsearch import arw_nl

ALGORITHMS = [
    ("Greedy", greedy),
    ("DU", du),
    ("SemiE", semi_external),
    ("BDOne", bdone),
    ("BDTwo", bdtwo),
    ("LinearTime", linear_time),
    ("NearLinear", near_linear),
]
REFERENCE_BUDGET = 2.0


def _table():
    rows = []
    aggregate = {name: 0 for name, _ in ALGORITHMS}
    for graph_name in dataset_names("hard"):
        graph = load(graph_name)
        sizes = {name: algorithm(graph).size for name, algorithm in ALGORITHMS}
        reference = arw_nl(graph, time_budget=REFERENCE_BUDGET, seed=4).size
        reference = max(reference, max(sizes.values()))
        row = [graph_name, reference]
        for name, _ in ALGORITHMS:
            gap = reference - sizes[name]
            aggregate[name] += gap
            row.append(gap)
        rows.append(row)
    return rows, aggregate


def test_table4_hard_gaps(benchmark):
    rows, aggregate = benchmark.pedantic(_table, rounds=1, iterations=1)
    emit(
        "table4_hard_gaps",
        render_table(
            ["Graph", "Best size"] + [name for name, _ in ALGORITHMS],
            rows,
            title="Table 4: gap to the best (local-search) result, hard instances",
        ),
    )
    # Shape: Greedy is the weakest overall; the reducing-peeling family
    # beats both classic greedy heuristics in aggregate.
    assert aggregate["Greedy"] >= aggregate["DU"]
    assert aggregate["DU"] >= aggregate["BDOne"]
    assert aggregate["Greedy"] > aggregate["NearLinear"]
