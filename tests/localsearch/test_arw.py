"""Tests for the ARW local search and its data structures."""

import pytest

from repro.analysis import is_independent_set
from repro.baselines import du
from repro.errors import NotASolutionError
from repro.exact import brute_force_alpha
from repro.graphs import (
    Graph,
    complete_bipartite_graph,
    cycle_graph,
    gnm_random_graph,
    path_graph,
    petersen_graph,
    star_graph,
)
from repro.localsearch import ConvergenceRecorder, LocalSearchState, arw


class TestLocalSearchState:
    def test_tightness_tracking(self):
        g = star_graph(3)
        state = LocalSearchState(g, [0])
        assert state.tightness[1] == 1
        state.remove(0)
        assert state.tightness[1] == 0

    def test_insert_rejects_blocked_vertex(self):
        g = path_graph(2)
        state = LocalSearchState(g, [0])
        with pytest.raises(NotASolutionError):
            state.insert(1)

    def test_force_insert_evicts_neighbours(self):
        g = star_graph(3)
        state = LocalSearchState(g, [1, 2, 3])
        state.force_insert(0)
        assert state.solution() == {0}

    def test_double_insert_is_noop(self):
        g = path_graph(3)
        state = LocalSearchState(g, [0])
        state.insert(0)
        assert state.size == 1

    def test_one_tight_neighbors(self):
        # 0 in solution; 1 and 2 are its only blocked neighbours.
        g = Graph.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        state = LocalSearchState(g, [0])
        assert sorted(state.one_tight_neighbors(0)) == [1, 2]

    def test_find_one_two_swap(self):
        g = Graph.from_edges(3, [(0, 1), (0, 2)])
        state = LocalSearchState(g, [0])
        swap = state.find_one_two_swap(0)
        assert swap is not None
        state.apply_one_two_swap(0, *swap)
        assert state.solution() == {1, 2}

    def test_swap_requires_nonadjacent_candidates(self):
        g = Graph.from_edges(3, [(0, 1), (0, 2), (1, 2)])
        state = LocalSearchState(g, [0])
        assert state.find_one_two_swap(0) is None

    def test_local_search_reaches_star_optimum(self):
        g = star_graph(5)
        state = LocalSearchState(g, [0])
        gained = state.local_search()
        assert state.size == 5
        assert gained == 4


class TestARW:
    def test_improves_du_on_bipartite(self):
        # DU may pick greedily into the small side; ARW recovers max(a,b).
        g = complete_bipartite_graph(4, 9)
        initial = du(g).independent_set
        best, recorder = arw(g, initial, time_budget=0.1, seed=1, max_iterations=20)
        assert len(best) == 9
        assert recorder.best_size == 9

    def test_solution_always_valid(self):
        for seed in range(6):
            g = gnm_random_graph(40, 120, seed=seed)
            best, _ = arw(g, du(g).independent_set, time_budget=0.05, seed=seed, max_iterations=10)
            assert is_independent_set(g, best)
            assert len(best) <= brute_force_alpha(g) if g.n <= 40 else True

    def test_never_worse_than_initial(self):
        g = petersen_graph()
        initial = {0}
        best, _ = arw(g, initial, time_budget=0.05, seed=2, max_iterations=10)
        assert len(best) >= 1

    def test_finds_cycle_optimum(self):
        g = cycle_graph(9)
        best, _ = arw(g, [0], time_budget=0.2, seed=3, max_iterations=50)
        assert len(best) == 4

    def test_recorder_events_are_monotone(self):
        g = gnm_random_graph(60, 150, seed=9)
        _, recorder = arw(g, [], time_budget=0.1, seed=4, max_iterations=30)
        sizes = [size for _, size in recorder.events]
        assert sizes == sorted(sizes)
        assert len(set(sizes)) == len(sizes)


class TestConvergenceRecorder:
    def test_records_only_improvements(self):
        recorder = ConvergenceRecorder()
        recorder.record(5)
        recorder.record(5)
        recorder.record(7)
        assert [size for _, size in recorder.events] == [5, 7]

    def test_size_at_budget(self):
        recorder = ConvergenceRecorder()
        recorder.events = [(0.1, 5), (0.5, 8), (2.0, 9)]
        assert recorder.size_at(1.0) == 8
        assert recorder.size_at(0.05) == 0

    def test_time_to_reach(self):
        recorder = ConvergenceRecorder()
        recorder.events = [(0.1, 5), (0.5, 8)]
        assert recorder.time_to_reach(6) == 0.5
        assert recorder.time_to_reach(9) is None

    def test_first_event_and_best(self):
        recorder = ConvergenceRecorder()
        assert recorder.first_event is None
        assert recorder.best_size == 0
        recorder.record(3)
        assert recorder.first_event[1] == 3
