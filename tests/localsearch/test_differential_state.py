"""Differential tests: FlatLocalSearchState vs. the legacy oracle.

:class:`~repro.localsearch.flat_state.FlatLocalSearchState` (the CSR /
incremental-1-tight-index backend ARW runs on by default) must make the
*identical move sequence* as the legacy
:class:`~repro.localsearch.arw.LocalSearchState` — same swaps in the same
order, so under a shared RNG seed the two ARW runs consume the same random
stream and land on the same solutions.  These tests assert that on 20+
seeded generator graphs, at every level: elementary moves, the (1,2)-swap
scan, one local-search exhaust, and full ``arw`` / ``arw_lt`` / ``arw_nl``
trajectories.
"""

import random

import pytest

from repro.analysis import assert_valid_solution
from repro.errors import NotASolutionError
from repro.graphs.generators import (
    gnm_random_graph,
    power_law_graph,
    web_like_graph,
)
from repro.localsearch import FlatLocalSearchState, arw, arw_lt, arw_nl
from repro.localsearch.arw import LocalSearchState


def _corpus():
    """20+ small seeded graphs spanning the generator families."""
    graphs = []
    for seed in range(8):
        graphs.append(gnm_random_graph(60 + 5 * seed, 150 + 12 * seed, seed=seed))
    for seed in range(8):
        graphs.append(
            power_law_graph(70 + 5 * seed, beta=2.1 + (seed % 4) * 0.2,
                            average_degree=3.5 + (seed % 3), seed=seed)
        )
    for seed in range(6):
        graphs.append(web_like_graph(65 + 5 * seed, attach=2 + seed % 3, seed=seed))
    return graphs


CORPUS = _corpus()


def _greedy_maximal(graph):
    """Deterministic id-order greedy maximal independent set."""
    taken = bytearray(graph.n)
    solution = []
    for v in range(graph.n):
        if not taken[v]:
            solution.append(v)
            taken[v] = 1
            for w in graph.neighbors(v):
                taken[w] = 1
    return solution


def _assert_states_equal(flat, oracle, context):
    assert flat.size == oracle.size, context
    assert flat.in_solution == oracle.in_solution, context
    assert flat.tightness == oracle.tightness, context
    assert flat._last_outside == oracle._last_outside, context


def test_corpus_is_large_enough():
    assert len(CORPUS) >= 20


def test_elementary_moves_agree():
    # Drive both states through the same scripted insert/remove/force_insert
    # sequence and compare the full bookkeeping after every move.
    for graph in CORPUS[::4]:
        seed_solution = _greedy_maximal(graph)
        flat = FlatLocalSearchState(graph, seed_solution)
        oracle = LocalSearchState(graph, seed_solution)
        _assert_states_equal(flat, oracle, graph.name)
        rng = random.Random(17)
        for step in range(60):
            v = rng.randrange(graph.n)
            if oracle.in_solution[v]:
                flat.remove(v, clock=step)
                oracle.remove(v, clock=step)
            else:
                flat.force_insert(v, clock=step)
                oracle.force_insert(v, clock=step)
            _assert_states_equal(flat, oracle, (graph.name, step, v))
        assert flat.solution() == oracle.solution()


def test_insert_rejects_non_solution_vertex():
    graph = gnm_random_graph(30, 60, seed=3)
    seed_solution = _greedy_maximal(graph)
    flat = FlatLocalSearchState(graph, seed_solution)
    blocked = next(v for v in range(graph.n) if flat.tightness[v] > 0)
    with pytest.raises(NotASolutionError):
        flat.insert(blocked)


def test_swap_scan_returns_identical_pairs():
    # The incremental index plus stamp array must pick the exact pair the
    # oracle's set-based scan picks (first u in adjacency order with a
    # partner, first such partner) — or agree there is none.
    for graph in CORPUS[::3]:
        seed_solution = _greedy_maximal(graph)
        flat = FlatLocalSearchState(graph, seed_solution)
        oracle = LocalSearchState(graph, seed_solution)
        for x in range(graph.n):
            if not oracle.in_solution[x]:
                continue
            assert flat.one_tight_neighbors(x) == oracle.one_tight_neighbors(x)
            assert flat.find_one_two_swap(x) == oracle.find_one_two_swap(x), (
                graph.name,
                x,
            )


def test_local_search_exhaust_agrees():
    for graph in CORPUS:
        seed_solution = _greedy_maximal(graph)
        flat = FlatLocalSearchState(graph, seed_solution)
        oracle = LocalSearchState(graph, seed_solution)
        gained_flat = flat.local_search()
        gained_oracle = oracle.local_search()
        assert gained_flat == gained_oracle, graph.name
        _assert_states_equal(flat, oracle, graph.name)
        assert_valid_solution(graph, flat.solution())


def test_arw_trajectories_identical_under_fixed_seed():
    # The headline claim: same RNG seed => same solution-size trajectory
    # (sequence of improvement sizes), same final solution, on every graph.
    for graph in CORPUS:
        initial = _greedy_maximal(graph)
        best_flat, rec_flat = arw(
            graph, initial, time_budget=3600.0, seed=11, max_iterations=25
        )
        best_oracle, rec_oracle = arw(
            graph,
            initial,
            time_budget=3600.0,
            seed=11,
            max_iterations=25,
            state_factory=LocalSearchState,
        )
        assert best_flat == best_oracle, graph.name
        sizes_flat = [size for _, size in rec_flat.events]
        sizes_oracle = [size for _, size in rec_oracle.events]
        assert sizes_flat == sizes_oracle, graph.name
        assert_valid_solution(graph, best_flat)


def test_boosted_variants_agree_across_state_factories():
    for graph in CORPUS[::5]:
        for variant in (arw_lt, arw_nl):
            flat = variant(
                graph,
                time_budget=3600.0,
                max_iterations=15,
                rng=random.Random(5),
            )
            oracle = variant(
                graph,
                time_budget=3600.0,
                max_iterations=15,
                state_factory=LocalSearchState,
                rng=random.Random(5),
            )
            assert flat.independent_set == oracle.independent_set, (
                graph.name,
                variant.__name__,
            )
            assert_valid_solution(graph, flat.independent_set)
