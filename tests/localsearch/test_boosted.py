"""Tests for the kernel-boosted ARW variants (ARW-LT / ARW-NL)."""

import pytest

from repro.analysis import is_independent_set
from repro.exact import brute_force_alpha
from repro.graphs import gnm_random_graph, path_graph, power_law_graph
from repro.localsearch import arw_lt, arw_nl, boosted_arw


@pytest.mark.parametrize("boost", [arw_lt, arw_nl])
class TestBoostedVariants:
    def test_solved_kernel_short_circuits(self, boost):
        g = path_graph(60)
        result = boost(g, time_budget=0.05, seed=1, max_iterations=2)
        assert result.size == 30
        assert result.kernel_result.is_solved
        # The first (and only) event is the full reduction's solution.
        assert result.recorder.events[0][1] == 30

    def test_valid_on_irreducible(self, boost):
        g = gnm_random_graph(50, 220, seed=5)
        result = boost(g, time_budget=0.1, seed=2, max_iterations=10)
        assert is_independent_set(g, result.independent_set)

    @pytest.mark.parametrize("seed", range(6))
    def test_never_exceeds_alpha(self, boost, seed):
        g = gnm_random_graph(14, 26, seed=seed)
        result = boost(g, time_budget=0.02, seed=seed, max_iterations=5)
        assert result.size <= brute_force_alpha(g)

    def test_first_solution_is_strong(self, boost):
        # On a mostly-reducible graph the boosted first solution should be
        # at least as large as the kernelization's own lift.
        g = power_law_graph(1500, 2.2, average_degree=7, seed=7)
        result = boost(g, time_budget=0.1, seed=3, max_iterations=5)
        assert result.recorder.first_event is not None
        first_size = result.recorder.first_event[1]
        assert result.size >= first_size


class TestBoostedDispatch:
    def test_method_names(self):
        g = path_graph(10)
        for method in ("linear_time", "near_linear"):
            result = boosted_arw(g, method, time_budget=0.02, max_iterations=2)
            assert result.kernel_result.method == method

    def test_events_lifted_to_full_graph_scale(self):
        # Events must be in full-graph sizes: monotone, ending at .size.
        g = gnm_random_graph(80, 200, seed=11)
        result = arw_nl(g, time_budget=0.1, seed=5, max_iterations=20)
        sizes = [s for _, s in result.recorder.events]
        assert sizes == sorted(sizes)
        assert sizes[-1] <= result.size + 1
        # And on one shared clock: timestamps never go backwards.
        times = [t for t, _ in result.recorder.events]
        assert times == sorted(times)
