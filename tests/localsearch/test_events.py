"""Unit tests for the convergence recorder (Eval-IV bookkeeping)."""

import time

from repro.localsearch.events import ConvergenceRecorder


class TestRecord:
    def test_records_only_improvements(self):
        recorder = ConvergenceRecorder()
        recorder.record(5)
        recorder.record(5)  # not an improvement
        recorder.record(4)  # regression: ignored
        recorder.record(7)
        assert [size for _, size in recorder.events] == [5, 7]

    def test_explicit_elapsed_overrides_the_clock(self):
        recorder = ConvergenceRecorder()
        recorder.record(5, elapsed=1.5)
        recorder.record(9, elapsed=3.25)
        assert recorder.events == [(1.5, 5), (3.25, 9)]

    def test_explicit_elapsed_still_requires_improvement(self):
        recorder = ConvergenceRecorder()
        recorder.record(5, elapsed=1.0)
        recorder.record(5, elapsed=2.0)
        assert recorder.events == [(1.0, 5)]

    def test_default_clock_timestamps_are_monotone(self):
        recorder = ConvergenceRecorder()
        recorder.record(1)
        time.sleep(0.01)
        recorder.record(2)
        (t1, _), (t2, _) = recorder.events
        assert 0.0 <= t1 <= t2


class TestRestart:
    def test_restart_clears_events_and_resets_clock(self):
        recorder = ConvergenceRecorder()
        recorder.record(5)
        time.sleep(0.01)
        before = recorder.elapsed
        recorder.restart()
        assert recorder.events == []
        assert recorder.best_size == 0
        assert recorder.first_event is None
        assert recorder.elapsed < before

    def test_recording_resumes_after_restart(self):
        recorder = ConvergenceRecorder()
        recorder.record(9)
        recorder.restart()
        recorder.record(3)  # smaller than the pre-restart best: fresh slate
        assert [size for _, size in recorder.events] == [3]


class TestQueries:
    def _seeded(self):
        recorder = ConvergenceRecorder()
        recorder.events = [(0.1, 5), (0.5, 8), (2.0, 9)]
        return recorder

    def test_size_at_budget_boundaries(self):
        recorder = self._seeded()
        assert recorder.size_at(0.05) == 0
        assert recorder.size_at(0.1) == 5
        assert recorder.size_at(1.0) == 8
        assert recorder.size_at(10.0) == 9

    def test_time_to_reach(self):
        recorder = self._seeded()
        assert recorder.time_to_reach(1) == 0.1
        assert recorder.time_to_reach(8) == 0.5
        assert recorder.time_to_reach(9) == 2.0
        assert recorder.time_to_reach(10) is None

    def test_best_size_and_first_event(self):
        recorder = self._seeded()
        assert recorder.best_size == 9
        assert recorder.first_event == (0.1, 5)

    def test_empty_recorder_queries(self):
        recorder = ConvergenceRecorder()
        assert recorder.best_size == 0
        assert recorder.first_event is None
        assert recorder.size_at(1.0) == 0
        assert recorder.time_to_reach(1) is None
