"""Tests for the exhaustive MIS oracle."""

import pytest

from repro.analysis import is_independent_set
from repro.errors import GraphError
from repro.exact import brute_force_alpha, brute_force_mis
from repro.graphs import (
    Graph,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    gnm_random_graph,
    grid_graph,
    hypercube_graph,
    path_graph,
    petersen_graph,
    star_graph,
)


class TestKnownValues:
    @pytest.mark.parametrize(
        "graph,alpha",
        [
            (Graph.empty(0), 0),
            (Graph.empty(5), 5),
            (complete_graph(6), 1),
            (path_graph(7), 4),
            (cycle_graph(7), 3),
            (cycle_graph(8), 4),
            (star_graph(9), 9),
            (complete_bipartite_graph(4, 6), 6),
            (petersen_graph(), 4),
            (grid_graph(3, 4), 6),
            (hypercube_graph(3), 4),
        ],
    )
    def test_alpha(self, graph, alpha):
        assert brute_force_alpha(graph) == alpha

    def test_returned_set_is_independent_and_maximum(self):
        for seed in range(20):
            g = gnm_random_graph(12, 25, seed=seed)
            mis = brute_force_mis(g)
            assert is_independent_set(g, mis)
            assert len(mis) == brute_force_alpha(g)

    def test_size_limit(self):
        with pytest.raises(GraphError):
            brute_force_mis(Graph.empty(41))

    def test_deterministic(self):
        g = gnm_random_graph(14, 30, seed=3)
        assert brute_force_mis(g) == brute_force_mis(g)
