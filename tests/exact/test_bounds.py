"""Tests for the clique-cover / LP / cycle-cover upper bounds."""

import pytest

from repro.exact import (
    brute_force_alpha,
    clique_cover_bound,
    combined_upper_bound,
    cycle_cover_bound,
    forest_alpha,
)
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    disjoint_union,
    gnm_random_graph,
    grid_graph,
    path_graph,
    petersen_graph,
    random_tree,
    star_graph,
)


class TestCliqueCover:
    def test_complete_graph_needs_one_clique(self):
        assert clique_cover_bound(complete_graph(8)) == 1

    def test_empty_graph(self):
        assert clique_cover_bound(Graph.empty(5)) == 5

    def test_path_cover(self):
        # A path decomposes into ⌈n/2⌉ edges/singletons.
        assert clique_cover_bound(path_graph(6)) == 3

    def test_tight_on_union_of_triangles(self):
        g = disjoint_union([complete_graph(3)] * 4)
        assert clique_cover_bound(g) == 4


class TestForestAlpha:
    def test_path(self):
        g = path_graph(7)
        assert forest_alpha(g, list(range(7))) == 4

    def test_star(self):
        g = star_graph(6)
        assert forest_alpha(g, list(range(7))) == 6

    def test_random_trees_match_brute_force(self):
        for seed in range(10):
            g = random_tree(16, seed=seed)
            assert forest_alpha(g, list(range(16))) == brute_force_alpha(g)

    def test_partial_vertex_set(self):
        g = path_graph(5)
        # Induced on {0, 1, 2}: a P3, α = 2.
        assert forest_alpha(g, [0, 1, 2]) == 2


class TestCycleCover:
    def test_single_cycle(self):
        assert cycle_cover_bound(cycle_graph(9)) == 4

    def test_forest_is_exact(self):
        g = random_tree(30, seed=4)
        assert cycle_cover_bound(g) == forest_alpha(g, list(range(30)))

    def test_odd_cycle_beats_lp(self):
        # On C5 the LP bound is 2.5 -> 2 after floor; cycle cover also 2.
        assert cycle_cover_bound(cycle_graph(5)) == 2


class TestCombined:
    @pytest.mark.parametrize("seed", range(40))
    def test_valid_upper_bound_randomized(self, seed):
        g = gnm_random_graph(13, 24, seed=seed)
        assert combined_upper_bound(g) >= brute_force_alpha(g)

    def test_empty(self):
        assert combined_upper_bound(Graph.empty(0)) == 0

    def test_grid(self):
        g = grid_graph(3, 3)
        assert combined_upper_bound(g) >= 5

    def test_petersen(self):
        bound = combined_upper_bound(petersen_graph())
        assert 4 <= bound <= 5
