"""Tests for the branch-and-reduce exact solver and full kernelization."""

import pytest

from repro.analysis import is_independent_set
from repro.errors import BudgetExceededError
from repro.exact import (
    brute_force_alpha,
    full_kernelize,
    independence_number,
    maximum_independent_set,
)
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    gnm_random_graph,
    gnp_random_graph,
    paper_figure1,
    paper_figure2,
    paper_figure5,
    petersen_graph,
    power_law_graph,
    random_regular_graph,
)


class TestCorrectness:
    @pytest.mark.parametrize("seed", range(40))
    def test_matches_brute_force_random(self, seed):
        g = gnm_random_graph(14, 28, seed=seed)
        result = maximum_independent_set(g)
        assert is_independent_set(g, result.independent_set)
        assert result.size == brute_force_alpha(g)

    @pytest.mark.parametrize("seed", range(10))
    def test_dense_instances(self, seed):
        g = gnp_random_graph(18, 0.5, seed=seed)
        assert maximum_independent_set(g).size == brute_force_alpha(g)

    @pytest.mark.parametrize("seed", range(10))
    def test_regular_instances(self, seed):
        g = random_regular_graph(14, 3, seed=seed)
        assert maximum_independent_set(g).size == brute_force_alpha(g)

    def test_paper_figures(self):
        assert independence_number(paper_figure1()) == 5
        assert independence_number(paper_figure2()) == 3
        assert independence_number(paper_figure5()) == 4
        assert independence_number(petersen_graph()) == 4

    def test_large_reducible_graph_needs_no_branching(self):
        g = power_law_graph(3000, 2.0, average_degree=6, seed=5)
        result = maximum_independent_set(g)
        assert result.nodes_explored == 0  # NearLinear certified directly

    def test_empty_and_trivial(self):
        assert independence_number(Graph.empty(0)) == 0
        assert independence_number(Graph.empty(7)) == 7
        assert independence_number(complete_graph(5)) == 1


class TestBudget:
    def test_budget_raises_with_lower_bound(self):
        g = gnp_random_graph(60, 0.25, seed=1)
        with pytest.raises(BudgetExceededError) as excinfo:
            maximum_independent_set(g, node_budget=2)
        assert excinfo.value.best_lower > 0


class TestFullKernelize:
    def test_stronger_than_near_linear(self):
        from repro.core import kernelize

        for seed in range(5):
            g = gnm_random_graph(60, 90, seed=seed)
            full = full_kernelize(g)
            nl = kernelize(g, method="near_linear")
            assert full.kernel.n <= nl.kernel.n

    def test_folding_fires_where_paths_cannot(self):
        # Petersen is irreducible for NearLinear (3-regular, triangle
        # free); bridging two non-adjacent vertices with a degree-two
        # vertex creates the one configuration only folding handles.
        base = petersen_graph()
        edges = list(base.edges()) + [(0, 10), (2, 10)]
        g = Graph.from_edges(11, edges)
        kr = full_kernelize(g)
        assert kr.log.stats.get("degree-two-folding", 0) >= 1
        assert kr.kernel.n < g.n
        if kr.kernel.n <= 30:
            offset = kr.log.alpha_offset
            assert offset + brute_force_alpha(kr.kernel) == brute_force_alpha(g)

    def test_kernel_alpha_relation(self):
        for seed in range(15):
            g = gnm_random_graph(15, 27, seed=seed + 200)
            kr = full_kernelize(g)
            offset = kr.log.alpha_offset
            if kr.kernel.n <= 30:
                assert offset + brute_force_alpha(kr.kernel) == brute_force_alpha(g)

    def test_cycle_kernel_empty(self):
        assert full_kernelize(cycle_graph(10)).is_solved
