"""Tests for the complement-based maximum clique helper."""

import pytest

from repro.errors import GraphError
from repro.exact import clique_number, maximum_clique
from repro.graphs import (
    Graph,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    gnm_random_graph,
    petersen_graph,
)


class TestMaximumClique:
    def test_complete_graph(self):
        clique = maximum_clique(complete_graph(6))
        assert clique == frozenset(range(6))

    def test_triangle_free_graphs(self):
        assert clique_number(cycle_graph(7)) == 2
        assert clique_number(petersen_graph()) == 2

    def test_bipartite(self):
        assert clique_number(complete_bipartite_graph(3, 4)) == 2

    def test_edgeless(self):
        assert clique_number(Graph.empty(5)) == 1
        assert clique_number(Graph.empty(0)) == 0

    def test_clique_is_actually_a_clique(self):
        for seed in range(10):
            g = gnm_random_graph(25, 140, seed=seed)
            clique = maximum_clique(g)
            members = sorted(clique)
            for i, u in enumerate(members):
                for v in members[i + 1 :]:
                    assert g.has_edge(u, v)

    def test_matches_brute_force_on_complement(self):
        from repro.exact import brute_force_alpha

        for seed in range(10):
            g = gnm_random_graph(14, 45, seed=seed + 30)
            assert clique_number(g) == brute_force_alpha(g.complement())

    def test_size_guard(self):
        with pytest.raises(GraphError):
            maximum_clique(Graph.empty(3000))
