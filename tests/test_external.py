"""Tests for the semi-external (I/O-efficient) module."""

import pytest

from repro.analysis import is_maximal_independent_set
from repro.core import bdone
from repro.errors import GraphFormatError
from repro.exact import brute_force_alpha
from repro.external import EdgeStream, semi_external_bdone
from repro.graphs import (
    Graph,
    cycle_graph,
    gnm_random_graph,
    path_graph,
    power_law_graph,
    star_graph,
    write_edge_list,
)


class TestEdgeStream:
    def test_graph_source(self):
        g = cycle_graph(6)
        stream = EdgeStream(g)
        assert stream.n == 6
        assert sorted(stream.edges()) == sorted(g.edges())
        assert stream.passes == 1
        list(stream.edges())
        assert stream.passes == 2

    def test_file_source_with_header(self, tmp_path):
        g = gnm_random_graph(30, 60, seed=4)
        path = tmp_path / "g.txt"
        write_edge_list(g, str(path))
        stream = EdgeStream(str(path))
        assert stream.n == 30
        assert sorted(stream.edges()) == sorted(g.edges())

    def test_file_source_requires_n(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n")
        with pytest.raises(GraphFormatError):
            EdgeStream(str(path))
        stream = EdgeStream(str(path), n=3)
        assert list(stream.edges()) == [(0, 1), (1, 2)]

    def test_out_of_range_edge_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 9\n")
        stream = EdgeStream(str(path), n=3)
        with pytest.raises(GraphFormatError):
            list(stream.edges())


class TestSemiExternalBDOne:
    @pytest.mark.parametrize(
        "graph_factory,expected",
        [
            (lambda: star_graph(7), 7),
            (lambda: path_graph(9), 5),
            (lambda: Graph.empty(5), 5),
            (lambda: Graph.empty(0), 0),
        ],
    )
    def test_known_instances(self, graph_factory, expected):
        result = semi_external_bdone(graph_factory())
        assert result.size == expected

    def test_certificate_on_trees(self):
        from repro.graphs import random_tree

        g = random_tree(100, seed=6)
        result = semi_external_bdone(g)
        assert result.is_exact

    @pytest.mark.parametrize("seed", range(20))
    def test_valid_and_bounded(self, seed):
        g = gnm_random_graph(14, 24, seed=seed)
        result = semi_external_bdone(g)
        assert is_maximal_independent_set(g, result.independent_set) or g.n == 0
        alpha = brute_force_alpha(g)
        assert result.size <= alpha <= result.upper_bound
        if result.is_exact:
            assert result.size == alpha

    def test_quality_tracks_in_memory_bdone(self):
        g = power_law_graph(3000, 2.2, average_degree=5, seed=10)
        external = semi_external_bdone(g)
        internal = bdone(g)
        assert external.size >= 0.97 * internal.size

    def test_pass_count_reported(self):
        g = power_law_graph(1000, 2.2, average_degree=5, seed=11)
        result = semi_external_bdone(g)
        assert result.stats["passes"] >= 2
        # Sub-linear pass count on power-law inputs (the model's point).
        assert result.stats["passes"] < g.n // 10

    def test_from_file_end_to_end(self, tmp_path):
        g = gnm_random_graph(200, 300, seed=12)
        path = tmp_path / "g.txt"
        write_edge_list(g, str(path))
        result = semi_external_bdone(str(path))
        assert is_maximal_independent_set(g, result.independent_set)
