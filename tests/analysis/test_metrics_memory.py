"""Tests for metrics and the memory model."""

import pytest

from repro.analysis import (
    MODEL_WORDS_PER_EDGE,
    accuracy,
    best_of,
    gap,
    gaps_to_best,
    measure_peak_bytes,
    model_words,
    speedup_to_reach,
)
from repro.errors import ReproError
from repro.graphs import cycle_graph


class TestMetrics:
    def test_gap(self):
        assert gap(100, 97) == 3

    def test_accuracy(self):
        assert accuracy(200, 199) == pytest.approx(0.995)
        assert accuracy(0, 0) == 1.0

    def test_best_of(self):
        assert best_of([3, 9, 4]) == 9
        assert best_of([]) == 0

    def test_gaps_to_best(self):
        assert gaps_to_best({"a": 10, "b": 7}) == {"a": 0, "b": 3}

    def test_speedup_to_reach(self):
        a = [(0.1, 50), (0.2, 100)]
        b = [(1.0, 40), (2.0, 100)]
        assert speedup_to_reach(a, b, 100) == pytest.approx(10.0)

    def test_speedup_unreachable(self):
        assert speedup_to_reach([(0.1, 5)], [(0.1, 100)], 50) is None

    def test_speedup_instant(self):
        assert speedup_to_reach([(0.0, 100)], [(1.0, 100)], 100) == float("inf")


class TestMemoryModel:
    def test_bdtwo_triples_bdone(self):
        g = cycle_graph(1000)
        # The 6m-vs-2m edge-storage ratio of Table 1.
        assert MODEL_WORDS_PER_EDGE["BDTwo"] == 3 * MODEL_WORDS_PER_EDGE["BDOne"]
        assert model_words("BDTwo", g) > 2.5 * model_words("BDOne", g) - 10 * g.n

    def test_near_linear_doubles_edge_storage(self):
        assert MODEL_WORDS_PER_EDGE["NearLinear"] == 2 * MODEL_WORDS_PER_EDGE["LinearTime"]

    def test_unknown_algorithm_raises(self):
        with pytest.raises(ReproError):
            model_words("Mystery", cycle_graph(4))

    def test_measure_peak_bytes(self):
        result, peak = measure_peak_bytes(lambda: [0] * 100_000)
        assert len(result) == 100_000
        assert peak > 100_000  # a list of 100k elements is > 100kB
