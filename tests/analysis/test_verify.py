"""Tests for solution verification helpers."""

import pytest

from repro.analysis import (
    assert_valid_solution,
    complement_vertex_cover,
    greedy_maximal_extension,
    is_independent_set,
    is_maximal_independent_set,
    is_vertex_cover,
)
from repro.errors import NotASolutionError
from repro.graphs import cycle_graph, paper_figure1, path_graph, star_graph


class TestIndependence:
    def test_empty_set_is_independent(self):
        assert is_independent_set(path_graph(3), set())

    def test_adjacent_pair_is_not(self):
        assert not is_independent_set(path_graph(3), {0, 1})

    def test_out_of_range_vertex_is_invalid(self):
        assert not is_independent_set(path_graph(3), {5})

    def test_paper_example(self):
        g = paper_figure1()
        assert is_independent_set(g, {1, 4, 6, 8})
        assert not is_independent_set(g, {0, 1})


class TestMaximality:
    def test_maximal(self):
        assert is_maximal_independent_set(cycle_graph(4), {0, 2})

    def test_not_maximal(self):
        assert not is_maximal_independent_set(cycle_graph(4), {0})

    def test_invalid_set_is_not_maximal(self):
        assert not is_maximal_independent_set(cycle_graph(4), {0, 1})


class TestVertexCover:
    def test_cover(self):
        assert is_vertex_cover(star_graph(5), {0})

    def test_non_cover(self):
        assert not is_vertex_cover(path_graph(3), {0})

    def test_complement_relation(self):
        g = paper_figure1()
        cover = complement_vertex_cover(g, {0, 3, 5, 7, 9})
        assert cover == {1, 2, 4, 6, 8}
        assert is_vertex_cover(g, cover)

    def test_complement_rejects_invalid_input(self):
        with pytest.raises(NotASolutionError):
            complement_vertex_cover(path_graph(3), {0, 1})


class TestAssertAndExtend:
    def test_assert_passes(self):
        assert_valid_solution(cycle_graph(4), {0, 2})

    def test_assert_raises_on_dependence(self):
        with pytest.raises(NotASolutionError):
            assert_valid_solution(path_graph(2), {0, 1})

    def test_assert_raises_on_non_maximal(self):
        with pytest.raises(NotASolutionError):
            assert_valid_solution(path_graph(5), {1}, maximal=True)

    def test_extension_reaches_maximality(self):
        g = path_graph(7)
        extended = greedy_maximal_extension(g, {3})
        assert is_maximal_independent_set(g, extended)
        assert 3 in extended

    def test_extension_of_empty(self):
        g = cycle_graph(6)
        extended = greedy_maximal_extension(g, set())
        assert is_maximal_independent_set(g, extended)
