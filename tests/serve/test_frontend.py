"""The asyncio front-end: admission, batching, shedding, wire protocols."""

import asyncio
import json

import pytest

from repro.errors import ReproError
from repro.serve import AsyncFrontend, ServiceConfig, ShardRouter, serve_forever


def register(graph_id, rid="r0"):
    return {
        "op": "register",
        "id": graph_id,
        "n": 6,
        "edges": [[0, 1], [1, 2], [2, 3], [3, 4], [4, 5]],
        "rid": rid,
    }


def solve(graph_id, rid="r1", **extra):
    request = {"op": "solve", "id": graph_id, "rid": rid}
    request.update(extra)
    return request


def run(coro):
    return asyncio.run(coro)


async def with_frontend(body, shards=2, **kwargs):
    router = ShardRouter(shards=shards, config=ServiceConfig())
    frontend = AsyncFrontend(router, own_router=True, **kwargs)
    await frontend.start()
    try:
        return await body(frontend)
    finally:
        await frontend.drain()


class TestSubmit:
    def test_round_trip(self):
        async def body(frontend):
            assert (await frontend.submit(register("g")))["ok"]
            response = await frontend.submit(solve("g"))
            assert response["ok"] and response["size"] == 3
            assert response["rid"] == "r1"

        run(with_frontend(body))

    def test_ping_answers_inline(self):
        async def body(frontend):
            response = await frontend.submit({"op": "ping", "rid": "p"})
            assert response["pong"] and response["rid"] == "p"

        run(with_frontend(body))

    def test_stats_aggregates_fleet(self):
        async def body(frontend):
            await frontend.submit(register("g"))
            response = await frontend.submit({"op": "stats", "rid": "s"})
            assert response["ok"]
            assert response["counters"]["graphs"] == 1
            assert response["frontend"]["requests"] >= 2

        run(with_frontend(body))

    def test_errors_stay_structured(self):
        async def body(frontend):
            response = await frontend.submit(solve("missing"))
            assert response["ok"] is False and "error" in response

        run(with_frontend(body))

    def test_concurrent_bursts_coalesce(self):
        async def body(frontend):
            await frontend.submit(register("g"))
            await frontend.submit(solve("g", "warm"))
            responses = await asyncio.gather(
                *(frontend.submit(solve("g", f"r{i}")) for i in range(16))
            )
            assert all(r["ok"] and r["size"] == 3 for r in responses)
            assert {r["rid"] for r in responses} == {f"r{i}" for i in range(16)}
            assert frontend.snapshot()["coalesced"] > 0

        run(with_frontend(body, shards=1))

    def test_mutation_fences_coalescing(self):
        # solve, add_edge, solve — the two solves straddle a write, so
        # they must NOT share an answer blindly; the second must see the
        # mutated graph.
        async def body(frontend):
            await frontend.submit(register("g"))
            first = await frontend.submit(solve("g", "a"))
            mutated = await frontend.submit(
                {"op": "add_edge", "id": "g", "u": 0, "v": 2, "rid": "m"}
            )
            assert mutated["ok"]
            second = await frontend.submit(solve("g", "b"))
            assert first["ok"] and second["ok"]
            assert set(second["independent_set"]) != {0, 2, 4} or second[
                "size"
            ] <= first["size"]

        run(with_frontend(body, shards=1))


class TestAdmission:
    def test_overload_sheds_to_stale_answer(self):
        async def body(frontend):
            await frontend.submit(register("g"))
            await frontend.submit(solve("g", "warm"))
            responses = await asyncio.gather(
                *(
                    frontend.submit(solve("g", f"r{i}", timeout=1e-9))
                    for i in range(32)
                )
            )
            assert all(r["ok"] for r in responses)
            shed = [r for r in responses if r.get("shed")]
            for response in shed:
                assert response["independent_set"]
                assert response["size"] > 0

        run(with_frontend(body, shards=1, max_queue_depth=2, max_batch=2))

    def test_draining_refuses_new_work(self):
        async def body(frontend):
            await frontend.submit(register("g"))
            frontend._draining = True
            response = await frontend.submit(solve("g"))
            assert response["ok"] is False
            assert "drain" in response["error"]
            frontend._draining = False

        run(with_frontend(body))

    def test_constructor_validation(self):
        router = ShardRouter(shards=1, config=ServiceConfig())
        try:
            with pytest.raises(ReproError):
                AsyncFrontend(router, max_queue_depth=0)
            with pytest.raises(ReproError):
                AsyncFrontend(router, max_batch=0)
        finally:
            router.close()


class TestSocketServer:
    def test_jsonl_over_socket(self):
        async def body(frontend):
            host, port = await frontend.start_server()
            reader, writer = await asyncio.open_connection(host, port)
            for request in (
                register("g", "w0"),
                solve("g", "w1"),
                {"op": "ping", "rid": "w2"},
            ):
                writer.write((json.dumps(request) + "\n").encode())
            await writer.drain()
            responses = [
                json.loads(await reader.readline()) for _ in range(3)
            ]
            writer.close()
            await writer.wait_closed()
            assert [r["rid"] for r in responses] == ["w0", "w1", "w2"]
            assert responses[1]["size"] == 3

        run(with_frontend(body))

    def test_malformed_line_gets_structured_error(self):
        async def body(frontend):
            host, port = await frontend.start_server()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b'{"rid": "bad", "op": broken\n')
            await writer.drain()
            response = json.loads(await reader.readline())
            writer.close()
            await writer.wait_closed()
            assert response["ok"] is False
            assert response["rid"] == "bad"
            assert frontend.snapshot()["protocol_errors"] >= 1

        run(with_frontend(body))

    def test_http_post_adapter(self):
        async def body(frontend):
            host, port = await frontend.start_server()
            reader, writer = await asyncio.open_connection(host, port)
            payload = (
                json.dumps(register("g", "h0")) + "\n" + json.dumps(solve("g", "h1"))
            ).encode()
            writer.write(
                b"POST /requests HTTP/1.1\r\nHost: x\r\nContent-Length: "
                + str(len(payload)).encode()
                + b"\r\n\r\n"
                + payload
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            await writer.wait_closed()
            head, _, body_bytes = raw.partition(b"\r\n\r\n")
            assert b"200 OK" in head
            lines = [json.loads(l) for l in body_bytes.splitlines() if l.strip()]
            assert [r["rid"] for r in lines] == ["h0", "h1"]

        run(with_frontend(body))


class TestServeForever:
    def test_ready_and_stop(self):
        async def scenario():
            router = ShardRouter(shards=1, config=ServiceConfig())
            frontend = AsyncFrontend(router, own_router=True)
            ready: asyncio.Queue = asyncio.Queue()
            stop = asyncio.Event()
            task = asyncio.create_task(
                serve_forever(frontend, port=0, ready=ready, stop=stop)
            )
            host, port = await ready.get()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write((json.dumps({"op": "ping", "rid": "z"}) + "\n").encode())
            await writer.drain()
            assert json.loads(await reader.readline())["pong"]
            writer.close()
            await writer.wait_closed()
            stop.set()
            bound = await asyncio.wait_for(task, timeout=10)
            assert bound == (host, port)

        run(scenario())
