"""SolverService: cache behaviour, repair routing, timeouts, persistence.

The property test at the bottom is the tentpole's acceptance gate: after
every mutation batch the served solution is independent, maximal, and
within the differential tolerance of a cold solve of the same snapshot.
"""

import random

import pytest

from repro.analysis import assert_valid_solution
from repro.errors import ReproError
from repro.graphs.generators import (
    cycle_graph,
    gnm_random_graph,
    power_law_graph,
)
from repro.obs.telemetry import disable, enable
from repro.serve import (
    Mutation,
    ServiceConfig,
    SolverService,
    cold_solve,
)

SIZE_TOLERANCE = 0.95


def _validate(service, graph_id, result):
    snapshot, old_ids = service.dynamic_graph(graph_id).snapshot()
    compact = {old: new for new, old in enumerate(old_ids)}
    served = {compact[v] for v in result.independent_set}
    assert_valid_solution(snapshot, served)
    return snapshot


class TestRegistration:
    def test_register_assigns_handles(self):
        service = SolverService()
        a = service.register(cycle_graph(5))
        b = service.register(cycle_graph(7))
        assert a != b
        assert service.graph_ids() == [a, b]

    def test_register_kernelizes_once(self):
        service = SolverService()
        gid = service.register(gnm_random_graph(80, 160, seed=1))
        kernel = service.kernel(gid)
        assert kernel is not None
        assert kernel.kernel.n <= 80

    def test_duplicate_handle_rejected(self):
        service = SolverService()
        service.register(cycle_graph(5), graph_id="g")
        with pytest.raises(ReproError):
            service.register(cycle_graph(5), graph_id="g")

    def test_unknown_handle_rejected(self):
        service = SolverService()
        with pytest.raises(ReproError, match="unknown graph id"):
            service.solve("nope")

    def test_unregister(self):
        service = SolverService()
        gid = service.register(cycle_graph(5))
        service.unregister(gid)
        assert service.graph_ids() == []


class TestCachePath:
    def test_second_solve_hits_cache(self):
        service = SolverService()
        gid = service.register(gnm_random_graph(100, 250, seed=2))
        first = service.solve(gid)
        second = service.solve(gid)
        assert first.source == "cold"
        assert second.source == "cache"
        assert second.independent_set == first.independent_set
        assert service.cache.hits == 1

    def test_structural_twins_share_cache_entries(self):
        service = SolverService()
        a = service.register(gnm_random_graph(60, 140, seed=3))
        b = service.register(gnm_random_graph(60, 140, seed=3))
        service.solve(a)
        result = service.solve(b)
        assert result.source == "cache"

    def test_mutation_then_revert_hits_cache(self):
        service = SolverService()
        gid = service.register(cycle_graph(9))
        service.solve(gid)
        service.add_edge(gid, 0, 4)
        service.remove_edge(gid, 0, 4)
        result = service.solve(gid)
        assert result.source == "cache"

    def test_cold_results_carry_certified_bound(self):
        service = SolverService()
        gid = service.register(cycle_graph(9))
        result = service.solve(gid)
        assert result.exact_bound
        assert result.size <= result.upper_bound


class TestRepairPath:
    def test_small_mutation_routes_to_repair(self):
        service = SolverService()
        gid = service.register(power_law_graph(400, beta=2.2, seed=4))
        service.solve(gid)
        dynamic = service.dynamic_graph(gid)
        u, v = 0, 1
        if dynamic.has_edge(u, v):
            service.remove_edge(gid, u, v)
        else:
            service.add_edge(gid, u, v)
        result = service.solve(gid)
        assert result.source == "repair"
        assert result.repair_scope["region"] > 0
        snapshot = _validate(service, gid, result)
        cold = cold_solve(snapshot, "linear_time")
        assert result.size >= SIZE_TOLERANCE * cold.size

    def test_heavy_mutation_falls_back_to_full_solve(self):
        service = SolverService(ServiceConfig(dirty_threshold=0.05))
        gid = service.register(gnm_random_graph(60, 150, seed=5))
        service.solve(gid)
        dynamic = service.dynamic_graph(gid)
        rng = random.Random(99)
        chosen = set()
        while len(chosen) < 20:
            u, v = sorted(rng.sample(range(60), 2))
            if not dynamic.has_edge(u, v):
                chosen.add((u, v))
        service.apply(gid, [Mutation("add_edge", u, v) for u, v in chosen])
        result = service.solve(gid)
        assert result.source == "cold"
        assert result.exact_bound

    def test_repair_clears_dirty_and_reseeds_cache(self):
        service = SolverService()
        gid = service.register(power_law_graph(300, beta=2.2, seed=6))
        service.solve(gid)
        service.add_edge(gid, 2, 3) if not service.dynamic_graph(gid).has_edge(
            2, 3
        ) else service.remove_edge(gid, 2, 3)
        repaired = service.solve(gid)
        assert repaired.source == "repair"
        again = service.solve(gid)
        assert again.source == "cache"
        assert again.independent_set == repaired.independent_set

    def test_added_vertex_joins_solution(self):
        service = SolverService()
        gid = service.register(cycle_graph(6))
        service.solve(gid)
        fresh = service.add_vertex(gid)
        result = service.solve(gid)
        assert fresh in result.independent_set


class TestTimeout:
    def test_exhausted_budget_returns_stale_flagged_solution(self):
        service = SolverService()
        gid = service.register(power_law_graph(500, beta=2.2, seed=7))
        good = service.solve(gid)
        service.add_edge(gid, 0, 2) if not service.dynamic_graph(gid).has_edge(
            0, 2
        ) else service.remove_edge(gid, 0, 2)
        stale = service.solve(gid, timeout=0.0)
        assert stale.stale
        assert stale.source == "stale"
        _validate(service, gid, stale)
        assert stale.size >= SIZE_TOLERANCE * good.size
        # Dirty state is retained, so a budgeted retry repairs for real.
        retry = service.solve(gid)
        assert retry.source == "repair"
        assert not retry.stale

    def test_timeout_before_first_solve_solves_anyway(self):
        # With no last-known-good there is nothing to degrade to.
        service = SolverService()
        gid = service.register(cycle_graph(8))
        result = service.solve(gid, timeout=0.0)
        assert result.source == "cold"
        assert not result.stale


class TestUpperBound:
    def test_upper_bound_is_certified_after_mutations(self):
        service = SolverService()
        gid = service.register(gnm_random_graph(120, 300, seed=8))
        service.solve(gid)
        service.add_edge(gid, 0, 5) if not service.dynamic_graph(gid).has_edge(
            0, 5
        ) else service.remove_edge(gid, 0, 5)
        bound = service.upper_bound(gid)
        snapshot, _ = service.dynamic_graph(gid).snapshot()
        cold = cold_solve(snapshot, "linear_time")
        assert bound == cold.upper_bound
        assert bound < snapshot.n  # certified, not the trivial bound


class TestTelemetry:
    def test_counters_flow_to_sink(self):
        telemetry = enable(label="serve-test")
        try:
            service = SolverService()
            gid = service.register(gnm_random_graph(80, 200, seed=9))
            service.solve(gid)
            service.solve(gid)
        finally:
            disable()
        assert telemetry.counters.get("serve:cache-hit") == 1
        assert telemetry.counters.get("serve:cache-miss") == 1
        names = {span.name for span in telemetry.spans}
        assert "serve:register" in names
        assert "serve:solve" in names

    def test_events_mirror_without_sink(self):
        service = SolverService()
        gid = service.register(cycle_graph(7))
        service.solve(gid)
        service.solve(gid)
        assert service.events["serve:cache-hit"] == 1
        assert service.counters()["cache"]["hits"] == 1


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        service = SolverService()
        gid = service.register(power_law_graph(150, beta=2.3, seed=10))
        before = service.solve(gid)
        service.add_edge(gid, 1, 2) if not service.dynamic_graph(gid).has_edge(
            1, 2
        ) else service.remove_edge(gid, 1, 2)
        path = tmp_path / "service.json"
        service.save(str(path))
        restored = SolverService.load(str(path))
        assert restored.graph_ids() == [gid]
        # The dirty set survived, so the restored service repairs too.
        result = restored.solve(gid)
        assert result.source in ("repair", "cold")
        _validate(restored, gid, result)
        assert result.size >= SIZE_TOLERANCE * before.size

    def test_corrupt_snapshot_rejected(self, tmp_path):
        import json

        service = SolverService()
        gid = service.register(cycle_graph(5))
        payload = service.snapshot_payload()
        payload["graphs"][gid]["dynamic"]["edges"].pop()
        with pytest.raises(ReproError, match="fingerprint mismatch"):
            SolverService.restore(payload)

    def test_version_gate(self):
        with pytest.raises(ReproError, match="snapshot version"):
            SolverService.restore({"version": 99})

    def test_config_round_trips(self, tmp_path):
        config = ServiceConfig(
            algorithm="near_linear",
            cache_capacity=7,
            dirty_threshold=0.5,
            repair_radius=3,
            default_timeout=1.5,
        )
        service = SolverService(config)
        path = tmp_path / "svc.json"
        service.save(str(path))
        restored = SolverService.load(str(path))
        assert restored.config.algorithm == "near_linear"
        assert restored.config.cache_capacity == 7
        assert restored.config.repair_radius == 3
        assert restored.config.default_timeout == 1.5


class TestPropertyDifferential:
    """The acceptance property: repaired == feasible, size ~= cold."""

    @pytest.mark.parametrize("seed", range(5))
    def test_mutation_stream_tracks_cold_solve(self, seed):
        rng = random.Random(seed)
        graph = power_law_graph(250, beta=2.2 + 0.1 * (seed % 3), seed=seed)
        service = SolverService()
        gid = service.register(graph)
        service.solve(gid)
        dynamic = service.dynamic_graph(gid)

        for _ in range(8):
            live = list(dynamic.live_vertices())
            mutations = []
            for _ in range(3):
                roll = rng.random()
                if roll < 0.5:
                    u, v = rng.sample(live, 2)
                    kind = (
                        "remove_edge" if dynamic.has_edge(u, v) else "add_edge"
                    )
                    mutations.append(Mutation(kind, u, v))
                elif roll < 0.75 and len(live) > 10:
                    victim = rng.choice(live)
                    mutations.append(Mutation("remove_vertex", victim))
                    live.remove(victim)
                else:
                    mutations.append(Mutation("add_vertex"))
            service.apply(gid, mutations)

            result = service.solve(gid)
            assert result.source in ("repair", "cold", "cache")
            snapshot = _validate(service, gid, result)
            cold = cold_solve(snapshot, "linear_time")
            assert result.size >= SIZE_TOLERANCE * cold.size
            assert result.size <= result.upper_bound
