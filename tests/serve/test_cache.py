"""KernelCache LRU semantics and graph fingerprint properties."""

import pytest

from repro.graphs import Graph
from repro.graphs.generators import gnm_random_graph
from repro.serve import CacheEntry, KernelCache, graph_fingerprint


def _entry(tag: str, algorithm: str = "linear_time") -> CacheEntry:
    return CacheEntry(
        fingerprint=tag,
        algorithm=algorithm,
        solution=(0, 2, 4),
        upper_bound=3,
        is_exact=True,
        exact_bound=True,
    )


class TestFingerprint:
    def test_equal_graphs_hash_equal(self):
        a = gnm_random_graph(40, 80, seed=1)
        b = gnm_random_graph(40, 80, seed=1)
        assert a == b
        assert graph_fingerprint(a) == graph_fingerprint(b)

    def test_any_structural_change_changes_digest(self):
        base = Graph.from_edges(4, [(0, 1), (2, 3)])
        variants = [
            Graph.from_edges(4, [(0, 1), (1, 2)]),   # different edge set
            Graph.from_edges(5, [(0, 1), (2, 3)]),   # extra isolated vertex
            Graph.from_edges(4, [(0, 1)]),           # fewer edges
        ]
        digests = {graph_fingerprint(g) for g in [base] + variants}
        assert len(digests) == len(variants) + 1

    def test_name_does_not_affect_digest(self):
        a = Graph.from_edges(3, [(0, 1)], name="alpha")
        b = Graph.from_edges(3, [(0, 1)], name="beta")
        assert graph_fingerprint(a) == graph_fingerprint(b)

    def test_digest_is_hex_sha256(self):
        digest = graph_fingerprint(Graph.from_edges(2, [(0, 1)]))
        assert len(digest) == 64
        int(digest, 16)  # raises on anything but hex


class TestKernelCache:
    def test_get_put_and_counters(self):
        cache = KernelCache(capacity=4)
        assert cache.get("fp", "linear_time") is None
        cache.put(_entry("fp"))
        hit = cache.get("fp", "linear_time")
        assert hit is not None and hit.size == 3
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_algorithm_is_part_of_key(self):
        cache = KernelCache(capacity=4)
        cache.put(_entry("fp", "linear_time"))
        assert cache.get("fp", "near_linear") is None
        assert cache.get("fp", "linear_time") is not None

    def test_lru_eviction_order(self):
        cache = KernelCache(capacity=2)
        cache.put(_entry("a"))
        cache.put(_entry("b"))
        cache.get("a", "linear_time")  # refresh a; b is now LRU
        cache.put(_entry("c"))
        assert cache.get("b", "linear_time") is None
        assert cache.get("a", "linear_time") is not None
        assert cache.get("c", "linear_time") is not None
        assert cache.evictions == 1

    def test_put_refresh_does_not_grow(self):
        cache = KernelCache(capacity=2)
        cache.put(_entry("a"))
        cache.put(_entry("a"))
        assert len(cache) == 1
        assert cache.evictions == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            KernelCache(capacity=0)

    def test_clear_keeps_traffic_counters(self):
        cache = KernelCache()
        cache.put(_entry("a"))
        cache.get("a", "linear_time")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_entries_snapshot_order(self):
        cache = KernelCache(capacity=3)
        for tag in ("a", "b", "c"):
            cache.put(_entry(tag))
        cache.get("a", "linear_time")
        assert [e.fingerprint for e in cache.entries()] == ["b", "c", "a"]


class TestCacheEntryPayload:
    def test_round_trip(self):
        entry = CacheEntry(
            fingerprint="f" * 64,
            algorithm="near_linear",
            solution=(1, 3, 5, 7),
            upper_bound=5,
            is_exact=False,
            exact_bound=True,
            kernel_n=9,
            kernel_m=12,
            rule_counts={"degree-one": 4},
            solver_elapsed=0.125,
        )
        assert CacheEntry.from_payload(entry.to_payload()) == entry

    def test_payload_is_json_safe(self):
        import json

        payload = _entry("fp").to_payload()
        assert json.loads(json.dumps(payload)) == payload
