"""Concurrent-access contracts for KernelCache + the shared metrics registry.

Thread-mode shard workers (see :mod:`repro.serve.router`) live in one
process: every dispatcher thread hammers its worker's
:class:`~repro.serve.cache.KernelCache` and, through it, one
:class:`~repro.obs.metrics.MetricsRegistry`.  These tests pin down the
invariants the sharded front-end leans on:

* registry counters never lose updates under contention;
* ``hits + shared_hits + misses == lookups`` exactly — no lookup is
  double-counted (e.g. a tier hit also booked as a miss) or dropped;
* the LRU never exceeds capacity, and the shared tier stays bounded;
* a cache and a service sharing a registry agree with the registry —
  the classic double-count drift a second accounting path would cause.
"""

import threading

from repro.obs.metrics import (
    METRIC_FRONTEND_REQUESTS,
    METRIC_SERVE_CACHE_HITS,
    METRIC_SERVE_CACHE_MISSES,
    METRIC_SERVE_CACHE_SHARED_HITS,
    METRIC_SERVE_REQUESTS,
    MetricsRegistry,
)
from repro.serve.cache import CacheEntry, KernelCache, SharedCacheTier


def make_entry(tag: str, algorithm: str = "linear_time") -> CacheEntry:
    return CacheEntry(
        fingerprint=f"fp-{tag}",
        algorithm=algorithm,
        solution=(0, 2, 4),
        upper_bound=3,
        is_exact=True,
        exact_bound=True,
    )


def run_threads(worker, count=8):
    threads = [threading.Thread(target=worker, args=(i,)) for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestRegistryUnderContention:
    def test_inc_never_loses_updates(self):
        registry = MetricsRegistry(label="test")
        per_thread, threads = 2000, 8

        def worker(_i):
            for _ in range(per_thread):
                registry.inc(METRIC_SERVE_REQUESTS)

        run_threads(worker, threads)
        assert registry.value(METRIC_SERVE_REQUESTS) == per_thread * threads

    def test_labelled_series_stay_independent(self):
        registry = MetricsRegistry(label="test")
        per_thread = 500

        def worker(i):
            for _ in range(per_thread):
                registry.inc(METRIC_FRONTEND_REQUESTS, op=f"op{i % 4}")

        run_threads(worker, 8)
        assert registry.total(METRIC_FRONTEND_REQUESTS) == per_thread * 8
        for op in range(4):
            assert registry.value(METRIC_FRONTEND_REQUESTS, op=f"op{op}") == per_thread * 2


class TestKernelCacheUnderContention:
    def test_lookup_accounting_is_exact(self):
        cache = KernelCache(capacity=16)
        per_thread, threads = 400, 8
        # Half the keys exist, half never will: every get books exactly
        # one of hit/miss.
        for tag in range(8):
            cache.put(make_entry(f"warm{tag}"))

        def worker(i):
            for step in range(per_thread):
                if step % 2:
                    cache.get(f"fp-warm{step % 8}", "linear_time")
                else:
                    cache.get(f"fp-cold{i}-{step}", "linear_time")

        run_threads(worker, threads)
        lookups = per_thread * threads
        assert cache.hits + cache.shared_hits + cache.misses == lookups
        assert cache.shared_hits == 0  # no tier attached
        assert len(cache) <= cache.capacity

    def test_tier_hits_never_double_count(self):
        tier = SharedCacheTier(capacity=64)
        for tag in range(16):
            tier.put(make_entry(f"shared{tag}"))
        cache = KernelCache(capacity=4, tier=tier)
        per_thread, threads = 300, 8

        def worker(i):
            for step in range(per_thread):
                if step % 3 == 0:
                    cache.get(f"fp-missing{i}-{step}", "linear_time")
                else:
                    # Tiny LRU + 16 shared keys: resolves sometimes
                    # locally, sometimes via the tier — never both.
                    cache.get(f"fp-shared{step % 16}", "linear_time")

        run_threads(worker, threads)
        lookups = per_thread * threads
        assert cache.hits + cache.shared_hits + cache.misses == lookups
        assert cache.shared_hits > 0
        assert len(cache) <= cache.capacity
        assert len(tier) <= tier.capacity

    def test_concurrent_puts_keep_lru_bounded(self):
        tier = SharedCacheTier(capacity=32)
        cache = KernelCache(capacity=8, tier=tier)

        def worker(i):
            for step in range(200):
                cache.put(make_entry(f"w{i}-{step}"))

        run_threads(worker, 8)
        assert len(cache) <= cache.capacity
        assert len(tier) <= tier.capacity
        assert cache.counters()["entries"] <= cache.capacity

    def test_shared_registry_has_no_drift(self):
        # A cache wired to an external registry must not keep a second,
        # private account: the attribute views and the registry series
        # are the same numbers.
        registry = MetricsRegistry(label="svc")
        cache = KernelCache(capacity=8, metrics=registry)
        cache.put(make_entry("a"))

        def worker(i):
            for step in range(250):
                cache.get("fp-a", "linear_time")
                cache.get(f"fp-nope{i}-{step}", "linear_time")
                registry.inc(METRIC_SERVE_REQUESTS)

        run_threads(worker, 8)
        assert cache.hits == registry.value(METRIC_SERVE_CACHE_HITS)
        assert cache.misses == registry.value(METRIC_SERVE_CACHE_MISSES)
        assert cache.shared_hits == registry.value(METRIC_SERVE_CACHE_SHARED_HITS)
        assert cache.hits == 2000
        assert cache.misses == 2000
        assert registry.value(METRIC_SERVE_REQUESTS) == 2000
        counters = cache.counters()
        assert counters["hits"] == cache.hits
        assert counters["misses"] == cache.misses
