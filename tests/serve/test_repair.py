"""Localized repair: feasibility invariants and differential quality.

The load-bearing property: after any mutation batch, ``repair_solution``
returns an assignment that is (a) independent, (b) maximal, and (c) within
the differential tolerance of a cold solve — on every graph family and
seed swept here.  ``cold_solve`` is additionally exercised through its
``workspace_factory`` oracle hook against the legacy array backend.
"""

import random

import pytest

from repro.analysis import assert_valid_solution
from repro.core.workspace import ArrayWorkspace
from repro.graphs import Graph
from repro.graphs.generators import (
    cycle_graph,
    gnm_random_graph,
    power_law_graph,
    web_like_graph,
)
from repro.serve import DynamicGraph, Mutation, cold_solve, patch_solution, repair_solution

SIZE_TOLERANCE = 0.95


def _in_set(graph: Graph, vertices) -> list:
    flags = [False] * graph.n
    for v in vertices:
        flags[v] = True
    return flags


class TestColdSolve:
    def test_resolves_registry_names(self):
        g = gnm_random_graph(60, 150, seed=2)
        for name in ("bdone", "linear_time", "near_linear"):
            result = cold_solve(g, name)
            assert_valid_solution(g, result.independent_set)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            cold_solve(Graph.from_edges(2, [(0, 1)]), "quantum")

    def test_cold_solve_workspace_factory_oracle_parity(self):
        # The RL004 hook: cold_solve under the legacy ArrayWorkspace must
        # reproduce the flat default exactly.
        for seed in range(8):
            g = power_law_graph(80 + seed, beta=2.2, seed=seed)
            flat = cold_solve(g, "linear_time")
            oracle = cold_solve(
                g, "linear_time", workspace_factory=ArrayWorkspace
            )
            assert flat.independent_set == oracle.independent_set
            assert flat.upper_bound == oracle.upper_bound
            assert flat.stats == oracle.stats


class TestPatchSolution:
    def test_drops_conflicts_deterministically(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        patched = patch_solution(g, [True, True, True, True])
        # Higher endpoint of each violated edge leaves.
        assert patched == [True, False, True, False]

    def test_extends_to_maximal(self):
        g = cycle_graph(6)
        patched = patch_solution(g, [False] * 6)
        assert_valid_solution(g, [v for v in range(6) if patched[v]])

    def test_input_not_modified(self):
        g = Graph.from_edges(2, [(0, 1)])
        original = [True, True]
        patch_solution(g, original)
        assert original == [True, True]


class TestRepairSolution:
    def test_empty_seed_set_still_feasible(self):
        g = gnm_random_graph(50, 120, seed=3)
        base = cold_solve(g, "linear_time")
        outcome = repair_solution(
            g, _in_set(g, base.independent_set), [], "linear_time"
        )
        assert_valid_solution(
            g, [v for v in range(g.n) if outcome.in_set[v]]
        )
        assert outcome.size >= base.size  # nothing to repair, nothing lost

    def test_scope_accounting(self):
        g = cycle_graph(12)
        base = cold_solve(g, "linear_time")
        outcome = repair_solution(
            g, _in_set(g, base.independent_set), [0], "linear_time", radius=1
        )
        scope = outcome.scope()
        assert scope["region"] == 3  # 0 and its two ring neighbours
        assert scope["free"] + scope["blocked"] == scope["region"]
        assert set(scope) == {"region", "free", "blocked", "components"}

    @pytest.mark.parametrize("family_seed", range(6))
    def test_differential_vs_cold_after_mutation_stream(self, family_seed):
        families = [
            lambda s: gnm_random_graph(120, 300, seed=s),
            lambda s: power_law_graph(150, beta=2.3, seed=s),
            lambda s: web_like_graph(100, attach=2, seed=s),
        ]
        graph = families[family_seed % 3](family_seed)
        dynamic = DynamicGraph(graph)
        result = cold_solve(graph, "linear_time")
        solution = set(result.independent_set)

        rng = random.Random(family_seed)
        for _ in range(5):
            live = list(dynamic.live_vertices())
            mutations = []
            for _ in range(4):
                u, v = rng.sample(live, 2)
                kind = "remove_edge" if dynamic.has_edge(u, v) else "add_edge"
                mutations.append(Mutation(kind, u, v))
            dirty = dynamic.apply(mutations)

            snapshot, old_ids = dynamic.snapshot()
            compact = {old: new for new, old in enumerate(old_ids)}
            in_set = [False] * snapshot.n
            for v in solution:
                if v in compact:
                    in_set[compact[v]] = True
            seeds = sorted(compact[v] for v in dirty if v in compact)
            outcome = repair_solution(snapshot, in_set, seeds, "linear_time")

            repaired = [v for v in range(snapshot.n) if outcome.in_set[v]]
            assert_valid_solution(snapshot, repaired)
            cold = cold_solve(snapshot, "linear_time")
            assert outcome.size >= SIZE_TOLERANCE * cold.size
            solution = {old_ids[v] for v in repaired}

    def test_vertex_removal_repair(self):
        g = power_law_graph(200, beta=2.2, seed=5)
        dynamic = DynamicGraph(g)
        solution = set(cold_solve(g, "linear_time").independent_set)
        # Remove a handful of solution vertices — the repair has to refill.
        victims = sorted(solution)[:5]
        dirty = set()
        for v in victims:
            dirty |= dynamic.remove_vertex(v)
        dirty = {v for v in dirty if dynamic.is_live(v)}

        snapshot, old_ids = dynamic.snapshot()
        compact = {old: new for new, old in enumerate(old_ids)}
        in_set = [False] * snapshot.n
        for v in solution:
            if v in compact:
                in_set[compact[v]] = True
        outcome = repair_solution(
            snapshot,
            in_set,
            sorted(compact[v] for v in dirty if v in compact),
            "linear_time",
        )
        repaired = [v for v in range(snapshot.n) if outcome.in_set[v]]
        assert_valid_solution(snapshot, repaired)
        cold = cold_solve(snapshot, "linear_time")
        assert outcome.size >= SIZE_TOLERANCE * cold.size

    def test_region_respects_radius(self):
        g = cycle_graph(30)
        base = cold_solve(g, "linear_time")
        for radius in (0, 1, 2, 3):
            outcome = repair_solution(
                g, _in_set(g, base.independent_set), [0], "linear_time",
                radius=radius,
            )
            assert outcome.region_size == min(2 * radius + 1, g.n)
