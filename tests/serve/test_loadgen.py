"""The seeded load generator: determinism, equivalence, shed validity."""

import pytest

from repro.errors import ReproError
from repro.serve.loadgen import (
    LoadgenConfig,
    build_workload,
    compare_reports,
    normalize_response,
    replay_async,
    replay_sync,
    run_serve_load_benchmark,
    split_workload,
    validate_shed_answers,
)

TINY = LoadgenConfig(
    seed=11,
    graphs=2,
    vertices=120,
    edge_probability=0.05,
    requests=40,
    burst=4,
    mutate_every=5,
    stats_every=15,
)


class TestWorkload:
    def test_deterministic(self):
        assert build_workload(TINY) == build_workload(TINY)

    def test_seed_changes_stream(self):
        other = LoadgenConfig(**{**TINY.__dict__, "seed": 12})
        assert build_workload(TINY) != build_workload(other)

    def test_split_setup_prefix(self):
        setup, stream = split_workload(build_workload(TINY))
        assert len(stream) >= TINY.requests
        assert all(r["rid"].startswith("s") for r in setup)
        assert all(r["rid"].startswith("r") for r in stream)
        registers = [r for r in setup if r["op"] == "register"]
        warmups = [r for r in setup if r["op"] == "solve"]
        assert len(registers) == TINY.graphs
        assert len(warmups) == TINY.graphs

    def test_rids_are_unique(self):
        workload = build_workload(TINY)
        rids = [r["rid"] for r in workload]
        assert len(rids) == len(set(rids))


class TestNormalization:
    def test_drops_provenance_only(self):
        response = {
            "op": "solve",
            "ok": True,
            "size": 3,
            "independent_set": [0, 2, 4],
            "rid": "r1",
            "elapsed": 0.5,
            "source": "cache",
            "shed": True,
            "coalesced": True,
        }
        normalized = normalize_response(response)
        assert normalized == {
            "op": "solve",
            "ok": True,
            "size": 3,
            "independent_set": [0, 2, 4],
        }

    def test_stats_collapse(self):
        normalized = normalize_response(
            {"op": "stats", "ok": True, "counters": {"graphs": 2}}
        )
        assert normalized == {"op": "stats", "ok": True}


class TestReplays:
    def test_sync_vs_async_equivalence(self):
        workload = build_workload(TINY)
        sync = replay_sync(workload)
        asynchronous = replay_async(workload, shards=2)
        verdict = compare_reports(sync, asynchronous)
        assert verdict["equivalent"], verdict["mismatches"]
        assert sync.errors == 0 and asynchronous.errors == 0
        assert asynchronous.cache_hit_rate > 0

    def test_sync_report_shape(self):
        report = replay_sync(build_workload(TINY))
        payload = report.to_payload()
        assert payload["label"] == "sync"
        assert payload["measured"] == len(report.latencies)
        assert payload["throughput"] > 0
        assert payload["p99"] >= payload["p50"] >= 0

    def test_shed_answers_are_valid(self):
        verdict = validate_shed_answers(build_workload(TINY), shards=2)
        assert verdict["shed"] > 0
        assert verdict["all_valid"], verdict

    def test_benchmark_record_contract(self):
        record = run_serve_load_benchmark(config=TINY, shards=2)
        assert record["equivalence"]["equivalent"]
        assert record["shed_check"]["all_valid"]
        assert record["async_wall"] > 0 and record["sync_wall"] > 0
        assert record["config"]["shards"] == 2

    def test_mismatch_is_detected(self):
        workload = build_workload(TINY)
        sync = replay_sync(workload)
        asynchronous = replay_async(workload, shards=2)
        asynchronous.responses[-1] = dict(
            asynchronous.responses[-1], size=10_000
        )
        verdict = compare_reports(sync, asynchronous)
        assert not verdict["equivalent"]
        assert verdict["mismatches"]


class TestConfigValidation:
    def test_bad_counts_rejected(self):
        with pytest.raises(ReproError):
            LoadgenConfig(graphs=0).graph_specs()
