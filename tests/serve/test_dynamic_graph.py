"""DynamicGraph: mutation semantics, dirty seeds, snapshots, serialisation."""

import pytest

from repro.errors import ReproError, VertexError
from repro.graphs import Graph
from repro.graphs.generators import cycle_graph, gnm_random_graph
from repro.graphs.named import petersen_graph
from repro.serve import DynamicGraph, Mutation


def _path5() -> Graph:
    return Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])


class TestConstruction:
    def test_wraps_static_graph(self):
        d = DynamicGraph(petersen_graph())
        assert d.n == 10
        assert d.m == 15
        assert d.n_allocated == 10
        assert all(d.is_live(v) for v in range(10))

    def test_empty(self):
        d = DynamicGraph()
        assert d.n == 0 and d.m == 0 and d.n_allocated == 0

    def test_neighbors_match_source(self):
        g = gnm_random_graph(50, 120, seed=9)
        d = DynamicGraph(g)
        for v in range(g.n):
            assert d.neighbors(v) == g.neighbors(v)
            assert d.degree(v) == g.degree(v)


class TestMutations:
    def test_add_edge_reports_endpoints_dirty(self):
        d = DynamicGraph(_path5())
        assert d.add_edge(0, 4) == {0, 4}
        assert d.has_edge(0, 4)
        assert d.m == 5

    def test_add_edge_idempotent(self):
        d = DynamicGraph(_path5())
        assert d.add_edge(0, 1) == set()
        assert d.m == 4

    def test_self_loop_rejected(self):
        d = DynamicGraph(_path5())
        with pytest.raises(ReproError):
            d.add_edge(2, 2)

    def test_remove_edge(self):
        d = DynamicGraph(_path5())
        assert d.remove_edge(1, 2) == {1, 2}
        assert not d.has_edge(1, 2)
        assert d.remove_edge(1, 2) == set()
        assert d.m == 3

    def test_remove_vertex_dirties_neighbours_and_retires_id(self):
        d = DynamicGraph(_path5())
        assert d.remove_vertex(2) == {1, 3}
        assert d.n == 4
        assert d.m == 2
        assert not d.is_live(2)
        with pytest.raises(ReproError):
            d.degree(2)
        with pytest.raises(ReproError):
            d.add_edge(2, 0)

    def test_ids_never_reused(self):
        d = DynamicGraph(_path5())
        d.remove_vertex(4)
        fresh = d.add_vertex()
        assert fresh == 5
        assert not d.is_live(4)
        assert d.is_live(5)
        assert d.degree(5) == 0

    def test_out_of_range_raises_vertex_error(self):
        d = DynamicGraph(_path5())
        with pytest.raises(VertexError):
            d.degree(99)

    def test_version_bumps_only_on_effective_change(self):
        d = DynamicGraph(_path5())
        v0 = d.version
        d.add_edge(0, 1)  # already present
        assert d.version == v0
        d.add_edge(0, 2)
        assert d.version == v0 + 1


class TestApply:
    def test_batch_union_of_dirty_seeds(self):
        d = DynamicGraph(_path5())
        dirty = d.apply(
            [Mutation("add_edge", 0, 2), Mutation("remove_edge", 3, 4)]
        )
        assert dirty == {0, 2, 3, 4}

    def test_add_vertex_contributes_new_id(self):
        d = DynamicGraph(_path5())
        dirty = d.apply([Mutation("add_vertex")])
        assert dirty == {5}

    def test_seeds_that_die_in_batch_are_dropped(self):
        d = DynamicGraph(_path5())
        dirty = d.apply(
            [Mutation("add_edge", 0, 2), Mutation("remove_vertex", 2)]
        )
        # 2 died mid-batch: its dirtiness transferred to its neighbours.
        assert 2 not in dirty
        assert {0, 1, 3} <= dirty


class TestMutationWireFormat:
    @pytest.mark.parametrize(
        "mutation",
        [
            Mutation("add_edge", 1, 2),
            Mutation("remove_edge", 0, 3),
            Mutation("add_vertex"),
            Mutation("remove_vertex", 4),
        ],
    )
    def test_round_trip(self, mutation):
        assert Mutation.from_list(mutation.as_list()) == mutation

    @pytest.mark.parametrize(
        "raw", [[], ["bogus", 1, 2], ["add_edge", 1], ["remove_vertex"]]
    )
    def test_malformed_rejected(self, raw):
        with pytest.raises(ReproError):
            Mutation.from_list(raw)


class TestSnapshot:
    def test_snapshot_compacts_dead_ids(self):
        d = DynamicGraph(_path5())
        d.remove_vertex(2)
        snapshot, old_ids = d.snapshot()
        assert snapshot.n == 4
        assert old_ids == [0, 1, 3, 4]
        # Edges (0,1) and (3,4) survive, in compact coordinates.
        assert snapshot.m == 2
        assert snapshot.neighbors(0) == (1,)
        assert snapshot.neighbors(2) == (3,)

    def test_snapshot_cached_until_mutation(self):
        d = DynamicGraph(_path5())
        first, _ = d.snapshot()
        again, _ = d.snapshot()
        assert first is again
        d.add_edge(0, 2)
        third, _ = d.snapshot()
        assert third is not first

    def test_fingerprint_tracks_structure_not_history(self):
        d1 = DynamicGraph(_path5())
        d2 = DynamicGraph(_path5())
        d1.add_edge(0, 2)
        d1.remove_edge(0, 2)
        # Same structure again, even though versions differ.
        assert d1.fingerprint() == d2.fingerprint()
        d1.add_edge(0, 2)
        assert d1.fingerprint() != d2.fingerprint()

    def test_isolated_vertex_changes_fingerprint(self):
        d1 = DynamicGraph(_path5())
        d2 = DynamicGraph(_path5())
        d2.add_vertex()
        assert d1.fingerprint() != d2.fingerprint()


class TestPayload:
    def test_round_trip_preserves_dynamic_id_space(self):
        d = DynamicGraph(gnm_random_graph(30, 60, seed=4))
        d.remove_vertex(7)
        d.add_vertex()
        d.add_edge(0, 30)
        restored = DynamicGraph.from_payload(d.to_payload())
        assert restored.n == d.n
        assert restored.m == d.m
        assert restored.n_allocated == d.n_allocated
        assert not restored.is_live(7)
        assert restored.fingerprint() == d.fingerprint()
        for v in d.live_vertices():
            assert restored.neighbors(v) == d.neighbors(v)

    def test_corrupt_payload_rejected(self):
        d = DynamicGraph(cycle_graph(4))
        payload = d.to_payload()
        payload["edges"].append([0, 99])
        with pytest.raises((ReproError, IndexError)):
            DynamicGraph.from_payload(payload)
