"""The JSONL request protocol: dispatch, error isolation, streaming."""

import io
import json

from repro.serve import SolverService, handle_request, run_requests, serve_stream


def _service():
    return SolverService()


def _register(service, graph_id="g"):
    return handle_request(
        service,
        {
            "op": "register",
            "id": graph_id,
            "n": 6,
            "edges": [[0, 1], [1, 2], [2, 3], [3, 4], [4, 5]],
        },
    )


class TestDispatch:
    def test_register_inline_edges(self):
        response = _register(_service())
        assert response["ok"]
        assert response["n"] == 6
        assert response["m"] == 5

    def test_register_from_file(self, tmp_path):
        path = tmp_path / "tiny.txt"
        path.write_text("0 1\n1 2\n")
        response = handle_request(
            _service(), {"op": "register", "path": str(path)}
        )
        assert response["ok"]
        assert response["n"] == 3

    def test_solve_round_trip(self):
        service = _service()
        _register(service)
        response = handle_request(service, {"op": "solve", "id": "g"})
        assert response["ok"]
        assert response["size"] == 3
        assert sorted(response["independent_set"]) == response["independent_set"]
        assert len(response["independent_set"]) == 3
        assert response["source"] == "cold"

    def test_mutate_then_solve(self):
        service = _service()
        _register(service)
        handle_request(service, {"op": "solve", "id": "g"})
        response = handle_request(
            service,
            {"op": "mutate", "id": "g", "mutations": [["remove_edge", 2, 3]]},
        )
        assert response["ok"]
        assert response["dirty"] == 2
        solved = handle_request(service, {"op": "solve", "id": "g"})
        assert solved["ok"]
        assert solved["size"] >= 3

    def test_vertex_ops(self):
        service = _service()
        _register(service)
        added = handle_request(service, {"op": "add_vertex", "id": "g"})
        assert added["ok"] and added["vertex"] == 6
        removed = handle_request(
            service, {"op": "remove_vertex", "id": "g", "v": 6}
        )
        assert removed["ok"]

    def test_upper_bound(self):
        service = _service()
        _register(service)
        response = handle_request(service, {"op": "upper_bound", "id": "g"})
        assert response["ok"]
        assert response["upper_bound"] == 3

    def test_stats_and_save(self, tmp_path):
        service = _service()
        _register(service)
        handle_request(service, {"op": "solve", "id": "g"})
        stats = handle_request(service, {"op": "stats"})
        assert stats["ok"]
        assert stats["counters"]["graphs"] == 1
        path = tmp_path / "snap.json"
        saved = handle_request(service, {"op": "save", "path": str(path)})
        assert saved["ok"]
        restored = SolverService.load(str(path))
        assert restored.graph_ids() == ["g"]


class TestErrorIsolation:
    def test_unknown_op(self):
        response = handle_request(_service(), {"op": "bogus"})
        assert not response["ok"]
        assert "unknown op" in response["error"]

    def test_unknown_graph_id(self):
        response = handle_request(_service(), {"op": "solve", "id": "nope"})
        assert not response["ok"]
        assert "unknown graph id" in response["error"]

    def test_register_without_graph_payload(self):
        response = handle_request(_service(), {"op": "register", "id": "g"})
        assert not response["ok"]

    def test_malformed_mutation(self):
        service = _service()
        _register(service)
        response = handle_request(
            service, {"op": "mutate", "id": "g", "mutations": [["warp", 1]]}
        )
        assert not response["ok"]

    def test_error_does_not_poison_service(self):
        service = _service()
        _register(service)
        handle_request(service, {"op": "bogus"})
        response = handle_request(service, {"op": "solve", "id": "g"})
        assert response["ok"]


class TestStreaming:
    def test_run_requests_is_lazy_and_ordered(self):
        service = _service()
        responses = list(
            run_requests(
                service,
                [
                    {
                        "op": "register",
                        "id": "g",
                        "n": 3,
                        "edges": [[0, 1], [1, 2]],
                    },
                    {"op": "solve", "id": "g"},
                ],
            )
        )
        assert [r["op"] for r in responses] == ["register", "solve"]
        assert responses[1]["size"] == 2

    def test_serve_stream_counts_failures_and_skips_comments(self):
        service = _service()
        source = [
            json.dumps({"op": "register", "id": "g", "n": 2, "edges": [[0, 1]]}),
            "# a comment line",
            "",
            "not json at all {",
            json.dumps({"op": "solve", "id": "g"}),
            json.dumps({"op": "solve", "id": "missing"}),
        ]
        sink = io.StringIO()
        errors = []
        failed = serve_stream(service, source, sink, errors=errors)
        lines = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert failed == 2
        assert len(errors) == 2
        assert len(lines) == 4  # comments/blank lines produce no response
        assert lines[0]["ok"] and lines[2]["ok"]
        assert not lines[1]["ok"] and "JSONDecodeError" in lines[1]["error"]
        assert not lines[3]["ok"]
