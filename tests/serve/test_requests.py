"""The JSONL request protocol: dispatch, error isolation, streaming."""

import io
import json

from repro.serve import SolverService, handle_request, run_requests, serve_stream


def _service():
    return SolverService()


def _register(service, graph_id="g"):
    return handle_request(
        service,
        {
            "op": "register",
            "id": graph_id,
            "n": 6,
            "edges": [[0, 1], [1, 2], [2, 3], [3, 4], [4, 5]],
        },
    )


class TestDispatch:
    def test_register_inline_edges(self):
        response = _register(_service())
        assert response["ok"]
        assert response["n"] == 6
        assert response["m"] == 5

    def test_register_from_file(self, tmp_path):
        path = tmp_path / "tiny.txt"
        path.write_text("0 1\n1 2\n")
        response = handle_request(
            _service(), {"op": "register", "path": str(path)}
        )
        assert response["ok"]
        assert response["n"] == 3

    def test_solve_round_trip(self):
        service = _service()
        _register(service)
        response = handle_request(service, {"op": "solve", "id": "g"})
        assert response["ok"]
        assert response["size"] == 3
        assert sorted(response["independent_set"]) == response["independent_set"]
        assert len(response["independent_set"]) == 3
        assert response["source"] == "cold"

    def test_mutate_then_solve(self):
        service = _service()
        _register(service)
        handle_request(service, {"op": "solve", "id": "g"})
        response = handle_request(
            service,
            {"op": "mutate", "id": "g", "mutations": [["remove_edge", 2, 3]]},
        )
        assert response["ok"]
        assert response["dirty"] == 2
        solved = handle_request(service, {"op": "solve", "id": "g"})
        assert solved["ok"]
        assert solved["size"] >= 3

    def test_vertex_ops(self):
        service = _service()
        _register(service)
        added = handle_request(service, {"op": "add_vertex", "id": "g"})
        assert added["ok"] and added["vertex"] == 6
        removed = handle_request(
            service, {"op": "remove_vertex", "id": "g", "v": 6}
        )
        assert removed["ok"]

    def test_upper_bound(self):
        service = _service()
        _register(service)
        response = handle_request(service, {"op": "upper_bound", "id": "g"})
        assert response["ok"]
        assert response["upper_bound"] == 3

    def test_stats_and_save(self, tmp_path):
        service = _service()
        _register(service)
        handle_request(service, {"op": "solve", "id": "g"})
        stats = handle_request(service, {"op": "stats"})
        assert stats["ok"]
        assert stats["counters"]["graphs"] == 1
        path = tmp_path / "snap.json"
        saved = handle_request(service, {"op": "save", "path": str(path)})
        assert saved["ok"]
        restored = SolverService.load(str(path))
        assert restored.graph_ids() == ["g"]


class TestErrorIsolation:
    def test_unknown_op(self):
        response = handle_request(_service(), {"op": "bogus"})
        assert not response["ok"]
        assert "unknown op" in response["error"]

    def test_unknown_graph_id(self):
        response = handle_request(_service(), {"op": "solve", "id": "nope"})
        assert not response["ok"]
        assert "unknown graph id" in response["error"]

    def test_register_without_graph_payload(self):
        response = handle_request(_service(), {"op": "register", "id": "g"})
        assert not response["ok"]

    def test_malformed_mutation(self):
        service = _service()
        _register(service)
        response = handle_request(
            service, {"op": "mutate", "id": "g", "mutations": [["warp", 1]]}
        )
        assert not response["ok"]

    def test_error_does_not_poison_service(self):
        service = _service()
        _register(service)
        handle_request(service, {"op": "bogus"})
        response = handle_request(service, {"op": "solve", "id": "g"})
        assert response["ok"]


class TestStreaming:
    def test_run_requests_is_lazy_and_ordered(self):
        service = _service()
        responses = list(
            run_requests(
                service,
                [
                    {
                        "op": "register",
                        "id": "g",
                        "n": 3,
                        "edges": [[0, 1], [1, 2]],
                    },
                    {"op": "solve", "id": "g"},
                ],
            )
        )
        assert [r["op"] for r in responses] == ["register", "solve"]
        assert responses[1]["size"] == 2

    def test_serve_stream_counts_failures_and_skips_comments(self):
        service = _service()
        source = [
            json.dumps({"op": "register", "id": "g", "n": 2, "edges": [[0, 1]]}),
            "# a comment line",
            "",
            "not json at all {",
            json.dumps({"op": "solve", "id": "g"}),
            json.dumps({"op": "solve", "id": "missing"}),
        ]
        sink = io.StringIO()
        errors = []
        failed = serve_stream(service, source, sink, errors=errors)
        lines = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert failed == 2
        assert len(errors) == 2
        assert len(lines) == 4  # comments/blank lines produce no response
        assert lines[0]["ok"] and lines[2]["ok"]
        assert not lines[1]["ok"] and "JSONDecodeError" in lines[1]["error"]
        assert not lines[3]["ok"]


class TestProtocolHardening:
    def test_parse_request_line_round_trip(self):
        from repro.serve import parse_request_line

        request = parse_request_line('{"op": "solve", "id": "g", "rid": "r1"}')
        assert request == {"op": "solve", "id": "g", "rid": "r1"}

    def test_oversized_line_is_rejected_with_rid(self):
        from repro.errors import ReproError
        from repro.serve import MAX_REQUEST_BYTES, parse_request_line, salvage_rid

        line = json.dumps({"op": "solve", "rid": "big1", "pad": "x" * MAX_REQUEST_BYTES})
        try:
            parse_request_line(line)
        except ReproError as exc:
            assert "too large" in str(exc)
        else:  # pragma: no cover - the guard must fire
            raise AssertionError("oversized line was accepted")
        assert salvage_rid(line) == "big1"

    def test_non_object_payload_is_rejected(self):
        from repro.errors import ReproError

        from repro.serve import parse_request_line

        for line in ("[1, 2, 3]", '"just a string"', "42"):
            try:
                parse_request_line(line)
            except ReproError as exc:
                assert "object" in str(exc)
            else:  # pragma: no cover
                raise AssertionError(f"accepted non-object line {line!r}")

    def test_salvage_rid_from_malformed_json(self):
        from repro.serve import salvage_rid

        assert salvage_rid('{"rid": "r42", "op": "solve", broken') == "r42"
        assert salvage_rid("not json at all") is None

    def test_error_response_shape(self):
        from repro.serve import error_response

        response = error_response("boom", rid="r7", op="solve")
        assert response == {"ok": False, "op": "solve", "error": "boom", "rid": "r7"}
        bare = error_response("boom")
        assert bare["ok"] is False and bare["op"] is None

    def test_ping_round_trip(self):
        response = handle_request(_service(), {"op": "ping", "rid": "p1"})
        assert response["ok"] and response["pong"] and response["rid"] == "p1"

    def test_stream_echoes_rid_on_malformed_line(self):
        service = _service()
        source = ['{"rid": "bad1", "op": "solve", broken json']
        sink = io.StringIO()
        failed = serve_stream(service, source, sink)
        [response] = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert failed == 1
        assert response["ok"] is False
        assert response["rid"] == "bad1"
        assert "Error" in response["error"]

    def test_stream_should_stop_drains_cleanly(self):
        service = _service()
        calls = {"count": 0}

        def stop_after_two():
            return calls["count"] >= 2

        def counting_source():
            for line in (
                json.dumps({"op": "ping", "rid": "a"}),
                json.dumps({"op": "ping", "rid": "b"}),
                json.dumps({"op": "ping", "rid": "c"}),
            ):
                yield line
                calls["count"] += 1

        sink = io.StringIO()
        failed = serve_stream(
            service, counting_source(), sink, should_stop=stop_after_two
        )
        lines = [json.loads(line) for line in sink.getvalue().splitlines()]
        assert failed == 0
        assert [r["rid"] for r in lines] == ["a", "b"]
