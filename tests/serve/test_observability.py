"""The serving layer's observability surface: registry, contexts, spans.

Covers the request-tracing tentpole end to end at the unit level: the
service and its cache share ONE metrics registry (so ``counters()`` /
``events`` are views, not parallel books), every verb stamps request
contexts onto its telemetry spans, results carry backend attribution on
every routing path, and the JSONL protocol echoes the request id it used.
"""

import json
import time

import pytest

from repro.obs.metrics import (
    METRIC_SERVE_CACHE_HITS,
    METRIC_SERVE_GRAPHS,
    METRIC_SERVE_REQUEST_SECONDS,
    METRIC_SERVE_REQUESTS,
    METRIC_SERVE_SOLVER_SECONDS,
    METRIC_SERVE_STALE_RETURNS,
    MetricsRegistry,
    disable_metrics,
    metrics_session,
)
from repro.obs.telemetry import disable, telemetry_session
from repro.graphs.generators import cycle_graph, gnm_random_graph, power_law_graph
from repro.serve import Mutation, ServiceConfig, SolverService
from repro.serve.context import RequestContext
from repro.serve.requests import handle_request


@pytest.fixture(autouse=True)
def _clean_globals():
    disable()
    disable_metrics()
    yield
    disable()
    disable_metrics()


class TestRequestContext:
    def test_auto_ids_are_unique_and_ordered(self):
        a = RequestContext.create()
        b = RequestContext.create()
        assert a.request_id != b.request_id
        assert a.request_id < b.request_id

    def test_trace_fields_include_tenant_only_when_set(self):
        anonymous = RequestContext.create()
        assert set(anonymous.trace_fields()) == {"request"}
        tenanted = RequestContext.create(request_id="r1", tenant="acme")
        assert tenanted.trace_fields() == {"request": "r1", "tenant": "acme"}

    def test_deadline_accounting(self):
        context = RequestContext.create(timeout=60.0)
        assert not context.expired()
        assert 0 < context.remaining() <= 60.0
        expired = RequestContext(request_id="r", deadline=time.perf_counter() - 1)
        assert expired.expired()
        assert expired.remaining() < 0.0  # negative when blown, by contract
        unbounded = RequestContext.create()
        assert unbounded.remaining() is None


class TestSharedRegistry:
    def test_cache_and_service_share_one_registry(self):
        service = SolverService()
        assert service.cache.metrics is service.metrics
        gid = service.register(gnm_random_graph(60, 120, seed=3))
        service.solve(gid)
        service.solve(gid)
        assert service.metrics.total(METRIC_SERVE_CACHE_HITS) == 1
        assert service.cache.hits == 1  # the view reads the same book

    def test_events_view_mirrors_registry(self):
        service = SolverService()
        gid = service.register(gnm_random_graph(60, 120, seed=3))
        service.solve(gid)
        service.solve(gid)
        events = service.events
        assert events["serve:cache-miss"] == 1
        assert events["serve:cache-hit"] == 1
        counters = service.counters()
        assert counters["events"] == events

    def test_service_adopts_session_registry(self):
        with metrics_session(label="test") as registry:
            service = SolverService()
            assert service.metrics is registry
            gid = service.register(cycle_graph(9))
            service.solve(gid)
        assert registry.total(METRIC_SERVE_REQUESTS) == 1
        assert registry.value(METRIC_SERVE_GRAPHS) == 1

    def test_explicit_registry_wins_over_session(self):
        own = MetricsRegistry(label="own")
        with metrics_session(label="ambient"):
            service = SolverService(metrics=own)
        assert service.metrics is own


class TestRequestMetrics:
    def test_solve_labelled_by_source(self):
        service = SolverService()
        gid = service.register(gnm_random_graph(60, 120, seed=3))
        service.solve(gid)
        service.solve(gid)
        metrics = service.metrics
        assert metrics.value(METRIC_SERVE_REQUESTS, op="solve", source="cold") == 1
        assert metrics.value(METRIC_SERVE_REQUESTS, op="solve", source="cache") == 1
        assert metrics.histogram(METRIC_SERVE_REQUEST_SECONDS, op="solve").count == 2

    def test_mutations_counted_as_requests(self):
        service = SolverService()
        gid = service.register(cycle_graph(12))
        service.add_edge(gid, 0, 5)
        service.remove_edge(gid, 0, 5)
        assert service.metrics.value(METRIC_SERVE_REQUESTS, op="mutate") == 2
        assert (
            service.metrics.histogram(METRIC_SERVE_REQUEST_SECONDS, op="mutate").count
            == 2
        )

    def test_solver_seconds_split_by_mode(self):
        service = SolverService(ServiceConfig(dirty_threshold=0.9))
        graph = power_law_graph(300, beta=2.2, seed=5)
        gid = service.register(graph)
        service.solve(gid)
        service.add_edge(gid, 0, 1) if not graph.has_edge(0, 1) else service.remove_edge(
            gid, 0, 1
        )
        service.solve(gid)
        metrics = service.metrics
        cold = metrics.histogram(METRIC_SERVE_SOLVER_SECONDS, mode="cold", backend="flat")
        repair = metrics.histogram(
            METRIC_SERVE_SOLVER_SECONDS, mode="repair", backend="flat"
        )
        assert cold is not None and cold.count >= 1
        assert repair is not None and repair.count >= 1

    def test_expired_context_counts_stale_return(self):
        service = SolverService()
        gid = service.register(gnm_random_graph(80, 160, seed=2))
        service.solve(gid)
        service.add_edge(gid, 0, 1)
        context = RequestContext(request_id="r", deadline=time.perf_counter() - 1)
        result = service.solve(gid, context=context)
        assert result.stale
        assert result.backend == "none"
        assert service.metrics.total(METRIC_SERVE_STALE_RETURNS) == 1


class TestBackendAttribution:
    def test_cold_and_cache_backends(self):
        service = SolverService()
        gid = service.register(gnm_random_graph(60, 120, seed=3))
        assert service.solve(gid).backend == "flat"
        assert service.solve(gid).backend == "flat"  # cache replays the pick

    def test_vectorized_backend_reported(self):
        service = SolverService(ServiceConfig(algorithm="linear_time_vec"))
        gid = service.register(gnm_random_graph(60, 120, seed=3))
        assert service.solve(gid).backend == "vectorized"

    def test_auto_backend_resolves_to_actual_pick(self):
        service = SolverService(ServiceConfig(algorithm="linear_time_auto"))
        gid = service.register(gnm_random_graph(60, 120, seed=3))
        assert service.solve(gid).backend in ("flat", "vectorized")


class TestRequestSpans:
    def test_solve_spans_stamped_with_request(self):
        service = SolverService()
        with telemetry_session("test") as tele:
            gid = service.register(cycle_graph(15))
            context = RequestContext.create(request_id="req-X", tenant="acme")
            service.solve(gid, context=context)
        spans = [r for r in tele.to_records() if r.get("type") == "span"]
        solve_spans = [s for s in spans if s["meta"].get("request") == "req-X"]
        assert solve_spans
        assert all(s["meta"].get("tenant") == "acme" for s in solve_spans)
        serve_span = next(s for s in solve_spans if s["name"] == "serve:solve")
        assert serve_span["meta"]["backend"] == "flat"

    def test_contextless_requests_get_auto_ids(self):
        service = SolverService()
        with telemetry_session("test") as tele:
            gid = service.register(cycle_graph(15))
            service.solve(gid)
            service.add_edge(gid, 0, 5)
        requests = {
            r["meta"].get("request")
            for r in tele.to_records()
            if r.get("type") == "span" and r["meta"].get("request")
        }
        # register / solve / mutate each ran under their own request id.
        assert len(requests) == 3


class TestProtocolEcho:
    def test_rid_and_backend_in_responses(self):
        service = SolverService()
        register = handle_request(
            service,
            {"op": "register", "id": "g", "n": 5, "edges": [[0, 1], [1, 2]]},
        )
        assert register["ok"] and register["rid"].startswith("req-")
        solve = handle_request(
            service, {"op": "solve", "id": "g", "rid": "mine-7", "tenant": "acme"}
        )
        assert solve["rid"] == "mine-7"
        assert solve["backend"] == "flat"
        json.dumps(solve)  # response stays wire-serialisable

    def test_auto_rids_differ_between_requests(self):
        service = SolverService()
        handle_request(
            service, {"op": "register", "id": "g", "n": 4, "edges": [[0, 1]]}
        )
        first = handle_request(service, {"op": "solve", "id": "g"})
        second = handle_request(service, {"op": "solve", "id": "g"})
        assert first["rid"] != second["rid"]


class TestSmokeObsLeg:
    def test_traced_smoke_gates_pass_and_write_artifacts(self, tmp_path, capsys):
        from repro.obs.metrics import parse_prometheus, quantile_samples
        from repro.serve.smoke import run_smoke

        metrics_out = tmp_path / "metrics.prom"
        trace_out = tmp_path / "trace.jsonl"
        failures = run_smoke(
            n=200,
            mutations=10,
            batch=5,
            seed=11,
            algorithm="linear_time_auto",
            verbose=False,
            metrics_out=str(metrics_out),
            trace_out=str(trace_out),
        )
        capsys.readouterr()
        assert failures == 0
        samples = parse_prometheus(metrics_out.read_text())
        assert any(
            value > 0
            for value in quantile_samples(
                samples, METRIC_SERVE_REQUEST_SECONDS, "p99"
            )
        )
        records = [
            json.loads(line)
            for line in trace_out.read_text().strip().splitlines()
        ]
        assert any(r.get("type") == "backend_pick" for r in records)

    def test_smoke_sessions_leave_no_global_residue(self, tmp_path):
        from repro.obs.metrics import get_metrics
        from repro.obs.telemetry import get_telemetry
        from repro.serve.smoke import run_smoke

        run_smoke(
            n=100,
            mutations=5,
            batch=5,
            verbose=False,
            metrics_out=str(tmp_path / "m.jsonl"),
            trace_out=str(tmp_path / "t.jsonl"),
        )
        assert get_metrics() is None
        assert get_telemetry() is None
