"""Shard routing: deterministic placement, dispatch, the shared tier."""

import pytest

from repro.errors import ReproError
from repro.serve import ServiceConfig, ShardRouter, shard_for


def register(graph_id, rid="r0"):
    return {
        "op": "register",
        "id": graph_id,
        "n": 6,
        "edges": [[0, 1], [1, 2], [2, 3], [3, 4], [4, 5]],
        "rid": rid,
    }


def solve(graph_id, rid="r1"):
    return {"op": "solve", "id": graph_id, "rid": rid}


class TestShardFor:
    def test_deterministic_and_in_range(self):
        for shards in (1, 2, 4, 7):
            for graph_id in ("a", "b", "tenant/graph-17", ""):
                shard = shard_for(graph_id, shards)
                assert 0 <= shard < shards
                assert shard == shard_for(graph_id, shards)

    def test_spreads_ids(self):
        shards = {shard_for(f"g{i}", 4) for i in range(64)}
        assert shards == {0, 1, 2, 3}

    def test_single_shard_collapses(self):
        assert shard_for("anything", 1) == 0


class TestThreadRouter:
    def test_round_trip_and_locality(self):
        with ShardRouter(shards=3, config=ServiceConfig()) as router:
            for graph_id in ("alpha", "beta", "gamma", "delta"):
                response = router.dispatch(
                    router.shard_for(register(graph_id)), [register(graph_id)]
                )[0]
                assert response["ok"], response
            for graph_id in ("alpha", "beta", "gamma", "delta"):
                shard = router.shard_for(solve(graph_id))
                assert shard == shard_for(graph_id, 3)
                response = router.dispatch(shard, [solve(graph_id)])[0]
                assert response["ok"] and response["size"] == 3
            counters = router.counters()
            assert counters["graphs"] == 4
            assert counters["shards"] == 3

    def test_dispatch_all_preserves_order(self):
        with ShardRouter(shards=2, config=ServiceConfig()) as router:
            requests = [register("a", "r0"), register("b", "r1")]
            requests += [solve("a", f"ra{i}") for i in range(3)]
            requests += [solve("b", f"rb{i}") for i in range(3)]
            interleaved = requests[:2] + [
                req
                for pair in zip(requests[2:5], requests[5:8])
                for req in pair
            ]
            responses = router.dispatch_all(interleaved)
            assert [r.get("rid") for r in responses] == [
                req["rid"] for req in interleaved
            ]
            assert all(r["ok"] for r in responses)

    def test_requests_without_id_go_to_shard_zero(self):
        with ShardRouter(shards=4, config=ServiceConfig()) as router:
            assert router.shard_for({"op": "stats"}) == 0

    def test_shared_tier_serves_siblings(self):
        # Same structure registered under ids living on different shards:
        # the second shard's cold solve is answered by the tier.
        with ShardRouter(shards=2, config=ServiceConfig()) as router:
            ids = ["g0", "g4"]
            shards = [router.shard_for(solve(g)) for g in ids]
            assert shards[0] != shards[1], "fixture ids must land apart"
            for graph_id in ids:
                router.dispatch(router.shard_for(solve(graph_id)), [register(graph_id)])
            first = router.dispatch(shards[0], [solve(ids[0])])[0]
            second = router.dispatch(shards[1], [solve(ids[1])])[0]
            assert first["ok"] and second["ok"]
            assert first["size"] == second["size"]
            counters = router.counters()
            assert counters["cache"]["shared_hits"] >= 1
            assert counters["cache"]["tier_entries"] >= 1

    def test_errors_stay_structured(self):
        with ShardRouter(shards=2, config=ServiceConfig()) as router:
            response = router.dispatch(0, [{"op": "solve", "id": "missing"}])[0]
            assert response["ok"] is False
            assert "error" in response


class TestProcessRouter:
    def test_round_trip_and_counters(self):
        with ShardRouter(shards=2, config=ServiceConfig(), mode="process") as router:
            for graph_id in ("p0", "p1", "p2"):
                shard = router.shard_for(register(graph_id))
                assert router.dispatch(shard, [register(graph_id)])[0]["ok"]
                response = router.dispatch(shard, [solve(graph_id)])[0]
                assert response["ok"] and response["size"] == 3
            counters = router.counters()
            assert counters["graphs"] == 3
            assert counters["mode"] == "process"

    def test_workspace_factory_config_is_rejected(self):
        config = ServiceConfig(workspace_factory=lambda: None)
        with pytest.raises(ReproError):
            ShardRouter(shards=2, config=config, mode="process")


class TestRouterValidation:
    def test_bad_shard_count(self):
        with pytest.raises(ReproError):
            ShardRouter(shards=0)

    def test_bad_mode(self):
        with pytest.raises(ReproError):
            ShardRouter(shards=1, mode="fiber")

    def test_close_is_idempotent(self):
        router = ShardRouter(shards=2, config=ServiceConfig())
        router.close()
        router.close()
