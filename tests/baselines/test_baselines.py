"""Tests for the competitor heuristics: Greedy, DU, SemiE, OnlineMIS, ReduMIS."""

import pytest

from repro.analysis import is_independent_set, is_maximal_independent_set
from repro.baselines import du, greedy, online_mis, quick_single_pass_reduce, redumis, semi_external
from repro.exact import brute_force_alpha
from repro.graphs import (
    Graph,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    gnm_random_graph,
    paper_figure1,
    path_graph,
    power_law_graph,
    star_graph,
)

SIMPLE = [greedy, du, semi_external]


@pytest.mark.parametrize("algorithm", SIMPLE)
class TestSimpleHeuristics:
    def test_star(self, algorithm):
        result = algorithm(star_graph(6))
        assert result.size == 6  # leaves chosen, centre excluded

    def test_empty_graph(self, algorithm):
        result = algorithm(Graph.empty(4))
        assert result.size == 4

    def test_zero_vertices(self, algorithm):
        assert algorithm(Graph.empty(0)).size == 0

    def test_complete_graph(self, algorithm):
        assert algorithm(complete_graph(5)).size == 1

    @pytest.mark.parametrize("seed", range(10))
    def test_valid_on_random(self, algorithm, seed):
        g = gnm_random_graph(30, 70, seed=seed)
        result = algorithm(g)
        assert is_maximal_independent_set(g, result.independent_set)


class TestGreedyVsDU:
    def test_du_at_least_matches_greedy_on_power_law(self):
        g = power_law_graph(2000, 2.2, average_degree=6, seed=9)
        assert du(g).size >= greedy(g).size

    def test_du_adapts_where_greedy_cannot(self):
        # Two stars sharing leaf-neighbours force static Greedy into a
        # suboptimal early pick unless degrees are updated... at minimum
        # DU must match it on the paper's Figure 1.
        g = paper_figure1()
        assert du(g).size >= greedy(g).size


class TestSemiE:
    def test_one_k_swap_improves_crafted_instance(self):
        # A solution vertex with two independent 1-tight neighbours:
        # centre 0 adjacent to 1 and 2 (non-adjacent), each of degree 1.
        # Greedy picks 0 first only if its degree is lowest... craft a
        # bowtie where greedy's first pick is improvable.
        g = complete_bipartite_graph(1, 4)  # star: greedy picks leaves anyway
        result = semi_external(g)
        assert result.size == 4

    def test_stats_recorded(self):
        g = gnm_random_graph(40, 100, seed=2)
        result = semi_external(g)
        assert "rounds" in result.stats

    @pytest.mark.parametrize("seed", range(8))
    def test_never_worse_than_greedy(self, seed):
        g = gnm_random_graph(40, 90, seed=seed + 20)
        assert semi_external(g).size >= greedy(g).size


class TestOnlineMIS:
    def test_quick_pass_reduces_pendants(self):
        g = star_graph(5)
        reduced, old_ids, log = quick_single_pass_reduce(g)
        assert reduced.n == 0  # pendant take removes everything

    def test_quick_pass_isolation(self):
        # Triangle with a tail: vertex of degree 2 with adjacent nbrs.
        g = Graph.from_edges(4, [(0, 1), (0, 2), (1, 2), (2, 3)])
        reduced, old_ids, log = quick_single_pass_reduce(g)
        assert reduced.n <= 1

    def test_quick_pass_preserves_alpha(self):
        for seed in range(15):
            g = gnm_random_graph(14, 20, seed=seed)
            reduced, old_ids, log = quick_single_pass_reduce(g)
            assert log.alpha_offset + brute_force_alpha(reduced) == brute_force_alpha(g)

    def test_end_to_end_valid(self):
        g = power_law_graph(500, 2.2, average_degree=5, seed=3)
        result = online_mis(g, time_budget=0.05, seed=1, max_iterations=5)
        assert is_maximal_independent_set(g, result.independent_set)

    def test_cut_fraction_zero(self):
        g = cycle_graph(30)
        result = online_mis(g, time_budget=0.02, cut_fraction=0.0, max_iterations=2)
        assert is_maximal_independent_set(g, result.independent_set)


class TestReduMIS:
    def test_solves_reducible_graph_immediately(self):
        g = path_graph(50)
        result = redumis(g, time_budget=0.2, seed=1, max_rounds=1)
        assert result.size == 25
        assert result.stats["kernel_size"] == 0

    def test_valid_on_irreducible_graph(self):
        g = gnm_random_graph(60, 240, seed=4)
        result = redumis(g, time_budget=0.3, seed=2, max_rounds=3)
        assert is_independent_set(g, result.independent_set)
        assert result.stats["kernel_size"] >= 0

    def test_population_improves_or_holds(self):
        g = gnm_random_graph(50, 200, seed=6)
        quick = redumis(g, time_budget=0.05, seed=3, max_rounds=1)
        longer = redumis(g, time_budget=0.5, seed=3, max_rounds=20)
        assert longer.size >= quick.size
