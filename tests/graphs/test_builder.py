"""Unit tests for GraphBuilder."""

import pytest

from repro.errors import EdgeError, VertexError
from repro.graphs import GraphBuilder


class TestBuilder:
    def test_incremental_build(self):
        b = GraphBuilder(3)
        assert b.add_edge(0, 1)
        assert b.add_edge(1, 2)
        g = b.build()
        assert g.n == 3
        assert g.m == 2

    def test_duplicate_edge_ignored(self):
        b = GraphBuilder(2)
        assert b.add_edge(0, 1)
        assert not b.add_edge(1, 0)
        assert b.m == 1

    def test_self_loop_ignored(self):
        b = GraphBuilder(2)
        assert not b.add_edge(1, 1)
        assert b.m == 0

    def test_strict_mode_raises_on_duplicate(self):
        b = GraphBuilder(2, strict=True)
        b.add_edge(0, 1)
        with pytest.raises(EdgeError):
            b.add_edge(0, 1)

    def test_strict_mode_raises_on_self_loop(self):
        b = GraphBuilder(2, strict=True)
        with pytest.raises(EdgeError):
            b.add_edge(0, 0)

    def test_out_of_range_vertex_raises(self):
        b = GraphBuilder(2)
        with pytest.raises(VertexError):
            b.add_edge(0, 2)

    def test_negative_vertex_count_raises(self):
        with pytest.raises(VertexError):
            GraphBuilder(-1)

    def test_add_vertex_grows_graph(self):
        b = GraphBuilder(1)
        new = b.add_vertex()
        assert new == 1
        b.add_edge(0, 1)
        assert b.build().m == 1

    def test_add_edges_counts_new_only(self):
        b = GraphBuilder(3)
        added = b.add_edges([(0, 1), (0, 1), (1, 1), (1, 2)])
        assert added == 2

    def test_has_edge(self):
        b = GraphBuilder(3)
        b.add_edge(0, 2)
        assert b.has_edge(2, 0)
        assert not b.has_edge(0, 1)

    def test_neighborhoods_sorted_in_built_graph(self):
        b = GraphBuilder(4)
        b.add_edge(3, 0)
        b.add_edge(3, 2)
        b.add_edge(3, 1)
        assert b.build().neighbors(3) == (0, 1, 2)
