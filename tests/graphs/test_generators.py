"""Unit and property tests for the graph generators."""

import pytest

from repro.errors import GraphError
from repro.graphs import (
    barabasi_albert_graph,
    binary_tree_graph,
    caterpillar_graph,
    collaboration_graph,
    complete_bipartite_graph,
    complete_graph,
    connected_components,
    cycle_graph,
    degree_histogram,
    disjoint_union,
    gnm_random_graph,
    gnp_random_graph,
    grid_graph,
    hypercube_graph,
    path_graph,
    planted_independent_set_graph,
    power_law_graph,
    power_law_exponent_estimate,
    power_law_sequence_graph,
    random_regular_graph,
    random_tree,
    star_graph,
    web_like_graph,
)
from repro.analysis import is_independent_set


class TestRandomFamilies:
    def test_gnm_exact_edge_count(self):
        g = gnm_random_graph(50, 120, seed=3)
        assert g.n == 50
        assert g.m == 120

    def test_gnm_rejects_impossible_edge_count(self):
        with pytest.raises(GraphError):
            gnm_random_graph(4, 7)

    def test_gnm_deterministic_per_seed(self):
        assert gnm_random_graph(30, 60, seed=5) == gnm_random_graph(30, 60, seed=5)
        assert gnm_random_graph(30, 60, seed=5) != gnm_random_graph(30, 60, seed=6)

    def test_gnp_extremes(self):
        assert gnp_random_graph(10, 0.0).m == 0
        assert gnp_random_graph(10, 1.0).m == 45

    def test_gnp_rejects_bad_probability(self):
        with pytest.raises(GraphError):
            gnp_random_graph(10, 1.5)

    def test_gnp_density_plausible(self):
        g = gnp_random_graph(200, 0.1, seed=7)
        expected = 0.1 * 200 * 199 / 2
        assert 0.7 * expected < g.m < 1.3 * expected

    def test_power_law_average_degree(self):
        g = power_law_graph(5000, 2.3, average_degree=6.0, seed=11)
        assert 4.0 < g.average_degree() < 8.0

    def test_power_law_tail_exponent(self):
        g = power_law_graph(20000, 2.2, average_degree=8.0, seed=13)
        estimate = power_law_exponent_estimate(g, d_min=3)
        assert 1.8 < estimate < 3.0

    def test_power_law_rejects_bad_beta(self):
        with pytest.raises(GraphError):
            power_law_graph(100, 1.0)

    def test_power_law_sequence_mostly_degree_one(self):
        # P(k=1) = 1/zeta(beta) > 60% for beta >= 2.3: the property that
        # makes the paper's PLR graphs trivially reducible.
        g = power_law_sequence_graph(8000, 2.3, seed=3)
        histogram = degree_histogram(g)
        low = histogram.get(0, 0) + histogram.get(1, 0) + histogram.get(2, 0)
        assert low > 0.5 * g.n

    def test_power_law_sequence_average_degree_tracks_beta(self):
        sparse = power_law_sequence_graph(5000, 2.7, seed=4)
        dense = power_law_sequence_graph(5000, 1.9, seed=4)
        assert dense.average_degree() > sparse.average_degree()

    def test_power_law_sequence_respects_max_degree(self):
        g = power_law_sequence_graph(2000, 2.0, seed=5, max_degree=10)
        # Expected degrees are capped; realised ones stay in the ballpark.
        assert g.max_degree() <= 30

    def test_power_law_sequence_rejects_bad_beta(self):
        with pytest.raises(GraphError):
            power_law_sequence_graph(100, 0.9)

    def test_power_law_sequence_empty(self):
        assert power_law_sequence_graph(0, 2.3).n == 0

    def test_power_law_empty(self):
        assert power_law_graph(0, 2.3).n == 0

    def test_barabasi_albert_structure(self):
        g = barabasi_albert_graph(500, 3, seed=17)
        assert g.n == 500
        # Every vertex beyond the seed star attaches exactly 3 times.
        assert g.m == 3 + 3 * (500 - 4)
        assert min(g.degrees()) >= 3 or g.degree(0) >= 3

    def test_barabasi_albert_validation(self):
        with pytest.raises(GraphError):
            barabasi_albert_graph(3, 0)
        with pytest.raises(GraphError):
            barabasi_albert_graph(2, 2)

    def test_web_like_has_low_degree_tail(self):
        g = web_like_graph(3000, attach=8, closure=0.6, seed=19)
        histogram = degree_histogram(g)
        low = histogram.get(1, 0) + histogram.get(2, 0)
        assert low > 3000 * 0.05  # geometric out-degree keeps leaf pages

    def test_web_like_validation(self):
        with pytest.raises(GraphError):
            web_like_graph(100, 2, closure=1.5)
        with pytest.raises(GraphError):
            web_like_graph(2, 1)

    def test_collaboration_graph_is_clique_union(self):
        g = collaboration_graph(200, papers=50, max_team=4, seed=23)
        assert g.n == 200
        assert g.m > 0

    def test_planted_set_is_independent(self):
        g = planted_independent_set_graph(60, 20, p=0.3, seed=29)
        assert is_independent_set(g, range(20))

    def test_planted_set_size_validation(self):
        with pytest.raises(GraphError):
            planted_independent_set_graph(10, 11)

    def test_random_regular_degrees(self):
        g = random_regular_graph(30, 3, seed=31)
        assert all(d == 3 for d in g.degrees())

    def test_random_regular_validation(self):
        with pytest.raises(GraphError):
            random_regular_graph(5, 3)  # n*d odd
        with pytest.raises(GraphError):
            random_regular_graph(4, 4)  # d >= n

    def test_random_tree_is_tree(self):
        g = random_tree(40, seed=37)
        assert g.m == 39
        assert len(connected_components(g)) == 1


class TestStructuredFamilies:
    def test_path(self):
        g = path_graph(5)
        assert g.m == 4
        assert g.degree(0) == 1
        assert g.degree(2) == 2

    def test_cycle(self):
        g = cycle_graph(6)
        assert all(d == 2 for d in g.degrees())
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_complete(self):
        g = complete_graph(6)
        assert g.m == 15

    def test_complete_bipartite(self):
        g = complete_bipartite_graph(3, 4)
        assert g.m == 12
        assert is_independent_set(g, range(3))
        assert is_independent_set(g, range(3, 7))

    def test_star(self):
        g = star_graph(7)
        assert g.degree(0) == 7
        assert g.m == 7

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.n == 12
        assert g.m == 3 * 3 + 2 * 4  # vertical + horizontal

    def test_binary_tree(self):
        g = binary_tree_graph(3)
        assert g.n == 15
        assert g.m == 14

    def test_hypercube(self):
        g = hypercube_graph(4)
        assert g.n == 16
        assert all(d == 4 for d in g.degrees())

    def test_caterpillar(self):
        g = caterpillar_graph(4, 2)
        assert g.n == 12
        assert g.m == 3 + 8

    def test_disjoint_union(self):
        g = disjoint_union([cycle_graph(3), path_graph(4)])
        assert g.n == 7
        assert g.m == 3 + 3
        assert len(connected_components(g)) == 2
