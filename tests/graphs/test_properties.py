"""Tests for structural graph analytics."""


from repro.graphs import (
    complete_graph,
    connected_components,
    count_triangles,
    cycle_graph,
    degeneracy,
    degeneracy_ordering,
    degree_histogram,
    disjoint_union,
    grid_graph,
    is_connected,
    largest_component,
    path_graph,
    petersen_graph,
    random_tree,
    star_graph,
    triangle_counts,
    Graph,
)


class TestTriangles:
    def test_triangle_counts_on_k4(self):
        g = complete_graph(4)
        counts = triangle_counts(g)
        # Every edge of K4 lies in exactly 2 triangles.
        assert all(c == 2 for c in counts.values())
        assert count_triangles(g) == 4

    def test_triangle_free_graph(self):
        g = cycle_graph(6)
        assert count_triangles(g) == 0
        assert all(c == 0 for c in triangle_counts(g).values())

    def test_single_triangle(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)])
        counts = triangle_counts(g)
        assert counts[(0, 1)] == 1
        assert counts[(1, 2)] == 1
        assert counts[(0, 2)] == 1
        assert counts[(2, 3)] == 0

    def test_petersen_is_triangle_free(self):
        assert count_triangles(petersen_graph()) == 0


class TestComponents:
    def test_connected_cycle(self):
        assert is_connected(cycle_graph(5))
        assert len(connected_components(cycle_graph(5))) == 1

    def test_disjoint_union_components(self):
        g = disjoint_union([cycle_graph(4), path_graph(3), complete_graph(2)])
        components = connected_components(g)
        assert [len(c) for c in components] == [4, 3, 2]

    def test_isolated_vertices_are_components(self):
        g = Graph.empty(3)
        assert len(connected_components(g)) == 3

    def test_largest_component_extraction(self):
        g = disjoint_union([path_graph(2), cycle_graph(5)])
        sub, ids = g.subgraph(connected_components(g)[0])
        assert sub.n == 5
        largest, mapping = largest_component(g)
        assert largest.n == 5
        assert len(mapping) == 5

    def test_largest_component_empty_graph(self):
        largest, mapping = largest_component(Graph.empty(0))
        assert largest.n == 0
        assert mapping == []


class TestDegeneracy:
    def test_tree_degeneracy_is_one(self):
        assert degeneracy(random_tree(50, seed=1)) == 1

    def test_cycle_degeneracy_is_two(self):
        assert degeneracy(cycle_graph(9)) == 2

    def test_complete_graph_degeneracy(self):
        assert degeneracy(complete_graph(6)) == 5

    def test_grid_degeneracy_is_two(self):
        assert degeneracy(grid_graph(5, 5)) == 2

    def test_ordering_is_permutation(self):
        g = petersen_graph()
        order, k = degeneracy_ordering(g)
        assert sorted(order) == list(range(10))
        assert k == 3  # 3-regular


class TestHistogram:
    def test_star_histogram(self):
        h = degree_histogram(star_graph(6))
        assert h == {1: 6, 6: 1}

    def test_histogram_sums_to_n(self):
        g = grid_graph(4, 5)
        assert sum(degree_histogram(g).values()) == g.n
