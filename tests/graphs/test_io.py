"""Round-trip and error-handling tests for graph IO."""

import io

import pytest

from repro.errors import GraphFormatError
from repro.graphs import (
    Graph,
    cycle_graph,
    dumps_edge_list,
    gnm_random_graph,
    loads_edge_list,
    petersen_graph,
    read_dimacs,
    read_edge_list,
    read_metis,
    write_dimacs,
    write_edge_list,
    write_metis,
)


class TestEdgeList:
    def test_round_trip(self):
        g = gnm_random_graph(20, 40, seed=1)
        assert loads_edge_list(dumps_edge_list(g)) == g

    def test_comments_and_blank_lines(self):
        text = "# header\n\n% more\n0 1\n1 2\n"
        g = loads_edge_list(text)
        assert g.n == 3
        assert g.m == 2

    def test_label_compaction(self):
        g, labels = read_edge_list(io.StringIO("100 7\n7 42\n"))
        assert g.n == 3
        assert labels == [7, 42, 100]  # sorted-label order
        assert g.has_edge(2, 0)  # 100 - 7
        assert g.has_edge(0, 1)  # 7 - 42

    def test_header_preserves_isolated_vertices(self):
        g, labels = read_edge_list(io.StringIO("# repro graph: n=5 m=1\n0 1\n"))
        assert g.n == 5
        assert g.degree(4) == 0

    def test_bad_line_raises_with_line_number(self):
        with pytest.raises(GraphFormatError) as excinfo:
            loads_edge_list("0 1\nnonsense\n")
        assert excinfo.value.line_number == 2

    def test_non_integer_raises(self):
        with pytest.raises(GraphFormatError):
            loads_edge_list("a b\n")

    def test_file_round_trip(self, tmp_path):
        g = cycle_graph(7)
        path = tmp_path / "g.txt"
        write_edge_list(g, str(path))
        loaded, _ = read_edge_list(str(path))
        assert loaded == g


class TestMetis:
    def test_round_trip(self, tmp_path):
        g = petersen_graph()
        path = tmp_path / "g.metis"
        write_metis(g, str(path))
        assert read_metis(str(path)) == g

    def test_header_mismatch_raises(self):
        with pytest.raises(GraphFormatError):
            read_metis(io.StringIO("2 5\n2\n1\n"))

    def test_missing_lines_raise(self):
        with pytest.raises(GraphFormatError):
            read_metis(io.StringIO("3 1\n2\n1\n"))

    def test_empty_file_raises(self):
        with pytest.raises(GraphFormatError):
            read_metis(io.StringIO(""))

    def test_out_of_range_neighbour_raises(self):
        with pytest.raises(GraphFormatError):
            read_metis(io.StringIO("2 1\n3\n1\n"))

    def test_isolated_vertices_survive(self):
        g = read_metis(io.StringIO("3 1\n2\n1\n\n"))
        assert g.n == 3
        assert g.degree(2) == 0


class TestDimacs:
    def test_round_trip(self, tmp_path):
        g = gnm_random_graph(15, 30, seed=9)
        path = tmp_path / "g.col"
        write_dimacs(g, str(path))
        assert read_dimacs(str(path)) == g

    def test_comments_skipped(self):
        g = read_dimacs(io.StringIO("c hi\np edge 3 2\ne 1 2\ne 2 3\n"))
        assert g.m == 2

    def test_edge_before_problem_line_raises(self):
        with pytest.raises(GraphFormatError):
            read_dimacs(io.StringIO("e 1 2\n"))

    def test_missing_problem_line_raises(self):
        with pytest.raises(GraphFormatError):
            read_dimacs(io.StringIO("c only comments\n"))

    def test_out_of_range_edge_raises(self):
        with pytest.raises(GraphFormatError):
            read_dimacs(io.StringIO("p edge 2 1\ne 1 5\n"))


class TestEdgeListDeclaredCount:
    """The ``n=N`` header declares a vertex *count*, not the label range.

    A 1-indexed or sparse-label edge list whose header says ``n=N`` must
    read back with exactly ``N`` vertices — historically the header
    injected labels ``0 .. N-1`` unconditionally, so such files grew
    phantom vertices on every read→write→read cycle.
    """

    def test_one_indexed_file_keeps_declared_count(self):
        # Labels {1..5} with n=5: no phantom vertex 0.
        text = "# repro graph: n=5 m=4\n1 2\n2 3\n3 4\n4 5\n"
        g, labels = read_edge_list(io.StringIO(text))
        assert g.n == 5
        assert labels == [1, 2, 3, 4, 5]

    def test_sparse_labels_padded_with_smallest_unused(self):
        g, labels = read_edge_list(io.StringIO("# repro graph: n=5 m=1\n10 20\n"))
        assert g.n == 5
        assert labels == [0, 1, 2, 10, 20]
        assert g.degree(labels.index(10)) == 1

    def test_zero_indexed_behaviour_unchanged(self):
        g, labels = read_edge_list(io.StringIO("# repro graph: n=5 m=1\n0 1\n"))
        assert g.n == 5
        assert labels == [0, 1, 2, 3, 4]

    def test_header_smaller_than_label_set_is_ignored(self):
        g, labels = read_edge_list(io.StringIO("# repro graph: n=2 m=3\n0 1\n1 2\n2 3\n"))
        assert g.n == 4

    def test_one_indexed_round_trip_is_stable(self):
        text = "# repro graph: n=5 m=4\n1 2\n2 3\n3 4\n4 5\n"
        first, _ = read_edge_list(io.StringIO(text))
        second = loads_edge_list(dumps_edge_list(first))
        third = loads_edge_list(dumps_edge_list(second))
        assert first == second == third
        assert first.n == 5

    def test_isolated_vertices_round_trip_repeatedly(self):
        g = Graph.from_edges(6, [(0, 1), (3, 4)])  # 2 and 5 isolated
        for _ in range(3):
            g = loads_edge_list(dumps_edge_list(g))
        assert g.n == 6
        assert g.degree(2) == 0 and g.degree(5) == 0


class TestMetisRoundTripWithComments:
    def test_comment_lines_survive_round_trip(self, tmp_path):
        # METIS comments before and inside the body are dropped on read;
        # writing and re-reading must reproduce the same graph.
        text = "% generated fixture\n5 4\n2\n% mid-body comment\n1 3\n2 4\n3 5\n4\n"
        first = read_metis(io.StringIO(text))
        assert first.n == 5 and first.m == 4
        path = tmp_path / "roundtrip.metis"
        write_metis(first, str(path))
        second = read_metis(str(path))
        assert second == first
        third_buffer = io.StringIO()
        write_metis(second, third_buffer)
        assert read_metis(io.StringIO(third_buffer.getvalue())) == second

    def test_one_indexing_is_symmetric(self):
        # write_metis emits 1-indexed neighbours; read_metis subtracts 1.
        g = Graph.from_edges(3, [(0, 2)])
        buffer = io.StringIO()
        write_metis(g, buffer)
        assert buffer.getvalue().splitlines() == ["3 1", "3", "", "1"]
        assert read_metis(io.StringIO(buffer.getvalue())) == g

    def test_blank_adjacency_lines_round_trip(self, tmp_path):
        g = Graph.from_edges(4, [(1, 2)])  # vertices 0 and 3 isolated
        path = tmp_path / "isolated.metis"
        write_metis(g, str(path))
        assert read_metis(str(path)) == g
