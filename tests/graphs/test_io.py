"""Round-trip and error-handling tests for graph IO."""

import io

import pytest

from repro.errors import GraphFormatError
from repro.graphs import (
    Graph,
    cycle_graph,
    dumps_edge_list,
    gnm_random_graph,
    loads_edge_list,
    petersen_graph,
    read_dimacs,
    read_edge_list,
    read_metis,
    write_dimacs,
    write_edge_list,
    write_metis,
)


class TestEdgeList:
    def test_round_trip(self):
        g = gnm_random_graph(20, 40, seed=1)
        assert loads_edge_list(dumps_edge_list(g)) == g

    def test_comments_and_blank_lines(self):
        text = "# header\n\n% more\n0 1\n1 2\n"
        g = loads_edge_list(text)
        assert g.n == 3
        assert g.m == 2

    def test_label_compaction(self):
        g, labels = read_edge_list(io.StringIO("100 7\n7 42\n"))
        assert g.n == 3
        assert labels == [7, 42, 100]  # sorted-label order
        assert g.has_edge(2, 0)  # 100 - 7
        assert g.has_edge(0, 1)  # 7 - 42

    def test_header_preserves_isolated_vertices(self):
        g, labels = read_edge_list(io.StringIO("# repro graph: n=5 m=1\n0 1\n"))
        assert g.n == 5
        assert g.degree(4) == 0

    def test_bad_line_raises_with_line_number(self):
        with pytest.raises(GraphFormatError) as excinfo:
            loads_edge_list("0 1\nnonsense\n")
        assert excinfo.value.line_number == 2

    def test_non_integer_raises(self):
        with pytest.raises(GraphFormatError):
            loads_edge_list("a b\n")

    def test_file_round_trip(self, tmp_path):
        g = cycle_graph(7)
        path = tmp_path / "g.txt"
        write_edge_list(g, str(path))
        loaded, _ = read_edge_list(str(path))
        assert loaded == g


class TestMetis:
    def test_round_trip(self, tmp_path):
        g = petersen_graph()
        path = tmp_path / "g.metis"
        write_metis(g, str(path))
        assert read_metis(str(path)) == g

    def test_header_mismatch_raises(self):
        with pytest.raises(GraphFormatError):
            read_metis(io.StringIO("2 5\n2\n1\n"))

    def test_missing_lines_raise(self):
        with pytest.raises(GraphFormatError):
            read_metis(io.StringIO("3 1\n2\n1\n"))

    def test_empty_file_raises(self):
        with pytest.raises(GraphFormatError):
            read_metis(io.StringIO(""))

    def test_out_of_range_neighbour_raises(self):
        with pytest.raises(GraphFormatError):
            read_metis(io.StringIO("2 1\n3\n1\n"))

    def test_isolated_vertices_survive(self):
        g = read_metis(io.StringIO("3 1\n2\n1\n\n"))
        assert g.n == 3
        assert g.degree(2) == 0


class TestDimacs:
    def test_round_trip(self, tmp_path):
        g = gnm_random_graph(15, 30, seed=9)
        path = tmp_path / "g.col"
        write_dimacs(g, str(path))
        assert read_dimacs(str(path)) == g

    def test_comments_skipped(self):
        g = read_dimacs(io.StringIO("c hi\np edge 3 2\ne 1 2\ne 2 3\n"))
        assert g.m == 2

    def test_edge_before_problem_line_raises(self):
        with pytest.raises(GraphFormatError):
            read_dimacs(io.StringIO("e 1 2\n"))

    def test_missing_problem_line_raises(self):
        with pytest.raises(GraphFormatError):
            read_dimacs(io.StringIO("c only comments\n"))

    def test_out_of_range_edge_raises(self):
        with pytest.raises(GraphFormatError):
            read_dimacs(io.StringIO("p edge 2 1\ne 1 5\n"))
