"""Tests for the paper's reconstructed example graphs.

Each test replays facts the paper states about the figure; brute force
confirms the independence numbers.
"""

import pytest

from repro.exact import brute_force_alpha
from repro.analysis import is_independent_set, is_maximal_independent_set, is_vertex_cover
from repro.core.reductions import is_dominated_by
from repro.errors import GraphError
from repro.graphs import (
    bdtwo_lower_bound_family,
    isolated_clique_gadget,
    mutual_dominance_gadget,
    paper_figure1,
    paper_figure1_modified,
    paper_figure2,
    paper_figure5,
    petersen_graph,
)


class TestFigure1:
    """Figure 1: the running example of Sections 1–3 (0-indexed ids)."""

    def test_size(self):
        g = paper_figure1()
        assert g.n == 10
        assert g.m == 12

    def test_stated_independent_sets(self):
        g = paper_figure1()
        # {v2, v5, v7, v9} is an independent set of size 4.
        assert is_independent_set(g, {1, 4, 6, 8})
        # {v1, v4, v6, v8, v10} is a maximum independent set of size 5.
        assert is_maximal_independent_set(g, {0, 3, 5, 7, 9})

    def test_stated_vertex_cover(self):
        g = paper_figure1()
        # {v2, v3, v5, v7, v9} is the complementary minimum vertex cover.
        assert is_vertex_cover(g, {1, 2, 4, 6, 8})

    def test_independence_number(self):
        assert brute_force_alpha(paper_figure1()) == 5

    def test_degree_one_entry_point(self):
        g = paper_figure1()
        # v10 is the unique degree-one vertex; its neighbour is v9.
        assert g.degree(9) == 1
        assert g.neighbors(9) == (8,)


class TestFigure1Modified:
    """The Section-1 dominance example."""

    def test_min_degree_three(self):
        g = paper_figure1_modified()
        assert min(g.degrees()) == 3

    def test_v5_dominates_v9(self):
        g = paper_figure1_modified()
        # Paper: "v9 is dominated by v5" — v5 (id 4) dominates v9 (id 8).
        assert is_dominated_by(g, 8, 4)

    def test_alpha(self):
        # Removing v10 drops α from 5 to 4... verify with brute force and
        # confirm removing the dominated v9 preserves it.
        g = paper_figure1_modified()
        alpha = brute_force_alpha(g)
        sub, _ = g.subgraph([v for v in range(g.n) if v != 8])
        assert brute_force_alpha(sub) == alpha


class TestFigure2:
    def test_size(self):
        g = paper_figure2()
        assert g.n == 6
        assert g.m == 8

    def test_stated_sets(self):
        g = paper_figure2()
        # {v2, v6} is maximal, {v1, v3, v4} is maximum.
        assert is_maximal_independent_set(g, {1, 5})
        assert is_maximal_independent_set(g, {0, 2, 3})
        assert brute_force_alpha(g) == 3

    def test_bdtwo_initialisation_narrative(self):
        g = paper_figure2()
        # "V₌₁ = {v1}, V≥₃ = {v2..v6}": v1 has degree 1, rest ≥ 3.
        assert g.degree(0) == 1
        assert all(g.degree(v) >= 3 for v in range(1, 6))


class TestFigure5:
    def test_size_and_alpha(self):
        g = paper_figure5()
        assert g.n == 10
        assert g.m == 13
        assert brute_force_alpha(g) == 4

    def test_initial_degree_partition(self):
        g = paper_figure5()
        # "V₌₂ = {v1, v2, v3, v6}, V≥₃ = {v4, v5, v7, v8, v9, v10}".
        assert sorted(v for v in range(10) if g.degree(v) == 2) == [0, 1, 2, 5]
        assert all(g.degree(v) >= 3 for v in (3, 4, 6, 7, 8, 9))

    def test_first_path_has_shared_anchor(self):
        g = paper_figure5()
        # The maximal degree-two path (v1, v2, v3) is anchored on v4 twice.
        assert set(g.neighbors(0)) - {1} == {3}
        assert set(g.neighbors(2)) - {1} == {3}


class TestGadgets:
    def test_mutual_dominance(self):
        g = mutual_dominance_gadget()
        assert is_dominated_by(g, 0, 1)
        assert is_dominated_by(g, 1, 0)
        # After removing one, the survivor is no longer dominated.
        sub, ids = g.subgraph([v for v in range(g.n) if v != 0])
        survivor = ids.index(1)
        assert not any(
            is_dominated_by(sub, survivor, w) for w in sub.neighbors(survivor)
        )

    def test_isolated_clique_gadget(self):
        g = isolated_clique_gadget(4, pendants_per_vertex=1)
        # Vertex 0 dominates every clique neighbour.
        for v in range(1, 4):
            assert is_dominated_by(g, v, 0)

    def test_isolated_clique_validation(self):
        with pytest.raises(GraphError):
            isolated_clique_gadget(1)

    def test_petersen(self):
        g = petersen_graph()
        assert g.n == 10
        assert all(d == 3 for d in g.degrees())
        assert brute_force_alpha(g) == 4


class TestLowerBoundFamily:
    def test_structure(self):
        g = bdtwo_lower_bound_family(3)  # n = 8 third-layer vertices
        n = 8
        # 2 hubs + 2n layer-2 + n layer-3 + (n/2 + n/4 + n/8) triggers.
        assert g.n == 2 + 2 * n + n + (4 + 2 + 1)
        # Round-1 triggers have degree 2, later rounds degree 3.
        trigger_start = 2 + 3 * n
        assert all(g.degree(trigger_start + k) == 2 for k in range(4))
        assert all(g.degree(trigger_start + 4 + k) == 3 for k in range(3))

    def test_edge_count_linear_in_n(self):
        for levels in (2, 3, 4, 5):
            g = bdtwo_lower_bound_family(levels)
            n = 1 << levels
            assert g.m < 9 * n  # Θ(n) edges (paper: 17n/2 − 3)

    def test_validation(self):
        with pytest.raises(GraphError):
            bdtwo_lower_bound_family(0)
