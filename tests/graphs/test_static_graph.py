"""Unit tests for the adjacency-array Graph type."""

import pytest

from repro.errors import VertexError
from repro.graphs import Graph, cycle_graph, complete_graph, path_graph


class TestConstruction:
    def test_from_edges_basic(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert g.n == 4
        assert g.m == 3
        assert g.neighbors(1) == (0, 2)

    def test_from_edges_drops_duplicates_and_loops(self):
        g = Graph.from_edges(3, [(0, 1), (1, 0), (0, 0), (1, 2)])
        assert g.m == 2

    def test_empty_graph(self):
        g = Graph.empty(5)
        assert g.n == 5
        assert g.m == 0
        assert g.degrees() == [0] * 5

    def test_zero_vertex_graph(self):
        g = Graph.empty(0)
        assert g.n == 0
        assert g.m == 0
        assert g.max_degree() == 0
        assert g.average_degree() == 0.0

    def test_renamed_preserves_structure(self):
        g = cycle_graph(5)
        h = g.renamed("other")
        assert h.name == "other"
        assert h == g  # equality is structural


class TestAccessors:
    def test_degrees_match_neighbor_lengths(self):
        g = Graph.from_edges(5, [(0, 1), (0, 2), (0, 3), (3, 4)])
        assert g.degree(0) == 3
        assert g.degree(4) == 1
        assert g.degrees() == [len(g.neighbors(v)) for v in range(5)]

    def test_max_and_average_degree(self):
        g = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert g.max_degree() == 3
        assert g.average_degree() == pytest.approx(1.5)

    def test_has_edge_both_directions(self):
        g = Graph.from_edges(3, [(0, 2)])
        assert g.has_edge(0, 2)
        assert g.has_edge(2, 0)
        assert not g.has_edge(0, 1)

    def test_has_edge_searches_smaller_side(self):
        g = Graph.from_edges(6, [(0, v) for v in range(1, 6)] + [(1, 2)])
        # degree(0)=5, degree(5)=1: lookup must work regardless of order.
        assert g.has_edge(0, 5)
        assert g.has_edge(5, 0)
        assert not g.has_edge(5, 1)

    def test_edges_yields_each_edge_once(self):
        g = cycle_graph(6)
        edges = list(g.edges())
        assert len(edges) == 6
        assert all(u < v for u, v in edges)
        assert len(set(edges)) == 6

    def test_vertex_out_of_range_raises(self):
        g = path_graph(3)
        with pytest.raises(VertexError):
            g.neighbors(3)
        with pytest.raises(VertexError):
            g.degree(-1)


class TestDerivedGraphs:
    def test_subgraph_compacts_ids(self):
        g = cycle_graph(6)
        sub, old_ids = g.subgraph([0, 1, 2, 4])
        assert sub.n == 4
        assert old_ids == [0, 1, 2, 4]
        # Edges (0,1), (1,2) survive; 4 is isolated in the subgraph.
        assert sub.m == 2
        assert sub.degree(3) == 0

    def test_subgraph_empty_selection(self):
        g = cycle_graph(4)
        sub, old_ids = g.subgraph([])
        assert sub.n == 0
        assert old_ids == []

    def test_complement_of_complete_graph_is_empty(self):
        g = complete_graph(5)
        assert g.complement().m == 0

    def test_complement_involution(self):
        g = Graph.from_edges(5, [(0, 1), (2, 3), (1, 4)])
        assert g.complement().complement() == g

    def test_adjacency_lists_are_fresh_copies(self):
        g = path_graph(3)
        lists = g.adjacency_lists()
        lists[0].append(99)
        assert g.neighbors(0) == (1,)

    def test_adjacency_sets(self):
        g = path_graph(3)
        assert g.adjacency_sets() == [{1}, {0, 2}, {1}]


class TestDunder:
    def test_equality_ignores_name(self):
        a = cycle_graph(4, name="a")
        b = cycle_graph(4, name="b")
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        assert cycle_graph(4) != path_graph(4)

    def test_repr_contains_counts(self):
        g = cycle_graph(4, name="c4")
        assert "n=4" in repr(g)
        assert "m=4" in repr(g)
