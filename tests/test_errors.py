"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    BudgetExceededError,
    EdgeError,
    GraphError,
    GraphFormatError,
    NotASolutionError,
    ReproError,
    VertexError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "subclass",
        [GraphError, VertexError, EdgeError, GraphFormatError, BudgetExceededError, NotASolutionError],
    )
    def test_everything_is_a_repro_error(self, subclass):
        assert issubclass(subclass, ReproError)

    def test_vertex_error_is_graph_error(self):
        assert issubclass(VertexError, GraphError)
        assert issubclass(EdgeError, GraphError)


class TestMessages:
    def test_vertex_error_carries_context(self):
        error = VertexError(7, 5)
        assert error.vertex == 7
        assert error.n == 5
        assert "7" in str(error)
        assert "[0, 5)" in str(error)

    def test_format_error_line_numbers(self):
        error = GraphFormatError("bad token", line_number=12)
        assert "line 12" in str(error)
        assert error.line_number == 12

    def test_format_error_without_line(self):
        error = GraphFormatError("empty file")
        assert error.line_number is None
        assert "line" not in str(error)

    def test_budget_error_carries_bounds(self):
        error = BudgetExceededError("over budget", best_lower=42, best_upper=50)
        assert error.best_lower == 42
        assert error.best_upper == 50
