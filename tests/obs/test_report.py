"""Trace summarisation, report rendering, and the memory probe."""

from repro.graphs import path_graph
from repro.obs.memory import MemoryProbe, probe_record
from repro.obs.report import profile_is_monotone, render_report, summarize


def _records():
    return [
        {"type": "meta", "label": "run", "pid": 1},
        {"type": "span", "name": "reduce", "pid": 1, "wall": 0.6, "depth": 0},
        {"type": "span", "name": "replay", "pid": 1, "wall": 0.1, "depth": 0},
        {"type": "span", "name": "extend", "pid": 1, "wall": 0.05, "depth": 1},
        {"type": "counters", "pid": 1, "values": {"peel": 3, "degree-one": 10}},
        {"type": "timer", "name": "swap-scan", "pid": 1, "count": 4, "total": 0.2},
        {
            "type": "profile",
            "algorithm": "LinearTime",
            "graph": "g",
            "pid": 1,
            "samples": [[0, 100, 300, 100], [50, 40, 80, 70], [90, 0, 0, 55]],
        },
        {
            "type": "memory",
            "algorithm": "LinearTime",
            "graph": "g",
            "peak_bytes": 4096,
            "budget_words": 600,
            "budget_bytes": 2400,
        },
    ]


class TestSummarize:
    def test_phase_aggregation_counts_depth_zero_for_span_total(self):
        summary = summarize(_records())
        assert summary["phases"]["reduce"] == {
            "count": 1,
            "wall": 0.6,
            "top_wall": 0.6,
        }
        assert summary["phases"]["extend"]["top_wall"] == 0.0
        assert abs(summary["span_total"] - 0.7) < 1e-12

    def test_counters_and_timers(self):
        summary = summarize(_records())
        assert summary["counters"] == {"peel": 3, "degree-one": 10}
        assert summary["timers"]["swap-scan"] == {"count": 4, "total": 0.2}

    def test_processes_indexed_by_pid(self):
        assert summarize(_records())["processes"] == {1: "run"}


class TestMonotone:
    def test_monotone_profile(self):
        profile = {"samples": [[0, 10, 9, 9], [5, 4, 3, 3], [9, 0, 0, 2]]}
        assert profile_is_monotone(profile)

    def test_non_monotone_profile(self):
        profile = {"samples": [[0, 10, 9, 9], [5, 12, 3, 3]]}
        assert not profile_is_monotone(profile)

    def test_empty_profile_is_monotone(self):
        assert profile_is_monotone({"samples": []})


class TestRender:
    def test_report_mentions_every_section(self):
        text = render_report(_records(), title="trace: t.jsonl")
        assert "trace: t.jsonl" in text
        assert "reduce" in text and "swap-scan" in text
        assert "peel=3" in text
        assert "peeling profile [LinearTime on g]" in text
        assert "monotone" in text
        assert "peak 4,096 bytes" in text

    def test_empty_trace(self):
        assert render_report([]) == "(empty trace)"


class TestMemoryProbe:
    def test_probe_measures_allocations(self):
        with MemoryProbe() as probe:
            blob = [0] * 100_000
        assert probe.peak_bytes > 100_000
        del blob

    def test_probe_nests(self):
        with MemoryProbe() as outer:
            with MemoryProbe() as inner:
                data = list(range(10_000))
            del data
        assert inner.peak_bytes > 0
        assert outer.peak_bytes > 0

    def test_probe_record_pairs_peak_with_budget(self):
        graph = path_graph(50)
        with MemoryProbe() as probe:
            pass
        record = probe_record(probe, "LinearTime", graph)
        assert record["type"] == "memory"
        assert record["graph"] == graph.name
        assert record["budget_words"] > 0
        assert record["budget_bytes"] == record["budget_words"] * 4

    def test_probe_record_without_budget_row(self):
        graph = path_graph(10)
        with MemoryProbe() as probe:
            pass
        record = probe_record(probe, "NoSuchAlgorithm", graph)
        assert "budget_words" not in record
        assert record["peak_bytes"] >= 0
