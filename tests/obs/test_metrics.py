"""The metrics registry: counters/gauges/histograms, expositions, sessions.

The contract under test: every metric name is vetted against
``METRIC_KEYS`` at write time, histogram quantiles are exact to within one
log-bucket ratio, the Prometheus text exposition round-trips through the
strict parser, and the process-global session leaves no residue after
exit (zero-cost-when-disabled).
"""

import math

import pytest

from repro.obs.metrics import (
    METRIC_AUTO_BACKEND_PICKS,
    METRIC_KEYS,
    METRIC_SERVE_CACHE_ENTRIES,
    METRIC_SERVE_REQUEST_SECONDS,
    METRIC_SERVE_REQUESTS,
    METRIC_SERVE_SOLVER_SECONDS,
    Histogram,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_metrics,
    iter_series,
    metrics_session,
    parse_prometheus,
    quantile_samples,
)


@pytest.fixture(autouse=True)
def _no_global_registry():
    disable_metrics()
    yield
    disable_metrics()


class TestRegistryBasics:
    def test_counter_labels_are_independent_series(self):
        registry = MetricsRegistry()
        registry.inc(METRIC_SERVE_REQUESTS, op="solve", source="cache")
        registry.inc(METRIC_SERVE_REQUESTS, 2, op="solve", source="cold")
        registry.inc(METRIC_SERVE_REQUESTS, op="mutate")
        assert registry.value(METRIC_SERVE_REQUESTS, op="solve", source="cache") == 1
        assert registry.value(METRIC_SERVE_REQUESTS, op="solve", source="cold") == 2
        assert registry.total(METRIC_SERVE_REQUESTS) == 4

    def test_label_order_does_not_mint_new_series(self):
        registry = MetricsRegistry()
        registry.inc(METRIC_AUTO_BACKEND_PICKS, family="lt", backend="flat")
        registry.inc(METRIC_AUTO_BACKEND_PICKS, backend="flat", family="lt")
        assert registry.value(METRIC_AUTO_BACKEND_PICKS, family="lt", backend="flat") == 2
        assert len(registry.counter_series(METRIC_AUTO_BACKEND_PICKS)) == 1

    def test_gauge_overwrites(self):
        registry = MetricsRegistry()
        registry.set_gauge(METRIC_SERVE_CACHE_ENTRIES, 5)
        registry.set_gauge(METRIC_SERVE_CACHE_ENTRIES, 3)
        assert registry.value(METRIC_SERVE_CACHE_ENTRIES) == 3

    def test_unregistered_name_raises(self):
        registry = MetricsRegistry()
        with pytest.raises(KeyError):
            registry.inc("repro_made_up_total")
        with pytest.raises(KeyError):
            registry.set_gauge("bogus_gauge", 1)
        with pytest.raises(KeyError):
            registry.observe("bogus_seconds", 0.5)

    def test_metric_keys_cover_every_constant(self):
        assert METRIC_SERVE_REQUESTS in METRIC_KEYS
        assert METRIC_AUTO_BACKEND_PICKS in METRIC_KEYS
        # Exposition names stay Prometheus-legal.
        assert all(name.replace("_", "a").isalnum() for name in METRIC_KEYS)


class TestHistogram:
    def test_quantile_within_one_bucket_ratio(self):
        histogram = Histogram()
        values = [i / 1000.0 for i in range(1, 1001)]  # 1ms .. 1s
        for value in values:
            histogram.observe(value)
        for q in (0.5, 0.9, 0.99):
            exact = values[int(q * len(values)) - 1]
            estimate = histogram.quantile(q)
            assert exact / 2 <= estimate <= exact * 2

    def test_quantile_clamped_to_observed_range(self):
        histogram = Histogram()
        histogram.observe(0.25)
        assert histogram.quantile(0.5) == 0.25
        assert histogram.quantile(0.99) == 0.25

    def test_empty_histogram_is_zero(self):
        histogram = Histogram()
        assert histogram.quantile(0.5) == 0.0
        assert histogram.mean == 0.0

    def test_registry_observe_feeds_quantiles(self):
        registry = MetricsRegistry()
        for value in (0.010, 0.012, 0.5):
            registry.observe(METRIC_SERVE_REQUEST_SECONDS, value, op="solve")
        p99 = registry.quantile(METRIC_SERVE_REQUEST_SECONDS, 0.99, op="solve")
        assert 0.25 <= p99 <= 1.0


class TestExpositions:
    def _populated(self):
        registry = MetricsRegistry(label="test")
        registry.inc(METRIC_SERVE_REQUESTS, 3, op="solve", source="cache")
        registry.set_gauge(METRIC_SERVE_CACHE_ENTRIES, 2)
        for value in (0.004, 0.008, 0.016):
            registry.observe(METRIC_SERVE_SOLVER_SECONDS, value, mode="cold", backend="flat")
        return registry

    def test_prometheus_round_trip(self):
        registry = self._populated()
        samples = parse_prometheus(registry.to_prometheus())
        assert samples[
            (METRIC_SERVE_REQUESTS, (("op", "solve"), ("source", "cache")))
        ] == 3.0
        assert samples[(METRIC_SERVE_CACHE_ENTRIES, ())] == 2.0
        count_name = f"{METRIC_SERVE_SOLVER_SECONDS}_count"
        assert any(name == count_name and value == 3.0
                   for (name, _), value in samples.items())

    def test_prometheus_buckets_are_cumulative_and_end_at_inf(self):
        registry = self._populated()
        samples = parse_prometheus(registry.to_prometheus())
        bucket_name = f"{METRIC_SERVE_SOLVER_SECONDS}_bucket"
        buckets = [
            (dict(labels)["le"], value)
            for (name, labels), value in samples.items()
            if name == bucket_name
        ]
        assert any(le == "+Inf" and value == 3.0 for le, value in buckets)
        finite = sorted(
            (float(le), value) for le, value in buckets if le != "+Inf"
        )
        counts = [value for _, value in finite]
        assert counts == sorted(counts)  # cumulative

    def test_p99_gauges_derived(self):
        registry = self._populated()
        samples = parse_prometheus(registry.to_prometheus())
        p99 = quantile_samples(samples, METRIC_SERVE_SOLVER_SECONDS, "p99")
        assert len(p99) == 1 and p99[0] > 0

    def test_iter_series_filters_by_name(self):
        registry = self._populated()
        samples = parse_prometheus(registry.to_prometheus())
        rows = list(iter_series(samples, METRIC_SERVE_REQUESTS))
        assert rows == [((("op", "solve"), ("source", "cache")), 3.0)]

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_prometheus("this is not a sample\n")
        with pytest.raises(ValueError):
            parse_prometheus('name{unclosed="x} 1\n')

    def test_parser_accepts_inf(self):
        samples = parse_prometheus('series_bucket{le="+Inf"} 4\n')
        assert samples[("series_bucket", (("le", "+Inf"),))] == 4.0
        assert math.isfinite(4.0)

    def test_jsonl_records(self, tmp_path):
        registry = self._populated()
        path = tmp_path / "metrics.jsonl"
        count = registry.write_jsonl(str(path))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == count == 3
        records = registry.to_records()
        kinds = {record["kind"] for record in records}
        assert kinds == {"counter", "gauge", "histogram"}
        histogram = next(r for r in records if r["kind"] == "histogram")
        assert histogram["count"] == 3
        assert set(histogram["quantiles"]) == {"p50", "p90", "p99"}


class TestGlobalSession:
    def test_disabled_by_default(self):
        assert get_metrics() is None

    def test_enable_disable_round_trip(self):
        registry = enable_metrics(label="run")
        assert get_metrics() is registry
        assert disable_metrics() is registry
        assert get_metrics() is None

    def test_session_restores_on_exit(self):
        with metrics_session(label="scoped") as registry:
            assert get_metrics() is registry
            registry.inc(METRIC_SERVE_REQUESTS, op="solve", source="cold")
        assert get_metrics() is None
        # The registry survives the session for post-hoc exposition.
        assert registry.total(METRIC_SERVE_REQUESTS) == 1

    def test_session_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with metrics_session(label="scoped"):
                raise RuntimeError("boom")
        assert get_metrics() is None
