"""Instrumented runs: profiles, span accounting, and result invariance."""

import pytest

from repro.core.bdone import bdone
from repro.core.bdtwo import bdtwo
from repro.core.linear_time import linear_time
from repro.core.near_linear import near_linear
from repro.graphs.generators import power_law_graph
from repro.obs.report import profile_is_monotone, summarize
from repro.obs.telemetry import disable, telemetry_session

ALGORITHMS = [bdone, bdtwo, linear_time, near_linear]
PROFILED = [bdone, linear_time, near_linear]  # BDTwo has no live counters


@pytest.fixture(autouse=True)
def _clean_flag():
    disable()
    yield
    disable()


@pytest.fixture(scope="module")
def graph():
    return power_law_graph(1_500, beta=2.2, average_degree=6.0, seed=11)


class TestResultInvariance:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_telemetry_never_changes_the_result(self, graph, algorithm):
        plain = algorithm(graph)
        with telemetry_session():
            traced = algorithm(graph)
        assert traced.independent_set == plain.independent_set
        assert traced.upper_bound == plain.upper_bound
        assert traced.stats == plain.stats


class TestPhaseSpans:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_run_emits_the_phase_spans(self, graph, algorithm):
        with telemetry_session() as tele:
            algorithm(graph)
        names = {span.name for span in tele.spans}
        assert {"setup", "reduce", "replay", "extend"} <= names

    def test_reduce_span_snapshots_rule_counters(self, graph):
        with telemetry_session() as tele:
            result = linear_time(graph)
        reduce_span = next(s for s in tele.spans if s.name == "reduce")
        assert reduce_span.meta["counters"] == result.stats

    def test_span_total_close_to_result_elapsed(self, graph):
        with telemetry_session() as tele:
            result = linear_time(graph)
        total = tele.span_total(depth=0)
        # The spans cover everything but dispatch and result
        # materialisation; generous bound here, the bench harness checks
        # the 10% acceptance figure on plr-50k.
        assert total <= result.elapsed
        assert total >= 0.5 * result.elapsed

    def test_counters_match_result_stats(self, graph):
        with telemetry_session() as tele:
            result = near_linear(graph)
        assert tele.counters == result.stats


class TestPeelingProfiles:
    @pytest.mark.parametrize("algorithm", PROFILED)
    def test_profile_shape_and_monotonicity(self, graph, algorithm):
        with telemetry_session() as tele:
            algorithm(graph)
        assert len(tele.profiles) == 1
        profile = tele.profiles[0]
        samples = profile["samples"]
        assert len(samples) >= 2  # the t=0 point and the final sample
        assert profile_is_monotone(profile)
        # Final sample: the graph is fully consumed.
        events, live, live_edges, bound = samples[-1]
        assert live == 0 and live_edges == 0
        # The final bound equals the number of includes in the log, which
        # can only undercount the final |I| (extension adds vertices).
        assert bound >= 0

    def test_bound_column_never_increases(self, graph):
        with telemetry_session() as tele:
            linear_time(graph)
        bounds = [s[3] for s in tele.profiles[0]["samples"]]
        assert all(a >= b for a, b in zip(bounds, bounds[1:]))

    def test_first_sample_covers_the_post_setup_graph(self, graph):
        # Setup may already retire isolated vertices, so the t=0 point is
        # bounded by — not equal to — the input sizes.
        with telemetry_session() as tele:
            bdone(graph)
        _, live, live_edges, bound = tele.profiles[0]["samples"][0]
        assert 0 < live <= graph.n
        assert 0 < live_edges <= graph.m
        assert bound <= graph.n

    def test_summarize_reports_the_profile(self, graph):
        with telemetry_session() as tele:
            linear_time(graph)
        summary = summarize(tele.to_records())
        assert len(summary["profiles"]) == 1
