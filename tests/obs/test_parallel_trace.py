"""Cross-process trace aggregation through the parallel component driver.

The acceptance bar: a telemetered parallel run produces ONE merged report
in which every component's spans are attributed to the worker (pid) that
ran them — pooled components to their worker processes, inline components
to the parent via context stamping.
"""

import os

import pytest

from repro.core.components import solve_by_components
from repro.core.linear_time import linear_time
from repro.graphs.generators import disjoint_union, gnm_random_graph, power_law_graph
from repro.graphs.properties import connected_components
from repro.obs.telemetry import disable, telemetry_session
from repro.obs.trace_io import merge_traces
from repro.perf.parallel import solve_by_components_parallel


@pytest.fixture(autouse=True)
def _clean_flag():
    disable()
    yield
    disable()


def _component_of(record):
    component = record.get("component")
    if component is None and isinstance(record.get("meta"), dict):
        component = record["meta"].get("component")
    return component


def _union():
    # The building blocks are not themselves connected, so derive the
    # pooled/inline split from connected_components like the driver does.
    union = disjoint_union(
        [
            gnm_random_graph(300, 900, seed=21),
            power_law_graph(250, beta=2.3, average_degree=5.0, seed=22),
            gnm_random_graph(40, 80, seed=23),
        ]
    )
    sizes = [len(c) for c in connected_components(union)]
    pooled = {i for i, size in enumerate(sizes) if size >= 100}
    inline = set(range(len(sizes))) - pooled
    assert len(pooled) >= 2 and inline  # both driver paths exercised
    return union, pooled, inline


class TestMergedParallelReport:
    def test_every_component_attributed_to_its_worker(self):
        union, pooled, inline = _union()
        with telemetry_session("parallel-run") as tele:
            result = solve_by_components_parallel(
                union, "linear_time", processes=2, min_component_size=100
            )
        merged = merge_traces([tele.to_records()])
        components = merged["components"]
        # One merged report covering every component of the input.
        assert {c for c in components if c is not None} == pooled | inline
        parent_pid = os.getpid()
        for index, cell in components.items():
            if index is None:
                continue
            assert cell["pid"] is not None
            assert cell["spans"], f"component {index} has no spans"
            assert "reduce" in cell["spans"]
            assert cell["wall"] >= 0.0
        # Pooled components ran in worker processes, inline ones in the
        # parent — the attribution must say so.
        for index in pooled:
            assert components[index]["pid"] != parent_pid
        for index in inline:
            assert components[index]["pid"] == parent_pid
        # Worker meta lines survive the merge, naming each worker process.
        worker_pids = {components[index]["pid"] for index in pooled}
        assert worker_pids <= set(merged["processes"])
        # Telemetry must not have changed the merged result.
        serial = solve_by_components(union, linear_time)
        assert result.independent_set == serial.independent_set
        assert result.stats == serial.stats

    def test_worker_records_carry_counters_and_profiles(self):
        union, pooled, _inline = _union()
        with telemetry_session("parallel-run") as tele:
            solve_by_components_parallel(
                union, "linear_time", processes=2, min_component_size=100
            )
        records = tele.to_records()
        worker_counters = [
            r
            for r in records
            if r.get("type") == "counters" and r.get("pid") != os.getpid()
        ]
        assert worker_counters, "no worker counter records adopted"
        pooled_profiles = {
            _component_of(r)
            for r in records
            if r.get("type") == "profile" and r.get("pid") != os.getpid()
        }
        assert pooled_profiles == pooled

    def test_disabled_telemetry_matches_serial_result(self):
        union, _pooled, _inline = _union()
        result = solve_by_components_parallel(
            union, "linear_time", processes=2, min_component_size=100
        )
        serial = solve_by_components(union, linear_time)
        assert result.independent_set == serial.independent_set


class TestBackendAttributionAcrossProcesses:
    """Traces merge with backend/request attribution intact under the
    vectorized and auto backends, not just the flat one."""

    @pytest.mark.parametrize("algorithm", ["linear_time_vec", "linear_time_auto"])
    def test_worker_attribution_survives_backend_choice(self, algorithm):
        union, pooled, inline = _union()
        with telemetry_session("parallel-run") as tele:
            solve_by_components_parallel(
                union, algorithm, processes=2, min_component_size=100
            )
        merged = merge_traces([tele.to_records()])
        components = merged["components"]
        assert {c for c in components if c is not None} == pooled | inline
        parent_pid = os.getpid()
        for index in pooled:
            assert components[index]["pid"] != parent_pid
        for index in inline:
            assert components[index]["pid"] == parent_pid

    def test_auto_backend_pick_records_attributed_per_component(self):
        union, pooled, inline = _union()
        with telemetry_session("parallel-run") as tele:
            solve_by_components_parallel(
                union, "linear_time_auto", processes=2, min_component_size=100
            )
        records = tele.to_records()
        picks = [r for r in records if r.get("type") == "backend_pick"]
        # Every component's solve went through the dispatcher and said so.
        assert {_component_of(r) for r in picks} == pooled | inline
        assert all(r.get("backend") in ("flat", "vectorized") for r in picks)
        # Pooled picks were recorded by the worker that made them; inline
        # picks by the parent.
        parent_pid = os.getpid()
        for record in picks:
            if _component_of(record) in pooled:
                assert record["pid"] != parent_pid
            else:
                assert record["pid"] == parent_pid

    def test_request_stamp_propagates_to_worker_records(self):
        union, pooled, _inline = _union()
        with telemetry_session("parallel-run") as tele:
            with tele.scoped(request="req-test-42", tenant="acme"):
                solve_by_components_parallel(
                    union, "linear_time", processes=2, min_component_size=100
                )
        records = tele.to_records()
        worker_spans = [
            r
            for r in records
            if r.get("type") == "span" and r.get("pid") != os.getpid()
        ]
        assert worker_spans, "no worker spans adopted"
        # The parent's request context rode along in the worker stamp, so
        # a cross-process span still joins its originating request.
        for record in worker_spans:
            meta = record.get("meta", {})
            assert meta.get("request") == "req-test-42"
            assert meta.get("tenant") == "acme"
        stamped_components = {
            _component_of(r) for r in worker_spans if _component_of(r) is not None
        }
        assert stamped_components == pooled
