"""Trace file round-trips, worker collection, and cross-process merging."""

import json

from repro.obs.trace_io import (
    collect_worker_traces,
    load_trace,
    merge_traces,
    write_trace,
)


class TestWriteLoad:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        records = [
            {"type": "meta", "label": "run", "pid": 1},
            {"type": "span", "name": "reduce", "pid": 1, "wall": 0.5, "depth": 0},
        ]
        assert write_trace(path, records) == 2
        assert load_trace(path) == records

    def test_one_json_object_per_line(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_trace(path, [{"a": 1}, {"b": 2}])
        lines = [l for l in open(path, encoding="utf-8").read().splitlines() if l]
        assert len(lines) == 2
        for line in lines:
            json.loads(line)

    def test_stamp_fills_missing_fields_only(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_trace(
            path,
            [{"type": "span", "name": "reduce"}, {"type": "span", "component": 9}],
            stamp={"component": 3},
        )
        loaded = load_trace(path)
        assert loaded[0]["component"] == 3
        assert loaded[1]["component"] == 9  # record's own field wins

    def test_load_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"a": 1}\n\n{"b": 2}\n')
        assert load_trace(str(path)) == [{"a": 1}, {"b": 2}]


class TestCollect:
    def test_missing_worker_files_are_skipped(self, tmp_path):
        present = str(tmp_path / "w0.jsonl")
        write_trace(present, [{"type": "span", "name": "reduce"}])
        records = collect_worker_traces([present, str(tmp_path / "gone.jsonl")])
        assert len(records) == 1


class TestMerge:
    def test_components_attributed_to_their_pids(self):
        parent = [
            {"type": "meta", "label": "parent", "pid": 1},
            {"type": "span", "name": "merge", "pid": 1, "wall": 0.1, "depth": 0},
        ]
        worker = [
            {"type": "meta", "label": "worker-component-0", "pid": 2, "component": 0},
            {
                "type": "span",
                "name": "reduce",
                "pid": 2,
                "wall": 0.4,
                "depth": 0,
                "component": 0,
            },
            {
                "type": "span",
                "name": "replay",
                "pid": 2,
                "wall": 0.2,
                "depth": 1,
                "component": 0,
            },
        ]
        merged = merge_traces([parent, worker])
        assert len(merged["records"]) == 5
        assert merged["processes"] == {1: "parent", 2: "worker-component-0"}
        cell = merged["components"][0]
        assert cell["pid"] == 2
        assert cell["spans"] == ["reduce", "replay"]
        assert cell["wall"] == 0.4  # depth-0 spans only
        assert merged["components"][None]["pid"] == 1

    def test_component_read_from_span_meta(self):
        records = [
            {
                "type": "span",
                "name": "reduce",
                "pid": 5,
                "wall": 0.3,
                "depth": 0,
                "meta": {"component": 4},
            }
        ]
        merged = merge_traces([records])
        assert merged["components"][4]["pid"] == 5
