"""Tests for the telemetry primitives and the process-global flag."""

import pytest

from repro.obs.telemetry import (
    Telemetry,
    disable,
    enable,
    get_telemetry,
    phase,
    telemetry_session,
)


@pytest.fixture(autouse=True)
def _clean_flag():
    """Never leak an active sink into (or out of) a test."""
    disable()
    yield
    disable()


class TestGlobalFlag:
    def test_disabled_by_default(self):
        assert get_telemetry() is None

    def test_enable_returns_active_sink(self):
        sink = enable("run")
        assert get_telemetry() is sink
        assert sink.label == "run"

    def test_disable_returns_previous_sink(self):
        sink = enable()
        assert disable() is sink
        assert get_telemetry() is None

    def test_session_scopes_the_flag(self):
        with telemetry_session("scoped") as sink:
            assert get_telemetry() is sink
        assert get_telemetry() is None

    def test_session_tolerates_inner_disable(self):
        with telemetry_session():
            disable()
        assert get_telemetry() is None


class TestSpans:
    def test_span_records_wall_and_name(self):
        tele = Telemetry()
        with tele.span("reduce", algorithm="BDOne") as span:
            pass
        assert len(tele.spans) == 1
        assert tele.spans[0] is span
        assert span.name == "reduce"
        assert span.wall >= 0.0
        assert span.meta["algorithm"] == "BDOne"

    def test_nested_spans_record_depth(self):
        tele = Telemetry()
        with tele.span("outer"):
            with tele.span("inner"):
                pass
        by_name = {s.name: s for s in tele.spans}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert tele.span_total(depth=0) == by_name["outer"].wall

    def test_span_survives_exception(self):
        tele = Telemetry()
        with pytest.raises(ValueError):
            with tele.span("boom"):
                raise ValueError("x")
        assert [s.name for s in tele.spans] == ["boom"]

    def test_meta_written_inside_block_is_kept(self):
        tele = Telemetry()
        with tele.span("reduce") as span:
            span.meta["counters"] = {"peel": 3}
        assert tele.spans[0].to_record()["meta"]["counters"] == {"peel": 3}

    def test_scoped_context_stamps_spans(self):
        tele = Telemetry()
        with tele.scoped(component=7):
            with tele.span("reduce"):
                pass
        with tele.span("merge"):
            pass
        assert tele.spans[0].meta["component"] == 7
        assert "component" not in tele.spans[1].meta


class TestPhaseHelper:
    def test_phase_is_noop_when_disabled(self):
        with phase(None, "reduce") as span:
            span.meta["counters"] = {"peel": 1}  # absorbed, not recorded

    def test_phase_records_when_enabled(self):
        tele = Telemetry()
        with phase(tele, "reduce", graph="g") as span:
            span.meta["x"] = 1
        assert tele.spans[0].meta == {"graph": "g", "x": 1}


class TestCountersAndTimers:
    def test_count_and_add_counters_merge(self):
        tele = Telemetry()
        tele.count("peel")
        tele.count("peel", 2)
        tele.add_counters({"peel": 1, "degree-one": 5})
        assert tele.counters == {"peel": 4, "degree-one": 5}

    def test_timer_aggregates_count_and_total(self):
        tele = Telemetry()
        tele.timer("swap-scan", 0.25)
        tele.timer("swap-scan", 0.75)
        assert tele.timers["swap-scan"] == [2, 1.0]

    def test_timed_context_manager(self):
        tele = Telemetry()
        with tele.timed("scan"):
            pass
        count, total = tele.timers["scan"]
        assert count == 1 and total >= 0.0


class TestSerialisation:
    def test_to_records_shapes(self):
        tele = Telemetry(label="run")
        with tele.span("reduce"):
            pass
        tele.count("peel", 2)
        tele.timer("scan", 0.5)
        samples = tele.profile("BDOne", "g")
        samples.append((0, 10, 20, 10))
        tele.record({"type": "memory", "peak_bytes": 123})
        records = tele.to_records()
        kinds = [r["type"] for r in records]
        assert kinds == ["meta", "span", "counters", "timer", "profile", "memory"]
        assert records[0]["label"] == "run"
        assert records[2]["values"] == {"peel": 2}
        assert records[3] == {
            "type": "timer",
            "name": "scan",
            "pid": tele.pid,
            "count": 1,
            "total": 0.5,
        }
        assert records[4]["samples"] == [(0, 10, 20, 10)]

    def test_adopt_appends_foreign_records(self):
        tele = Telemetry()
        tele.adopt([{"type": "span", "name": "reduce", "pid": 99, "wall": 0.1}])
        assert tele.to_records()[-1]["pid"] == 99
