"""The bench-trajectory watchdog over synthetic committed baselines.

Fixtures write small ``BENCH_PR<N>.json`` files into a tmpdir shaped like
the real bench_regression reports (``timings[graph][track][field]``), so
the tests pin the whole surface: discovery/ordering, series
reconstruction across schemas that lack newer tracks, the slow-leak flag
the per-PR CI gate cannot see, rendering, and the CLI exit codes.
"""

import json

import pytest

from repro.obs.watch import (
    DEFAULT_TOLERANCE,
    build_trajectory,
    discover_baselines,
    main,
    render_watch_report,
)


def _write_baseline(directory, pr, walls, schema=6):
    """walls: {graph: {record_key: {field: wall}}}"""
    report = {"schema": schema, "suite": "full", "timings": walls}
    path = directory / f"BENCH_PR{pr}.json"
    path.write_text(json.dumps(report))
    return path


def _timings(flat_wall, repair_wall=None):
    cell = {"LinearTime": {"flat_wall": flat_wall}}
    if repair_wall is not None:
        cell["ServeIncremental"] = {"repair_wall": repair_wall}
    return {"gnm-3k": cell}


class TestDiscovery:
    def test_orders_by_pr_number(self, tmp_path):
        _write_baseline(tmp_path, 10, _timings(0.5))
        _write_baseline(tmp_path, 2, _timings(0.4))
        baselines = discover_baselines(str(tmp_path))
        assert [pr for pr, _, _ in baselines] == [2, 10]

    def test_ignores_non_baseline_files(self, tmp_path):
        _write_baseline(tmp_path, 1, _timings(0.4))
        (tmp_path / "BENCH_quick.json").write_text("{}")
        (tmp_path / "notes.txt").write_text("hi")
        assert len(discover_baselines(str(tmp_path))) == 1

    def test_corrupt_baseline_raises(self, tmp_path):
        (tmp_path / "BENCH_PR3.json").write_text("{not json")
        with pytest.raises(json.JSONDecodeError):
            discover_baselines(str(tmp_path))


class TestTrajectory:
    def test_flags_regression_past_tolerance(self, tmp_path):
        _write_baseline(tmp_path, 1, _timings(0.10))
        _write_baseline(tmp_path, 2, _timings(0.11))
        _write_baseline(tmp_path, 3, _timings(0.25))  # 2.5x the best
        trajectory = build_trajectory(
            discover_baselines(str(tmp_path)), tolerance=2.0
        )
        cell = trajectory["tracks"]["linear_time"]["gnm-3k"]
        assert cell["best"] == {"pr": 1, "wall": 0.10}
        assert cell["latest"] == {"pr": 3, "wall": 0.25}
        assert cell["regressed"]
        assert len(trajectory["regressions"]) == 1
        message = trajectory["regressions"][0]
        assert "linear_time on gnm-3k" in message
        assert "PR3" in message and "2.50x" in message

    def test_within_tolerance_is_clean(self, tmp_path):
        _write_baseline(tmp_path, 1, _timings(0.10))
        _write_baseline(tmp_path, 2, _timings(0.15))
        trajectory = build_trajectory(
            discover_baselines(str(tmp_path)), tolerance=2.0
        )
        assert trajectory["regressions"] == []
        assert not trajectory["tracks"]["linear_time"]["gnm-3k"]["regressed"]

    def test_recovery_after_slow_middle_is_clean(self, tmp_path):
        # Only the LATEST point is gated: a slow middle PR that later
        # recovered is history, not a regression.
        _write_baseline(tmp_path, 1, _timings(0.10))
        _write_baseline(tmp_path, 2, _timings(0.50))
        _write_baseline(tmp_path, 3, _timings(0.12))
        trajectory = build_trajectory(discover_baselines(str(tmp_path)))
        assert trajectory["regressions"] == []

    def test_series_starts_where_track_introduced(self, tmp_path):
        _write_baseline(tmp_path, 1, _timings(0.10))  # no serve track yet
        _write_baseline(tmp_path, 2, _timings(0.11, repair_wall=0.02))
        trajectory = build_trajectory(discover_baselines(str(tmp_path)))
        assert len(trajectory["tracks"]["linear_time"]["gnm-3k"]["series"]) == 2
        serve = trajectory["tracks"]["serve_incremental"]["gnm-3k"]
        assert serve["series"] == [{"pr": 2, "wall": 0.02}]

    def test_zero_and_missing_walls_are_skipped(self, tmp_path):
        _write_baseline(tmp_path, 1, {"gnm-3k": {"LinearTime": {"flat_wall": 0.0}}})
        _write_baseline(tmp_path, 2, {"gnm-3k": {"LinearTime": {"other": 1.0}}})
        trajectory = build_trajectory(discover_baselines(str(tmp_path)))
        assert trajectory["tracks"] == {}

    def test_baseline_metadata_recorded(self, tmp_path):
        _write_baseline(tmp_path, 4, _timings(0.1), schema=5)
        trajectory = build_trajectory(discover_baselines(str(tmp_path)))
        assert trajectory["tolerance"] == DEFAULT_TOLERANCE
        (entry,) = trajectory["baselines"]
        assert entry["pr"] == 4 and entry["schema"] == 5


class TestRenderAndCli:
    def test_render_mentions_flags_and_points(self, tmp_path):
        _write_baseline(tmp_path, 1, _timings(0.10))
        _write_baseline(tmp_path, 2, _timings(0.30))
        trajectory = build_trajectory(
            discover_baselines(str(tmp_path)), tolerance=2.0
        )
        text = render_watch_report(trajectory)
        assert "linear_time:" in text
        assert "REGRESSED" in text
        assert "1 trajectory regression(s):" in text

    def test_render_clean_run(self, tmp_path):
        _write_baseline(tmp_path, 1, _timings(0.10))
        trajectory = build_trajectory(discover_baselines(str(tmp_path)))
        assert "no trajectory regressions" in render_watch_report(trajectory)

    def test_main_strict_exit_codes(self, tmp_path, capsys):
        _write_baseline(tmp_path, 1, _timings(0.10))
        _write_baseline(tmp_path, 2, _timings(0.30))
        assert main(["--dir", str(tmp_path)]) == 0
        assert main(["--dir", str(tmp_path), "--strict"]) == 1
        assert (
            main(["--dir", str(tmp_path), "--strict", "--tolerance", "4.0"]) == 0
        )
        capsys.readouterr()

    def test_main_no_baselines_is_an_error(self, tmp_path, capsys):
        assert main(["--dir", str(tmp_path)]) == 1
        assert "no BENCH_PR*.json" in capsys.readouterr().out

    def test_main_json_out(self, tmp_path, capsys):
        _write_baseline(tmp_path, 1, _timings(0.10))
        out = tmp_path / "watch.json"
        assert main(["--dir", str(tmp_path), "--json", "--out", str(out)]) == 0
        capsys.readouterr()
        written = json.loads(out.read_text())
        assert written["tracks"]["linear_time"]["gnm-3k"]["series"]
