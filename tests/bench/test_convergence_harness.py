"""Tests for the Eval-IV convergence harness."""

from repro.bench import render_convergence, run_convergence_suite
from repro.bench.convergence import ConvergenceRun
from repro.graphs import gnm_random_graph, path_graph


class TestConvergenceRun:
    def test_properties(self):
        run = ConvergenceRun("ARW", ((0.1, 10), (0.4, 12)))
        assert run.first_size == 10
        assert run.first_time == 0.1
        assert run.final_size == 12

    def test_empty_run(self):
        run = ConvergenceRun("ARW", ())
        assert run.final_size == 0
        assert run.first_size == 0
        assert run.first_time == float("inf")


class TestSuite:
    def test_all_five_contenders(self):
        g = gnm_random_graph(150, 450, seed=5)
        runs = run_convergence_suite(g, time_budget=0.1, seed=1)
        assert set(runs) == {"ARW", "OnlineMIS", "ReduMIS", "ARW-LT", "ARW-NL"}

    def test_events_at_full_graph_scale(self):
        # Mostly-reducible graph: every contender's final size must be in
        # the same ballpark (full-graph scale, not kernel scale).
        g = path_graph(400)
        runs = run_convergence_suite(g, time_budget=0.1, seed=2)
        for run in runs.values():
            assert run.final_size >= 150  # alpha = 200

    def test_render_contains_all_names(self):
        g = gnm_random_graph(100, 250, seed=8)
        runs = run_convergence_suite(g, time_budget=0.05, seed=3)
        text = render_convergence("demo", runs)
        for name in ("ARW", "OnlineMIS", "ReduMIS", "ARW-LT", "ARW-NL"):
            assert name in text
        assert "demo" in text
