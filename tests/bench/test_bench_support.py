"""Tests for the benchmark harness support modules."""

import pytest

from repro.bench import (
    ALL_DATASETS,
    EASY_DATASETS,
    HARD_DATASETS,
    RunRecord,
    dataset_names,
    format_number,
    format_seconds,
    load,
    render_table,
    run_algorithms,
    time_call,
)
from repro.core import bdone, linear_time
from repro.errors import ReproError


class TestDatasets:
    def test_twelve_easy_eight_hard(self):
        assert len(EASY_DATASETS) == 12
        assert len(HARD_DATASETS) == 8
        assert len(ALL_DATASETS) == 20

    def test_names_kinds(self):
        assert len(dataset_names("easy")) == 12
        assert len(dataset_names("hard")) == 8
        assert len(dataset_names("all")) == 20
        with pytest.raises(ReproError):
            dataset_names("medium")

    def test_unknown_dataset_raises(self):
        with pytest.raises(ReproError):
            load("nonexistent-sim")

    def test_load_is_cached_and_deterministic(self):
        a = load("GrQc-sim")
        b = load("GrQc-sim")
        assert a is b
        assert a.name == "GrQc-sim"

    def test_average_degrees_roughly_match_specs(self):
        for spec in EASY_DATASETS[:4]:
            g = load(spec.name)
            assert g.n == spec.n
            assert 0.4 * spec.average_degree < g.average_degree() < 2.0 * spec.average_degree


class TestTables:
    def test_format_number(self):
        assert format_number(1234567) == "1,234,567"
        assert format_number(None) == "-"
        assert format_number(True) == "yes"
        assert format_number(2.0) == "2"
        assert format_number(2.5) == "2.500"
        assert format_number("x") == "x"

    def test_format_seconds(self):
        assert format_seconds(0.0000005).endswith("µs")
        assert format_seconds(0.005).endswith("ms")
        assert format_seconds(2.0).endswith("s")

    def test_render_table_alignment(self):
        text = render_table(
            ["Graph", "Size"],
            [["GrQc", 2459], ["dblp", 434289]],
            title="Demo",
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "Graph" in lines[1]
        assert "---" in lines[2]
        assert "434,289" in lines[4]


class TestRunner:
    def test_time_call(self):
        value, elapsed = time_call(lambda: 42)
        assert value == 42
        assert elapsed >= 0.0

    def test_run_algorithms_records(self):
        g = load("GrQc-sim")
        records = run_algorithms(g, [("BDOne", bdone), ("LinearTime", linear_time)])
        assert [r.algorithm for r in records] == ["BDOne", "LinearTime"]
        assert all(r.size > 0 for r in records)
        assert all(r.model_memory_words > 0 for r in records)


class TestRunRecordClocks:
    """``solver_elapsed`` is derived from the result; the harness clock
    wraps it, so ``0 <= solver_elapsed <= elapsed`` is an invariant."""

    def test_from_result_derives_solver_elapsed(self):
        g = load("GrQc-sim")
        result, elapsed = time_call(lambda: bdone(g))
        record = RunRecord.from_result("BDOne", result, elapsed)
        assert record.solver_elapsed == result.elapsed
        assert record.graph_name == result.graph_name
        assert record.size == result.size

    def test_clock_invariant_holds(self):
        g = load("GrQc-sim")
        for record in run_algorithms(g, [("BDOne", bdone), ("LinearTime", linear_time)]):
            assert 0.0 <= record.solver_elapsed <= record.elapsed
            assert record.overhead >= 0.0
            assert record.overhead == record.elapsed - record.solver_elapsed

    def test_jittered_harness_clock_is_clamped_up(self):
        g = load("GrQc-sim")
        result = bdone(g)
        # A harness reading *below* the solver's own clock (sub-µs timer
        # jitter) must not produce a negative overhead.
        record = RunRecord.from_result("BDOne", result, result.elapsed / 2)
        assert record.elapsed == result.elapsed
        assert record.overhead == 0.0
