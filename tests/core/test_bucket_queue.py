"""Tests for the lazy bin-sort degree selectors."""

from repro.core.bucket_queue import MaxDegreeSelector, MinDegreeSelector


class TestMaxDegreeSelector:
    def test_pops_maximum_first(self):
        degrees = [3, 1, 4, 1, 5]
        alive = bytearray([1] * 5)
        selector = MaxDegreeSelector(degrees, alive)
        assert selector.pop_max() == 4
        assert selector.pop_max() == 2

    def test_skips_dead_vertices(self):
        degrees = [3, 5]
        alive = bytearray([1, 0])
        selector = MaxDegreeSelector(degrees, alive)
        assert selector.pop_max() == 0

    def test_lazy_relocation_on_decreased_degree(self):
        degrees = [5, 4]
        alive = bytearray([1, 1])
        selector = MaxDegreeSelector(degrees, alive)
        degrees[0] = 2  # decreased after construction
        assert selector.pop_max() == 1  # 4 beats the relocated 2
        assert selector.pop_max() == 0

    def test_returns_none_when_exhausted(self):
        degrees = [1]
        alive = bytearray([1])
        selector = MaxDegreeSelector(degrees, alive)
        alive[0] = 0
        assert selector.pop_max() is None

    def test_degree_zero_never_returned(self):
        degrees = [0, 0]
        alive = bytearray([1, 1])
        selector = MaxDegreeSelector(degrees, alive)
        assert selector.pop_max() is None

    def test_notify_increase_raises_pointer(self):
        degrees = [2, 2]
        alive = bytearray([1, 1])
        selector = MaxDegreeSelector(degrees, alive)
        assert selector.pop_max() in (0, 1)
        degrees[0] = 7  # contraction grew the degree
        selector.notify_increase(0)
        assert selector.pop_max() == 0

    def test_empty_graph(self):
        selector = MaxDegreeSelector([], bytearray())
        assert selector.pop_max() is None

    def test_drain_matches_sorted_order(self):
        degrees = [4, 2, 7, 7, 1, 3]
        alive = bytearray([1] * 6)
        selector = MaxDegreeSelector(list(degrees), alive)
        seen = []
        while True:
            v = selector.pop_max()
            if v is None:
                break
            alive[v] = 0
            seen.append(degrees[v])
        assert seen == sorted([d for d in degrees if d > 0], reverse=True)


class TestMinDegreeSelector:
    def test_pops_minimum_first(self):
        degrees = [3, 1, 4]
        alive = bytearray([1] * 3)
        selector = MinDegreeSelector(degrees, alive)
        assert selector.pop_min() == 1

    def test_includes_degree_zero(self):
        degrees = [0, 2]
        alive = bytearray([1, 1])
        selector = MinDegreeSelector(degrees, alive)
        assert selector.pop_min() == 0

    def test_notify_decrease_lowers_pointer(self):
        degrees = [3, 3]
        alive = bytearray([1, 1])
        selector = MinDegreeSelector(degrees, alive)
        first = selector.pop_min()
        alive[first] = 0
        other = 1 - first
        degrees[other] = 1
        selector.notify_decrease(other)
        assert selector.pop_min() == other

    def test_stale_entries_skipped(self):
        degrees = [2, 3]
        alive = bytearray([1, 1])
        selector = MinDegreeSelector(degrees, alive)
        degrees[1] = 1
        selector.notify_decrease(1)
        assert selector.pop_min() == 1
        alive[1] = 0
        assert selector.pop_min() == 0
        alive[0] = 0
        assert selector.pop_min() is None


class TestLazyInvariants:
    """The lazy-update contracts the algorithms rely on (Section 3.2)."""

    def test_stale_max_entry_relocates_then_pops_at_true_degree(self):
        # A decrement leaves the old bucket entry in place; pop must move it
        # down (not return it at the stale degree) and find it again later.
        degrees = [5, 3]
        alive = bytearray([1, 1])
        selector = MaxDegreeSelector(degrees, alive)
        degrees[0] = 2
        assert selector.pop_max() == 1  # 3 beats relocated 2
        alive[1] = 0
        assert selector.pop_max() == 0  # found again in bucket 2

    def test_notify_increase_repush_drops_stale_copy(self):
        # After notify_increase the vertex has two bucket entries; the fresh
        # high one is popped first and the stale low one (d > current when
        # reached) must be dropped, not relocated or returned.
        degrees = [4, 3]
        alive = bytearray([1, 1])
        selector = MaxDegreeSelector(degrees, alive)
        degrees[0] = 6
        selector.notify_increase(0)
        assert selector.pop_max() == 0  # fresh copy at degree 6
        # 0 stays alive: the stale copy in bucket 4 is now reachable.
        assert selector.pop_max() == 1  # stale 0 dropped, not re-returned

    def test_repeated_increase_decrease_cycle(self):
        degrees = [2]
        alive = bytearray([1])
        selector = MaxDegreeSelector(degrees, alive)
        degrees[0] = 5
        selector.notify_increase(0)
        degrees[0] = 1  # decreased again before any pop
        assert selector.pop_max() == 0  # relocated from 5 (and from 2) to 1
        alive[0] = 0
        assert selector.pop_max() is None

    def test_max_empty_graph_pops_none_repeatedly(self):
        selector = MaxDegreeSelector([], bytearray())
        assert selector.pop_max() is None
        assert selector.pop_max() is None

    def test_min_empty_graph_pops_none_repeatedly(self):
        selector = MinDegreeSelector([], bytearray())
        assert selector.pop_min() is None
        assert selector.pop_min() is None

    def test_min_stale_entry_above_true_bucket_never_returned_stale(self):
        degrees = [4, 2]
        alive = bytearray([1, 1])
        selector = MinDegreeSelector(degrees, alive)
        degrees[0] = 1
        selector.notify_decrease(0)
        assert selector.pop_min() == 0  # fresh copy at 1, not stale 4
        alive[0] = 0
        assert selector.pop_min() == 1
        alive[1] = 0
        assert selector.pop_min() is None
