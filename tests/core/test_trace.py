"""Tests for the decision log and solution reconstruction."""

from repro.core.trace import DecisionLog, extend_to_maximal
from repro.graphs import Graph, path_graph, cycle_graph


class TestBasicReplay:
    def test_includes_survive(self):
        g = path_graph(3)
        log = DecisionLog()
        log.include(0)
        log.exclude(1)
        outcome = log.replay(g, extend_maximal=False)
        assert outcome.vertices == {0}

    def test_maximal_extension_fills_gaps(self):
        g = path_graph(5)
        log = DecisionLog()
        outcome = log.replay(g)
        # First-fit extension on a path takes 0, 2, 4.
        assert outcome.vertices == {0, 2, 4}

    def test_peel_bookkeeping(self):
        g = path_graph(2)
        log = DecisionLog()
        log.peel(0)
        log.include(1)
        outcome = log.replay(g, extend_maximal=False)
        assert outcome.peeled == 1
        assert outcome.surviving_peels == 1
        assert outcome.upper_bound == 2
        assert not outcome.is_exact

    def test_peeled_vertex_readded_by_extension(self):
        g = path_graph(3)
        log = DecisionLog()
        log.peel(0)
        log.include(2)
        outcome = log.replay(g)
        # 0 has no solution neighbour, so extension re-adds it: R empty.
        assert 0 in outcome.vertices
        assert outcome.surviving_peels == 0
        assert outcome.is_exact


class TestPathEntries:
    def test_path_vertex_added_when_blockers_out(self):
        g = path_graph(3)
        log = DecisionLog()
        log.push_path(1, 0, 2)
        outcome = log.replay(g, extend_maximal=False)
        assert 1 in outcome.vertices

    def test_path_vertex_skipped_when_blocker_in(self):
        g = path_graph(3)
        log = DecisionLog()
        log.include(0)
        log.push_path(1, 0, 2)
        outcome = log.replay(g, extend_maximal=False)
        assert 1 not in outcome.vertices

    def test_pop_order_is_reverse_push_order(self):
        # Path 0-1-2-3-4: push 3 then 2 then 1 (pop order 1, 2, 3) with
        # vertex 0 included: alternation takes 2 and 4... here only the
        # pushed ones: skip 1 (blocked by 0), add 2, skip 3.
        g = path_graph(5)
        log = DecisionLog()
        log.include(0)
        log.push_path(3, 2, 4)
        log.push_path(2, 1, 3)
        log.push_path(1, 0, 2)
        outcome = log.replay(g, extend_maximal=False)
        assert outcome.vertices == {0, 2}

    def test_alpha_offset_counts_half_of_path_entries(self):
        log = DecisionLog()
        log.push_path(1, 0, 2)
        log.push_path(2, 1, 3)
        log.include(9)
        log.fold(4, 5, 6)
        assert log.alpha_offset == 1 + 1 + 1  # include + fold + 2 paths / 2


class TestFoldEntries:
    def test_fold_takes_v_when_supervertex_in(self):
        g = Graph.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        log = DecisionLog()
        log.fold(0, 1, 2)  # u=0 folded with v=1 into supervertex w=2
        log.include(2)
        outcome = log.replay(g, extend_maximal=False)
        assert outcome.vertices == {1, 2}

    def test_fold_takes_u_when_supervertex_out(self):
        g = Graph.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        log = DecisionLog()
        log.fold(0, 1, 2)
        log.exclude(2)
        outcome = log.replay(g, extend_maximal=False)
        assert outcome.vertices == {0}

    def test_nested_folds_resolve_in_reverse(self):
        g = path_graph(6)
        log = DecisionLog()
        log.fold(0, 1, 2)  # earlier fold references supervertex 2...
        log.fold(2, 3, 4)  # ...which is itself folded later into 4.
        log.include(4)
        outcome = log.replay(g, extend_maximal=False)
        # Reverse replay: 4 in I -> add 3 (fold 2); 2 not in I -> add 0.
        assert outcome.vertices == {0, 3, 4}


class TestLogUtilities:
    def test_copy_is_independent(self):
        log = DecisionLog()
        log.include(0)
        clone = log.copy()
        clone.include(1)
        assert len(log) == 1
        assert len(clone) == 2

    def test_extend_mapped_translates_ids(self):
        g = path_graph(4)
        inner = DecisionLog()
        inner.include(0)
        inner.push_path(1, 0, 2)
        outer = DecisionLog()
        outer.extend_mapped(inner, [3, 2, 1, 0])
        outcome = outer.replay(g, extend_maximal=False)
        assert 3 in outcome.vertices  # include mapped 0 -> 3
        # Path entry mapped to (2, blockers 3 and 1): 3 in I blocks it.
        assert 2 not in outcome.vertices

    def test_stats_merge_on_extend(self):
        a = DecisionLog()
        a.bump("rule", 2)
        b = DecisionLog()
        b.bump("rule", 3)
        a.extend_mapped(b, [])
        assert a.stats["rule"] == 5

    def test_peel_count(self):
        log = DecisionLog()
        log.peel(1)
        log.peel(2)
        log.include(3)
        assert log.peel_count == 2


class TestResolveExtendSplit:
    def test_resolve_matches_unextended_replay(self):
        g = path_graph(6)
        log = DecisionLog()
        log.include(0)
        log.peel(3)
        log.push_path(1, 0, 2)
        in_set, peeled = log.resolve(g.n)
        outcome = log.replay(g, extend_maximal=False)
        assert in_set == outcome.in_set
        assert peeled == [3]

    def test_extend_to_maximal_is_first_fit(self):
        g = path_graph(5)
        in_set = [False] * 5
        extend_to_maximal(in_set, g)
        assert [v for v in range(5) if in_set[v]] == [0, 2, 4]

    def test_extend_to_maximal_respects_existing_vertices(self):
        g = path_graph(5)
        in_set = [False, True, False, False, False]
        extend_to_maximal(in_set, g)
        assert [v for v in range(5) if in_set[v]] == [1, 3]


class TestFoldAfterPath:
    def test_later_fold_decides_earlier_path_entry(self):
        # Chronological order: PATH then FOLD.  The backward pass resolves
        # the fold FIRST (supervertex 4 out -> u=2 joins), and only then the
        # path entry, which must see blocker 2 inside and keep 1 out.
        g = path_graph(5)
        log = DecisionLog()
        log.push_path(1, 0, 2)
        log.fold(2, 3, 4)
        outcome = log.replay(g, extend_maximal=False)
        assert 2 in outcome.vertices
        assert 1 not in outcome.vertices

    def test_fold_supervertex_in_routes_v_and_frees_the_path(self):
        # With 4 included, the fold takes v=3 instead of u=2; both of the
        # path entry's blockers stay out, so 1 re-enters on replay.
        g = path_graph(5)
        log = DecisionLog()
        log.include(4)
        log.push_path(1, 0, 2)
        log.fold(2, 3, 4)
        outcome = log.replay(g, extend_maximal=False)
        assert 3 in outcome.vertices
        assert 2 not in outcome.vertices
        assert 1 in outcome.vertices


class TestEmptyLog:
    def test_empty_log_unextended_replay_is_empty(self):
        g = cycle_graph(4)
        outcome = DecisionLog().replay(g, extend_maximal=False)
        assert outcome.vertices == frozenset()
        assert outcome.peeled == 0
        assert outcome.surviving_peels == 0
        assert outcome.is_exact
        assert outcome.upper_bound == 0

    def test_empty_log_extended_replay_is_greedy_maximal(self):
        g = cycle_graph(5)
        outcome = DecisionLog().replay(g)
        assert outcome.vertices == {0, 2}

    def test_empty_log_on_empty_graph(self):
        g = Graph.empty(0)
        outcome = DecisionLog().replay(g)
        assert outcome.vertices == frozenset()
        assert outcome.upper_bound == 0

    def test_empty_log_resolve(self):
        in_set, peeled = DecisionLog().resolve(3)
        assert in_set == [False, False, False]
        assert peeled == []
