"""Tests for the decision log and solution reconstruction."""

from repro.core.trace import DecisionLog, extend_to_maximal
from repro.graphs import Graph, path_graph, cycle_graph


class TestBasicReplay:
    def test_includes_survive(self):
        g = path_graph(3)
        log = DecisionLog()
        log.include(0)
        log.exclude(1)
        outcome = log.replay(g, extend_maximal=False)
        assert outcome.vertices == {0}

    def test_maximal_extension_fills_gaps(self):
        g = path_graph(5)
        log = DecisionLog()
        outcome = log.replay(g)
        # First-fit extension on a path takes 0, 2, 4.
        assert outcome.vertices == {0, 2, 4}

    def test_peel_bookkeeping(self):
        g = path_graph(2)
        log = DecisionLog()
        log.peel(0)
        log.include(1)
        outcome = log.replay(g, extend_maximal=False)
        assert outcome.peeled == 1
        assert outcome.surviving_peels == 1
        assert outcome.upper_bound == 2
        assert not outcome.is_exact

    def test_peeled_vertex_readded_by_extension(self):
        g = path_graph(3)
        log = DecisionLog()
        log.peel(0)
        log.include(2)
        outcome = log.replay(g)
        # 0 has no solution neighbour, so extension re-adds it: R empty.
        assert 0 in outcome.vertices
        assert outcome.surviving_peels == 0
        assert outcome.is_exact


class TestPathEntries:
    def test_path_vertex_added_when_blockers_out(self):
        g = path_graph(3)
        log = DecisionLog()
        log.push_path(1, 0, 2)
        outcome = log.replay(g, extend_maximal=False)
        assert 1 in outcome.vertices

    def test_path_vertex_skipped_when_blocker_in(self):
        g = path_graph(3)
        log = DecisionLog()
        log.include(0)
        log.push_path(1, 0, 2)
        outcome = log.replay(g, extend_maximal=False)
        assert 1 not in outcome.vertices

    def test_pop_order_is_reverse_push_order(self):
        # Path 0-1-2-3-4: push 3 then 2 then 1 (pop order 1, 2, 3) with
        # vertex 0 included: alternation takes 2 and 4... here only the
        # pushed ones: skip 1 (blocked by 0), add 2, skip 3.
        g = path_graph(5)
        log = DecisionLog()
        log.include(0)
        log.push_path(3, 2, 4)
        log.push_path(2, 1, 3)
        log.push_path(1, 0, 2)
        outcome = log.replay(g, extend_maximal=False)
        assert outcome.vertices == {0, 2}

    def test_alpha_offset_counts_half_of_path_entries(self):
        log = DecisionLog()
        log.push_path(1, 0, 2)
        log.push_path(2, 1, 3)
        log.include(9)
        log.fold(4, 5, 6)
        assert log.alpha_offset == 1 + 1 + 1  # include + fold + 2 paths / 2


class TestFoldEntries:
    def test_fold_takes_v_when_supervertex_in(self):
        g = Graph.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        log = DecisionLog()
        log.fold(0, 1, 2)  # u=0 folded with v=1 into supervertex w=2
        log.include(2)
        outcome = log.replay(g, extend_maximal=False)
        assert outcome.vertices == {1, 2}

    def test_fold_takes_u_when_supervertex_out(self):
        g = Graph.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        log = DecisionLog()
        log.fold(0, 1, 2)
        log.exclude(2)
        outcome = log.replay(g, extend_maximal=False)
        assert outcome.vertices == {0}

    def test_nested_folds_resolve_in_reverse(self):
        g = path_graph(6)
        log = DecisionLog()
        log.fold(0, 1, 2)  # earlier fold references supervertex 2...
        log.fold(2, 3, 4)  # ...which is itself folded later into 4.
        log.include(4)
        outcome = log.replay(g, extend_maximal=False)
        # Reverse replay: 4 in I -> add 3 (fold 2); 2 not in I -> add 0.
        assert outcome.vertices == {0, 3, 4}


class TestLogUtilities:
    def test_copy_is_independent(self):
        log = DecisionLog()
        log.include(0)
        clone = log.copy()
        clone.include(1)
        assert len(log) == 1
        assert len(clone) == 2

    def test_extend_mapped_translates_ids(self):
        g = path_graph(4)
        inner = DecisionLog()
        inner.include(0)
        inner.push_path(1, 0, 2)
        outer = DecisionLog()
        outer.extend_mapped(inner, [3, 2, 1, 0])
        outcome = outer.replay(g, extend_maximal=False)
        assert 3 in outcome.vertices  # include mapped 0 -> 3
        # Path entry mapped to (2, blockers 3 and 1): 3 in I blocks it.
        assert 2 not in outcome.vertices

    def test_stats_merge_on_extend(self):
        a = DecisionLog()
        a.bump("rule", 2)
        b = DecisionLog()
        b.bump("rule", 3)
        a.extend_mapped(b, [])
        assert a.stats["rule"] == 5

    def test_peel_count(self):
        log = DecisionLog()
        log.peel(1)
        log.peel(2)
        log.include(3)
        assert log.peel_count == 2


class TestResolveExtendSplit:
    def test_resolve_matches_unextended_replay(self):
        g = path_graph(6)
        log = DecisionLog()
        log.include(0)
        log.peel(3)
        log.push_path(1, 0, 2)
        in_set, peeled = log.resolve(g.n)
        outcome = log.replay(g, extend_maximal=False)
        assert in_set == outcome.in_set
        assert peeled == [3]

    def test_extend_to_maximal_is_first_fit(self):
        g = path_graph(5)
        in_set = [False] * 5
        extend_to_maximal(in_set, g)
        assert [v for v in range(5) if in_set[v]] == [0, 2, 4]

    def test_extend_to_maximal_respects_existing_vertices(self):
        g = path_graph(5)
        in_set = [False, True, False, False, False]
        extend_to_maximal(in_set, g)
        assert [v for v in range(5) if in_set[v]] == [1, 3]


class TestFoldAfterPath:
    def test_later_fold_decides_earlier_path_entry(self):
        # Chronological order: PATH then FOLD.  The backward pass resolves
        # the fold FIRST (supervertex 4 out -> u=2 joins), and only then the
        # path entry, which must see blocker 2 inside and keep 1 out.
        g = path_graph(5)
        log = DecisionLog()
        log.push_path(1, 0, 2)
        log.fold(2, 3, 4)
        outcome = log.replay(g, extend_maximal=False)
        assert 2 in outcome.vertices
        assert 1 not in outcome.vertices

    def test_fold_supervertex_in_routes_v_and_frees_the_path(self):
        # With 4 included, the fold takes v=3 instead of u=2; both of the
        # path entry's blockers stay out, so 1 re-enters on replay.
        g = path_graph(5)
        log = DecisionLog()
        log.include(4)
        log.push_path(1, 0, 2)
        log.fold(2, 3, 4)
        outcome = log.replay(g, extend_maximal=False)
        assert 3 in outcome.vertices
        assert 2 not in outcome.vertices
        assert 1 in outcome.vertices


class TestEmptyLog:
    def test_empty_log_unextended_replay_is_empty(self):
        g = cycle_graph(4)
        outcome = DecisionLog().replay(g, extend_maximal=False)
        assert outcome.vertices == frozenset()
        assert outcome.peeled == 0
        assert outcome.surviving_peels == 0
        assert outcome.is_exact
        assert outcome.upper_bound == 0

    def test_empty_log_extended_replay_is_greedy_maximal(self):
        g = cycle_graph(5)
        outcome = DecisionLog().replay(g)
        assert outcome.vertices == {0, 2}

    def test_empty_log_on_empty_graph(self):
        g = Graph.empty(0)
        outcome = DecisionLog().replay(g)
        assert outcome.vertices == frozenset()
        assert outcome.upper_bound == 0

    def test_empty_log_resolve(self):
        in_set, peeled = DecisionLog().resolve(3)
        assert in_set == [False, False, False]
        assert peeled == []


class TestInterleavedFoldPath:
    """FOLD and PATH entries interleaved across the log.

    Replay walks the log *backwards*, so a later fold can decide the
    blockers of an earlier path entry and vice versa.  These scenarios pin
    that dependency order down — they are the cases localized repair
    replays when a mutated component's kernel log mixes both rule kinds.
    """

    def test_fold_then_path_sharing_the_supervertex(self):
        # Path entry blocked by supervertex w=2; the fold resolves first
        # (it is later in the log) and decides whether 2 is in.
        log = DecisionLog()
        log.fold(0, 1, 2)        # earlier fold: u=0 v=1 w=2
        log.push_path(3, 2, 4)   # later path entry, blocker 2
        log.include(2)           # kernel put the supervertex in
        in_set, _ = log.resolve(5)
        # Backwards: path first — blocker 2 in → 3 stays out; then fold
        # routes the supervertex to v=1.
        assert in_set[1] and in_set[2]
        assert not in_set[0] and not in_set[3]

    def test_path_then_fold_where_fold_decides_blocker(self):
        # The path entry is *earlier*, so on the backwards walk the fold
        # resolves first and its outcome (u=1 joins) blocks the path vertex.
        log = DecisionLog()
        log.push_path(0, 1, 2)
        log.fold(1, 3, 4)        # supervertex w=4 stays out → u=1 joins
        in_set, _ = log.resolve(5)
        assert in_set[1]
        assert not in_set[0]     # blocker 1 in → path vertex out

    def test_path_resolved_before_earlier_fold_sees_it(self):
        # Backwards order: PATH (latest) → FOLD.  The path vertex joins
        # (both blockers out) and then the fold reads that fresh decision:
        # its supervertex w=0 is now in, so v=2 joins instead of u=1.
        log = DecisionLog()
        log.fold(1, 2, 0)
        log.push_path(0, 3, 4)
        in_set, _ = log.resolve(5)
        assert in_set[0]         # path: blockers 3, 4 both out
        assert in_set[2]         # fold saw w=0 in → v joins
        assert not in_set[1]

    def test_alternating_chain_of_folds_and_paths(self):
        # fold(0,1,2) … path(3 | 2,4) … fold(4,5,6) … path(7 | 6,8),
        # resolved strictly backwards: 7 joins (6, 8 out) → fold picks
        # u=4 (w=6 out) → path 3 blocked by 4?  No: blockers are 2 and 4,
        # 4 is now in → 3 stays out → fold picks v?  w=2 out → u=0 joins.
        log = DecisionLog()
        log.fold(0, 1, 2)
        log.push_path(3, 2, 4)
        log.fold(4, 5, 6)
        log.push_path(7, 6, 8)
        in_set, _ = log.resolve(9)
        assert in_set[7]
        assert in_set[4]
        assert not in_set[3]
        assert in_set[0]
        assert not in_set[1] and not in_set[5]

    def test_interleaved_log_on_mutated_component_subgraph(self):
        # End-to-end: kernelize a component, mutate a *different* part of
        # the graph, and replay the old log mapped onto the snapshot — the
        # deferred decisions must still resolve to a valid independent set
        # on the untouched component.
        from repro.analysis import assert_valid_solution
        from repro.core.near_linear import near_linear
        from repro.graphs import disjoint_union
        from repro.graphs.generators import gnm_random_graph
        from repro.serve import DynamicGraph

        component_a = gnm_random_graph(40, 90, seed=21)
        component_b = cycle_graph(9)
        union = disjoint_union([component_a, component_b])
        dynamic = DynamicGraph(union)
        # Mutate only inside component B's id range (40..48).
        dynamic.add_edge(40, 44)
        dynamic.remove_edge(41, 42)
        snapshot, old_ids = dynamic.snapshot()
        assert old_ids == list(range(union.n))  # no removals: ids align
        # Component A was untouched: its sub-solution replays cleanly on
        # the mutated snapshot.
        result = near_linear(component_a)
        survivors = set(result.independent_set)
        in_set = [v in survivors for v in range(snapshot.n)]
        for v in range(40, snapshot.n):
            assert not in_set[v]
        extend_to_maximal(in_set, snapshot)
        assert_valid_solution(snapshot, [v for v in range(snapshot.n) if in_set[v]])

    def test_payload_round_trip_preserves_interleaved_order(self):
        log = DecisionLog()
        log.include(9)
        log.fold(0, 1, 2)
        log.push_path(3, 2, 4)
        log.peel(5)
        log.fold(4, 5, 6)
        log.push_path(7, 6, 8)
        log.bump("degree-two-fold", 2)
        restored = DecisionLog.from_payload(log.to_payload())
        assert restored.entries == log.entries
        assert restored.stats == log.stats
        assert restored.resolve(10) == log.resolve(10)
