"""Tests for the stand-alone exact reduction rules.

Each rule's α-arithmetic is validated against brute force on both crafted
and randomized instances.
"""

import pytest

from repro.core.reductions import (
    find_dominated_vertex,
    find_twin_pair,
    find_unconfined_vertex,
    is_dominated_by,
    is_unconfined,
    reduce_degree_one,
    reduce_degree_two_folding,
    reduce_degree_two_isolation,
    reduce_dominance,
    reduce_twin,
    reduce_unconfined,
)
from repro.errors import GraphError
from repro.exact import brute_force_alpha
from repro.graphs import (
    Graph,
    gnm_random_graph,
    isolated_clique_gadget,
    mutual_dominance_gadget,
    paper_figure1,
    path_graph,
    star_graph,
)


class TestDegreeOne:
    def test_on_path(self):
        g = path_graph(4)
        application = reduce_degree_one(g, 0)
        assert application.alpha_offset == 1
        assert application.reduced.n == 2
        assert brute_force_alpha(g) == brute_force_alpha(application.reduced) + 1

    def test_requires_degree_one(self):
        with pytest.raises(GraphError):
            reduce_degree_one(path_graph(3), 1)

    def test_star_center_removed(self):
        g = star_graph(3)
        application = reduce_degree_one(g, 1)
        # Removing the centre isolates the other leaves.
        assert application.reduced.m == 0
        assert application.reduced.n == 2


class TestIsolation:
    def test_on_triangle_with_tail(self):
        g = Graph.from_edges(5, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 4)])
        application = reduce_degree_two_isolation(g, 0)
        assert application.alpha_offset == 1
        assert brute_force_alpha(g) == brute_force_alpha(application.reduced) + 1

    def test_requires_adjacent_neighbors(self):
        with pytest.raises(GraphError):
            reduce_degree_two_isolation(path_graph(3), 1)

    def test_requires_degree_two(self):
        with pytest.raises(GraphError):
            reduce_degree_two_isolation(path_graph(3), 0)


class TestFolding:
    def test_on_path_middle(self):
        g = path_graph(5)
        application = reduce_degree_two_folding(g, 2)
        assert application.alpha_offset == 1
        assert application.fold_record == (2, 1, 3)
        assert brute_force_alpha(g) == brute_force_alpha(application.reduced) + 1

    def test_supervertex_absorbs_neighbourhoods(self):
        # 0-1-2 path with 0 and 2 each having an extra pendant.
        g = Graph.from_edges(5, [(0, 1), (1, 2), (0, 3), (2, 4)])
        application = reduce_degree_two_folding(g, 1)
        reduced = application.reduced
        # Supervertex (old id 2) must now see both pendants 3 and 4.
        new_of = {old: new for new, old in enumerate(application.old_ids)}
        super_id = new_of[2]
        assert set(reduced.neighbors(super_id)) == {new_of[3], new_of[4]}

    def test_requires_nonadjacent_neighbors(self):
        g = Graph.from_edges(3, [(0, 1), (0, 2), (1, 2)])
        with pytest.raises(GraphError):
            reduce_degree_two_folding(g, 0)

    @pytest.mark.parametrize("seed", range(30))
    def test_folding_preserves_alpha_randomized(self, seed):
        g = gnm_random_graph(12, 16, seed=seed)
        target = next(
            (
                u
                for u in range(g.n)
                if g.degree(u) == 2 and not g.has_edge(*g.neighbors(u))
            ),
            None,
        )
        if target is None:
            pytest.skip("no foldable vertex in this instance")
        application = reduce_degree_two_folding(g, target)
        assert brute_force_alpha(g) == brute_force_alpha(application.reduced) + 1


class TestDominance:
    def test_definition(self):
        g = paper_figure1()
        # v2 (id 1) and v3 (id 2) are twins inside a triangle with v1:
        # each dominates the other.
        assert is_dominated_by(g, 1, 2)
        assert is_dominated_by(g, 2, 1)

    def test_non_dominance(self):
        g = path_graph(4)
        assert not is_dominated_by(g, 1, 2)

    def test_requires_edge(self):
        g = Graph.from_edges(3, [(0, 1)])
        assert not is_dominated_by(g, 0, 2)

    def test_degree_one_vertex_dominates_neighbor(self):
        g = path_graph(2)
        assert is_dominated_by(g, 1, 0)  # 0 dominates 1? N(0)\{1}=∅ ⊆ N(1)
        assert is_dominated_by(g, 0, 1)

    def test_isolated_clique_dominance(self):
        g = isolated_clique_gadget(4)
        for v in (1, 2, 3):
            assert is_dominated_by(g, v, 0)

    def test_find_dominated_vertex(self):
        found = find_dominated_vertex(mutual_dominance_gadget())
        assert found is not None
        u, v = found
        assert is_dominated_by(mutual_dominance_gadget(), u, v)

    def test_reduce_dominance_preserves_alpha(self):
        g = mutual_dominance_gadget()
        application = reduce_dominance(g, 0, 1)
        assert application.alpha_offset == 0
        assert brute_force_alpha(g) == brute_force_alpha(application.reduced)

    def test_reduce_dominance_validates(self):
        g = path_graph(4)
        with pytest.raises(GraphError):
            reduce_dominance(g, 1, 2)

    @pytest.mark.parametrize("seed", range(30))
    def test_dominance_preserves_alpha_randomized(self, seed):
        g = gnm_random_graph(11, 22, seed=seed + 50)
        found = find_dominated_vertex(g)
        if found is None:
            pytest.skip("no dominance pair in this instance")
        u, v = found
        application = reduce_dominance(g, u, v)
        assert brute_force_alpha(g) == brute_force_alpha(application.reduced)


class TestTwin:
    def _twin_instance(self):
        # u=0, v=1 twins over N = {2, 3, 4} with edge (2, 3); pendants keep
        # the neighbourhood vertices from being degree-reduced away.
        edges = [
            (0, 2), (0, 3), (0, 4),
            (1, 2), (1, 3), (1, 4),
            (2, 3),
            (2, 5), (3, 6), (4, 7), (4, 8),
        ]
        return Graph.from_edges(9, edges)

    def test_find_twin_pair(self):
        g = self._twin_instance()
        assert find_twin_pair(g) == (0, 1)

    def test_reduce_preserves_alpha_with_offset(self):
        g = self._twin_instance()
        application = reduce_twin(g, 0, 1)
        assert application.alpha_offset == 2
        assert brute_force_alpha(g) == brute_force_alpha(application.reduced) + 2

    def test_rejects_adjacent_pair(self):
        g = Graph.from_edges(3, [(0, 1), (0, 2), (1, 2)])
        with pytest.raises(GraphError):
            reduce_twin(g, 0, 1)

    def test_rejects_non_twins(self):
        g = self._twin_instance()
        with pytest.raises(GraphError):
            reduce_twin(g, 0, 2)

    def test_rejects_independent_neighbourhood(self):
        edges = [(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4)]
        g = Graph.from_edges(5, edges)
        with pytest.raises(GraphError):
            reduce_twin(g, 0, 1)

    def test_no_twins_in_cycle(self):
        from repro.graphs import cycle_graph

        assert find_twin_pair(cycle_graph(8)) is None

    @pytest.mark.parametrize("seed", range(40))
    def test_randomized_alpha_preservation(self, seed):
        # Plant a twin pair (0, 1) over {2, 3, 4} with edge (2, 3) inside a
        # random ambient graph on the remaining vertices.
        import random

        rng = random.Random(seed)
        n = 12
        edges = {(0, 2), (0, 3), (0, 4), (1, 2), (1, 3), (1, 4), (2, 3)}
        for _ in range(rng.randrange(5, 18)):
            u = rng.randrange(2, n)
            v = rng.randrange(2, n)
            if u != v:
                edges.add((min(u, v), max(u, v)))
        g = Graph.from_edges(n, sorted(edges))
        if g.degree(0) != 3 or g.neighbors(0) != g.neighbors(1):
            pytest.skip("ambient edges broke the twin structure")
        application = reduce_twin(g, 0, 1)
        assert brute_force_alpha(g) == brute_force_alpha(application.reduced) + 2


class TestUnconfined:
    def test_dominated_vertex_is_unconfined(self):
        # Dominance is a special case of unconfinement: take the triangle
        # with a tail — vertex 1 is dominated by 0.
        g = Graph.from_edges(4, [(0, 1), (0, 2), (1, 2), (1, 3)])
        assert is_unconfined(g, 2)  # 2 dominated by 0 -> unconfined

    def test_isolated_vertex_is_confined(self):
        g = Graph.from_edges(3, [(1, 2)])
        assert not is_unconfined(g, 0)

    def test_path_endpoint_is_unconfined(self):
        # P4: the MIS {1, 3} excludes vertex 0, and the procedure proves
        # it (S grows to {0, 2}, then u = 3 yields the contradiction).
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert is_unconfined(g, 0)

    def test_star_leaf_is_confined(self):
        # Every maximum independent set of the star is exactly its leaves,
        # so a leaf can never be safely excluded.
        g = star_graph(2)
        assert not is_unconfined(g, 1)
        assert not is_unconfined(g, 2)

    def test_multi_round_growth(self):
        # The witness set must grow beyond {v} to expose the contradiction:
        # v=0 with the classic funnel-ish pattern.
        edges = [
            (0, 1), (0, 2),
            (1, 3), (2, 4),
            (3, 4),
            (1, 2),
        ]
        g = Graph.from_edges(5, edges)
        # Here 0's neighbours form an edge: 0 dominates nobody but the
        # procedure finds u=1 (W={3}), grows S={0,3}, then u=4 has W=∅.
        assert is_unconfined(g, 0)

    def test_reduce_validates(self):
        with pytest.raises(GraphError):
            reduce_unconfined(star_graph(2), 1)

    @pytest.mark.parametrize("seed", range(60))
    def test_randomized_alpha_preservation(self, seed):
        g = gnm_random_graph(12, 24, seed=seed + 700)
        v = find_unconfined_vertex(g)
        if v is None:
            pytest.skip("no unconfined vertex in this instance")
        application = reduce_unconfined(g, v)
        assert brute_force_alpha(application.reduced) == brute_force_alpha(g)
