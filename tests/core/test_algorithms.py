"""End-to-end tests for BDOne, BDTwo, LinearTime and NearLinear.

Covers: the paper's running examples with their narrated outcomes, the
structured families with known α, the exactness certificate, and the
framework dispatch.
"""

import pytest

from repro.analysis import is_maximal_independent_set
from repro.core import (
    ALGORITHMS,
    bdone,
    bdtwo,
    compute_independent_set,
    linear_time,
    near_linear,
)
from repro.errors import ReproError
from repro.exact import brute_force_alpha
from repro.graphs import (
    Graph,
    bdtwo_lower_bound_family,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    hypercube_graph,
    isolated_clique_gadget,
    mutual_dominance_gadget,
    paper_figure1,
    paper_figure1_modified,
    paper_figure2,
    paper_figure5,
    path_graph,
    petersen_graph,
    random_tree,
    star_graph,
)

ALL = [bdone, bdtwo, linear_time, near_linear]


@pytest.mark.parametrize("algorithm", ALL)
class TestInvariantsEverywhere:
    """Every algorithm returns a valid, maximal set with a sound bound."""

    @pytest.mark.parametrize(
        "graph_factory",
        [
            paper_figure1,
            paper_figure2,
            paper_figure5,
            paper_figure1_modified,
            petersen_graph,
            mutual_dominance_gadget,
            lambda: cycle_graph(9),
            lambda: path_graph(8),
            lambda: complete_graph(6),
            lambda: star_graph(5),
            lambda: grid_graph(4, 4),
            lambda: hypercube_graph(4),
            lambda: complete_bipartite_graph(3, 5),
            lambda: random_tree(40, seed=3),
            lambda: isolated_clique_gadget(5),
            lambda: bdtwo_lower_bound_family(3),
            lambda: Graph.empty(4),
            lambda: Graph.empty(0),
        ],
    )
    def test_valid_and_bounded(self, algorithm, graph_factory):
        graph = graph_factory()
        result = algorithm(graph)
        assert is_maximal_independent_set(graph, result.independent_set) or graph.n == 0
        if graph.n <= 40:
            alpha = brute_force_alpha(graph)
            assert result.size <= alpha <= result.upper_bound
            if result.is_exact:
                assert result.size == alpha


class TestPaperNarratives:
    def test_figure1_outcomes(self):
        g = paper_figure1()
        # "BDOne computes the independent set of size 4" (tie-breaking may
        # push it to 5, never above α).
        assert bdone(g).size in (4, 5)
        # "BDTwo obtains a maximum independent set of size 5."
        assert bdtwo(g).size == 5
        # "LinearTime also obtains {v1, v4, v6, v8, v10}" — size 5.
        assert linear_time(g).size == 5
        assert near_linear(g).size == 5

    def test_figure2_outcomes(self):
        g = paper_figure2()
        # BDOne's narrative reaches the maximum 3 here.
        assert bdone(g).size == 3
        # BDTwo certifies: "we can report {v1, v3, v4} as a maximum
        # independent set since the inexact reduction rule is not applied."
        result = bdtwo(g)
        assert result.size == 3
        assert result.is_exact

    def test_figure5_linear_time(self):
        result = linear_time(paper_figure5())
        assert result.size == 4

    def test_modified_figure1_near_linear_exact(self):
        # Min degree 3: LinearTime alone must peel, but the dominance
        # reduction (v5 dominates v9) unlocks the graph for NearLinear.
        g = paper_figure1_modified()
        lt = linear_time(g)
        nl = near_linear(g)
        assert lt.peeled > 0
        assert nl.is_exact
        assert nl.size == brute_force_alpha(g)

    def test_figure1_rule_trace(self):
        # LinearTime on Figure 1 fires the degree-one reduction (v10/v9),
        # at least one path-rule case, and never peels.
        result = linear_time(paper_figure1())
        assert result.peeled == 0
        assert result.stats.get("degree-one", 0) >= 1
        assert any(key.startswith("path:") for key in result.stats)

    def test_figure1_bdtwo_folds_once(self):
        # BDTwo's narrative contracts {v6, v7, v8} (one folding) and then
        # finishes with isolation on {v2, v3}; tie-breaking may swap the
        # order, but at least one degree-two rule must fire and no peel.
        result = bdtwo(paper_figure1())
        assert result.peeled == 0
        fired = result.stats.get("degree-two-folding", 0) + result.stats.get(
            "degree-two-isolation", 0
        )
        assert fired >= 1

    def test_modified_figure1_dominance_fires(self):
        result = near_linear(paper_figure1_modified(), preprocess=False)
        assert result.stats.get("dominance", 0) >= 1
        assert result.peeled == 0

    def test_petersen_forces_peeling(self):
        # Vertex-transitive, 3-regular, triangle-free: no rule applies.
        for algorithm in ALL:
            result = algorithm(petersen_graph())
            assert result.peeled >= 1
            assert result.size == 4  # still finds an optimum here


class TestStructuredFamilies:
    @pytest.mark.parametrize("n", [3, 4, 5, 8, 13, 20])
    def test_cycles(self, n):
        for algorithm in ALL:
            result = algorithm(cycle_graph(n))
            assert result.size == n // 2
            if algorithm is not bdone:
                # BDOne must peel to break a cycle, so it cannot certify;
                # the cycle/isolation/folding rules let the others do so.
                assert result.is_exact

    @pytest.mark.parametrize("n", [1, 2, 3, 7, 12])
    def test_paths(self, n):
        for algorithm in ALL:
            result = algorithm(path_graph(n))
            assert result.size == (n + 1) // 2
            assert result.is_exact

    def test_trees_solved_exactly(self):
        for seed in range(5):
            g = random_tree(60, seed=seed)
            for algorithm in ALL:
                result = algorithm(g)
                assert result.is_exact

    def test_complete_graph(self):
        for algorithm in ALL:
            assert algorithm(complete_graph(7)).size == 1

    def test_complete_bipartite(self):
        # K_{3,5}: α = 5; degree-one/two rules can't start, dominance can.
        result = near_linear(complete_bipartite_graph(3, 5))
        assert result.size == 5

    def test_isolated_clique_gadget_exact_for_near_linear(self):
        result = near_linear(isolated_clique_gadget(6, pendants_per_vertex=2))
        assert result.is_exact

    def test_bdtwo_lower_bound_family_all_exact(self):
        g = bdtwo_lower_bound_family(4)
        alpha = None
        for algorithm in ALL:
            result = algorithm(g)
            if alpha is None:
                alpha = result.size
            # The family is built from folding cascades; all four
            # algorithms land on the same (optimal) size.
            assert result.size == alpha
        folded = bdtwo(g)
        assert folded.stats.get("degree-two-folding", 0) > 0


class TestFrameworkDispatch:
    def test_all_names_registered(self):
        assert set(ALGORITHMS) == {
            "BDOne",
            "BDTwo",
            "LinearTime",
            "NearLinear",
            "BDOne-vec",
            "LinearTime-vec",
            "NearLinear-vec",
            "BDOne-auto",
            "LinearTime-auto",
            "NearLinear-auto",
        }

    def test_dispatch_case_insensitive(self):
        g = cycle_graph(5)
        result = compute_independent_set(g, "lineartime")
        assert result.algorithm == "LinearTime"

    def test_dispatch_unknown_raises(self):
        with pytest.raises(ReproError):
            compute_independent_set(cycle_graph(5), "Magic")

    def test_stats_are_populated(self):
        result = linear_time(paper_figure5())
        assert sum(result.stats.values()) > 0

    def test_elapsed_recorded(self):
        result = near_linear(cycle_graph(50))
        assert result.elapsed >= 0.0


class TestResultType:
    def test_gap_and_accuracy(self):
        result = bdone(cycle_graph(10))
        assert result.gap_to(5) == 5 - result.size
        assert result.accuracy_to(result.size) == 1.0
        assert result.accuracy_to(0) == 1.0

    def test_repr(self):
        result = bdone(cycle_graph(10))
        assert "BDOne" in repr(result)
