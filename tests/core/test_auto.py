"""Tests for the ``auto`` backend dispatcher and its calibration (ISSUE 7)."""

import json

import pytest

from repro.bench.backends import BACKENDS, resolve_backend
from repro.bench.calibrate import _fit_crossover, run_calibration
from repro.core import auto
from repro.core.auto import (
    DEFAULT_CALIBRATION,
    Calibration,
    bdone_auto,
    choose_backend_name,
    linear_time_auto,
    near_linear_auto,
)
from repro.graphs.generators import (
    gnm_random_graph,
    power_law_graph,
    web_like_graph,
)


@pytest.fixture(autouse=True)
def _fresh_calibration_cache():
    auto.reset_calibration_cache()
    yield
    auto.reset_calibration_cache()


# ----------------------------------------------------------------------
# The heuristic
# ----------------------------------------------------------------------
def test_choose_backend_respects_size_crossover():
    small = power_law_graph(300, beta=2.3, average_degree=5.0, seed=1)
    large = power_law_graph(4_000, beta=2.2, average_degree=6.0, seed=3)
    for family in ("bdone", "linear_time", "near_linear"):
        assert choose_backend_name(small, family, DEFAULT_CALIBRATION) == "flat"
    assert (
        choose_backend_name(large, "linear_time", DEFAULT_CALIBRATION)
        == "vectorized"
    )
    assert (
        choose_backend_name(large, "near_linear", DEFAULT_CALIBRATION)
        == "vectorized"
    )


def test_choose_backend_rejects_low_degree_poor_graphs():
    # G(n, m) graphs have almost no degree-<=2 mass: the vec backend pays
    # its round setup for nothing there, so auto must stay flat at any n.
    gnm = gnm_random_graph(3_000, 9_000, seed=4)
    for family in ("bdone", "linear_time", "near_linear"):
        assert choose_backend_name(gnm, family, DEFAULT_CALIBRATION) == "flat"


def test_choose_backend_per_family_crossovers_split_web3k():
    # The measured suite constraint that forces per-family thresholds:
    # at n=3000 web-like graphs, NearLinear already wins vectorized while
    # LinearTime still loses — the same graph must dispatch differently.
    web = web_like_graph(3_000, attach=3, seed=5)
    assert choose_backend_name(web, "linear_time", DEFAULT_CALIBRATION) == "flat"
    assert (
        choose_backend_name(web, "near_linear", DEFAULT_CALIBRATION)
        == "vectorized"
    )


def test_choose_backend_with_injected_calibration():
    graph = power_law_graph(500, beta=2.3, average_degree=5.0, seed=1)
    eager = Calibration(crossover_n={"linear_time": 10}, min_low_frac=0.0)
    assert choose_backend_name(graph, "linear_time", eager) == "vectorized"
    never = Calibration(crossover_n={"linear_time": 10**9})
    assert choose_backend_name(graph, "linear_time", never) == "flat"


def test_calibration_bdone_falls_back_to_linear_time():
    calibration = Calibration(crossover_n={"linear_time": 123})
    assert calibration.crossover_for("bdone") == 123
    assert calibration.crossover_for("linear_time") == 123


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------
def test_calibration_env_round_trip(tmp_path, monkeypatch):
    path = tmp_path / "calibration.json"
    monkeypatch.setenv(auto.CALIBRATION_ENV, str(path))
    auto.reset_calibration_cache()
    assert auto.calibration_path() == str(path)
    # Missing file -> defaults.
    assert auto.load_calibration() is DEFAULT_CALIBRATION
    auto.reset_calibration_cache()
    original = Calibration(
        crossover_n={"linear_time": 7_777, "near_linear": 3_333},
        min_low_frac=0.4,
    )
    path.write_text(json.dumps(original.to_payload()))
    loaded = auto.load_calibration()
    assert loaded.crossover_n == original.crossover_n
    assert loaded.min_low_frac == original.min_low_frac
    assert loaded.source == str(path)


def test_corrupt_calibration_file_falls_back_to_defaults(tmp_path, monkeypatch):
    path = tmp_path / "calibration.json"
    path.write_text("{not json")
    monkeypatch.setenv(auto.CALIBRATION_ENV, str(path))
    auto.reset_calibration_cache()
    assert auto.load_calibration() is DEFAULT_CALIBRATION


def test_load_calibration_is_cached(tmp_path, monkeypatch):
    path = tmp_path / "calibration.json"
    path.write_text(
        json.dumps(Calibration(crossover_n={"linear_time": 42}).to_payload())
    )
    monkeypatch.setenv(auto.CALIBRATION_ENV, str(path))
    auto.reset_calibration_cache()
    first = auto.load_calibration()
    path.unlink()
    assert auto.load_calibration() is first  # cached, not re-read


# ----------------------------------------------------------------------
# Dispatch
# ----------------------------------------------------------------------
def test_auto_solvers_rename_and_record_pick():
    small = power_law_graph(200, beta=2.3, average_degree=4.0, seed=3)
    for solver, name in (
        (bdone_auto, "BDOne-auto"),
        (linear_time_auto, "LinearTime-auto"),
        (near_linear_auto, "NearLinear-auto"),
    ):
        result = solver(small)
        assert result.algorithm == name
        assert result.stats.get(auto.STAT_AUTO_FLAT) == 1
        assert auto.STAT_AUTO_VEC not in result.stats


def test_auto_matches_fixed_backend_solution():
    # Below the crossover auto must be *exactly* the flat solver's result
    # (same decisions, same set) — dispatch adds routing, not behaviour.
    from repro.core.linear_time import linear_time
    from repro.core.near_linear import near_linear

    graph = web_like_graph(400, attach=2, seed=5)
    assert (
        linear_time_auto(graph).independent_set
        == linear_time(graph).independent_set
    )
    assert (
        near_linear_auto(graph).independent_set
        == near_linear(graph).independent_set
    )


def test_resolve_backend_accepts_auto_and_rejects_unknown():
    family = resolve_backend("auto")
    assert set(family) == {"bdone", "linear_time", "near_linear"}
    assert family["linear_time"] is linear_time_auto
    with pytest.raises(ValueError) as excinfo:
        resolve_backend("turbo")
    message = str(excinfo.value)
    for name in sorted(BACKENDS):
        assert name in message


def test_auto_registered_everywhere():
    from repro.core import ALGORITHMS, compute_independent_set
    from repro.perf.parallel import ALGORITHM_BY_NAME

    assert {"BDOne-auto", "LinearTime-auto", "NearLinear-auto"} <= set(ALGORITHMS)
    assert {"bdone_auto", "linear_time_auto", "near_linear_auto"} <= set(
        ALGORITHM_BY_NAME
    )
    graph = power_law_graph(200, beta=2.3, average_degree=4.0, seed=3)
    assert compute_independent_set(graph, "NearLinear-auto").algorithm == (
        "NearLinear-auto"
    )


def test_auto_dispatchable_from_parallel_components():
    from repro.analysis import assert_valid_solution
    from repro.perf.parallel import solve_by_components_parallel

    graph = gnm_random_graph(600, 900, seed=9)
    result = solve_by_components_parallel(
        graph, "linear_time_auto", processes=2, min_component_size=50
    )
    assert_valid_solution(graph, result.independent_set)
    assert result.algorithm.startswith("LinearTime-auto")


def test_auto_dispatchable_from_serve():
    from repro.serve import ServiceConfig, SolverService

    graph = power_law_graph(300, beta=2.3, average_degree=5.0, seed=1)
    service = SolverService(ServiceConfig(algorithm="near_linear_auto"))
    graph_id = service.register(graph)
    solution = service.solve(graph_id)
    assert solution.size > 0


# ----------------------------------------------------------------------
# Calibration fitting
# ----------------------------------------------------------------------
def _rows(*pairs):
    return [
        {"n": n, "flat_wall": flat, "vec_wall": vec} for n, flat, vec in pairs
    ]


def test_fit_crossover_finds_sustained_decisive_win():
    rows = _rows(
        (1_000, 1.0, 2.0), (2_000, 1.0, 1.2), (4_000, 1.0, 0.8), (8_000, 1.0, 0.5)
    )
    fitted = _fit_crossover(rows)
    assert fitted == round((2_000 * 4_000) ** 0.5)


def test_fit_crossover_ignores_noisy_early_win():
    # A single win at 1k (not sustained: vec loses again at 2k) must not
    # drag the crossover down to the bottom of the ladder.
    rows = _rows(
        (1_000, 1.0, 0.8), (2_000, 1.0, 1.3), (4_000, 1.0, 0.8), (8_000, 1.0, 0.7)
    )
    assert _fit_crossover(rows) == round((2_000 * 4_000) ** 0.5)


def test_fit_crossover_ties_are_not_decisive():
    # Ties from the first rung: no decisive (>=10%) win anywhere -> never.
    rows = _rows((1_000, 1.0, 0.99), (2_000, 1.0, 0.97), (4_000, 1.0, 0.95))
    assert _fit_crossover(rows) == 8_000


def test_fit_crossover_never_wins():
    rows = _rows((1_000, 1.0, 2.0), (2_000, 1.0, 1.5), (4_000, 1.0, 1.1))
    assert _fit_crossover(rows) == 8_000


def test_run_calibration_writes_file_and_respects_floor(tmp_path, monkeypatch):
    path = tmp_path / "calib.json"
    monkeypatch.setenv(auto.CALIBRATION_ENV, str(path))
    auto.reset_calibration_cache()
    # Tiny ladder keeps this a smoke test, not a benchmark.
    calibration = run_calibration(repeats=1, ladder=(256, 512))
    assert path.exists()
    payload = json.loads(path.read_text())
    assert payload["crossover_n"] == calibration.crossover_n
    assert "samples" in payload
    # The fit is clamped to the shipped defaults from below.
    for family, floor in DEFAULT_CALIBRATION.crossover_n.items():
        assert calibration.crossover_n[family] >= floor
    # And the freshly written file is what load_calibration now sees.
    assert auto.load_calibration().crossover_n == calibration.crossover_n


def test_run_calibration_dry_run_writes_nothing(tmp_path, monkeypatch):
    path = tmp_path / "calib.json"
    monkeypatch.setenv(auto.CALIBRATION_ENV, str(path))
    auto.reset_calibration_cache()
    calibration = run_calibration(repeats=1, dry_run=True, ladder=(256,))
    assert not path.exists()
    assert calibration.source == "dry-run"


def test_cli_has_calibrate_subcommand():
    from repro.cli import build_parser

    parser = build_parser()
    args = parser.parse_args(["calibrate", "--dry-run", "--repeats", "2"])
    assert args.dry_run is True
    assert args.repeats == 2
