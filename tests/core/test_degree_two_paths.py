"""Tests for maximal degree-two path discovery and the Lemma 4.1 cases.

Each of the six cases is exercised on a crafted instance through the
ArrayWorkspace, and LinearTime's end-to-end α-arithmetic is checked with
brute force.
"""

import pytest

from repro.core.degree_two_paths import (
    RULE_ANCHOR_SHARED,
    RULE_CYCLE,
    RULE_EVEN_EDGE,
    RULE_EVEN_NO_EDGE,
    RULE_IRREDUCIBLE,
    RULE_ODD_EDGE,
    RULE_ODD_NO_EDGE,
    apply_degree_two_path_reduction,
    find_maximal_degree_two_path,
)
from repro.core.linear_time import linear_time
from repro.core.workspace import ArrayWorkspace
from repro.exact import brute_force_alpha
from repro.graphs import Graph, cycle_graph, paper_figure5


def _workspace(graph):
    return ArrayWorkspace(graph, track_degree_two=True)


def _chain_with_anchors(length, anchor_degree_boost=2, connect_anchors=False):
    """Anchor A — path of `length` degree-2 vertices — anchor B.

    Anchors get pendant-pair boosts so their degree is ≥ 3.
    """
    n = length + 2
    edges = []
    a, b = 0, length + 1
    prev = a
    for i in range(1, length + 1):
        edges.append((prev, i))
        prev = i
    edges.append((prev, b))
    if connect_anchors:
        edges.append((a, b))
    extra = n
    all_edges = list(edges)
    for anchor in (a, b):
        for _ in range(anchor_degree_boost):
            all_edges.append((anchor, extra))
            all_edges.append((anchor, extra + 1))
            extra += 2
    g = Graph.from_edges(extra, all_edges)
    return g, a, b


class TestDiscovery:
    def test_finds_whole_path(self):
        g, a, b = _chain_with_anchors(3)
        ws = _workspace(g)
        discovery = find_maximal_degree_two_path(ws, 2)
        assert not discovery.is_cycle
        assert discovery.path == [1, 2, 3]
        assert {discovery.v, discovery.w} == {a, b}

    def test_single_vertex_path(self):
        g, a, b = _chain_with_anchors(1)
        ws = _workspace(g)
        discovery = find_maximal_degree_two_path(ws, 1)
        assert discovery.path == [1]
        assert {discovery.v, discovery.w} == {a, b}

    def test_detects_cycle(self):
        g = cycle_graph(5)
        ws = _workspace(g)
        discovery = find_maximal_degree_two_path(ws, 0)
        assert discovery.is_cycle
        assert len(discovery.path) == 5


class TestCases:
    def test_cycle_rule(self):
        g = cycle_graph(6)
        ws = _workspace(g)
        assert apply_degree_two_path_reduction(ws, 0) == RULE_CYCLE
        assert not ws.alive[0]

    def test_anchor_shared_rule(self):
        # Path (1,2,3) whose both ends attach to vertex 0 of degree ≥ 3.
        g = Graph.from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (0, 5)])
        ws = _workspace(g)
        assert apply_degree_two_path_reduction(ws, 2) == RULE_ANCHOR_SHARED
        assert not ws.alive[0]

    def test_odd_edge_rule(self):
        g, a, b = _chain_with_anchors(3, connect_anchors=True)
        ws = _workspace(g)
        assert apply_degree_two_path_reduction(ws, 2) == RULE_ODD_EDGE
        assert not ws.alive[a]
        assert not ws.alive[b]

    def test_odd_no_edge_rule_rewires(self):
        g, a, b = _chain_with_anchors(3)
        ws = _workspace(g)
        assert apply_degree_two_path_reduction(ws, 2) == RULE_ODD_NO_EDGE
        # v1 (vertex 1) stays, interior 2..3 gone, edge (1, b) now exists.
        assert ws.alive[1]
        assert not ws.alive[2]
        assert not ws.alive[3]
        assert ws.has_live_edge(1, b)
        assert ws.deg[1] == 2
        assert ws.deg[b] == 5  # unchanged

    def test_even_edge_rule(self):
        g, a, b = _chain_with_anchors(2, connect_anchors=True)
        ws = _workspace(g)
        degree_before = ws.deg[a]
        assert apply_degree_two_path_reduction(ws, 1) == RULE_EVEN_EDGE
        assert not ws.alive[1]
        assert not ws.alive[2]
        assert ws.deg[a] == degree_before - 1

    def test_even_no_edge_rule_rewires(self):
        g, a, b = _chain_with_anchors(2)
        ws = _workspace(g)
        degree_before = ws.deg[a]
        assert apply_degree_two_path_reduction(ws, 1) == RULE_EVEN_NO_EDGE
        assert ws.has_live_edge(a, b)
        assert ws.deg[a] == degree_before

    def test_irreducible_single_vertex(self):
        g, a, b = _chain_with_anchors(1)
        ws = _workspace(g)
        assert apply_degree_two_path_reduction(ws, 1) == RULE_IRREDUCIBLE
        assert ws.alive[1]


class TestAlphaPreservation:
    """End-to-end: LinearTime must certify α on graphs solved rule-only."""

    @pytest.mark.parametrize("length", [2, 3, 4, 5, 6, 7])
    @pytest.mark.parametrize("connect", [False, True])
    def test_chain_instances(self, length, connect):
        g, _, _ = _chain_with_anchors(length, connect_anchors=connect)
        result = linear_time(g)
        assert result.size == brute_force_alpha(g)

    def test_figure5_alternation(self):
        result = linear_time(paper_figure5())
        assert result.size == 4

    def test_cycles_exact(self):
        for n in range(3, 12):
            result = linear_time(cycle_graph(n))
            assert result.is_exact
            assert result.size == n // 2
