"""Tests for Hopcroft–Karp and the Nemhauser–Trotter LP reduction."""

import pytest

from repro.core.lp_reduction import HopcroftKarp, lp_reduction, lp_upper_bound
from repro.exact import brute_force_alpha
from repro.graphs import (
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    gnm_random_graph,
    path_graph,
    star_graph,
)


class TestHopcroftKarp:
    def test_perfect_matching(self):
        # Bipartite 3+3 with a perfect matching.
        adjacency = [[0, 1], [1, 2], [2]]
        matcher = HopcroftKarp(3, 3, adjacency)
        assert matcher.solve() == 3

    def test_star_matching(self):
        adjacency = [[0], [0], [0]]
        matcher = HopcroftKarp(3, 1, adjacency)
        assert matcher.solve() == 1

    def test_empty(self):
        matcher = HopcroftKarp(0, 0, [])
        assert matcher.solve() == 0

    def test_koenig_cover_covers_all_edges(self):
        adjacency = [[0, 1], [0], [1, 2], [3]]
        matcher = HopcroftKarp(4, 4, adjacency)
        size = matcher.solve()
        cover_left, cover_right = matcher.minimum_vertex_cover()
        for u, row in enumerate(adjacency):
            for v in row:
                assert cover_left[u] or cover_right[v]
        # König: cover size equals matching size.
        assert sum(cover_left) + sum(cover_right) == size


class TestLPReduction:
    def test_star_center_excluded(self):
        result = lp_reduction(star_graph(4))
        assert 0 in result.excluded
        assert set(result.included) == {1, 2, 3, 4}

    def test_odd_cycle_all_half(self):
        result = lp_reduction(cycle_graph(5))
        assert len(result.remaining) == 5

    def test_even_cycle(self):
        # Even cycles have an integral LP optimum but also the all-half
        # one; either classification must preserve α.
        result = lp_reduction(cycle_graph(6))
        sub, _ = cycle_graph(6).subgraph(result.remaining)
        assert len(result.included) + brute_force_alpha(sub) == 3

    def test_complete_bipartite_unbalanced(self):
        result = lp_reduction(complete_bipartite_graph(2, 5))
        assert set(result.included) == set(range(2, 7))
        assert set(result.excluded) == {0, 1}

    def test_clique_all_half(self):
        result = lp_reduction(complete_graph(5))
        assert len(result.remaining) == 5
        assert result.lp_bound == pytest.approx(2.5)

    @pytest.mark.parametrize("seed", range(40))
    def test_persistency_randomized(self, seed):
        g = gnm_random_graph(13, 26, seed=seed)
        result = lp_reduction(g)
        sub, _ = g.subgraph(result.remaining)
        assert len(result.included) + brute_force_alpha(sub) == brute_force_alpha(g)

    @pytest.mark.parametrize("seed", range(20))
    def test_bound_is_valid(self, seed):
        g = gnm_random_graph(12, 20, seed=seed + 100)
        assert lp_upper_bound(g) >= brute_force_alpha(g)

    def test_included_never_adjacent_to_included(self):
        g = gnm_random_graph(20, 50, seed=77)
        result = lp_reduction(g)
        included = set(result.included)
        for v in included:
            assert not any(w in included for w in g.neighbors(v))

    def test_path_reduces_fully_or_consistently(self):
        g = path_graph(6)
        result = lp_reduction(g)
        sub, _ = g.subgraph(result.remaining)
        assert len(result.included) + brute_force_alpha(sub) == 3
