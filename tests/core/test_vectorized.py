"""Differential tests for the vectorized frontier-sweep backend.

The contract (ISSUE 6): on every differential-corpus graph the vectorized
solvers must produce a **valid independent set of identical size** to the
flat backend, with decision logs that :meth:`DecisionLog.resolve` and
``replay`` consume without error.  Exact record order may legally differ
inside a batch round, so the comparison is the canonicalized one (size +
validity + replay), not entry-for-entry equality — with two deliberate
exceptions that are *stronger*:

* :func:`vectorized_one_pass_dominance` must return the **byte-identical**
  removed list of :func:`flat_one_pass_dominance` (its numpy wave only
  pre-certifies vertices that are provably removed at their sweep turn);
* NearLinear-vec, whose only change is that sweep, must therefore match
  the flat NearLinear **set-for-set**.

BDOne-vec is the one place batch order is visible end-to-end: batched
degree-one rounds pick a different (equally valid) exclusion set, and on
one corpus graph replay's surviving-peel salvage then commits one *more*
peeled vertex than the flat LIFO order does.  The corpus pins that as
"never smaller", and the known divergence is asserted explicitly so a
behaviour change shows up as a test failure, not silence.
"""

from repro.analysis import assert_valid_solution
from repro.core.bdone import bdone
from repro.core.flat_dominance import flat_one_pass_dominance
from repro.core.linear_time import linear_time, linear_time_reduce
from repro.core.near_linear import near_linear
from repro.core.trace import DecisionLog
from repro.core.vectorized import (
    VecWorkspace,
    _degree_one_rounds,
    bdone_vec,
    linear_time_vec,
    linear_time_vec_reduce,
    near_linear_vec,
    near_linear_vec_reduce,
    vectorized_one_pass_dominance,
)
from repro.graphs.generators import (
    gnm_random_graph,
    power_law_graph,
    web_like_graph,
)
from repro.graphs.static_graph import Graph

from .test_differential_backends import CORPUS


def _resolve_size(log: DecisionLog, graph: Graph) -> int:
    """Replay ``log`` through resolve(); the full replay() must agree."""
    in_set, peeled = log.resolve(graph.n)
    outcome = log.replay(graph)
    # Maximal extension only ever *adds* vertices to the resolved core.
    resolved = {v for v, flag in enumerate(in_set) if flag}
    assert resolved <= outcome.vertices
    assert outcome.peeled == len(peeled)
    return len(outcome.vertices)


def test_linear_time_vec_matches_flat_on_corpus():
    for graph in CORPUS:
        flat = linear_time(graph)
        vec = linear_time_vec(graph)
        assert_valid_solution(graph, vec.independent_set)
        assert len(vec.independent_set) == len(flat.independent_set), graph.name
        assert vec.upper_bound == flat.upper_bound, graph.name
        assert vec.algorithm == "LinearTime-vec"


def test_near_linear_vec_matches_flat_exactly_on_corpus():
    for graph in CORPUS:
        flat = near_linear(graph)
        vec = near_linear_vec(graph)
        # Phase 1 is byte-identical, so the whole pipeline must agree
        # set-for-set, not just in size.
        assert vec.independent_set == flat.independent_set, graph.name
        assert vec.stats == flat.stats, graph.name


def test_bdone_vec_valid_and_never_smaller_on_corpus():
    divergent = {}
    for index, graph in enumerate(CORPUS):
        flat = bdone(graph)
        vec = bdone_vec(graph)
        assert_valid_solution(graph, vec.independent_set)
        assert len(vec.independent_set) >= len(flat.independent_set), graph.name
        assert vec.stats == flat.stats, graph.name
        if len(vec.independent_set) != len(flat.independent_set):
            divergent[index] = (len(vec.independent_set), len(flat.independent_set))
    # The single known divergence: batched exclusions let replay salvage
    # one extra peeled vertex on corpus graph 13 (gnm seed 13).  If this
    # set changes, the backend's decision algebra changed — look hard.
    assert divergent == {13: (20, 19)}


def test_vectorized_dominance_byte_identical_on_corpus():
    for graph in CORPUS:
        assert vectorized_one_pass_dominance(graph) == flat_one_pass_dominance(
            graph
        ), graph.name


def test_vectorized_logs_resolve_and_replay():
    for graph in CORPUS[::7]:
        for solver in (linear_time_vec, bdone_vec, near_linear_vec):
            result = solver(graph)
            assert result.size == len(result.independent_set)
    for graph in CORPUS[::11]:
        kernel, ids, log = linear_time_vec_reduce(graph)
        assert kernel.n <= graph.n
        assert len(ids) == kernel.n
        # Entries must be pure Python ints for the JSON snapshot path.
        for _kind, payload in log.entries:
            for value in payload:
                assert type(value) is int
        _resolve_size(log, graph)
        nl_kernel, nl_ids, nl_log = near_linear_vec_reduce(graph)
        assert len(nl_ids) == nl_kernel.n
        _resolve_size(nl_log, graph)


def test_vec_kernel_matches_flat_kernel_size():
    """Exact rules are confluent: both backends kernelize to the same size."""
    for graph in CORPUS[::5]:
        flat_kernel, _, _ = linear_time_reduce(graph)
        vec_kernel, _, _ = linear_time_vec_reduce(graph)
        assert vec_kernel.n == flat_kernel.n, graph.name
        assert vec_kernel.m == flat_kernel.m, graph.name


# ----------------------------------------------------------------------
# Property: a sweep with zero eligible vertices is a no-op and terminates
# ----------------------------------------------------------------------
def _irreducible_graph() -> Graph:
    """A 3-regular graph (K4): no degree-one vertices, nothing to sweep."""
    offsets = [0, 3, 6, 9, 12]
    targets = [1, 2, 3, 0, 2, 3, 0, 1, 3, 0, 1, 2]
    return Graph(offsets, targets, name="K4")


def test_empty_frontier_sweep_is_noop():
    graph = _irreducible_graph()
    workspace = VecWorkspace(graph, track_degree_two=True)
    assert workspace.v1 == []
    before_entries = list(workspace.log.entries)
    before_alive = workspace.alive.copy()
    before_deg = workspace.deg.copy()
    excluded, rounds = _degree_one_rounds(workspace)
    assert (excluded, rounds) == (0, 0)
    assert workspace.log.entries == before_entries
    assert (workspace.alive == before_alive).all()
    assert (workspace.deg == before_deg).all()
    assert workspace.live_vertex_count == 4
    assert workspace.live_edge_count() == 6


def test_stale_worklist_sweep_terminates():
    """Stale v1 entries (dead or no-longer-degree-one) must not loop."""
    graph = _irreducible_graph()
    workspace = VecWorkspace(graph, track_degree_two=True)
    workspace.v1.extend([0, 0, 2])  # all invalid: degree 3, alive
    excluded, rounds = _degree_one_rounds(workspace)
    assert (excluded, rounds) == (0, 0)
    assert workspace.v1 == []
    assert workspace.live_vertex_count == 4


def test_empty_and_tiny_graphs():
    empty = Graph([0], [], name="empty")
    assert linear_time_vec(empty).independent_set == frozenset()
    singleton = Graph([0, 0], [], name="singleton")
    assert linear_time_vec(singleton).independent_set == frozenset({0})
    k2 = Graph([0, 1, 2], [1, 0], name="K2")
    result = bdone_vec(k2)
    assert len(result.independent_set) == 1
    assert vectorized_one_pass_dominance(k2) == flat_one_pass_dominance(k2)


def test_hot_loop_markers_present():
    """The sweep kernels must stay under RL001's hot-loop contract."""
    assert getattr(_degree_one_rounds, "__hot_loop__", False)
    assert getattr(vectorized_one_pass_dominance, "__hot_loop__", False)


def test_vec_solvers_registered():
    from repro.core import ALGORITHMS, KERNEL_METHODS, compute_independent_set
    from repro.perf.parallel import ALGORITHM_BY_NAME

    assert {"BDOne-vec", "LinearTime-vec", "NearLinear-vec"} <= set(ALGORITHMS)
    assert {"bdone_vec", "linear_time_vec", "near_linear_vec"} <= set(
        ALGORITHM_BY_NAME
    )
    assert {"linear_time_vec", "near_linear_vec"} <= set(KERNEL_METHODS)
    graph = power_law_graph(200, beta=2.3, average_degree=4.0, seed=3)
    result = compute_independent_set(graph, "LinearTime-vec")
    assert result.algorithm == "LinearTime-vec"


def test_parallel_components_with_vec_backend():
    from repro.perf.parallel import solve_by_components_parallel

    graph = gnm_random_graph(600, 900, seed=9)
    serial = linear_time_vec(graph)
    result = solve_by_components_parallel(
        graph, "linear_time_vec", processes=2, min_component_size=50
    )
    assert_valid_solution(graph, result.independent_set)
    assert len(result.independent_set) >= len(serial.independent_set) - 2


def test_export_kernel_matches_flat():
    from repro.core.workspace import FlatWorkspace

    for graph in (
        gnm_random_graph(120, 260, seed=4),
        web_like_graph(90, attach=2, seed=5),
    ):
        flat_ws = FlatWorkspace(graph, track_degree_two=True)
        vec_ws = VecWorkspace(graph, track_degree_two=True)
        for v in (3, 7, 11):
            if flat_ws.alive[v] and vec_ws.alive[v]:
                flat_ws.delete_vertex(v, "exclude")
                vec_ws.delete_vertex(v, "exclude")
        flat_kernel, flat_ids = flat_ws.export_kernel()
        vec_kernel, vec_ids = vec_ws.export_kernel()
        assert list(vec_ids) == list(flat_ids)
        assert vec_kernel == flat_kernel  # Graph.__eq__: same CSR buffers


# ----------------------------------------------------------------------
# ISSUE 7: path/cycle-heavy corpus extension + the K2 LIFO tie-break
# ----------------------------------------------------------------------
def _path_heavy_corpus():
    """Graphs whose reduction work is dominated by degree-two chains.

    Shuffled vertex ids keep the adjacency rows sorted but decouple id
    order from chain order — the adversarial case for any driver that
    implicitly assumes chains are laid out contiguously.
    """
    import random

    from repro.graphs.generators import (
        caterpillar_graph,
        cycle_graph,
        path_graph,
        random_tree,
    )

    graphs = []
    for k in (3, 4, 5, 9, 16, 31, 64):
        graphs.append(path_graph(k))
        graphs.append(cycle_graph(k))
    graphs.append(caterpillar_graph(12, 2))
    for seed in range(6):
        graphs.append(random_tree(45 + seed, seed=seed))
        # Disjoint shuffled cycles: every component is one Lemma 4.1 case.
        rng = random.Random(seed)
        sizes = [rng.randint(3, 9) for _ in range(5)]
        n = sum(sizes)
        perm = list(range(n))
        rng.shuffle(perm)
        edges = []
        base = 0
        for size in sizes:
            for i in range(size):
                edges.append(
                    (perm[base + i], perm[base + (i + 1) % size])
                )
            base += size
        graphs.append(Graph.from_edges(n, edges, name=f"cycles-{seed}"))
    return graphs


PATH_HEAVY_CORPUS = _path_heavy_corpus()


def test_path_heavy_corpus_replay_records_match_scalar():
    """Satellite 3: batch degree-two rounds vs the scalar driver.

    On the chain-dominated corpus the batch driver must append the
    entry-for-entry identical decision log, and the resolved replay
    records (in_set + peeled) must therefore agree exactly.
    """
    from repro.core.vectorized import drive_linear_time_vec

    for graph in PATH_HEAVY_CORPUS:
        batch_ws = VecWorkspace(graph)
        drive_linear_time_vec(batch_ws, stop_before_peel=False, batch_rounds=True)
        scalar_ws = VecWorkspace(graph)
        drive_linear_time_vec(scalar_ws, stop_before_peel=False, batch_rounds=False)
        assert batch_ws.log.entries == scalar_ws.log.entries, graph.name
        batch_in, batch_peeled = batch_ws.log.resolve(graph.n)
        scalar_in, scalar_peeled = scalar_ws.log.resolve(graph.n)
        assert batch_in == scalar_in, graph.name
        assert batch_peeled == scalar_peeled, graph.name


def test_path_heavy_corpus_solvers_match_flat():
    for graph in PATH_HEAVY_CORPUS:
        flat = linear_time(graph)
        vec = linear_time_vec(graph)
        assert_valid_solution(graph, vec.independent_set)
        assert len(vec.independent_set) == len(flat.independent_set), graph.name
        nl_flat = near_linear(graph)
        nl_vec = near_linear_vec(graph)
        assert nl_vec.independent_set == nl_flat.independent_set, graph.name


def _star_of_paths(lengths, seed=0):
    """Paths of the given lengths glued at a hub, ids shuffled.

    Adversarial for the degree-one LIFO tie-break: every path end is a
    simultaneous frontier member, and the shuffle makes the worklist
    order disagree with chain order.
    """
    import random

    rng = random.Random(seed)
    edges = []
    next_id = 1
    for length in lengths:
        prev = 0
        for _ in range(length):
            edges.append((prev, next_id))
            prev = next_id
            next_id += 1
    perm = list(range(next_id))
    rng.shuffle(perm)
    return Graph.from_edges(
        next_id, [(perm[a], perm[b]) for a, b in edges], name="star-of-paths"
    )


def test_k2_pairs_keep_larger_id_like_flat_lifo():
    """Satellite 2 (part 1): on pure-K2 graphs the batched pair split must
    reproduce the flat backend's LIFO outcome exactly — the larger id of
    each mutual degree-one pair enters the solution."""
    import random

    for seed in range(12):
        rng = random.Random(seed)
        n = 30 + 2 * seed
        ids = list(range(n))
        rng.shuffle(ids)
        edges = [(ids[2 * i], ids[2 * i + 1]) for i in range(n // 2)]
        graph = Graph.from_edges(n, edges, name=f"k2-{seed}")
        expected = frozenset(max(a, b) for a, b in edges)
        assert linear_time(graph).independent_set == expected, seed
        assert linear_time_vec(graph).independent_set == expected, seed
        assert bdone_vec(graph).independent_set == expected, seed


def test_star_of_paths_property_vs_flat():
    """Satellite 2 (part 2): adversarial star-of-paths graphs.

    The optimal set on a star of paths is not unique, and the batched
    rounds may legally settle a different (same-size) one than the flat
    LIFO order — the pinned property is size equality, validity, and a
    replay whose surviving-peel count is zero (paths are always solved
    exactly, never peeled).
    """
    import random

    for seed in range(10):
        rng = random.Random(100 + seed)
        lengths = [rng.randint(1, 7) for _ in range(rng.randint(3, 9))]
        graph = _star_of_paths(lengths, seed=seed)
        flat = linear_time(graph)
        vec = linear_time_vec(graph)
        assert_valid_solution(graph, vec.independent_set)
        assert len(vec.independent_set) == len(flat.independent_set), (
            seed,
            lengths,
        )
        assert vec.surviving_peels == 0
        assert flat.surviving_peels == 0
