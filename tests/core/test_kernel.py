"""Tests for the kernelization API and solution lifting."""

import pytest

from repro.analysis import is_independent_set, is_maximal_independent_set
from repro.core import kernelize
from repro.errors import ReproError
from repro.exact import brute_force_alpha, brute_force_mis
from repro.graphs import (
    cycle_graph,
    gnm_random_graph,
    paper_figure1,
    petersen_graph,
    power_law_graph,
    random_tree,
)

METHODS = ["degree_one", "linear_time", "near_linear"]


class TestKernelBasics:
    def test_unknown_method_raises(self):
        with pytest.raises(ReproError):
            kernelize(cycle_graph(5), method="quantum")

    @pytest.mark.parametrize("method", METHODS)
    def test_tree_kernels_are_empty(self, method):
        kr = kernelize(random_tree(50, seed=2), method=method)
        assert kr.is_solved
        assert kr.kernel_size == 0

    def test_petersen_kernel_is_whole_graph_for_weak_rules(self):
        kr = kernelize(petersen_graph(), method="degree_one")
        assert kr.kernel_size == 10

    def test_rule_strength_ordering(self):
        # Stronger rule sets never leave a larger kernel on these graphs.
        for seed in range(5):
            g = power_law_graph(800, 2.3, average_degree=7, seed=seed)
            sizes = [kernelize(g, method=m).kernel_size for m in METHODS]
            assert sizes[0] >= sizes[1] >= sizes[2]


class TestLifting:
    @pytest.mark.parametrize("method", METHODS)
    def test_lift_of_exact_kernel_solution_is_maximum(self, method):
        for seed in range(15):
            g = gnm_random_graph(14, 21, seed=seed)
            kr = kernelize(g, method=method)
            if kr.kernel.n > 24:
                continue
            kernel_best = brute_force_mis(kr.kernel)
            lifted = kr.lift(kernel_best)
            assert is_independent_set(g, lifted)
            assert len(lifted) == brute_force_alpha(g)

    @pytest.mark.parametrize("method", METHODS)
    def test_lift_of_empty_solution_is_valid_and_maximal(self, method):
        g = paper_figure1()
        kr = kernelize(g, method=method)
        lifted = kr.lift(())
        assert is_maximal_independent_set(g, lifted)

    def test_solved_kernel_lift_is_maximum(self):
        from repro.exact import forest_alpha

        g = random_tree(80, seed=9)
        kr = kernelize(g, method="near_linear")
        assert kr.is_solved
        assert len(kr.lift(())) == forest_alpha(g, list(range(g.n)))

    def test_lift_does_not_mutate_log(self):
        g = cycle_graph(12)
        kr = kernelize(g, method="degree_one")
        before = len(kr.log)
        kr.lift(range(min(1, kr.kernel.n)))
        assert len(kr.log) == before

    def test_lift_rejects_dependent_input(self):
        from repro.errors import NotASolutionError

        g = petersen_graph()
        kr = kernelize(g, method="degree_one")  # kernel == Petersen
        u, v = next(iter(kr.kernel.edges()))
        with pytest.raises(NotASolutionError):
            kr.lift({u, v})

    def test_lift_accepts_non_maximal_input(self):
        g = petersen_graph()
        kr = kernelize(g, method="degree_one")
        lifted = kr.lift({0})
        from repro.analysis import is_maximal_independent_set

        assert is_maximal_independent_set(g, lifted)  # extension fills in
