"""Fuzz tests: random mutation sequences against structural invariants.

The triangle workspace's correctness rests on invariants that hold after
*every* mutation, not just at the end of a run:

* symmetry — ``tri[u][v] == tri[v][u]``;
* degree consistency — ``deg[v] == len(tri[v])`` for live vertices;
* truth — every stored δ equals a from-scratch recount on the residual
  graph.

These tests drive random sequences of deletions and path reductions and
re-verify all three after each step.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.degree_two_paths import apply_degree_two_path_reduction
from repro.core.dominance import TriangleWorkspace
from repro.core.workspace import ArrayWorkspace
from repro.graphs import gnm_random_graph, triangle_counts

SETTINGS = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _check_triangle_invariants(ws: TriangleWorkspace) -> None:
    for u in range(ws.n):
        if not ws.alive[u]:
            assert ws.tri[u] == {}
            continue
        assert ws.deg[u] == len(ws.tri[u])
        for v, count in ws.tri[u].items():
            assert ws.alive[v]
            assert ws.tri[v][u] == count
    kernel, old_ids = ws.export_kernel()
    recount = triangle_counts(kernel)
    new_of = {old: new for new, old in enumerate(old_ids)}
    for u in range(ws.n):
        if not ws.alive[u]:
            continue
        for v, count in ws.tri[u].items():
            a, b = new_of[u], new_of[v]
            key = (a, b) if a < b else (b, a)
            assert recount[key] == count


class TestTriangleWorkspaceFuzz:
    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_deletion_sequences(self, seed):
        rng = random.Random(seed)
        g = gnm_random_graph(16, rng.randrange(10, 50), seed=seed)
        ws = TriangleWorkspace(g)
        order = list(range(g.n))
        rng.shuffle(order)
        for v in order[: g.n // 2]:
            if ws.alive[v]:
                ws.delete_vertex(v, "exclude")
                _check_triangle_invariants(ws)

    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_interleaved_paths_and_deletions(self, seed):
        rng = random.Random(seed)
        # Sparse graphs maximise degree-two path opportunities.
        g = gnm_random_graph(18, rng.randrange(12, 26), seed=seed)
        ws = TriangleWorkspace(g)
        for _ in range(6):
            u = ws.pop_degree_two()
            if u is not None:
                apply_degree_two_path_reduction(ws, u)
            else:
                live = [v for v in range(g.n) if ws.alive[v]]
                if not live:
                    break
                ws.delete_vertex(rng.choice(live), "exclude")
            _check_triangle_invariants(ws)


class TestArrayWorkspaceFuzz:
    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_degree_consistency_under_deletions(self, seed):
        rng = random.Random(seed)
        g = gnm_random_graph(20, rng.randrange(10, 60), seed=seed)
        ws = ArrayWorkspace(g, track_degree_two=True)
        order = list(range(g.n))
        rng.shuffle(order)
        for v in order[: g.n // 2]:
            if ws.alive[v]:
                ws.delete_vertex(v, "exclude")
            # Invariant: deg equals the live-neighbour count.
            for u in range(g.n):
                if ws.alive[u]:
                    assert ws.deg[u] == len(ws.live_neighbors(u))

    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_path_reductions_keep_edge_symmetry(self, seed):
        rng = random.Random(seed)
        g = gnm_random_graph(16, rng.randrange(10, 24), seed=seed)
        ws = ArrayWorkspace(g, track_degree_two=True)
        for _ in range(5):
            u = ws.pop_degree_two()
            if u is None:
                break
            apply_degree_two_path_reduction(ws, u)
            # Rewired adjacency stays symmetric among live vertices.
            for a in range(g.n):
                if not ws.alive[a]:
                    continue
                for b in ws.live_neighbors(a):
                    assert a in ws.live_neighbors(b)
