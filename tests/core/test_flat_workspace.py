"""Tests for the flat-buffer workspace (FlatWorkspace).

Mirrors the ArrayWorkspace suite — the two backends share a public surface —
and adds what is specific to the flat layout: the rewire position hint, the
incrementally maintained live counters (fuzzed against O(n) scans), and the
compacted kernel-id round trip.
"""

import random

from repro.core.workspace import ArrayWorkspace, FlatWorkspace
from repro.graphs import Graph, cycle_graph, path_graph, star_graph
from repro.graphs.generators import gnm_random_graph


class TestInitialisation:
    def test_degree_zero_included_immediately(self):
        g = Graph.empty(3)
        ws = FlatWorkspace(g)
        outcome = ws.log.replay(g, extend_maximal=False)
        assert outcome.vertices == {0, 1, 2}

    def test_initial_worklists(self):
        g = path_graph(4)  # degrees 1, 2, 2, 1
        ws = FlatWorkspace(g, track_degree_two=True)
        assert set(ws.v1) == {0, 3}
        assert set(ws.v2) == {1, 2}

    def test_degree_two_not_tracked_by_default(self):
        ws = FlatWorkspace(path_graph(4))
        assert ws.v2 == []

    def test_adjacency_is_a_private_copy(self):
        g = path_graph(3)
        ws1 = FlatWorkspace(g)
        ws2 = FlatWorkspace(g)
        ws1.remove_silently(1)
        ws1.rewire(0, 1, 2)
        assert list(ws2.adj) == list(g.flat_csr()[1])  # untouched


class TestDeletion:
    def test_delete_updates_degrees(self):
        g = star_graph(3)
        ws = FlatWorkspace(g)
        ws.delete_vertex(0, "exclude")
        assert ws.deg[1] == 0
        outcome = ws.log.replay(g, extend_maximal=False)
        assert outcome.vertices == {1, 2, 3}

    def test_delete_refiles_into_worklists(self):
        g = cycle_graph(5)
        ws = FlatWorkspace(g, track_degree_two=True)
        ws.delete_vertex(0, "exclude")
        popped = ws.pop_degree_one()
        assert popped in (1, 4)

    def test_pop_validates_staleness(self):
        g = path_graph(3)
        ws = FlatWorkspace(g)
        ws.delete_vertex(1, "exclude")  # 0 and 2 drop to degree 0
        assert ws.pop_degree_one() is None

    def test_live_neighbors_skip_dead(self):
        g = cycle_graph(4)
        ws = FlatWorkspace(g)
        ws.delete_vertex(1, "exclude")
        assert ws.live_neighbors(0) == [3]

    def test_live_counts(self):
        g = cycle_graph(4)
        ws = FlatWorkspace(g)
        assert ws.live_vertex_count == 4
        assert ws.live_edge_count() == 4
        ws.delete_vertex(0, "exclude")
        assert ws.live_vertex_count == 3
        assert ws.live_edge_count() == 2


class TestRewiring:
    def test_rewire_and_edge_check(self):
        g = path_graph(3)
        ws = FlatWorkspace(g)
        assert not ws.has_live_edge(0, 2)
        ws.remove_silently(1)
        ws.rewire(0, 1, 2)
        ws.rewire(2, 1, 0)
        assert ws.has_live_edge(0, 2)

    def test_rewire_missing_entry_raises(self):
        g = path_graph(3)
        ws = FlatWorkspace(g)
        try:
            ws.rewire(0, 2, 1)  # 2 is not adjacent to 0
        except ValueError:
            pass
        else:
            raise AssertionError("expected ValueError")

    def test_hint_survives_repeated_rewires(self):
        # Lemma 4.1 retargets the same anchor slot repeatedly; the hint must
        # keep resolving to the freshly written entry.
        g = path_graph(5)  # 0-1-2-3-4
        ws = FlatWorkspace(g)
        ws.rewire(0, 1, 2)
        ws.rewire(0, 2, 3)
        ws.rewire(0, 3, 4)
        assert 4 in ws.adj[ws.xadj[0] : ws.xadj[1]]

    def test_peel_pops_max_degree(self):
        g = star_graph(4)
        ws = FlatWorkspace(g)
        assert ws.pop_max_degree() == 0


class TestLiveCounterFuzz:
    def _scan_counts(self, ws):
        nlive = sum(ws.alive)
        live_deg = sum(d for d, a in zip(ws.deg, ws.alive) if a)
        return nlive, live_deg // 2

    def test_counters_match_scan_under_random_mutation(self):
        for seed in range(10):
            rng = random.Random(seed)
            g = gnm_random_graph(60, 150, seed=seed)
            for workspace_cls in (FlatWorkspace, ArrayWorkspace):
                ws = workspace_cls(g, track_degree_two=True)
                for _ in range(40):
                    live = [v for v in range(g.n) if ws.alive[v]]
                    if not live:
                        break
                    v = rng.choice(live)
                    op = rng.randrange(3)
                    if op == 0:
                        ws.delete_vertex(v, rng.choice(["exclude", "peel"]))
                    elif op == 1:
                        ws.remove_silently(v)
                        for w in ws.live_neighbors(v):
                            ws.decrement_degree(w)
                    else:
                        if ws.deg[v] == 0:
                            ws.include(v)
                    nlive, nedges = self._scan_counts(ws)
                    assert ws.live_vertex_count == nlive, (workspace_cls, seed)
                    assert ws.live_edge_count() == nedges, (workspace_cls, seed)


class TestKernelExport:
    def test_export_compacts_ids(self):
        g = cycle_graph(5)
        ws = FlatWorkspace(g)
        ws.delete_vertex(0, "peel")
        kernel, old_ids = ws.export_kernel()
        assert kernel.n == 4
        assert old_ids == [1, 2, 3, 4]
        assert kernel.m == 3

    def test_export_empty(self):
        g = Graph.empty(2)
        ws = FlatWorkspace(g)
        kernel, old_ids = ws.export_kernel()
        assert kernel.n == 0
        assert old_ids == []

    def test_kernel_id_round_trip_majority_dead(self):
        # Kill >50% of the vertices, then check every kernel edge maps back
        # to a live original edge and vice versa — both backends, both ways.
        g = gnm_random_graph(40, 140, seed=11)
        rng = random.Random(11)
        doomed = rng.sample(range(g.n), 24)  # 60% dead
        for workspace_cls in (FlatWorkspace, ArrayWorkspace):
            ws = workspace_cls(g)
            for v in doomed:
                if ws.alive[v]:
                    ws.delete_vertex(v, "peel")
            kernel, old_ids = ws.export_kernel()
            assert kernel.n == sum(ws.alive)
            assert sorted(old_ids) == [v for v in range(g.n) if ws.alive[v]]
            kernel_edges = {
                (old_ids[u], old_ids[w])
                for u in range(kernel.n)
                for w in kernel.neighbors(u)
            }
            live_edges = {
                (u, w)
                for u in range(g.n)
                if ws.alive[u]
                for w in ws.live_neighbors(u)
            }
            assert kernel_edges == live_edges
