"""Tests for the vertex-cover API and per-component solving."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import minimum_vertex_cover, solve_by_components
from repro.analysis import is_vertex_cover
from repro.core import bdone, near_linear
from repro.exact import brute_force_alpha
from repro.graphs import (
    Graph,
    cycle_graph,
    disjoint_union,
    gnm_random_graph,
    paper_figure1,
    path_graph,
    petersen_graph,
    star_graph,
)


class TestVertexCover:
    def test_paper_figure1(self):
        g = paper_figure1()
        result = minimum_vertex_cover(g)
        assert is_vertex_cover(g, result.vertex_cover)
        assert result.size == 5  # the paper's minimum cover
        assert result.is_exact

    def test_star_cover_is_center(self):
        result = minimum_vertex_cover(star_graph(8))
        assert result.vertex_cover == {0}

    def test_lower_bound_sandwich(self):
        for seed in range(15):
            g = gnm_random_graph(16, 32, seed=seed)
            result = minimum_vertex_cover(g)
            tau = g.n - brute_force_alpha(g)
            assert result.lower_bound <= tau <= result.size
            if result.is_exact:
                assert result.size == tau

    def test_algorithm_dispatch(self):
        g = cycle_graph(8)
        result = minimum_vertex_cover(g, algorithm="BDOne")
        assert result.algorithm == "BDOne"
        assert is_vertex_cover(g, result.vertex_cover)


class TestComponents:
    def test_matches_whole_graph_alpha_on_union(self):
        parts = [cycle_graph(5), path_graph(4), petersen_graph()]
        union = disjoint_union(parts)
        result = solve_by_components(union, near_linear)
        assert result.size == 2 + 2 + 4
        from repro.analysis import is_maximal_independent_set

        assert is_maximal_independent_set(union, result.independent_set)

    def test_certificate_composes(self):
        union = disjoint_union([cycle_graph(6), path_graph(5)])
        result = solve_by_components(union, near_linear)
        assert result.is_exact
        assert result.upper_bound == result.size

    def test_slack_sums_across_components(self):
        union = disjoint_union([petersen_graph(), petersen_graph()])
        result = solve_by_components(union, bdone)
        whole = bdone(union)
        assert result.surviving_peels <= whole.surviving_peels + 2
        assert result.algorithm.endswith("/components")

    def test_empty_graph(self):
        result = solve_by_components(Graph.empty(0), near_linear)
        assert result.size == 0
        assert result.is_exact

    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=0, max_value=400))
    def test_component_solving_never_worse_bound(self, seed):
        g = gnm_random_graph(14, 12, seed=seed)  # sparse -> disconnected
        split = solve_by_components(g, near_linear)
        alpha = brute_force_alpha(g)
        assert split.size <= alpha <= split.upper_bound
