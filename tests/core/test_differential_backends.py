"""Differential tests: flat-buffer backend vs. the list-of-lists oracle.

The specialized drivers in :mod:`repro.core.bdone` and
:mod:`repro.core.linear_time` must make *byte-identical* decision sequences
to the generic loop over :class:`~repro.core.workspace.ArrayWorkspace` —
same independent set, same Theorem-6.1 bound, same rule stats, same raw
decision-log entries.  These tests sweep >100 seeded generator graphs and
assert exactly that; NearLinear (whose TriangleWorkspace has no flat twin)
is checked for validity and determinism on the same inputs.
"""

import pytest

from repro.analysis import assert_valid_solution
from repro.core.bdone import bdone
from repro.core.linear_time import linear_time, linear_time_reduce
from repro.core.near_linear import near_linear
from repro.core.workspace import ArrayWorkspace
from repro.exact import brute_force_mis
from repro.graphs.generators import (
    gnm_random_graph,
    power_law_graph,
    web_like_graph,
)


def _graph_corpus():
    """>100 small seeded graphs spanning the generator families."""
    graphs = []
    for seed in range(40):
        graphs.append(gnm_random_graph(30 + seed, 2 * (30 + seed), seed=seed))
    for seed in range(40):
        graphs.append(
            power_law_graph(40 + seed, beta=2.1 + (seed % 5) * 0.2,
                            average_degree=3.0 + (seed % 4), seed=seed)
        )
    for seed in range(25):
        graphs.append(web_like_graph(35 + seed, attach=2 + seed % 3, seed=seed))
    return graphs


CORPUS = _graph_corpus()


def test_corpus_is_large_enough():
    assert len(CORPUS) >= 100


@pytest.mark.parametrize("algorithm", [bdone, linear_time])
def test_backends_agree_everywhere(algorithm):
    for graph in CORPUS:
        flat = algorithm(graph)
        oracle = algorithm(graph, workspace_factory=ArrayWorkspace)
        assert flat.independent_set == oracle.independent_set, graph.name
        assert flat.upper_bound == oracle.upper_bound, graph.name
        assert flat.peeled == oracle.peeled, graph.name
        assert flat.surviving_peels == oracle.surviving_peels, graph.name
        assert flat.is_exact == oracle.is_exact, graph.name
        assert flat.stats == oracle.stats, graph.name
        assert_valid_solution(graph, flat.independent_set)


def test_linear_time_decision_logs_identical():
    # Stronger than result equality: the raw chronological decision entries
    # must match tuple-for-tuple (the kernel and id maps then match too).
    for graph in CORPUS:
        k_flat, ids_flat, log_flat = linear_time_reduce(graph)
        k_arr, ids_arr, log_arr = linear_time_reduce(
            graph, workspace_factory=ArrayWorkspace
        )
        assert log_flat.entries == log_arr.entries
        assert log_flat.stats == log_arr.stats
        assert ids_flat == ids_arr
        assert k_flat.n == k_arr.n and k_flat.m == k_arr.m


def test_near_linear_valid_and_deterministic():
    for graph in CORPUS[::5]:
        first = near_linear(graph)
        second = near_linear(graph)
        assert_valid_solution(graph, first.independent_set)
        assert first.independent_set == second.independent_set
        assert first.stats == second.stats


def test_exact_flags_honest_on_tiny_graphs():
    # Where brute force is affordable, a certified-exact result must match
    # the true independence number — for every algorithm and both backends.
    for seed in range(8):
        graph = gnm_random_graph(14, 24, seed=seed)
        alpha = len(brute_force_mis(graph))
        for result in (
            bdone(graph),
            bdone(graph, workspace_factory=ArrayWorkspace),
            linear_time(graph),
            linear_time(graph, workspace_factory=ArrayWorkspace),
            near_linear(graph),
        ):
            assert len(result.independent_set) <= alpha
            if result.is_exact:
                assert len(result.independent_set) == alpha
