"""Differential tests: flat-buffer backends vs. their reference oracles.

The specialized drivers in :mod:`repro.core.bdone` and
:mod:`repro.core.linear_time` must make *byte-identical* decision sequences
to the generic loop over :class:`~repro.core.workspace.ArrayWorkspace`, and
NearLinear's :class:`~repro.core.flat_dominance.FlatTriangleWorkspace` must
do the same against the list-of-dicts
:class:`~repro.core.dominance.TriangleWorkspace` — same independent set,
same Theorem-6.1 bound, same rule stats, same raw decision-log entries.
These tests sweep >100 seeded generator graphs and assert exactly that;
BDTwo (whose dynamic fold workspace has no flat twin) is checked for
determinism, validity and honest exactness on the same inputs.
"""

import pytest

from repro.analysis import assert_valid_solution
from repro.core.bdone import bdone
from repro.core.bdtwo import bdtwo
from repro.core.dominance import TriangleWorkspace, one_pass_dominance
from repro.core.flat_dominance import flat_one_pass_dominance
from repro.core.linear_time import linear_time, linear_time_reduce
from repro.core.near_linear import near_linear, near_linear_reduce
from repro.core.workspace import ArrayWorkspace
from repro.exact import brute_force_mis
from repro.graphs.generators import (
    gnm_random_graph,
    power_law_graph,
    web_like_graph,
)


def _graph_corpus():
    """>100 small seeded graphs spanning the generator families."""
    graphs = []
    for seed in range(40):
        graphs.append(gnm_random_graph(30 + seed, 2 * (30 + seed), seed=seed))
    for seed in range(40):
        graphs.append(
            power_law_graph(40 + seed, beta=2.1 + (seed % 5) * 0.2,
                            average_degree=3.0 + (seed % 4), seed=seed)
        )
    for seed in range(25):
        graphs.append(web_like_graph(35 + seed, attach=2 + seed % 3, seed=seed))
    return graphs


CORPUS = _graph_corpus()


def test_corpus_is_large_enough():
    assert len(CORPUS) >= 100


@pytest.mark.parametrize("algorithm", [bdone, linear_time])
def test_backends_agree_everywhere(algorithm):
    for graph in CORPUS:
        flat = algorithm(graph)
        oracle = algorithm(graph, workspace_factory=ArrayWorkspace)
        assert flat.independent_set == oracle.independent_set, graph.name
        assert flat.upper_bound == oracle.upper_bound, graph.name
        assert flat.peeled == oracle.peeled, graph.name
        assert flat.surviving_peels == oracle.surviving_peels, graph.name
        assert flat.is_exact == oracle.is_exact, graph.name
        assert flat.stats == oracle.stats, graph.name
        assert_valid_solution(graph, flat.independent_set)


def test_linear_time_decision_logs_identical():
    # Stronger than result equality: the raw chronological decision entries
    # must match tuple-for-tuple (the kernel and id maps then match too).
    for graph in CORPUS:
        k_flat, ids_flat, log_flat = linear_time_reduce(graph)
        k_arr, ids_arr, log_arr = linear_time_reduce(
            graph, workspace_factory=ArrayWorkspace
        )
        assert log_flat.entries == log_arr.entries
        assert log_flat.stats == log_arr.stats
        assert ids_flat == ids_arr
        assert k_flat.n == k_arr.n and k_flat.m == k_arr.m


def test_near_linear_valid_and_deterministic():
    for graph in CORPUS[::5]:
        first = near_linear(graph)
        second = near_linear(graph)
        assert_valid_solution(graph, first.independent_set)
        assert first.independent_set == second.independent_set
        assert first.stats == second.stats


def test_near_linear_backends_agree_everywhere():
    # The flat dominance workspace against the list-of-dicts oracle:
    # identical results under both the full pipeline and preprocess=False
    # (where the workspace does all the work).
    for graph in CORPUS:
        flat = near_linear(graph)
        oracle = near_linear(graph, workspace_factory=TriangleWorkspace)
        assert flat.independent_set == oracle.independent_set, graph.name
        assert flat.upper_bound == oracle.upper_bound, graph.name
        assert flat.stats == oracle.stats, graph.name
        assert_valid_solution(graph, flat.independent_set)
    for graph in CORPUS[::7]:
        flat = near_linear(graph, preprocess=False)
        oracle = near_linear(
            graph, preprocess=False, workspace_factory=TriangleWorkspace
        )
        assert flat.independent_set == oracle.independent_set, graph.name
        assert flat.stats == oracle.stats, graph.name


def test_near_linear_decision_logs_identical():
    # Stronger than result equality: tuple-for-tuple identical decision
    # entries, kernels and id maps from the reducing-only mode.
    for graph in CORPUS:
        k_flat, ids_flat, log_flat = near_linear_reduce(graph)
        k_tri, ids_tri, log_tri = near_linear_reduce(
            graph, workspace_factory=TriangleWorkspace
        )
        assert log_flat.entries == log_tri.entries, graph.name
        assert log_flat.stats == log_tri.stats, graph.name
        assert ids_flat == ids_tri, graph.name
        assert k_flat == k_tri, graph.name


def test_one_pass_dominance_sweeps_agree():
    # Phase 1 of NearLinear: the stamp-based flat sweep must remove the
    # same vertices in the same order as the set-based oracle.
    for graph in CORPUS:
        assert flat_one_pass_dominance(graph) == one_pass_dominance(graph), graph.name


def test_bdtwo_deterministic_and_valid_on_corpus():
    # BDTwo has a single (dynamic-set) workspace; cover its decision
    # behaviour on the same corpus: deterministic, valid, honest bounds.
    for graph in CORPUS[::3]:
        first = bdtwo(graph)
        second = bdtwo(graph)
        assert first.independent_set == second.independent_set, graph.name
        assert first.stats == second.stats, graph.name
        assert first.upper_bound == second.upper_bound, graph.name
        assert_valid_solution(graph, first.independent_set)
        assert len(first.independent_set) <= first.upper_bound


def test_bdtwo_exact_flags_honest_on_tiny_graphs():
    for seed in range(8):
        graph = gnm_random_graph(14, 24, seed=seed)
        alpha = len(brute_force_mis(graph))
        result = bdtwo(graph)
        assert len(result.independent_set) <= alpha
        if result.is_exact:
            assert len(result.independent_set) == alpha


def test_exact_flags_honest_on_tiny_graphs():
    # Where brute force is affordable, a certified-exact result must match
    # the true independence number — for every algorithm and both backends.
    for seed in range(8):
        graph = gnm_random_graph(14, 24, seed=seed)
        alpha = len(brute_force_mis(graph))
        for result in (
            bdone(graph),
            bdone(graph, workspace_factory=ArrayWorkspace),
            linear_time(graph),
            linear_time(graph, workspace_factory=ArrayWorkspace),
            near_linear(graph),
        ):
            assert len(result.independent_set) <= alpha
            if result.is_exact:
                assert len(result.independent_set) == alpha
