"""Tests for the ArrayWorkspace mutation primitives."""

from repro.core.workspace import ArrayWorkspace
from repro.graphs import Graph, cycle_graph, path_graph, star_graph


class TestInitialisation:
    def test_degree_zero_included_immediately(self):
        g = Graph.empty(3)
        ws = ArrayWorkspace(g)
        outcome = ws.log.replay(g, extend_maximal=False)
        assert outcome.vertices == {0, 1, 2}

    def test_initial_worklists(self):
        g = path_graph(4)  # degrees 1, 2, 2, 1
        ws = ArrayWorkspace(g, track_degree_two=True)
        assert set(ws.v1) == {0, 3}
        assert set(ws.v2) == {1, 2}

    def test_degree_two_not_tracked_by_default(self):
        ws = ArrayWorkspace(path_graph(4))
        assert ws.v2 == []


class TestDeletion:
    def test_delete_updates_degrees(self):
        g = star_graph(3)
        ws = ArrayWorkspace(g)
        ws.delete_vertex(0, "exclude")
        assert ws.deg[1] == 0
        # Leaves hit degree zero and are auto-included.
        outcome = ws.log.replay(g, extend_maximal=False)
        assert outcome.vertices == {1, 2, 3}

    def test_delete_refiles_into_worklists(self):
        g = cycle_graph(5)
        ws = ArrayWorkspace(g, track_degree_two=True)
        ws.delete_vertex(0, "exclude")
        popped = ws.pop_degree_one()
        assert popped in (1, 4)

    def test_pop_validates_staleness(self):
        g = path_graph(3)
        ws = ArrayWorkspace(g)
        ws.delete_vertex(1, "exclude")  # 0 and 2 drop to degree 0
        assert ws.pop_degree_one() is None  # stale entries skipped

    def test_live_neighbors_skip_dead(self):
        g = cycle_graph(4)
        ws = ArrayWorkspace(g)
        ws.delete_vertex(1, "exclude")
        assert ws.live_neighbors(0) == [3]

    def test_live_counts(self):
        g = cycle_graph(4)
        ws = ArrayWorkspace(g)
        assert ws.live_vertex_count == 4
        assert ws.live_edge_count() == 4
        ws.delete_vertex(0, "exclude")
        assert ws.live_vertex_count == 3
        assert ws.live_edge_count() == 2


class TestRewiring:
    def test_rewire_and_edge_check(self):
        g = path_graph(3)
        ws = ArrayWorkspace(g)
        assert not ws.has_live_edge(0, 2)
        ws.remove_silently(1)
        ws.rewire(0, 1, 2)
        ws.rewire(2, 1, 0)
        assert ws.has_live_edge(0, 2)

    def test_peel_pops_max_degree(self):
        g = star_graph(4)
        ws = ArrayWorkspace(g)
        assert ws.pop_max_degree() == 0


class TestKernelExport:
    def test_export_compacts_ids(self):
        g = cycle_graph(5)
        ws = ArrayWorkspace(g)
        ws.delete_vertex(0, "peel")
        kernel, old_ids = ws.export_kernel()
        assert kernel.n == 4
        assert old_ids == [1, 2, 3, 4]
        assert kernel.m == 3  # the path 1-2-3-4

    def test_export_empty(self):
        g = Graph.empty(2)
        ws = ArrayWorkspace(g)
        kernel, old_ids = ws.export_kernel()
        assert kernel.n == 0
        assert old_ids == []
