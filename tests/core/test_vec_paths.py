"""Differential tests for the batched degree-two path rounds (ISSUE 7).

The contract is *stronger* than the general vectorized-backend one: the
batch driver (:func:`~repro.core.vec_paths.run_path_rounds` plus
:func:`~repro.core.vec_paths.vec_delete_vertex` batched peeling, entered
via ``drive_linear_time_vec(..., batch_rounds=True)``) must append the
**entry-for-entry identical** decision sequence of the scalar protocol
driver (``batch_rounds=False``), not merely an equally good one — the
batch walk discovers the same maximal paths in the same worklist order
the scalar ``apply_degree_two_path_reduction`` would, so any reordering
is a bug, not a legal batch artefact.
"""

import random

import pytest

from repro.core.vec_paths import PathPairCache, vec_delete_vertex
from repro.core.vectorized import (
    VecWorkspace,
    drive_bdone_vec,
    drive_linear_time_vec,
)
from repro.graphs.generators import (
    caterpillar_graph,
    cycle_graph,
    path_graph,
    random_tree,
)
from repro.graphs.static_graph import Graph

from .test_differential_backends import CORPUS


def _drive_entries(graph: Graph, batch_rounds: bool, stop_before_peel: bool):
    workspace = VecWorkspace(graph)
    drive_linear_time_vec(
        workspace, stop_before_peel=stop_before_peel, batch_rounds=batch_rounds
    )
    return workspace.log.entries, workspace.log.stats


def _chain_corpus():
    graphs = []
    for k in range(3, 40):
        graphs.append(path_graph(k))
        graphs.append(cycle_graph(k))
    graphs.append(caterpillar_graph(15, 3))
    graphs.append(random_tree(60, seed=3))
    return graphs


CHAIN_CORPUS = _chain_corpus()


def test_batch_rounds_entry_identical_on_corpus():
    for graph in CORPUS:
        batch, batch_stats = _drive_entries(graph, True, stop_before_peel=False)
        scalar, scalar_stats = _drive_entries(graph, False, stop_before_peel=False)
        assert batch == scalar, graph.name
        assert batch_stats == scalar_stats, graph.name


def test_batch_rounds_entry_identical_on_chains_and_cycles():
    # Pure paths and cycles exercise every Lemma 4.1 case (odd/even paths,
    # cycles, folds) with nothing else in the graph to mask an off-by-one.
    for graph in CHAIN_CORPUS:
        batch, _ = _drive_entries(graph, True, stop_before_peel=False)
        scalar, _ = _drive_entries(graph, False, stop_before_peel=False)
        assert batch == scalar, graph.name


def test_batch_rounds_entry_identical_in_kernel_mode():
    for graph in CORPUS[::5]:
        batch, _ = _drive_entries(graph, True, stop_before_peel=True)
        scalar, _ = _drive_entries(graph, False, stop_before_peel=True)
        assert batch == scalar, graph.name


def test_bdone_batch_driver_entry_identical():
    for graph in CORPUS[::3] + CHAIN_CORPUS[::4]:
        ws_batch = VecWorkspace(graph)
        drive_bdone_vec(ws_batch, batch_rounds=True)
        ws_scalar = VecWorkspace(graph)
        drive_bdone_vec(ws_scalar, batch_rounds=False)
        assert ws_batch.log.entries == ws_scalar.log.entries, graph.name


def test_vec_delete_vertex_matches_scalar_delete():
    # Peeling one vertex through the batched deleter must leave the
    # workspace in the same externally visible state as the scalar
    # protocol method: same log, degrees, liveness, and worklists-after.
    rng = random.Random(9)
    for graph in CORPUS[::6]:
        if graph.n == 0:
            continue
        picks = [rng.randrange(graph.n) for _ in range(min(4, graph.n))]
        for v in picks:
            a = VecWorkspace(graph)
            b = VecWorkspace(graph)
            if not a.alive[v]:
                continue
            vec_delete_vertex(a, v, "peel")
            b.delete_vertex(v, "peel")
            assert a.log.entries == b.log.entries, (graph.name, v)
            assert a.deg.tolist() == b.deg.tolist(), (graph.name, v)
            assert a.alive.tolist() == b.alive.tolist(), (graph.name, v)
            assert a.live_vertex_count == b.live_vertex_count
            assert a.live_edge_count() == b.live_edge_count()


def test_path_pair_cache_starts_unprimed():
    graph = path_graph(9)
    cache = PathPairCache(graph.n)
    # Before any gather nothing is cached and the bulk prime is pending.
    assert not cache.primed
    assert not cache.have.any()


def test_batch_and_scalar_agree_after_interleaved_peels():
    # Alternate a manual peel with a batch drive: the cache must stay
    # coherent with the mutated degrees (stale pairs are re-validated).
    for seed in (1, 5):
        graph = random_tree(50, seed=seed)
        a = VecWorkspace(graph)
        b = VecWorkspace(graph)
        order = [v for v in range(graph.n) if v % 17 == 0]
        for v in order:
            if a.alive[v]:
                vec_delete_vertex(a, v, "peel")
            if b.alive[v]:
                b.delete_vertex(v, "peel")
        drive_linear_time_vec(a, stop_before_peel=False, batch_rounds=True)
        drive_linear_time_vec(b, stop_before_peel=False, batch_rounds=False)
        assert a.log.entries == b.log.entries, graph.name


@pytest.mark.parametrize("batch_rounds", [True, False])
def test_drive_handles_empty_graph(batch_rounds):
    graph = Graph.from_edges(0, [], name="empty")
    workspace = VecWorkspace(graph)
    drive_linear_time_vec(
        workspace, stop_before_peel=False, batch_rounds=batch_rounds
    )
    assert workspace.log.entries == []
