"""The shared stat-key registry and flat-vs-legacy counter agreement.

Every rule counter any backend bumps must come from the registry in
:mod:`repro.core.result`; the differential half asserts that the flat and
the oracle backends produce the *identical* stats dict, so a renamed or
missing counter key shows up as a test failure, not as a silently empty
column in a report.
"""

import pytest

from repro.core.bdone import bdone
from repro.core.bdtwo import bdtwo
from repro.core.dominance import TriangleWorkspace
from repro.core.linear_time import linear_time
from repro.core.near_linear import near_linear
from repro.core.result import (
    KNOWN_STAT_KEYS,
    STAT_DEGREE_ONE,
    STAT_PEEL,
)
from repro.core.workspace import ArrayWorkspace
from repro.graphs.generators import gnm_random_graph, power_law_graph, web_like_graph

GRAPHS = [
    power_law_graph(600, beta=2.2, average_degree=6.0, seed=31),
    gnm_random_graph(500, 1500, seed=32),
    web_like_graph(400, attach=3, seed=33),
]


class TestRegistry:
    def test_registry_covers_every_emitted_key(self):
        for graph in GRAPHS:
            for result in (
                bdone(graph),
                bdtwo(graph),
                linear_time(graph),
                near_linear(graph),
            ):
                unknown = set(result.stats) - KNOWN_STAT_KEYS
                assert not unknown, f"{result.algorithm}: {unknown}"

    def test_core_constants_are_the_literal_keys(self):
        # The flat loops batch-commit counters under these exact strings;
        # the constants exist so no second spelling can drift in.
        assert STAT_DEGREE_ONE == "degree-one"
        assert STAT_PEEL == "peel"
        assert STAT_DEGREE_ONE in KNOWN_STAT_KEYS
        assert STAT_PEEL in KNOWN_STAT_KEYS


class TestFlatVsLegacyStats:
    @pytest.mark.parametrize("graph", GRAPHS, ids=lambda g: g.name)
    def test_bdone_stats_identical(self, graph):
        flat = bdone(graph)
        oracle = bdone(graph, workspace_factory=ArrayWorkspace)
        assert flat.stats == oracle.stats

    @pytest.mark.parametrize("graph", GRAPHS, ids=lambda g: g.name)
    def test_linear_time_stats_identical(self, graph):
        flat = linear_time(graph)
        oracle = linear_time(graph, workspace_factory=ArrayWorkspace)
        assert flat.stats == oracle.stats

    @pytest.mark.parametrize("graph", GRAPHS, ids=lambda g: g.name)
    def test_near_linear_stats_identical(self, graph):
        flat = near_linear(graph)
        oracle = near_linear(graph, workspace_factory=TriangleWorkspace)
        assert flat.stats == oracle.stats
