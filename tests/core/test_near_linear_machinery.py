"""Tests for NearLinear's triangle-count workspace and dominance machinery."""

import pytest

from repro.core.dominance import TriangleWorkspace, one_pass_dominance
from repro.core.near_linear import near_linear
from repro.exact import brute_force_alpha
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    gnm_random_graph,
    isolated_clique_gadget,
    mutual_dominance_gadget,
    paper_figure1_modified,
    petersen_graph,
    triangle_counts,
)


def _assert_triangle_counts_consistent(workspace):
    """The workspace's δ must match a recount on the live residual graph."""
    kernel, old_ids = workspace.export_kernel()
    recounted = triangle_counts(kernel)
    new_of = {old: new for new, old in enumerate(old_ids)}
    for u in range(workspace.n):
        if not workspace.alive[u]:
            continue
        for v, count in workspace.tri[u].items():
            a, b = new_of[u], new_of[v]
            key = (a, b) if a < b else (b, a)
            assert recounted[key] == count, (u, v)


class TestInitialTriangleCounts:
    def test_k4(self):
        ws = TriangleWorkspace(complete_graph(4))
        assert all(c == 2 for row in ws.tri for c in row.values())

    def test_triangle_free(self):
        ws = TriangleWorkspace(petersen_graph())
        assert all(c == 0 for row in ws.tri for c in row.values())

    def test_matches_reference_counter(self):
        g = gnm_random_graph(30, 90, seed=5)
        ws = TriangleWorkspace(g)
        reference = triangle_counts(g)
        for (u, v), count in reference.items():
            assert ws.tri[u][v] == count
            assert ws.tri[v][u] == count

    @pytest.mark.parametrize("seed", range(10))
    def test_scipy_and_python_backends_agree(self, seed):
        g = gnm_random_graph(35, 140, seed=seed)
        fast = TriangleWorkspace(g)  # scipy path when available
        slow = TriangleWorkspace.__new__(TriangleWorkspace)
        slow.graph = g
        slow.n = g.n
        slow.tri = [dict.fromkeys(g.neighbors(v), 0) for v in range(g.n)]
        slow.deg = g.degrees()
        slow._count_triangles_python()
        assert fast.tri == slow.tri


class TestMaintenanceUnderDeletion:
    @pytest.mark.parametrize("seed", range(15))
    def test_random_deletions_preserve_counts(self, seed):
        import random

        rng = random.Random(seed)
        g = gnm_random_graph(18, 50, seed=seed)
        ws = TriangleWorkspace(g)
        victims = rng.sample(range(g.n), 6)
        for v in victims:
            if ws.alive[v]:
                ws.delete_vertex(v, "exclude")
        _assert_triangle_counts_consistent(ws)

    def test_dominance_detection_via_counts(self):
        g = isolated_clique_gadget(4)
        ws = TriangleWorkspace(g)
        # Vertex 0 dominates its clique neighbours: they must be on the
        # candidate list and verified on pop.
        dominated = set()
        while True:
            u = ws.pop_dominated()
            if u is None:
                break
            dominated.add(u)
            ws.delete_vertex(u, "exclude")
        assert dominated  # at least one clique member removed

    def test_mutual_dominance_recheck(self):
        # 0 and 1 dominate each other; once one is removed the other no
        # longer verifies — the re-check of Algorithm 5 Line 8.
        g = mutual_dominance_gadget()
        ws = TriangleWorkspace(g)
        assert ws.is_dominated(0)
        assert ws.is_dominated(1)
        ws.delete_vertex(0, "exclude")
        assert not ws.is_dominated(1)


class TestOnePassDominance:
    def test_clique_gadget_collapses(self):
        g = isolated_clique_gadget(5, pendants_per_vertex=1)
        removed = one_pass_dominance(g)
        assert len(removed) >= 3

    def test_triangle_free_untouched_except_pendants(self):
        g = petersen_graph()
        assert one_pass_dominance(g) == []

    def test_preserves_alpha(self):
        for seed in range(20):
            g = gnm_random_graph(14, 30, seed=seed)
            removed = one_pass_dominance(g)
            survivors = sorted(set(range(g.n)) - set(removed))
            sub, _ = g.subgraph(survivors)
            assert brute_force_alpha(sub) == brute_force_alpha(g)


class TestNearLinearPhases:
    def test_preprocess_toggle(self):
        g = paper_figure1_modified()
        with_prep = near_linear(g, preprocess=True)
        without_prep = near_linear(g, preprocess=False)
        alpha = brute_force_alpha(g)
        assert with_prep.size == alpha
        assert without_prep.size == alpha
        # The main loop's incremental dominance must certify on its own.
        assert without_prep.is_exact

    def test_cycle_paths_inside_triangle_workspace(self):
        # Degree-two cycles exercise the path driver on TriangleWorkspace.
        result = near_linear(cycle_graph(11), preprocess=False)
        assert result.is_exact
        assert result.size == 5

    def test_even_no_edge_rewiring_with_triangles(self):
        # Two anchors sharing a common neighbour: the rewired (v, w) edge
        # must pick up δ = 1 and stay consistent.
        edges = [
            (0, 1), (1, 2),          # the degree-two path (1, 2)... anchors 0, 3
            (2, 3),
            (0, 4), (3, 4),          # common neighbour 4 -> future triangle
            (0, 5), (0, 6), (3, 7), (3, 8),  # degree padding
        ]
        g = Graph.from_edges(9, edges)
        ws = TriangleWorkspace(g)
        from repro.core.degree_two_paths import apply_degree_two_path_reduction

        rule = apply_degree_two_path_reduction(ws, 1)
        assert rule == "path:even-no-edge"
        assert ws.tri[0][3] == 1  # triangle (0, 3, 4)
        _assert_triangle_counts_consistent(ws)
