"""Tests for the Theorem-6.1 upper-bound helpers."""

import pytest

from repro.core import bdone, near_linear
from repro.core.upper_bound import certify_maximum, reducing_peeling_upper_bound
from repro.exact import brute_force_alpha
from repro.graphs import (
    cycle_graph,
    gnm_random_graph,
    petersen_graph,
    power_law_sequence_graph,
    random_tree,
)


class TestBoundHelper:
    def test_bound_valid_on_random_graphs(self):
        for seed in range(20):
            g = gnm_random_graph(15, 30, seed=seed)
            assert reducing_peeling_upper_bound(g) >= brute_force_alpha(g)

    def test_bound_tight_on_reducible_graphs(self):
        g = random_tree(60, seed=1)
        result = near_linear(g)
        assert reducing_peeling_upper_bound(g) == result.size

    def test_bound_on_petersen(self):
        # Peeling must fire; the bound is alpha + slack, never below alpha.
        assert reducing_peeling_upper_bound(petersen_graph()) >= 4


class TestCertify:
    def test_certified_when_bound_met(self):
        result = near_linear(cycle_graph(9))
        assert certify_maximum(result)
        assert result.is_exact

    def test_not_certified_with_slack(self):
        result = bdone(petersen_graph())
        assert not certify_maximum(result)

    def test_certificate_equals_is_exact(self):
        for seed in range(15):
            g = gnm_random_graph(20, 45, seed=seed)
            for algorithm in (bdone, near_linear):
                result = algorithm(g)
                assert certify_maximum(result) == result.is_exact


class TestPaperTable5Claim:
    """Sanity anchor for the Table-5 benchmark: PLR graphs certify."""

    @pytest.mark.parametrize("beta", [1.9, 2.3, 2.7])
    def test_plr_graphs_certified_by_bdone(self, beta):
        g = power_law_sequence_graph(3000, beta, seed=42)
        result = bdone(g)
        assert result.is_exact
