"""Property-based tests (hypothesis) for the library's core invariants.

Strategy: generate arbitrary small simple graphs, then assert the paper's
invariants against the brute-force oracle:

* every algorithm (ours and the baselines) outputs an independent set that
  is maximal and never exceeds α;
* the Theorem-6.1 sandwich ``|I| ≤ α ≤ |I| + |R|`` always holds and the
  exactness certificate never lies;
* each exact reduction rule preserves α with its stated offset;
* kernelization composes: ``α(G) = alpha_offset + α(kernel)``;
* lifting a maximum kernel solution yields a maximum solution.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import is_maximal_independent_set
from repro.baselines import du, greedy, online_mis, semi_external
from repro.core import bdone, bdtwo, kernelize, linear_time, lp_reduction, near_linear
from repro.core.reductions import find_dominated_vertex, reduce_dominance
from repro.exact import (
    brute_force_alpha,
    brute_force_mis,
    combined_upper_bound,
    maximum_independent_set,
)
from repro.graphs import Graph

SETTINGS = settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graphs(draw, max_vertices: int = 14):
    """An arbitrary simple undirected graph with up to ``max_vertices``."""
    n = draw(st.integers(min_value=0, max_value=max_vertices))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=len(possible))
        if possible
        else st.just([])
    )
    return Graph.from_edges(n, edges)


REDUCING_PEELING = [bdone, bdtwo, linear_time, near_linear]
BASELINES = [greedy, du, semi_external]


@pytest.mark.parametrize("algorithm", REDUCING_PEELING)
class TestReducingPeelingInvariants:
    @SETTINGS
    @given(graph=graphs())
    def test_valid_maximal_and_bounded(self, algorithm, graph):
        result = algorithm(graph)
        assert is_maximal_independent_set(graph, result.independent_set) or graph.n == 0
        alpha = brute_force_alpha(graph)
        assert result.size <= alpha <= result.upper_bound

    @SETTINGS
    @given(graph=graphs())
    def test_certificate_never_lies(self, algorithm, graph):
        result = algorithm(graph)
        if result.is_exact:
            assert result.size == brute_force_alpha(graph)

    @SETTINGS
    @given(graph=graphs())
    def test_upper_bound_consistency(self, algorithm, graph):
        result = algorithm(graph)
        assert result.upper_bound == result.size + result.surviving_peels
        assert result.surviving_peels <= result.peeled


@pytest.mark.parametrize("algorithm", BASELINES)
class TestBaselineInvariants:
    @SETTINGS
    @given(graph=graphs())
    def test_valid_maximal_and_bounded(self, algorithm, graph):
        result = algorithm(graph)
        assert is_maximal_independent_set(graph, result.independent_set) or graph.n == 0
        assert result.size <= brute_force_alpha(graph)


class TestOnlineMIS:
    @SETTINGS
    @given(graph=graphs(max_vertices=12))
    def test_valid_and_bounded(self, graph):
        result = online_mis(graph, time_budget=0.01, max_iterations=2)
        assert is_maximal_independent_set(graph, result.independent_set) or graph.n == 0
        assert result.size <= brute_force_alpha(graph)


class TestReductions:
    @SETTINGS
    @given(graph=graphs())
    def test_lp_reduction_preserves_alpha(self, graph):
        result = lp_reduction(graph)
        sub, _ = graph.subgraph(result.remaining)
        assert len(result.included) + brute_force_alpha(sub) == brute_force_alpha(graph)

    @SETTINGS
    @given(graph=graphs())
    def test_dominance_preserves_alpha(self, graph):
        found = find_dominated_vertex(graph)
        if found is None:
            return
        u, v = found
        application = reduce_dominance(graph, u, v)
        assert brute_force_alpha(application.reduced) == brute_force_alpha(graph)

    @SETTINGS
    @given(graph=graphs())
    def test_combined_bound_is_valid(self, graph):
        assert combined_upper_bound(graph) >= brute_force_alpha(graph)


@pytest.mark.parametrize("method", ["degree_one", "linear_time", "near_linear"])
class TestKernelization:
    @SETTINGS
    @given(graph=graphs())
    def test_alpha_decomposition(self, method, graph):
        kr = kernelize(graph, method=method)
        assert kr.log.peel_count == 0
        assert kr.log.alpha_offset + brute_force_alpha(kr.kernel) == brute_force_alpha(
            graph
        )

    @SETTINGS
    @given(graph=graphs(max_vertices=12))
    def test_lift_of_maximum_is_maximum(self, method, graph):
        kr = kernelize(graph, method=method)
        lifted = kr.lift(brute_force_mis(kr.kernel))
        assert is_maximal_independent_set(graph, lifted) or graph.n == 0
        assert len(lifted) == brute_force_alpha(graph)


class TestExactSolver:
    @SETTINGS
    @given(graph=graphs(max_vertices=12))
    def test_matches_brute_force(self, graph):
        assert maximum_independent_set(graph).size == brute_force_alpha(graph)


class TestSemiExternal:
    @SETTINGS
    @given(graph=graphs(max_vertices=12))
    def test_semi_external_invariants(self, graph):
        from repro.external import semi_external_bdone

        result = semi_external_bdone(graph)
        assert is_maximal_independent_set(graph, result.independent_set) or graph.n == 0
        alpha = brute_force_alpha(graph)
        assert result.size <= alpha <= result.upper_bound
        if result.is_exact:
            assert result.size == alpha


class TestVertexCoverDuality:
    @SETTINGS
    @given(graph=graphs(max_vertices=12))
    def test_cover_sandwich(self, graph):
        from repro import minimum_vertex_cover
        from repro.analysis import is_vertex_cover

        result = minimum_vertex_cover(graph, algorithm="LinearTime")
        assert is_vertex_cover(graph, result.vertex_cover)
        tau = graph.n - brute_force_alpha(graph)
        assert result.lower_bound <= tau <= result.size
