"""Cross-module integration tests: realistic end-to-end flows."""

import pytest

from repro import (
    bdone,
    bdtwo,
    compute_independent_set,
    kernelize,
    linear_time,
    near_linear,
)
from repro.analysis import (
    complement_vertex_cover,
    is_maximal_independent_set,
    is_vertex_cover,
)
from repro.baselines import du, greedy
from repro.bench import load, run_convergence_suite
from repro.exact import brute_force_alpha, maximum_independent_set
from repro.graphs import (
    disjoint_union,
    dumps_edge_list,
    gnm_random_graph,
    loads_edge_list,
    power_law_graph,
    power_law_sequence_graph,
    write_metis,
    read_metis,
)
from repro.localsearch import arw, arw_nl


class TestFileToSolutionFlow:
    def test_edge_list_round_trip_preserves_results(self):
        g = power_law_graph(500, 2.2, average_degree=5, seed=13)
        reloaded = loads_edge_list(dumps_edge_list(g))
        assert near_linear(g).size == near_linear(reloaded).size

    def test_metis_kernel_exact_lift(self, tmp_path):
        g = gnm_random_graph(200, 380, seed=31)
        path = tmp_path / "graph.metis"
        write_metis(g, str(path))
        reloaded = read_metis(str(path))
        kr = kernelize(reloaded, method="near_linear")
        if kr.kernel.n <= 40:
            from repro.exact import brute_force_mis

            lifted = kr.lift(brute_force_mis(kr.kernel))
            exact = maximum_independent_set(g, node_budget=50_000)
            assert len(lifted) == exact.size


class TestVertexCoverDuality:
    @pytest.mark.parametrize("seed", range(5))
    def test_complement_is_cover(self, seed):
        g = power_law_graph(800, 2.3, average_degree=6, seed=seed)
        result = linear_time(g)
        cover = complement_vertex_cover(g, result.independent_set)
        assert is_vertex_cover(g, cover)
        assert len(cover) + result.size == g.n


class TestDisconnectedGraphs:
    def test_components_solved_independently(self):
        parts = [gnm_random_graph(12, 18, seed=s) for s in range(3)]
        union = disjoint_union(parts)
        total = sum(brute_force_alpha(p) for p in parts)
        assert brute_force_alpha(union) == total
        result = near_linear(union)
        assert result.size <= total
        assert is_maximal_independent_set(union, result.independent_set)


class TestDatasetFlows:
    def test_easy_dataset_all_algorithms_agree_on_validity(self):
        g = load("GrQc-sim")
        sizes = {}
        for name in ("BDOne", "BDTwo", "LinearTime", "NearLinear"):
            result = compute_independent_set(g, name)
            assert is_maximal_independent_set(g, result.independent_set)
            sizes[name] = result.size
        # The reducing-peeling family is tightly clustered on easy graphs.
        assert max(sizes.values()) - min(sizes.values()) <= 0.01 * g.n

    def test_hard_dataset_kernel_survives(self):
        g = load("eu-2005-sim")
        kr = kernelize(g, method="near_linear")
        assert kr.kernel.n > 0  # hard = irreducible core by construction

    def test_greedy_weakest_on_datasets(self):
        g = load("dblp-sim")
        assert greedy(g).size <= du(g).size <= near_linear(g).size


class TestLocalSearchIntegration:
    def test_arw_improves_peeled_solution_on_hard_graph(self):
        g = load("cnr-2000-sim")
        start = bdone(g)
        improved, recorder = arw(
            g, start.independent_set, time_budget=0.5, seed=1, max_iterations=50
        )
        assert len(improved) >= start.size

    def test_boosted_beats_or_matches_heuristic(self):
        g = load("soc-pokec-sim")
        heuristic = near_linear(g)
        boosted = arw_nl(g, time_budget=0.5, seed=2)
        assert boosted.size >= heuristic.size

    def test_convergence_suite_smoke(self):
        g = gnm_random_graph(300, 900, seed=77)
        runs = run_convergence_suite(g, time_budget=0.2, seed=3)
        assert set(runs) == {"ARW", "OnlineMIS", "ReduMIS", "ARW-LT", "ARW-NL"}
        for run in runs.values():
            assert run.final_size > 0


class TestCertificateConsistencyAcrossAlgorithms:
    @pytest.mark.parametrize("seed", range(8))
    def test_certified_sizes_agree(self, seed):
        g = power_law_sequence_graph(2000, 2.2, seed=seed)
        certified = [
            result.size
            for result in (bdone(g), bdtwo(g), linear_time(g), near_linear(g))
            if result.is_exact
        ]
        # All certificates must agree on alpha.
        assert len(set(certified)) <= 1
