"""Tests for the perf-regression harness (smoke suite only — fast)."""

import copy
import json

from repro.perf import bench_regression


def test_smoke_suite_writes_report(tmp_path):
    out = tmp_path / "report.json"
    code = bench_regression.main(
        ["--smoke", "--out", str(out), "--repeats", "1"]
    )
    assert code == 0
    report = json.loads(out.read_text())
    assert report["schema"] == bench_regression.SCHEMA_VERSION
    assert report["suite"] == "smoke"
    for gname in report["graphs"]:
        timings = report["timings"][gname]
        for algorithm in ("BDOne", "LinearTime"):
            rec = timings[algorithm]
            assert rec["flat_wall"] > 0
            assert rec["array_wall"] > 0
            assert rec["speedup"] > 0
        assert report["kernels"][gname]["linear_time"]["n"] >= 0
    counters = report["live_counters"]
    assert counters["maintained_us"] > 0
    assert counters["scan_us"] > 0


def test_compare_self_passes(tmp_path):
    out = tmp_path / "report.json"
    assert bench_regression.main(["--smoke", "--out", str(out), "--repeats", "1"]) == 0
    report = json.loads(out.read_text())
    failures = bench_regression.compare_reports(report, report, max_regression=2.0)
    assert failures == []


def test_compare_detects_regression(tmp_path):
    out = tmp_path / "report.json"
    assert bench_regression.main(["--smoke", "--out", str(out), "--repeats", "1"]) == 0
    report = json.loads(out.read_text())
    tampered = copy.deepcopy(report)
    for gname in tampered["timings"]:
        rec = tampered["timings"][gname][bench_regression.GATED_ALGORITHM]
        rec["flat_wall"] = rec["flat_wall"] / 10.0  # baseline 10x faster
    failures = bench_regression.compare_reports(tampered, report, max_regression=2.0)
    assert failures
    assert any(bench_regression.GATED_ALGORITHM in f for f in failures)


def test_compare_gate_exit_code(tmp_path):
    out = tmp_path / "report.json"
    baseline = tmp_path / "baseline.json"
    assert bench_regression.main(["--smoke", "--out", str(out), "--repeats", "1"]) == 0
    report = json.loads(out.read_text())
    for gname in report["timings"]:
        rec = report["timings"][gname][bench_regression.GATED_ALGORITHM]
        rec["flat_wall"] = rec["flat_wall"] / 100.0
    baseline.write_text(json.dumps(report))
    code = bench_regression.main(
        [
            "--smoke",
            "--out",
            str(out),
            "--repeats",
            "1",
            "--compare",
            str(baseline),
            "--max-regression",
            "2.0",
        ]
    )
    assert code == 1


def test_compare_disjoint_suites_reports_no_overlap():
    failures = bench_regression.compare_reports(
        {"suite": "a", "timings": {"g1": {}}},
        {"suite": "b", "timings": {"g2": {}}},
        max_regression=2.0,
    )
    assert failures and "no graphs in common" in failures[0]
