"""Tests for the perf-regression harness (smoke suite only — fast)."""

import copy
import json

from repro.perf import bench_regression


def test_smoke_suite_writes_report(tmp_path):
    out = tmp_path / "report.json"
    code = bench_regression.main(
        ["--smoke", "--out", str(out), "--repeats", "1"]
    )
    assert code == 0
    report = json.loads(out.read_text())
    assert report["schema"] == bench_regression.SCHEMA_VERSION
    assert report["suite"] == "smoke"
    for gname in report["graphs"]:
        if gname == "serve-load":
            # The serving front-end pseudo-graph: one workload-level
            # record, not per-algorithm suite timings.
            rec = report["timings"][gname]["ServeLoad"]
            assert rec["async_wall"] > 0
            assert rec["sync_wall"] > 0
            assert rec["equivalent"] is True
            continue
        timings = report["timings"][gname]
        for algorithm in ("BDOne", "LinearTime", "NearLinear"):
            rec = timings[algorithm]
            assert rec["flat_wall"] > 0
            assert rec["oracle_wall"] > 0
            assert rec["speedup"] > 0
        assert report["kernels"][gname]["linear_time"]["n"] >= 0
    counters = report["live_counters"]
    assert counters["maintained_us"] > 0
    assert counters["scan_us"] > 0


def test_smoke_suite_arw_lt_track(tmp_path):
    # gnm-400's LinearTime kernel is nonempty, so the ARW-LT track must be
    # present there with both the swap-scan and end-to-end measurements.
    out = tmp_path / "report.json"
    assert bench_regression.main(["--smoke", "--out", str(out), "--repeats", "1"]) == 0
    report = json.loads(out.read_text())
    rec = report["timings"]["gnm-400"]["ARW-LT"]
    assert rec["flat_scan"] > 0
    assert rec["oracle_scan"] > 0
    assert rec["scan_speedup"] > 0
    assert rec["flat_wall"] > 0
    assert rec["oracle_wall"] > 0
    assert rec["kernel_n"] > 0
    assert rec["iterations"] == bench_regression._ARW_ITERATIONS


def test_gated_tracks_cover_all_flat_backends():
    assert set(bench_regression.GATED_TRACKS) == {
        "linear_time",
        "near_linear",
        "arw_lt",
        "serve_incremental",
        "linear_time_vec",
        "near_linear_vec",
        "linear_time_auto",
        "near_linear_auto",
        "serve_load",
    }
    for track, (record, field) in bench_regression.GATED_TRACKS.items():
        if track == "serve_incremental":
            assert record == "ServeIncremental"
            assert field == "repair_wall"
        elif track == "serve_load":
            assert record == "ServeLoad"
            assert field == "async_wall"
        elif track.endswith("_vec"):
            assert record in {"LinearTime-vec", "NearLinear-vec"}
            assert field == "vec_wall"
        elif track.endswith("_auto"):
            assert record in {"LinearTime-auto", "NearLinear-auto"}
            assert field == "auto_wall"
        else:
            assert field == "flat_wall"
            assert record in {"LinearTime", "NearLinear", "ARW-LT"}


def test_compare_self_passes(tmp_path):
    out = tmp_path / "report.json"
    assert bench_regression.main(["--smoke", "--out", str(out), "--repeats", "1"]) == 0
    report = json.loads(out.read_text())
    failures = bench_regression.compare_reports(report, report, max_regression=2.0)
    assert failures == []


def test_compare_detects_regression_per_track():
    # Synthetic reports: tampering any single gated track must trip the
    # gate, and the failure message must name that track.
    baseline = {
        "suite": "synthetic",
        "timings": {
            "g": {
                record: {field: 1.0, "oracle_wall": 2.0}
                for record, field in bench_regression.GATED_TRACKS.values()
            }
        },
    }
    for track, (record, field) in bench_regression.GATED_TRACKS.items():
        tampered = copy.deepcopy(baseline)
        tampered["timings"]["g"][record][field] = 10.0  # 10x slower than base
        failures = bench_regression.compare_reports(
            baseline, tampered, max_regression=2.0
        )
        assert failures, track
        assert any(track in f for f in failures), failures


def test_compare_respects_max_regression_threshold():
    baseline = {
        "suite": "synthetic",
        "timings": {"g": {"LinearTime": {"flat_wall": 1.0}}},
    }
    current = {
        "suite": "synthetic",
        "timings": {"g": {"LinearTime": {"flat_wall": 2.5}}},
    }
    # 2.5x regression: fails the default-style 2.0 gate, passes a looser 3.0.
    assert bench_regression.compare_reports(baseline, current, max_regression=2.0)
    assert not bench_regression.compare_reports(baseline, current, max_regression=3.0)


def test_compare_skips_missing_tracks():
    # ARW-LT is absent on graphs the exact rules solve outright; a track
    # missing from either side must be skipped, not crash the gate.
    baseline = {
        "suite": "synthetic",
        "timings": {"g": {"LinearTime": {"flat_wall": 1.0}}},
    }
    current = {
        "suite": "synthetic",
        "timings": {
            "g": {"LinearTime": {"flat_wall": 1.0}, "ARW-LT": {"flat_wall": 9.0}}
        },
    }
    assert bench_regression.compare_reports(baseline, current, max_regression=2.0) == []


def test_compare_gate_exit_code(tmp_path):
    out = tmp_path / "report.json"
    baseline = tmp_path / "baseline.json"
    assert bench_regression.main(["--smoke", "--out", str(out), "--repeats", "1"]) == 0
    report = json.loads(out.read_text())
    record, field = bench_regression.GATED_TRACKS["linear_time"]
    for gname in report["timings"]:
        if gname == "serve-load":
            continue
        rec = report["timings"][gname][record]
        rec[field] = rec[field] / 100.0  # baseline 100x faster
    baseline.write_text(json.dumps(report))
    code = bench_regression.main(
        [
            "--smoke",
            "--out",
            str(out),
            "--repeats",
            "1",
            "--compare",
            str(baseline),
            "--max-regression",
            "2.0",
        ]
    )
    assert code == 1


def test_max_regression_flag_loosens_gate(tmp_path):
    # The same tampered baseline that fails at the default threshold must
    # pass when --max-regression is raised above the injected ratio.
    out = tmp_path / "report.json"
    baseline = tmp_path / "baseline.json"
    assert bench_regression.main(["--smoke", "--out", str(out), "--repeats", "1"]) == 0
    report = json.loads(out.read_text())
    record, field = bench_regression.GATED_TRACKS["linear_time"]
    for gname in report["timings"]:
        if gname == "serve-load":
            continue
        rec = report["timings"][gname][record]
        rec[field] = rec[field] / 3.0  # fresh runs look ~3x slower
    baseline.write_text(json.dumps(report))
    code = bench_regression.main(
        [
            "--smoke",
            "--out",
            str(out),
            "--repeats",
            "1",
            "--compare",
            str(baseline),
            "--max-regression",
            "1000.0",
        ]
    )
    assert code == 0


def test_compare_disjoint_suites_reports_no_overlap():
    failures = bench_regression.compare_reports(
        {"suite": "a", "timings": {"g1": {}}},
        {"suite": "b", "timings": {"g2": {}}},
        max_regression=2.0,
    )
    assert failures and "no graphs in common" in failures[0]


def test_telemetry_flag_adds_trace_and_report_section(tmp_path, capsys):
    from repro.obs.telemetry import get_telemetry
    from repro.obs.trace_io import load_trace

    out = tmp_path / "report.json"
    trace = tmp_path / "trace.jsonl"
    code = bench_regression.main(
        [
            "--smoke",
            "--out",
            str(out),
            "--repeats",
            "1",
            "--telemetry",
            "--telemetry-out",
            str(trace),
        ]
    )
    assert code == 0
    # The sink must not leak out of the telemetry pass.
    assert get_telemetry() is None
    report = json.loads(out.read_text())
    section = report["telemetry"]
    assert section["trace"] == str(trace)
    assert section["span_total"] > 0
    assert "reduce" in section["phases"]
    assert section["counters"]
    assert any(p["samples"] > 0 for p in section["profiles"])
    records = load_trace(str(trace))
    assert any(r["type"] == "span" for r in records)
    assert "telemetry (" in capsys.readouterr().out


def test_telemetry_off_keeps_report_schema_clean(tmp_path):
    out = tmp_path / "report.json"
    assert bench_regression.main(["--smoke", "--out", str(out), "--repeats", "1"]) == 0
    assert "telemetry" not in json.loads(out.read_text())


def test_smoke_suite_serve_incremental_track(tmp_path):
    # Every suite graph carries the serving-layer track: warm-cache query
    # latency plus repair-vs-fresh on seeded mutation rounds.
    out = tmp_path / "report.json"
    assert bench_regression.main(["--smoke", "--out", str(out), "--repeats", "1"]) == 0
    report = json.loads(out.read_text())
    for gname in report["graphs"]:
        if gname == "serve-load":
            continue
        rec = report["timings"][gname]["ServeIncremental"]
        assert rec["cold_wall"] > 0
        assert rec["warm_wall"] > 0
        assert rec["warm_speedup"] > 1.0  # a cache hit must beat a solve
        assert rec["repair_wall"] > 0
        assert rec["fresh_wall"] > 0
        assert rec["size"] >= 0.95 * rec["fresh_size"]
        assert rec["mutations_per_round"] == bench_regression._SERVE_MUTATIONS_PER_ROUND


def _write_watch_baseline(directory, pr, wall):
    report = {
        "schema": 6,
        "suite": "full",
        "timings": {"gnm-3k": {"LinearTime": {"flat_wall": wall}}},
    }
    (directory / f"BENCH_PR{pr}.json").write_text(json.dumps(report))


def test_watch_embeds_trajectory_and_gates(tmp_path, capsys):
    # A committed trajectory whose latest point regressed 3x past its best
    # must fail the run (exit 1) and land in the report, even though the
    # fresh smoke timings themselves are fine.
    baselines = tmp_path / "baselines"
    baselines.mkdir()
    _write_watch_baseline(baselines, 1, 0.10)
    _write_watch_baseline(baselines, 2, 0.30)
    out = tmp_path / "report.json"
    code = bench_regression.main(
        [
            "--smoke",
            "--out",
            str(out),
            "--repeats",
            "1",
            "--watch",
            str(baselines),
        ]
    )
    assert code == 1
    assert "TRAJECTORY" in capsys.readouterr().err
    report = json.loads(out.read_text())
    trajectory = report["trajectory"]
    assert trajectory["tracks"]["linear_time"]["gnm-3k"]["regressed"]
    assert len(trajectory["regressions"]) == 1


def test_watch_clean_trajectory_passes(tmp_path):
    baselines = tmp_path / "baselines"
    baselines.mkdir()
    _write_watch_baseline(baselines, 1, 0.10)
    _write_watch_baseline(baselines, 2, 0.11)
    out = tmp_path / "report.json"
    code = bench_regression.main(
        [
            "--smoke",
            "--out",
            str(out),
            "--repeats",
            "1",
            "--watch",
            str(baselines),
            "--watch-tolerance",
            "2.0",
        ]
    )
    assert code == 0
    report = json.loads(out.read_text())
    assert report["trajectory"]["regressions"] == []
