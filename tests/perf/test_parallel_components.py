"""Tests for the parallel per-component driver.

The contract is exact equivalence with the serial driver: α is additive
over components, so shipping components to worker processes must change
nothing but the algorithm label and the wall time.
"""

import pytest

from repro.core.bdone import bdone
from repro.core.components import solve_by_components
from repro.core.linear_time import linear_time
from repro.core.near_linear import near_linear
from repro.graphs import Graph
from repro.graphs.generators import disjoint_union, gnm_random_graph, power_law_graph
from repro.perf import ALGORITHM_BY_NAME, solve_by_components_parallel


def _assert_equivalent(parallel, serial):
    assert parallel.independent_set == serial.independent_set
    assert parallel.upper_bound == serial.upper_bound
    assert parallel.peeled == serial.peeled
    assert parallel.surviving_peels == serial.surviving_peels
    assert parallel.is_exact == serial.is_exact
    assert parallel.stats == serial.stats
    assert parallel.algorithm.endswith("/components-parallel")


def test_matches_serial_with_components_straddling_threshold():
    # Two components above the threshold, two below: exercises both the
    # pool path and the inline path in one call.
    union = disjoint_union(
        [
            gnm_random_graph(300, 900, seed=0),
            power_law_graph(250, beta=2.3, average_degree=5.0, seed=1),
            gnm_random_graph(40, 80, seed=2),
            power_law_graph(30, beta=2.5, average_degree=3.0, seed=3),
        ]
    )
    for algorithm in (bdone, linear_time):
        serial = solve_by_components(union, algorithm)
        parallel = solve_by_components_parallel(
            union, algorithm, processes=2, min_component_size=100
        )
        _assert_equivalent(parallel, serial)


def test_single_component_graph():
    g = gnm_random_graph(200, 600, seed=5)
    serial = solve_by_components(g, linear_time)
    parallel = solve_by_components_parallel(
        g, linear_time, processes=2, min_component_size=50
    )
    _assert_equivalent(parallel, serial)


def test_empty_graph():
    g = Graph.empty(0)
    result = solve_by_components_parallel(g, linear_time, processes=2)
    assert result.independent_set == frozenset()
    assert result.upper_bound == 0
    assert result.is_exact


def test_isolated_vertices_only():
    g = Graph.empty(5)
    serial = solve_by_components(g, bdone)
    parallel = solve_by_components_parallel(
        g, bdone, processes=2, min_component_size=1
    )
    _assert_equivalent(parallel, serial)


def test_processes_one_avoids_pool():
    union = disjoint_union(
        [gnm_random_graph(150, 450, seed=6), gnm_random_graph(150, 450, seed=7)]
    )
    serial = solve_by_components(union, linear_time)
    parallel = solve_by_components_parallel(
        union, linear_time, processes=1, min_component_size=10
    )
    _assert_equivalent(parallel, serial)


def test_threshold_above_all_components_solves_inline():
    union = disjoint_union(
        [gnm_random_graph(60, 120, seed=8), gnm_random_graph(70, 140, seed=9)]
    )
    serial = solve_by_components(union, linear_time)
    parallel = solve_by_components_parallel(
        union, linear_time, processes=4, min_component_size=10_000
    )
    _assert_equivalent(parallel, serial)


def test_registry_names_cover_every_dispatchable_algorithm():
    from repro.core.auto import bdone_auto, linear_time_auto, near_linear_auto
    from repro.core.vectorized import bdone_vec, linear_time_vec, near_linear_vec

    assert ALGORITHM_BY_NAME == {
        "bdone": bdone,
        "linear_time": linear_time,
        "near_linear": near_linear,
        "bdone_vec": bdone_vec,
        "linear_time_vec": linear_time_vec,
        "near_linear_vec": near_linear_vec,
        "bdone_auto": bdone_auto,
        "linear_time_auto": linear_time_auto,
        "near_linear_auto": near_linear_auto,
    }


def test_dispatch_by_name_matches_dispatch_by_callable():
    # The registry name is what ships to the workers; both spellings must
    # produce the identical merged result.
    union = disjoint_union(
        [
            gnm_random_graph(250, 750, seed=10),
            power_law_graph(220, beta=2.3, average_degree=5.0, seed=11),
            gnm_random_graph(35, 70, seed=12),
        ]
    )
    for name, algorithm in sorted(ALGORITHM_BY_NAME.items()):
        by_name = solve_by_components_parallel(
            union, name, processes=2, min_component_size=100
        )
        by_callable = solve_by_components_parallel(
            union, algorithm, processes=2, min_component_size=100
        )
        _assert_equivalent(by_name, by_callable)
        serial = solve_by_components(union, algorithm)
        _assert_equivalent(by_name, serial)


def test_near_linear_by_name_inline_path():
    g = power_law_graph(300, beta=2.2, average_degree=5.0, seed=13)
    serial = solve_by_components(g, near_linear)
    parallel = solve_by_components_parallel(
        g, "near_linear", processes=1, min_component_size=10
    )
    _assert_equivalent(parallel, serial)


def test_unknown_algorithm_name_raises():
    g = gnm_random_graph(20, 40, seed=14)
    with pytest.raises(ValueError, match="unknown algorithm name"):
        solve_by_components_parallel(g, "no_such_algorithm")


class TestWorkerPool:
    """The reusable pool behind the shard workers and repeated dispatches."""

    def test_payload_round_trip(self):
        from repro.perf import decode_graph_payload, encode_graph_payload

        graph = gnm_random_graph(60, 150, seed=4)
        offsets, targets, name = encode_graph_payload(graph)
        rebuilt = decode_graph_payload(offsets, targets, name)
        assert rebuilt.n == graph.n and rebuilt.m == graph.m
        assert rebuilt.name == graph.name
        assert [sorted(rebuilt.neighbors(v)) for v in range(rebuilt.n)] == [
            sorted(graph.neighbors(v)) for v in range(graph.n)
        ]

    def test_reuse_matches_owned_pool(self):
        from repro.perf import WorkerPool

        union = disjoint_union(
            [gnm_random_graph(250, 700, seed=5), gnm_random_graph(240, 650, seed=6)]
        )
        serial = solve_by_components(union, linear_time)
        with WorkerPool(processes=2) as pool:
            for _ in range(2):  # second call reuses the live pool
                parallel = solve_by_components_parallel(
                    union,
                    "linear_time",
                    processes=2,
                    min_component_size=50,
                    pool=pool,
                )
                _assert_equivalent(parallel, serial)

    def test_close_is_restartable_and_idempotent(self):
        from repro.perf import WorkerPool

        graph = gnm_random_graph(200, 500, seed=7)
        serial = solve_by_components(graph, linear_time)
        pool = WorkerPool(processes=2)
        try:
            first = solve_by_components_parallel(
                graph, "linear_time", processes=2, min_component_size=10, pool=pool
            )
            pool.close()
            pool.close()
            second = solve_by_components_parallel(
                graph, "linear_time", processes=2, min_component_size=10, pool=pool
            )
        finally:
            pool.close()
        _assert_equivalent(first, serial)
        _assert_equivalent(second, serial)
