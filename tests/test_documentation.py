"""Documentation consistency: the README's code examples must run.

Extracts fenced ``python`` blocks from README.md and executes them in a
shared namespace (skipping blocks that need external files), so the docs
can never drift from the API.
"""

import os
import re

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _python_blocks(path):
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadme:
    def test_readme_exists_with_core_sections(self):
        path = os.path.join(REPO_ROOT, "README.md")
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        for needle in ("Installation", "Quickstart", "Architecture", "SIGMOD"):
            assert needle in text

    def test_quickstart_block_runs(self):
        blocks = _python_blocks(os.path.join(REPO_ROOT, "README.md"))
        assert blocks, "README has no python examples"
        quickstart = blocks[0]
        # Shrink the demo graph so the docs test stays fast.
        quickstart = quickstart.replace("100_000", "5_000")
        namespace: dict = {}
        exec(compile(quickstart, "README-quickstart", "exec"), namespace)
        result = namespace["result"]
        assert result.size > 0
        assert result.size <= result.upper_bound

    def test_documented_modules_exist(self):
        import importlib

        for module in (
            "repro.core.framework",
            "repro.core.degree_two_paths",
            "repro.core.dominance",
            "repro.core.lp_reduction",
            "repro.external.semi_external",
            "repro.bench.datasets",
        ):
            importlib.import_module(module)


class TestDesignAndExperiments:
    @pytest.mark.parametrize("name", ["DESIGN.md", "EXPERIMENTS.md"])
    def test_present_and_nonempty(self, name):
        path = os.path.join(REPO_ROOT, name)
        assert os.path.getsize(path) > 2_000

    def test_design_lists_every_benchmark(self):
        with open(os.path.join(REPO_ROOT, "DESIGN.md"), encoding="utf-8") as handle:
            design = handle.read()
        benchmark_dir = os.path.join(REPO_ROOT, "benchmarks")
        core_benches = [
            "bench_table3_easy_gaps",
            "bench_fig7_baselines",
            "bench_fig8_ours",
            "bench_fig9_kernels",
            "bench_fig10_convergence",
            "bench_table4_hard_gaps",
            "bench_table5_powerlaw",
            "bench_table6_random",
            "bench_table7_upper_bounds",
        ]
        for name in core_benches:
            assert os.path.exists(os.path.join(benchmark_dir, name + ".py"))
            assert name in design

    def test_docs_directory(self):
        for name in ("algorithms.md", "reductions.md", "api.md"):
            assert os.path.getsize(os.path.join(REPO_ROOT, "docs", name)) > 1_000
