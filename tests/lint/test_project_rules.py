"""Cross-module rule fixtures (RL006–RL009) and seeded-mutation checks.

Two layers of evidence that the whole-project rules earn their keep:

* **Fixture tests** stage a violation split across modules so that no
  per-file analysis could catch it — the kernel lives in one module and
  the impure helper in another — then assert the rule still fires, and
  fires on the right line.
* **Seeded mutations** copy the real ``src`` tree in memory, re-introduce
  a historical class of bug (dropping a ``@hot_loop`` marker, metering
  inside a forked worker, dropping the request context from a service
  verb), and assert the matching rule catches exactly that regression.
"""

import os
import textwrap

import pytest

from repro.lint import default_rules, lint_sources
from repro.lint.engine import iter_python_files, module_name_for

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
)


def run_rules(sources, rule_ids):
    dedented = {path: textwrap.dedent(src) for path, src in sources.items()}
    return lint_sources(dedented, rules=default_rules(rule_ids))


class TestTransitiveHotLoop:
    SOURCES = {
        "src/repro/core/kern.py": """
        from repro.core.hotpath import hot_loop

        from .helpers import collapse

        @hot_loop
        def kernel(ws):
            while ws.queue:
                collapse(ws)
        """,
        "src/repro/core/helpers.py": """
        def collapse(ws):
            ws.queue.pop()
        """,
    }

    def test_unannotated_cross_module_helper_is_flagged(self):
        findings = run_rules(self.SOURCES, ["RL006"])
        assert [f.rule_id for f in findings] == ["RL006"]
        finding = findings[0]
        assert finding.path == "src/repro/core/helpers.py"
        assert "collapse" in finding.message
        assert "kern.kernel" in finding.message  # the chain names the root

    def test_each_file_alone_is_silent(self):
        # The violation only exists in the union of the two modules: the
        # kernel file cannot see collapse's definition, and the helper
        # file cannot know it sits on a hot path.
        for path, src in self.SOURCES.items():
            assert run_rules({path: src}, ["RL006"]) == []

    def test_annotating_the_helper_clears_it(self):
        fixed = dict(self.SOURCES)
        fixed["src/repro/core/helpers.py"] = """
        from repro.core.hotpath import hot_loop

        @hot_loop
        def collapse(ws):
            ws.queue.pop()
        """
        assert run_rules(fixed, ["RL006"]) == []


class TestForkSafety:
    SOURCES = {
        "src/repro/perf/driver.py": """
        import multiprocessing

        from .worker import solve_one

        def solve_parallel(graphs):
            with multiprocessing.Pool() as pool:
                return pool.map(solve_one, graphs)
        """,
        "src/repro/perf/worker.py": """
        from repro.obs.metrics import get_metrics

        def solve_one(graph):
            meter(graph)
            return graph

        def meter(graph):
            metrics = get_metrics()
            metrics.inc("solves")
        """,
        "src/repro/obs/metrics.py": """
        def get_metrics():
            return None
        """,
    }

    def test_metrics_behind_pool_payload_flagged(self):
        findings = run_rules(self.SOURCES, ["RL007"])
        assert findings, "expected RL007 on the metered helper"
        assert {f.rule_id for f in findings} == {"RL007"}
        assert all(f.path == "src/repro/perf/worker.py" for f in findings)
        assert any("get_metrics" in f.message for f in findings)

    def test_worker_module_alone_is_silent(self):
        # Without the driver module nothing marks solve_one as a fork
        # payload, so the metric write is legal in-process code.
        sources = {
            path: src
            for path, src in self.SOURCES.items()
            if "driver" not in path
        }
        assert run_rules(sources, ["RL007"]) == []


class TestForkSafetyShardDispatch:
    """PR 10 dispatch shapes: Process(target=…) and run_in_executor."""

    METERED_WORKER = """
    from repro.obs.metrics import get_metrics

    def worker_main(conn):
        meter(conn)

    def meter(conn):
        metrics = get_metrics()
        metrics.inc("batches")
    """
    METRICS_STUB = """
    def get_metrics():
        return None
    """

    def test_process_target_keyword_is_a_root(self):
        sources = {
            "src/repro/serve/router.py": """
            import multiprocessing

            from .worker import worker_main

            def boot_shard(conn):
                proc = multiprocessing.Process(target=worker_main, args=(conn,))
                proc.start()
                return proc
            """,
            "src/repro/serve/worker.py": self.METERED_WORKER,
            "src/repro/obs/metrics.py": self.METRICS_STUB,
        }
        findings = run_rules(sources, ["RL007"])
        assert findings, "expected RL007 behind Process(target=...)"
        assert {f.rule_id for f in findings} == {"RL007"}
        assert all(f.path == "src/repro/serve/worker.py" for f in findings)
        assert any("worker_main" in f.message for f in findings)

    def test_run_in_executor_payload_is_a_root(self):
        sources = {
            "src/repro/serve/frontend.py": """
            import asyncio

            from .worker import worker_main

            async def dispatch(executor, batch):
                loop = asyncio.get_running_loop()
                return await loop.run_in_executor(executor, worker_main, batch)
            """,
            "src/repro/serve/worker.py": self.METERED_WORKER,
            "src/repro/obs/metrics.py": self.METRICS_STUB,
        }
        findings = run_rules(sources, ["RL007"])
        assert findings, "expected RL007 behind run_in_executor"
        assert all(f.path == "src/repro/serve/worker.py" for f in findings)

    def test_worker_module_alone_is_silent(self):
        sources = {
            "src/repro/serve/worker.py": self.METERED_WORKER,
            "src/repro/obs/metrics.py": self.METRICS_STUB,
        }
        assert run_rules(sources, ["RL007"]) == []


class TestRequestContextFlow:
    SOURCES = {
        "src/repro/serve/context.py": """
        class RequestContext:
            @classmethod
            def create(cls, request_id=None):
                return cls()
        """,
        "src/repro/serve/helpers.py": """
        def traced(graph_id, context=None):
            return graph_id
        """,
        "src/repro/serve/svc.py": """
        from .helpers import traced

        class SolverService:
            def solve(self, graph_id):
                return traced(graph_id)
        """,
    }

    def test_verb_without_context_param_is_flagged(self):
        findings = run_rules(self.SOURCES, ["RL008"])
        assert [f.rule_id for f in findings] == ["RL008"]
        finding = findings[0]
        assert finding.path == "src/repro/serve/svc.py"
        assert "solve" in finding.message

    def test_context_drop_across_modules_is_flagged(self):
        sources = dict(self.SOURCES)
        sources["src/repro/serve/svc.py"] = """
        from .context import RequestContext
        from .helpers import traced

        class SolverService:
            def solve(self, graph_id, context=None):
                context = context or RequestContext.create()
                return traced(graph_id)
        """
        findings = run_rules(sources, ["RL008"])
        assert [f.rule_id for f in findings] == ["RL008"]
        assert "traced" in findings[0].message

    def test_forwarding_context_is_clean(self):
        sources = dict(self.SOURCES)
        sources["src/repro/serve/svc.py"] = """
        from .context import RequestContext
        from .helpers import traced

        class SolverService:
            def solve(self, graph_id, context=None):
                context = context or RequestContext.create()
                return traced(graph_id, context=context)
        """
        assert run_rules(sources, ["RL008"]) == []

    def test_rule_is_scoped_to_serve(self):
        sources = {
            path.replace("repro/serve/", "repro/core/"): src
            for path, src in self.SOURCES.items()
        }
        assert run_rules(sources, ["RL008"]) == []


class TestRequestContextAsyncVerbs:
    """PR 10 surface: async verbs on *Frontend/*Router classes."""

    HELPERS = {
        "src/repro/serve/context.py": """
        class RequestContext:
            @classmethod
            def create(cls, request_id=None):
                return cls()
        """,
        "src/repro/serve/helpers.py": """
        def traced(graph_id, context=None):
            return graph_id
        """,
    }

    def test_async_frontend_verb_without_context_is_flagged(self):
        sources = dict(self.HELPERS)
        sources["src/repro/serve/front.py"] = """
        from .helpers import traced

        class AsyncFrontend:
            async def submit(self, request):
                return traced(request)
        """
        findings = run_rules(sources, ["RL008"])
        assert [f.rule_id for f in findings] == ["RL008"]
        assert findings[0].path == "src/repro/serve/front.py"
        assert "submit" in findings[0].message

    def test_router_verb_without_context_is_flagged(self):
        sources = dict(self.HELPERS)
        sources["src/repro/serve/route.py"] = """
        from .helpers import traced

        class ShardRouter:
            def dispatch(self, shard, request):
                return traced(request)
        """
        findings = run_rules(sources, ["RL008"])
        assert [f.rule_id for f in findings] == ["RL008"]
        assert "dispatch" in findings[0].message

    def test_async_verb_dropping_bound_context_is_flagged(self):
        sources = dict(self.HELPERS)
        sources["src/repro/serve/front.py"] = """
        from .context import RequestContext
        from .helpers import traced

        class AsyncFrontend:
            async def submit(self, request, context=None):
                context = context or RequestContext.create()
                return traced(request)
        """
        findings = run_rules(sources, ["RL008"])
        assert [f.rule_id for f in findings] == ["RL008"]
        assert "traced" in findings[0].message

    def test_async_verb_forwarding_context_is_clean(self):
        sources = dict(self.HELPERS)
        sources["src/repro/serve/front.py"] = """
        from .context import RequestContext
        from .helpers import traced

        class AsyncFrontend:
            async def submit(self, request, context=None):
                context = context or RequestContext.create()
                return traced(request, context=context)
        """
        assert run_rules(sources, ["RL008"]) == []


class TestDecisionLogDeterminism:
    SOURCES = {
        "src/repro/core/driver.py": """
        from .pick import pick_vertex

        def reduce_round(ws):
            v = pick_vertex(ws)
            ws.log.include(v)
        """,
        "src/repro/core/pick.py": """
        def pick_vertex(ws):
            candidates = set(ws.frontier)
            for v in candidates:
                return v
            return -1
        """,
    }

    def test_set_iteration_behind_log_appender_is_flagged(self):
        findings = run_rules(self.SOURCES, ["RL009"])
        assert [f.rule_id for f in findings] == ["RL009"]
        finding = findings[0]
        assert finding.path == "src/repro/core/pick.py"

    def test_helper_alone_is_silent(self):
        sources = {"src/repro/core/pick.py": self.SOURCES["src/repro/core/pick.py"]}
        assert run_rules(sources, ["RL009"]) == []

    def test_sorted_iteration_is_clean(self):
        fixed = dict(self.SOURCES)
        fixed["src/repro/core/pick.py"] = """
        def pick_vertex(ws):
            candidates = set(ws.frontier)
            for v in sorted(candidates):
                return v
            return -1
        """
        assert run_rules(fixed, ["RL009"]) == []


@pytest.fixture(scope="module")
def src_sources():
    sources = {}
    for path in iter_python_files([os.path.join(REPO_ROOT, "src")]):
        rel = os.path.relpath(path, REPO_ROOT)
        with open(path, "r", encoding="utf-8") as handle:
            sources[rel] = handle.read()
    return sources


def mutate(sources, rel_path, old, new):
    assert old in sources[rel_path], f"mutation anchor missing in {rel_path}"
    mutated = dict(sources)
    mutated[rel_path] = mutated[rel_path].replace(old, new, 1)
    return mutated


class TestSeededMutations:
    """Re-introduce real regressions into a copy of src and catch them."""

    def test_src_module_names_resolve(self, src_sources):
        # Sanity for the fixtures below: the on-disk layout maps to the
        # dotted names the resolver uses.
        assert module_name_for("src/repro/core/vec_paths.py") == (
            "repro.core.vec_paths"
        )
        assert "src/repro/serve/service.py" in src_sources

    def test_dropping_hot_loop_marker_trips_rl006(self, src_sources):
        mutated = mutate(
            src_sources,
            "src/repro/core/vec_paths.py",
            "@hot_loop\ndef _remove_path_batch",
            "def _remove_path_batch",
        )
        findings = lint_sources(mutated, rules=default_rules(["RL006"]))
        assert findings, "deleting @hot_loop must surface the helper"
        assert {f.rule_id for f in findings} == {"RL006"}
        assert all("_remove_path_batch" in f.message for f in findings)
        assert all(f.path.endswith("vec_paths.py") for f in findings)

    def test_metering_in_worker_helper_trips_rl007(self, src_sources):
        mutated = mutate(
            src_sources,
            "src/repro/core/vec_paths.py",
            "@hot_loop\ndef _remove_path_batch(workspace: Any, seg: List[int]) -> None:",
            "@hot_loop\ndef _remove_path_batch(workspace: Any, seg: List[int]) -> None:\n"
            "    from repro.obs.metrics import get_metrics\n"
            "    get_metrics().inc('repro_batch_removals')",
        )
        findings = lint_sources(mutated, rules=default_rules(["RL007"]))
        assert findings, "metric write reachable from pool.map must be flagged"
        assert {f.rule_id for f in findings} == {"RL007"}
        assert all(f.path.endswith("vec_paths.py") for f in findings)

    def test_dropping_context_forward_trips_rl008(self, src_sources):
        mutated = mutate(
            src_sources,
            "src/repro/serve/service.py",
            "result = self.solve(graph_id, timeout=timeout, context=context)",
            "result = self.solve(graph_id, timeout=timeout)",
        )
        findings = lint_sources(mutated, rules=default_rules(["RL008"]))
        assert findings, "upper_bound dropping its context must be flagged"
        assert {f.rule_id for f in findings} == {"RL008"}
        assert all(f.path.endswith("service.py") for f in findings)
        assert any("upper_bound" in f.message for f in findings)

    def test_unmutated_src_is_clean_on_graph_rules(self, src_sources):
        findings = lint_sources(
            src_sources,
            rules=default_rules(["RL006", "RL007", "RL008", "RL009"]),
        )
        assert findings == [], "\n".join(f.render() for f in findings)
