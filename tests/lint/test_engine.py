"""Engine-level tests: suppressions, severity gating, CLI, self-check.

The self-check at the bottom is the tentpole guarantee of this package:
the repo's own ``src`` and ``tests`` trees stay reprolint-clean, so a
change that re-introduces a hot-loop allocation or an unregistered stat
key fails the suite — not a perf run three PRs later.
"""

import json
import os
import textwrap

from repro.lint import (
    ADVICE,
    ALL_RULES,
    ERROR,
    RULES_BY_ID,
    blocking,
    default_rules,
    lint_paths,
    lint_source,
    lint_sources,
)
from repro.lint.cli import run as lint_cli
from repro.lint.findings import Finding

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
)

BAD_HOT_LOOP = textwrap.dedent(
    """
    from repro.core import hot_loop

    @hot_loop
    def kernel(ws):
        for u in ws.order:
            seen = set()
        return seen
    """
)


class TestSuppressions:
    def test_inline_disable_suppresses_one_line(self):
        source = BAD_HOT_LOOP.replace(
            "seen = set()", "seen = set()  # reprolint: disable=RL001"
        )
        assert lint_source(source) == []

    def test_inline_disable_is_rule_specific(self):
        source = BAD_HOT_LOOP.replace(
            "seen = set()", "seen = set()  # reprolint: disable=RL003"
        )
        assert [f.rule_id for f in lint_source(source)] == ["RL001"]

    def test_bare_disable_suppresses_all_rules_on_line(self):
        source = BAD_HOT_LOOP.replace(
            "seen = set()", "seen = set()  # reprolint: disable"
        )
        assert lint_source(source) == []

    def test_file_level_disable(self):
        source = "# reprolint: disable-file=RL001\n" + BAD_HOT_LOOP
        assert lint_source(source) == []

    def test_unsuppressed_fixture_still_fires(self):
        assert [f.rule_id for f in lint_source(BAD_HOT_LOOP)] == ["RL001"]

    def test_file_level_disable_after_imports(self):
        # The directive does not have to be the first line: a waiver added
        # below the import block (the natural place to document it) works.
        source = BAD_HOT_LOOP.replace(
            "from repro.core import hot_loop",
            "from repro.core import hot_loop\n\n"
            "# reprolint: disable-file=RL001",
        )
        assert lint_source(source) == []

    def test_decorator_line_disable_covers_def_line(self):
        # RL006 anchors on the helper's def line; a waiver on the decorator
        # line above it must count (that is where humans put the comment).
        sources = {
            "src/repro/core/kern.py": textwrap.dedent(
                """
                from repro.core.hotpath import hot_loop

                from .helpers import collapse

                @hot_loop
                def kernel(ws):
                    collapse(ws)
                """
            ),
            "src/repro/core/helpers.py": textwrap.dedent(
                """
                import functools

                @functools.lru_cache  # reprolint: disable=RL006
                def collapse(ws):
                    return ws
                """
            ),
        }
        assert lint_sources(sources, rules=default_rules(["RL006"])) == []
        undisabled = dict(sources)
        undisabled["src/repro/core/helpers.py"] = undisabled[
            "src/repro/core/helpers.py"
        ].replace("  # reprolint: disable=RL006", "")
        findings = lint_sources(undisabled, rules=default_rules(["RL006"]))
        assert [f.rule_id for f in findings] == ["RL006"]


class TestSeverities:
    def test_blocking_ignores_advice_by_default(self):
        advice = Finding("RL003", "x.py", 1, 0, "m", severity=ADVICE)
        error = Finding("RL001", "x.py", 2, 0, "m", severity=ERROR)
        assert blocking([advice, error]) == [error]
        assert blocking([advice, error], strict=True) == [advice, error]


class TestRegistry:
    def test_rule_ids_are_unique_and_sequential(self):
        ids = [cls.rule_id for cls in ALL_RULES]
        assert ids == sorted(set(ids))
        assert ids == [
            "RL001",
            "RL002",
            "RL003",
            "RL004",
            "RL005",
            "RL006",
            "RL007",
            "RL008",
            "RL009",
        ]

    def test_default_rules_subset_and_unknown(self):
        assert [r.rule_id for r in default_rules(["RL002"])] == ["RL002"]
        try:
            default_rules(["RL999"])
        except KeyError as exc:
            assert "RL999" in str(exc)
        else:
            raise AssertionError("unknown rule id must raise")

    def test_every_rule_has_identity(self):
        for rule_id, cls in RULES_BY_ID.items():
            assert cls.rule_id == rule_id
            assert cls.name
            assert cls.summary


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("X = 1\n")
        assert lint_cli([str(target)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_violation_exits_nonzero(self, tmp_path, capsys):
        target = tmp_path / "src" / "repro" / "bad.py"
        target.parent.mkdir(parents=True)
        target.write_text(BAD_HOT_LOOP)
        assert lint_cli([str(target)]) == 1
        assert "RL001" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        target = tmp_path / "src" / "repro" / "bad.py"
        target.parent.mkdir(parents=True)
        target.write_text(BAD_HOT_LOOP)
        assert lint_cli([str(target), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 1
        assert payload["findings"][0]["rule"] == "RL001"

    def test_syntax_error_is_reported_not_raised(self, tmp_path, capsys):
        target = tmp_path / "broken.py"
        target.write_text("def broken(:\n")
        assert lint_cli([str(target)]) == 1
        assert "RL000" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert lint_cli(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for cls in ALL_RULES:
            assert cls.rule_id in out


class TestBaseline:
    def _finding(self, rule="RL003", path="src/repro/x.py", line=3, msg="m"):
        return Finding(rule, path, line, 0, msg, severity=ADVICE)

    def test_apply_baseline_partitions(self):
        from repro.lint import apply_baseline

        known = self._finding(msg="known")
        fresh = self._finding(msg="fresh")
        baseline = [known.fingerprint(), ("RL003", "gone.py", "fixed")]
        kept, suppressed, stale = apply_baseline([known, fresh], baseline)
        assert kept == [fresh]
        assert suppressed == 1
        assert stale == 1

    def test_matching_is_count_aware(self):
        from repro.lint import apply_baseline

        twice = [self._finding(line=3), self._finding(line=9)]
        kept, suppressed, stale = apply_baseline(
            twice, [twice[0].fingerprint()]
        )
        # Same fingerprint, one budget entry: only one is absorbed.
        assert len(kept) == 1
        assert (suppressed, stale) == (1, 0)

    def test_write_then_load_roundtrip(self, tmp_path):
        from repro.lint import load_baseline, write_baseline

        path = tmp_path / "lint-baseline.json"
        findings = [self._finding(msg="a"), self._finding(msg="b")]
        assert write_baseline(str(path), findings) == 2
        assert sorted(load_baseline(str(path))) == sorted(
            f.fingerprint() for f in findings
        )

    def test_load_tolerates_garbage(self, tmp_path):
        from repro.lint import load_baseline

        path = tmp_path / "lint-baseline.json"
        path.write_text("not json at all {")
        assert load_baseline(str(path)) == []
        assert load_baseline(str(tmp_path / "missing.json")) == []

    def test_cli_update_baseline_then_strict_pass(self, tmp_path, capsys):
        target = tmp_path / "src" / "repro" / "legacy.py"
        target.parent.mkdir(parents=True)
        target.write_text(BAD_HOT_LOOP)
        baseline = tmp_path / "lint-baseline.json"

        assert (
            lint_cli(
                [
                    str(target),
                    "--baseline",
                    str(baseline),
                    "--update-baseline",
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert baseline.exists()

        # With the violation absorbed, strict runs gate only regressions.
        assert (
            lint_cli([str(target), "--strict", "--baseline", str(baseline)])
            == 0
        )
        assert "baselined" in capsys.readouterr().out


class TestSarif:
    def test_sarif_structure_and_levels(self):
        from repro.lint import to_sarif

        findings = [
            Finding("RL001", "src/repro/x.py", 3, 0, "boom", severity=ERROR),
            Finding("RL003", "src/repro/y.py", 5, 2, "meh", severity=ADVICE),
        ]
        doc = to_sarif(findings, default_rules())
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids == [cls.rule_id for cls in ALL_RULES]
        levels = [r["level"] for r in run["results"]]
        assert levels == ["error", "note"]
        location = run["results"][0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/x.py"
        assert location["region"]["startLine"] == 3

    def test_cli_sarif_out_writes_file(self, tmp_path, capsys):
        target = tmp_path / "src" / "repro" / "bad.py"
        target.parent.mkdir(parents=True)
        target.write_text(BAD_HOT_LOOP)
        out = tmp_path / "lint.sarif"
        assert lint_cli([str(target), "--sarif-out", str(out)]) == 1
        capsys.readouterr()
        payload = json.loads(out.read_text())
        results = payload["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["RL001"]

    def test_cli_sarif_format_to_stdout(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("X = 1\n")
        assert lint_cli([str(target), "--format", "sarif"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"][0]["results"] == []


class TestCliFlags:
    def test_jobs_and_cache_flags(self, tmp_path, capsys):
        tree = tmp_path / "src" / "repro"
        tree.mkdir(parents=True)
        for i in range(10):
            (tree / f"mod_{i}.py").write_text(f"VALUE_{i} = {i}\n")
        cache = tmp_path / "cache.json"
        args = [str(tree), "--jobs", "0", "--cache", str(cache)]
        assert lint_cli(args) == 0
        capsys.readouterr()
        assert cache.exists()
        assert lint_cli(args) == 0
        assert "cached" in capsys.readouterr().out


class TestRepoIsClean:
    def test_src_and_tests_have_no_blocking_findings(self):
        findings = lint_paths(
            [
                os.path.join(REPO_ROOT, "src"),
                os.path.join(REPO_ROOT, "tests"),
            ]
        )
        offenders = blocking(findings)
        assert offenders == [], "\n".join(f.render() for f in offenders)

    def test_all_four_trees_strict_with_committed_baseline(self, monkeypatch):
        # The CI gate, replicated exactly: every lint tree, every rule,
        # strict severity, with the committed baseline subtracted.  Runs
        # from the repo root with relative paths — baseline fingerprints
        # store repo-relative paths, exactly as CI invokes the linter.
        # The baseline must also be tight — no stale entries.
        from repro.lint import apply_baseline, load_baseline

        monkeypatch.chdir(REPO_ROOT)
        findings = lint_paths(["src", "tests", "benchmarks", "examples"])
        fingerprints = load_baseline("lint-baseline.json")
        assert fingerprints, "committed lint-baseline.json must load"
        kept, _, stale = apply_baseline(findings, fingerprints)
        offenders = blocking(kept, strict=True)
        assert offenders == [], "\n".join(f.render() for f in offenders)
        assert stale == 0, "baseline has stale entries; refresh it"
