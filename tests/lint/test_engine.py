"""Engine-level tests: suppressions, severity gating, CLI, self-check.

The self-check at the bottom is the tentpole guarantee of this package:
the repo's own ``src`` and ``tests`` trees stay reprolint-clean, so a
change that re-introduces a hot-loop allocation or an unregistered stat
key fails the suite — not a perf run three PRs later.
"""

import json
import os
import textwrap

from repro.lint import (
    ADVICE,
    ALL_RULES,
    ERROR,
    RULES_BY_ID,
    blocking,
    default_rules,
    lint_paths,
    lint_source,
)
from repro.lint.cli import run as lint_cli
from repro.lint.findings import Finding

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
)

BAD_HOT_LOOP = textwrap.dedent(
    """
    from repro.core import hot_loop

    @hot_loop
    def kernel(ws):
        for u in ws.order:
            seen = set()
        return seen
    """
)


class TestSuppressions:
    def test_inline_disable_suppresses_one_line(self):
        source = BAD_HOT_LOOP.replace(
            "seen = set()", "seen = set()  # reprolint: disable=RL001"
        )
        assert lint_source(source) == []

    def test_inline_disable_is_rule_specific(self):
        source = BAD_HOT_LOOP.replace(
            "seen = set()", "seen = set()  # reprolint: disable=RL003"
        )
        assert [f.rule_id for f in lint_source(source)] == ["RL001"]

    def test_bare_disable_suppresses_all_rules_on_line(self):
        source = BAD_HOT_LOOP.replace(
            "seen = set()", "seen = set()  # reprolint: disable"
        )
        assert lint_source(source) == []

    def test_file_level_disable(self):
        source = "# reprolint: disable-file=RL001\n" + BAD_HOT_LOOP
        assert lint_source(source) == []

    def test_unsuppressed_fixture_still_fires(self):
        assert [f.rule_id for f in lint_source(BAD_HOT_LOOP)] == ["RL001"]


class TestSeverities:
    def test_blocking_ignores_advice_by_default(self):
        advice = Finding("RL003", "x.py", 1, 0, "m", severity=ADVICE)
        error = Finding("RL001", "x.py", 2, 0, "m", severity=ERROR)
        assert blocking([advice, error]) == [error]
        assert blocking([advice, error], strict=True) == [advice, error]


class TestRegistry:
    def test_rule_ids_are_unique_and_sequential(self):
        ids = [cls.rule_id for cls in ALL_RULES]
        assert ids == sorted(set(ids))
        assert ids == ["RL001", "RL002", "RL003", "RL004", "RL005"]

    def test_default_rules_subset_and_unknown(self):
        assert [r.rule_id for r in default_rules(["RL002"])] == ["RL002"]
        try:
            default_rules(["RL999"])
        except KeyError as exc:
            assert "RL999" in str(exc)
        else:
            raise AssertionError("unknown rule id must raise")

    def test_every_rule_has_identity(self):
        for rule_id, cls in RULES_BY_ID.items():
            assert cls.rule_id == rule_id
            assert cls.name
            assert cls.summary


class TestCli:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("X = 1\n")
        assert lint_cli([str(target)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_violation_exits_nonzero(self, tmp_path, capsys):
        target = tmp_path / "src" / "repro" / "bad.py"
        target.parent.mkdir(parents=True)
        target.write_text(BAD_HOT_LOOP)
        assert lint_cli([str(target)]) == 1
        assert "RL001" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        target = tmp_path / "src" / "repro" / "bad.py"
        target.parent.mkdir(parents=True)
        target.write_text(BAD_HOT_LOOP)
        assert lint_cli([str(target), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 1
        assert payload["findings"][0]["rule"] == "RL001"

    def test_syntax_error_is_reported_not_raised(self, tmp_path, capsys):
        target = tmp_path / "broken.py"
        target.write_text("def broken(:\n")
        assert lint_cli([str(target)]) == 1
        assert "RL000" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert lint_cli(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for cls in ALL_RULES:
            assert cls.rule_id in out


class TestRepoIsClean:
    def test_src_and_tests_have_no_blocking_findings(self):
        findings = lint_paths(
            [
                os.path.join(REPO_ROOT, "src"),
                os.path.join(REPO_ROOT, "tests"),
            ]
        )
        offenders = blocking(findings)
        assert offenders == [], "\n".join(f.render() for f in offenders)
