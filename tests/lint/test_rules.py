"""Fixture tests for the five reprolint rules.

Each rule gets a positive fixture (a snippet that must trigger it) and a
negative fixture (the idiomatic repo shape that must stay clean), linted
in memory via :func:`repro.lint.lint_source` so the tests are independent
of the repo's own file tree.
"""

import textwrap

from repro.lint import lint_source
from repro.lint.rules import (
    DtypeDisciplineRule,
    HotLoopPurityRule,
    OracleHookParityRule,
    StatKeyRegistryRule,
    TelemetryDisciplineRule,
)
from repro.lint.engine import LintModule, lint_modules


def findings_for(source, rule_cls, path="src/repro/snippet.py"):
    return lint_source(textwrap.dedent(source), path=path, rules=[rule_cls()])


def rule_ids(findings):
    return sorted({f.rule_id for f in findings})


class TestHotLoopPurity:
    def test_flags_loop_allocations_and_chains(self):
        findings = findings_for(
            """
            from repro.core import hot_loop

            @hot_loop
            def kernel(ws):
                total = 0
                for u in ws.order:
                    seen = set()
                    row = [u]
                    adj = ws.graph.adj
                    total += len(sorted(row))
                return total
            """,
            HotLoopPurityRule,
        )
        messages = "\n".join(f.message for f in findings)
        assert rule_ids(findings) == ["RL001"]
        assert "set()" in messages
        assert "list literal" in messages
        assert "ws.graph.adj" in messages
        assert "sorted()" in messages

    def test_flags_function_wide_bans(self):
        findings = findings_for(
            """
            from repro.core import hot_loop

            @hot_loop
            def kernel(ws):
                try:
                    helper = lambda v: v + 1
                except ValueError:
                    pass
                return [v for v in ws.order]
            """,
            HotLoopPurityRule,
        )
        messages = "\n".join(f.message for f in findings)
        assert "try/except" in messages
        assert "closure" in messages
        assert "comprehension" in messages

    def test_prelude_idiom_is_clean(self):
        findings = findings_for(
            """
            from repro.core import hot_loop

            @hot_loop
            def kernel(ws):
                # The canonical shape: chains and allocations in the
                # prelude, locals-only loop bodies.
                adj = ws.graph.adj
                append_entry = ws.log.entries.append
                buffer = []
                total = 0
                while ws.live:
                    u = ws.pop()
                    buffer.clear()
                    total += adj[u]
                    append_entry(u)
                return total
            """,
            HotLoopPurityRule,
        )
        assert findings == []

    def test_undecorated_function_is_ignored(self):
        findings = findings_for(
            """
            def slow_path(ws):
                for u in ws.order:
                    seen = set()
                return seen
            """,
            HotLoopPurityRule,
        )
        assert findings == []

    def test_for_iter_is_prelude_not_body(self):
        # ``for u in sorted(...)`` evaluates the iterable once; only the
        # body re-runs per iteration.
        findings = findings_for(
            """
            from repro.core import hot_loop

            @hot_loop
            def kernel(ws):
                total = 0
                for u in sorted(ws.order):
                    total += u
                return total
            """,
            HotLoopPurityRule,
        )
        assert findings == []


class TestTelemetryDiscipline:
    def test_flags_span_outside_with(self):
        findings = findings_for(
            """
            from repro.obs.telemetry import phase

            def run(telemetry):
                span = phase("reduce")
                timer = telemetry.span("peel")
            """,
            TelemetryDisciplineRule,
        )
        assert rule_ids(findings) == ["RL002"]
        assert len(findings) == 2

    def test_with_usage_is_clean(self):
        findings = findings_for(
            """
            from repro.obs.telemetry import phase

            def run(telemetry):
                with phase("reduce"):
                    with telemetry.span("peel") as span:
                        span.note("x")
            """,
            TelemetryDisciplineRule,
        )
        assert findings == []

    def test_enter_context_is_clean(self):
        findings = findings_for(
            """
            from contextlib import ExitStack

            from repro.obs.telemetry import telemetry_session

            def run():
                with ExitStack() as stack:
                    tele = stack.enter_context(telemetry_session(label="serve"))
                    return tele
            """,
            TelemetryDisciplineRule,
        )
        assert findings == []

    def test_flags_unpaired_enable(self):
        findings = findings_for(
            """
            def run(telemetry):
                telemetry.enable()
                work()
            """,
            TelemetryDisciplineRule,
        )
        assert len(findings) == 1
        assert "disable" in findings[0].message

    def test_enable_with_finally_disable_is_clean(self):
        findings = findings_for(
            """
            def run(telemetry):
                telemetry.enable()
                try:
                    work()
                finally:
                    telemetry.disable()
            """,
            TelemetryDisciplineRule,
        )
        assert findings == []

    def test_hot_loop_telemetry_needs_guard(self):
        findings = findings_for(
            """
            from repro.core import hot_loop

            @hot_loop
            def kernel(ws, telemetry):
                for u in ws.order:
                    telemetry.count("steps", 1)
            """,
            TelemetryDisciplineRule,
        )
        assert len(findings) == 1
        assert "@hot_loop" in findings[0].message

    def test_guarded_hot_loop_telemetry_is_clean(self):
        findings = findings_for(
            """
            from repro.core import hot_loop

            @hot_loop
            def kernel(ws, telemetry):
                for u in ws.order:
                    if telemetry is not None:
                        telemetry.count("steps", 1)
            """,
            TelemetryDisciplineRule,
        )
        assert findings == []

    def test_rule_skips_test_modules(self):
        findings = findings_for(
            """
            from repro.obs.telemetry import phase

            def test_half_open_span():
                span = phase("fixture")
            """,
            TelemetryDisciplineRule,
            path="tests/obs/test_fixture.py",
        )
        assert findings == []


class TestStatKeyRegistry:
    def test_flags_unregistered_literals(self):
        findings = findings_for(
            """
            def run(log, stats):
                log.bump("not-a-real-key")
                stats["also-fake"] = 1
                stats = {"made-up": 0}
                return MISResult(algorithm="x", stats={"bogus": 1})
            """,
            StatKeyRegistryRule,
        )
        assert len(findings) == 4
        assert all(f.severity == "error" for f in findings)

    def test_registered_literals_and_constants_are_clean(self):
        findings = findings_for(
            """
            from repro.core.result import STAT_DEGREE_ONE, STAT_ROUNDS

            def run(log, stats):
                log.bump(STAT_DEGREE_ONE)
                log.bump("peel")
                stats[STAT_ROUNDS] = 1
                stats = {STAT_ROUNDS: 0, "kernel_size": 3}
            """,
            StatKeyRegistryRule,
        )
        assert findings == []

    def test_dynamic_keys_are_advice(self):
        findings = findings_for(
            """
            def merge(log, counts):
                for rule, count in counts.items():
                    log.bump(rule, count)
            """,
            StatKeyRegistryRule,
        )
        assert len(findings) == 1
        assert findings[0].severity == "advice"

    def test_rule_skips_tests_and_registry(self):
        snippet = """
        def run(log):
            log.bump("totally-invented")
        """
        assert (
            findings_for(snippet, StatKeyRegistryRule, path="tests/test_x.py")
            == []
        )
        assert (
            findings_for(
                snippet, StatKeyRegistryRule, path="src/repro/core/result.py"
            )
            == []
        )

    def test_flags_unregistered_metric_literals(self):
        findings = findings_for(
            """
            def record(metrics, wall):
                metrics.inc("bogus_metric_total")
                metrics.observe("made_up_seconds", wall)
                metrics.set_gauge("fake_gauge", 3)
            """,
            StatKeyRegistryRule,
        )
        assert len(findings) == 3
        assert all(f.severity == "error" for f in findings)
        assert all("METRIC_KEYS" in f.message for f in findings)

    def test_registered_metric_constants_and_literals_are_clean(self):
        findings = findings_for(
            """
            from repro.obs.metrics import (
                METRIC_SERVE_CACHE_ENTRIES,
                METRIC_SERVE_REQUESTS,
            )

            def record(metrics, wall):
                metrics.inc(METRIC_SERVE_REQUESTS, op="solve")
                metrics.observe("repro_serve_request_seconds", wall, op="solve")
                metrics.set_gauge(METRIC_SERVE_CACHE_ENTRIES, 5)
            """,
            StatKeyRegistryRule,
        )
        assert findings == []

    def test_dynamic_metric_names_are_advice(self):
        findings = findings_for(
            """
            def record(metrics, name):
                metrics.inc(name)
            """,
            StatKeyRegistryRule,
        )
        assert len(findings) == 1
        assert findings[0].severity == "advice"
        assert "METRIC_*" in findings[0].message

    def test_metric_registry_module_is_exempt(self):
        findings = findings_for(
            """
            def record(metrics):
                metrics.inc("repro_internal_bootstrap_total")
            """,
            StatKeyRegistryRule,
            path="src/repro/obs/metrics.py",
        )
        assert findings == []

    def test_metric_subscript_forwarding_stays_silent(self):
        # _EVENT_METRICS[key] style forwarding is runtime-checked by the
        # registry itself, so RL003 does not second-guess it.
        findings = findings_for(
            """
            def forward(metrics, mapping, key):
                metrics.inc(mapping[key], 2)
            """,
            StatKeyRegistryRule,
        )
        assert findings == []


class TestOracleHookParity:
    SRC = textwrap.dedent(
        """
        def solver(graph, workspace_factory=None):
            return workspace_factory or object
        """
    )

    def test_flags_module_without_differential_test(self):
        modules = [
            LintModule("src/repro/core/newalgo.py", self.SRC),
            LintModule("tests/core/test_other.py", "def test_ok():\n    pass\n"),
        ]
        findings = lint_modules(modules, [OracleHookParityRule()])
        assert rule_ids(findings) == ["RL004"]
        assert "solver" in findings[0].message

    def test_covered_module_is_clean(self):
        test_src = textwrap.dedent(
            """
            from repro.core.newalgo import solver

            def test_differential():
                assert solver(g, workspace_factory=Oracle) == solver(g)
            """
        )
        modules = [
            LintModule("src/repro/core/newalgo.py", self.SRC),
            LintModule("tests/core/test_newalgo.py", test_src),
        ]
        assert lint_modules(modules, [OracleHookParityRule()]) == []

    def test_name_mention_without_hook_keyword_is_not_enough(self):
        test_src = textwrap.dedent(
            """
            from repro.core.newalgo import solver

            def test_smoke():
                assert solver(g)
            """
        )
        modules = [
            LintModule("src/repro/core/newalgo.py", self.SRC),
            LintModule("tests/core/test_newalgo.py", test_src),
        ]
        findings = lint_modules(modules, [OracleHookParityRule()])
        assert rule_ids(findings) == ["RL004"]

    def test_src_only_run_stays_silent(self):
        modules = [LintModule("src/repro/core/newalgo.py", self.SRC)]
        assert lint_modules(modules, [OracleHookParityRule()]) == []


class TestDtypeDiscipline:
    def test_flags_inferred_dtype(self):
        findings = findings_for(
            """
            import numpy as np
            from numpy import zeros

            def build(n):
                a = np.zeros(n)
                b = zeros(n)
                c = np.arange(n)
            """,
            DtypeDisciplineRule,
        )
        assert len(findings) == 3
        assert rule_ids(findings) == ["RL005"]

    def test_pinned_dtype_is_clean(self):
        findings = findings_for(
            """
            import numpy as np

            def build(n):
                a = np.zeros(n, dtype=np.int32)
                b = np.asarray(range(n), dtype=np.int64)
                c = np.diff(a)  # not a constructor
                d = np.zeros_like(a)  # inherits dtype from template
            """,
            DtypeDisciplineRule,
        )
        assert findings == []

    def test_non_numpy_names_are_ignored(self):
        findings = findings_for(
            """
            from array import array

            def build(n):
                return array("i", [0]) * n
            """,
            DtypeDisciplineRule,
        )
        assert findings == []
