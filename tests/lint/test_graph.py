"""Call-graph resolver tests: registries, hooks, cycles, the real repo.

The cross-module rules are only as good as the resolution layer under
them, so this file pins the resolver behaviours the rules rely on:
registry-dict dispatch (``ALGORITHM_BY_NAME[name](g)`` and the
return-passthrough ``_resolve(name)(g)`` shape), ``workspace_factory``/
``state_factory`` hook indirection, cycle termination — and then checks
the same machinery against the actual ``src/repro`` tree
(``ALGORITHM_BY_NAME``, ``KERNEL_METHODS``, the parallel worker), plus
the RL006–RL009 repo-clean self-check backing the committed baseline.
"""

import os
import textwrap

import pytest

from repro.lint import Project, blocking, default_rules, lint_paths
from repro.lint.engine import LintModule

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
)


def project_of(sources):
    return Project(
        [LintModule(path, textwrap.dedent(src)) for path, src in sources.items()]
    )


class TestRegistryDispatch:
    def test_subscripted_registry_call_fans_out(self):
        project = project_of(
            {
                "src/repro/reg.py": """
                def fa(g):
                    return g

                def fb(g):
                    return g

                ALGORITHM_BY_NAME = {"a": fa, "b": fb}

                def dispatch(name, g):
                    return ALGORITHM_BY_NAME[name](g)
                """,
            }
        )
        edges = project.graph.edges["repro.reg:dispatch"]
        assert "repro.reg:fa" in edges
        assert "repro.reg:fb" in edges

    def test_return_passthrough_resolver_shape(self):
        # The repro.perf.parallel idiom: _resolve returns either a
        # registry entry or its callable argument unchanged; calling the
        # result must produce edges to the registry targets.
        project = project_of(
            {
                "src/repro/reg.py": """
                def fa(g):
                    return g

                REGISTRY = {"a": fa}

                def _resolve(algorithm):
                    if callable(algorithm):
                        return algorithm
                    return REGISTRY[algorithm]

                def run(name, g):
                    return _resolve(name)(g)
                """,
            }
        )
        edges = project.graph.edges["repro.reg:run"]
        assert "repro.reg:fa" in edges

    def test_passthrough_parameter_maps_to_call_site_argument(self):
        project = project_of(
            {
                "src/repro/reg.py": """
                def concrete(g):
                    return g

                def _resolve(algorithm):
                    return algorithm

                def run(g):
                    return _resolve(concrete)(g)
                """,
            }
        )
        assert "repro.reg:concrete" in project.graph.edges["repro.reg:run"]

    def test_registry_alias_assignment(self):
        project = project_of(
            {
                "src/repro/reg.py": """
                def fa(g):
                    return g

                REGISTRY = {"a": fa}

                def run(name, g):
                    solver = REGISTRY[name]
                    return solver(g)
                """,
            }
        )
        assert "repro.reg:fa" in project.graph.edges["repro.reg:run"]


class TestHookIndirection:
    def test_factory_hook_fans_out_to_passed_values(self):
        project = project_of(
            {
                "src/repro/driver.py": """
                from repro.ws import FlatWorkspace

                def drive(graph, workspace_factory=None):
                    factory = (
                        FlatWorkspace
                        if workspace_factory is None
                        else workspace_factory
                    )
                    ws = factory(graph)
                    return ws
                """,
                "src/repro/ws.py": """
                class FlatWorkspace:
                    def __init__(self, graph):
                        self.graph = graph

                class LegacyWorkspace:
                    def __init__(self, graph):
                        self.graph = graph
                """,
                "src/repro/caller.py": """
                from repro.driver import drive
                from repro.ws import LegacyWorkspace

                def oracle(graph):
                    return drive(graph, workspace_factory=LegacyWorkspace)
                """,
            }
        )
        edges = project.graph.edges["repro.driver:drive"]
        # Default factory and every hook value passed anywhere in the
        # project both become call edges (to the class __init__).
        assert "repro.ws:FlatWorkspace.__init__" in edges
        assert "repro.ws:LegacyWorkspace.__init__" in edges

    def test_instance_method_resolution_through_hook(self):
        project = project_of(
            {
                "src/repro/driver.py": """
                from repro.ws import FlatWorkspace

                def drive(graph, workspace_factory=None):
                    factory = (
                        FlatWorkspace
                        if workspace_factory is None
                        else workspace_factory
                    )
                    ws = factory(graph)
                    ws.delete_vertex(0)
                """,
                "src/repro/ws.py": """
                class FlatWorkspace:
                    def __init__(self, graph):
                        self.graph = graph

                    def delete_vertex(self, v):
                        pass
                """,
            }
        )
        edges = project.graph.edges["repro.driver:drive"]
        assert "repro.ws:FlatWorkspace.delete_vertex" in edges


class TestCyclesAndClosure:
    def test_recursive_cycle_terminates_and_closes(self):
        project = project_of(
            {
                "src/repro/cyc.py": """
                def a(x):
                    return b(x)

                def b(x):
                    return a(x)

                def c(x):
                    return a(x)
                """,
            }
        )
        reached, parents = project.graph.reachable_with_parents(
            ["repro.cyc:c"]
        )
        assert reached == {"repro.cyc:a", "repro.cyc:b", "repro.cyc:c"}
        chain = project.graph.chain(parents, "repro.cyc:b")
        assert chain[0] == "repro.cyc:c"
        assert chain[-1] == "repro.cyc:b"

    def test_self_assignment_cycle_resolves_to_unknown(self):
        # `x = x` must not recurse forever.
        project = project_of(
            {
                "src/repro/loop.py": """
                def f(x):
                    x = x
                    return x(1)
                """,
            }
        )
        assert project.graph.edges["repro.loop:f"] == set()

    def test_self_method_edges(self):
        project = project_of(
            {
                "src/repro/cls.py": """
                class Driver:
                    def outer(self):
                        self.inner()

                    def inner(self):
                        pass
                """,
            }
        )
        assert (
            "repro.cls:Driver.inner"
            in project.graph.edges["repro.cls:Driver.outer"]
        )

    def test_inherited_method_resolution(self):
        project = project_of(
            {
                "src/repro/cls.py": """
                class Base:
                    def step(self):
                        pass

                class Child(Base):
                    def run(self):
                        self.step()
                """,
            }
        )
        assert (
            "repro.cls:Base.step" in project.graph.edges["repro.cls:Child.run"]
        )


@pytest.fixture(scope="module")
def repo_project():
    from repro.lint.engine import iter_python_files, load_module

    modules = []
    for path in iter_python_files([os.path.join(REPO_ROOT, "src")]):
        modules.append(load_module(path))
    return Project(modules)


class TestRealRepoResolution:
    def test_algorithm_registry_is_indexed(self, repo_project):
        index = repo_project.index
        targets = index.registry_targets("repro.perf.parallel:ALGORITHM_BY_NAME")
        assert "repro.core.linear_time:linear_time" in targets
        assert any(q.endswith(":near_linear_vec") for q in targets)

    def test_kernel_methods_registry_is_indexed(self, repo_project):
        # AnnAssign registry (KERNEL_METHODS has a type annotation).
        targets = repo_project.index.registry_targets(
            "repro.core.kernel:KERNEL_METHODS"
        )
        assert any(q.endswith("linear_time_reduce") for q in targets)

    def test_worker_payload_reaches_registry_solvers(self, repo_project):
        graph = repo_project.graph
        reached, _ = graph.reachable_with_parents(
            ["repro.perf.parallel:_solve_flat"]
        )
        assert "repro.core.linear_time:linear_time" in reached

    def test_hot_kernel_reaches_cross_module_helper(self, repo_project):
        # The RL006 motivating edge: the LinearTime flat kernel calls the
        # degree-two path machinery in a different module.
        graph = repo_project.graph
        reached, _ = graph.reachable_with_parents(
            ["repro.core.linear_time:_reduce_flat"]
        )
        assert (
            "repro.core.degree_two_paths:apply_degree_two_path_reduction"
            in reached
        )

    def test_hook_values_include_real_workspace_classes(self, repo_project):
        values = {
            origin[1]
            for origin in repo_project.index.hook_value_origins(
                "workspace_factory"
            )
        }
        # Call sites across src pass these workspace classes as factories;
        # the resolver must surface them so RL006 follows the indirection.
        assert any(v.endswith(":VecWorkspace") for v in values)
        assert any(v.endswith(":ArrayWorkspace") for v in values)


class TestRepoCleanOnGraphRules:
    def test_src_is_clean_under_rl006_to_rl009(self):
        findings = lint_paths(
            [os.path.join(REPO_ROOT, "src")],
            rules=default_rules(["RL006", "RL007", "RL008", "RL009"]),
        )
        offenders = blocking(findings)
        assert offenders == [], "\n".join(f.render() for f in offenders)
