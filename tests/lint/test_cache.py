"""Incremental-cache behaviour: speedup, invalidation, AST-key stability.

The acceptance bar from the issue: a warm run over an unchanged tree must
be at least 3x faster than the cold run that populated the cache.  The
timing test below uses a generated tree large enough that parse +
rule-run time dominates, so the margin is wide (observed ~10x+); the
remaining tests pin the invalidation semantics that make the speedup
safe — content edits re-lint the file, signature edits re-run the
project pass, comment-only edits keep the project cache warm.
"""

import time

import pytest

from repro.lint import LintCache, run_lint

MODULE_TEMPLATE = '''\
"""Generated module {i} for cache timing."""

from repro.core.hotpath import hot_loop


def helper_{i}(values):
    total = 0
    for value in values:
        total += value * {i}
    return total


@hot_loop
def kernel_{i}(ws):
    n = ws.n
    total = 0
    for v in range(n):
        total += helper_{i}(ws.row(v))
    return total


class Stage{i}:
    def __init__(self, graph):
        self.graph = graph

    def run(self):
        return kernel_{i}(self.graph)
'''


@pytest.fixture()
def tree(tmp_path):
    pkg = tmp_path / "src" / "repro" / "gen"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    for i in range(40):
        body = MODULE_TEMPLATE.format(i=i)
        # Pad each module so parsing is a measurable share of the run.
        body += "".join(
            f"\n\nCONST_{i}_{j} = {j}  # padding line for parse cost\n"
            for j in range(30)
        )
        (pkg / f"mod_{i}.py").write_text(body)
    return tmp_path


def timed_run(tree, cache_path):
    cache = LintCache(str(cache_path))
    start = time.perf_counter()
    run = run_lint([str(tree / "src")], cache=cache)
    elapsed = time.perf_counter() - start
    return run, elapsed


class TestWarmSpeedup:
    def test_warm_run_is_at_least_3x_faster(self, tree, tmp_path):
        cache_path = tmp_path / "lint-cache.json"
        cold, cold_elapsed = timed_run(tree, cache_path)
        warm, warm_elapsed = timed_run(tree, cache_path)

        assert cold.parsed == cold.files
        assert cold.file_cache_hits == 0
        assert not cold.project_cache_hit

        assert warm.parsed == 0
        assert warm.file_cache_hits == warm.files
        assert warm.project_cache_hit
        assert [f.fingerprint() for f in warm.findings] == [
            f.fingerprint() for f in cold.findings
        ]

        assert warm_elapsed * 3 <= cold_elapsed, (
            f"warm {warm_elapsed:.4f}s vs cold {cold_elapsed:.4f}s: "
            "expected at least a 3x speedup from the cache"
        )


class TestInvalidation:
    def test_content_edit_relints_only_that_file(self, tree, tmp_path):
        cache_path = tmp_path / "lint-cache.json"
        timed_run(tree, cache_path)

        target = tree / "src" / "repro" / "gen" / "mod_7.py"
        target.write_text(target.read_text() + "\n\nEXTRA = 7\n")

        run, _ = timed_run(tree, cache_path)
        # One file re-parsed for its per-file pass; the project key changed
        # (new top-level binding), so the cross-module pass also re-ran.
        assert run.file_cache_hits == run.files - 1
        assert not run.project_cache_hit

    def test_comment_only_edit_keeps_project_cache_warm(self, tree, tmp_path):
        cache_path = tmp_path / "lint-cache.json"
        timed_run(tree, cache_path)

        target = tree / "src" / "repro" / "gen" / "mod_3.py"
        target.write_text("# a comment that changes no AST\n" + target.read_text())

        run, _ = timed_run(tree, cache_path)
        # The edited file is re-read and re-linted (content hash moved) but
        # its AST hash is unchanged, so the project-level key — and the
        # expensive call-graph pass — stays cached.
        assert run.file_cache_hits == run.files - 1
        assert run.parsed == 1
        assert run.project_cache_hit

    def test_new_violation_is_found_after_warm_run(self, tree, tmp_path):
        cache_path = tmp_path / "lint-cache.json"
        clean, _ = timed_run(tree, cache_path)
        assert [f for f in clean.findings if f.rule_id == "RL001"] == []

        target = tree / "src" / "repro" / "gen" / "mod_5.py"
        target.write_text(
            target.read_text().replace(
                "total += helper_5(ws.row(v))",
                "total += helper_5(ws.row(v)); seen = set()",
            )
        )
        run, _ = timed_run(tree, cache_path)
        assert any(f.rule_id == "RL001" for f in run.findings)

    def test_rules_key_change_resets_cache(self, tree, tmp_path):
        from repro.lint import default_rules

        cache_path = tmp_path / "lint-cache.json"
        timed_run(tree, cache_path)

        cache = LintCache(str(cache_path))
        run = run_lint(
            [str(tree / "src")],
            rules=default_rules(["RL001"]),
            cache=cache,
        )
        # A different rule set must not reuse findings computed under the
        # full set: everything re-parses.
        assert run.file_cache_hits == 0
        assert not run.project_cache_hit

    def test_cache_survives_missing_file(self, tree, tmp_path):
        cache_path = tmp_path / "lint-cache.json"
        timed_run(tree, cache_path)

        (tree / "src" / "repro" / "gen" / "mod_9.py").unlink()
        run, _ = timed_run(tree, cache_path)
        assert run.files == 40  # 39 modules + __init__
        assert run.project_cache_hit is False


class TestCacheless:
    def test_run_lint_without_cache_matches_cached(self, tree, tmp_path):
        cache_path = tmp_path / "lint-cache.json"
        cached, _ = timed_run(tree, cache_path)
        bare = run_lint([str(tree / "src")])
        assert [f.fingerprint() for f in bare.findings] == [
            f.fingerprint() for f in cached.findings
        ]

    def test_jobs_parallel_parse_matches_serial(self, tree):
        serial = run_lint([str(tree / "src")], jobs=1)
        parallel = run_lint([str(tree / "src")], jobs=2)
        assert [f.fingerprint() for f in parallel.findings] == [
            f.fingerprint() for f in serial.findings
        ]
