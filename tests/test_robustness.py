"""Robustness: error propagation, adversarial inputs, determinism."""

import pytest

from repro import (
    BudgetExceededError,
    GraphError,
    ReproError,
    bdone,
    bdtwo,
    kernelize,
    linear_time,
    near_linear,
)
from repro.analysis import is_maximal_independent_set
from repro.baselines import du, greedy, online_mis, semi_external
from repro.exact import maximum_independent_set
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    disjoint_union,
    gnm_random_graph,
    gnp_random_graph,
    path_graph,
    star_graph,
)

EVERYTHING = [bdone, bdtwo, linear_time, near_linear, greedy, du, semi_external]


class TestDegenerateInputs:
    @pytest.mark.parametrize("algorithm", EVERYTHING)
    def test_zero_vertices(self, algorithm):
        result = algorithm(Graph.empty(0))
        assert result.size == 0

    @pytest.mark.parametrize("algorithm", EVERYTHING)
    def test_single_vertex(self, algorithm):
        result = algorithm(Graph.empty(1))
        assert result.independent_set == {0}

    @pytest.mark.parametrize("algorithm", EVERYTHING)
    def test_single_edge(self, algorithm):
        result = algorithm(path_graph(2))
        assert result.size == 1

    @pytest.mark.parametrize("algorithm", EVERYTHING)
    def test_all_isolated(self, algorithm):
        result = algorithm(Graph.empty(100))
        assert result.size == 100


class TestAdversarialStructures:
    """Graph shapes that stress specific code paths."""

    def test_long_path_recursion_free(self):
        # 20k-vertex path: the path reduction must not recurse per vertex.
        g = path_graph(20_000)
        result = linear_time(g)
        assert result.size == 10_000
        assert result.is_exact

    def test_long_cycle(self):
        g = cycle_graph(20_001)
        result = near_linear(g)
        assert result.size == 10_000
        assert result.is_exact

    def test_many_tiny_components(self):
        g = disjoint_union([path_graph(3)] * 500)
        for algorithm in (bdone, linear_time, near_linear):
            result = algorithm(g)
            assert result.size == 1000
            assert result.is_exact

    def test_clique_chain(self):
        # Cliques joined by bridges: isolation + dominance territory.
        parts = [complete_graph(5)] * 50
        g = disjoint_union(parts)
        result = near_linear(g)
        assert result.size == 50
        assert result.is_exact

    def test_star_forest(self):
        g = disjoint_union([star_graph(10)] * 100)
        for algorithm in EVERYTHING:
            assert algorithm(g).size == 1000

    def test_dense_graph_not_pathological(self):
        g = gnp_random_graph(150, 0.5, seed=3)
        for algorithm in (bdone, bdtwo, linear_time, near_linear):
            result = algorithm(g)
            assert is_maximal_independent_set(g, result.independent_set)

    def test_two_cliques_sharing_everything_but_one(self):
        # K6 plus a pendant on each vertex: dominance-heavy.
        from repro.graphs import isolated_clique_gadget

        g = isolated_clique_gadget(6, pendants_per_vertex=3)
        result = near_linear(g)
        assert result.is_exact


class TestErrorPropagation:
    def test_generator_errors_are_graph_errors(self):
        with pytest.raises(GraphError):
            gnm_random_graph(3, 10)

    def test_budget_error_carries_bound(self):
        g = gnp_random_graph(70, 0.3, seed=5)
        try:
            maximum_independent_set(g, node_budget=1)
        except BudgetExceededError as error:
            assert error.best_lower > 0
        else:  # the instance reduced away: acceptable, no error path
            pass

    def test_errors_are_repro_errors(self):
        assert issubclass(GraphError, ReproError)
        assert issubclass(BudgetExceededError, ReproError)

    def test_unknown_kernel_method(self):
        with pytest.raises(ReproError):
            kernelize(path_graph(3), method="nope")


class TestDeterminism:
    @pytest.mark.parametrize(
        "algorithm", [bdone, bdtwo, linear_time, near_linear, greedy, du]
    )
    def test_same_input_same_output(self, algorithm):
        g = gnm_random_graph(300, 900, seed=8)
        first = algorithm(g)
        second = algorithm(g)
        assert first.independent_set == second.independent_set
        assert first.stats == second.stats

    def test_online_mis_deterministic_with_iteration_cap(self):
        g = gnm_random_graph(100, 300, seed=9)
        a = online_mis(g, time_budget=10.0, seed=4, max_iterations=5)
        b = online_mis(g, time_budget=10.0, seed=4, max_iterations=5)
        assert a.independent_set == b.independent_set

    def test_generators_stable_across_calls(self):
        assert gnm_random_graph(50, 100, seed=1) == gnm_random_graph(50, 100, seed=1)


class TestRelabelingMetamorphic:
    """Vertex relabeling must not change what the algorithms can prove."""

    @staticmethod
    def _permuted(graph, seed):
        import random

        rng = random.Random(seed)
        mapping = list(range(graph.n))
        rng.shuffle(mapping)
        edges = [(mapping[u], mapping[v]) for u, v in graph.edges()]
        return Graph.from_edges(graph.n, edges)

    @pytest.mark.parametrize("seed", range(10))
    def test_certified_sizes_are_label_invariant(self, seed):
        g = gnm_random_graph(60, 90, seed=seed)
        h = self._permuted(g, seed * 7 + 1)
        for algorithm in (bdone, bdtwo, linear_time, near_linear):
            a = algorithm(g)
            b = algorithm(h)
            # Certified results pin down alpha; two certificates must agree.
            if a.is_exact and b.is_exact:
                assert a.size == b.size
            # Valid solutions either way.
            assert is_maximal_independent_set(g, a.independent_set)
            assert is_maximal_independent_set(h, b.independent_set)

    @pytest.mark.parametrize("seed", range(5))
    def test_exact_solver_label_invariant(self, seed):
        from repro.exact import maximum_independent_set

        g = gnm_random_graph(22, 44, seed=seed + 40)
        h = self._permuted(g, seed)
        assert (
            maximum_independent_set(g).size == maximum_independent_set(h).size
        )
