"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import load_graph, main
from repro.graphs import cycle_graph, petersen_graph, write_edge_list, write_metis


@pytest.fixture()
def edge_list_file(tmp_path):
    path = tmp_path / "graph.txt"
    write_edge_list(petersen_graph(), str(path))
    return str(path)


@pytest.fixture()
def metis_file(tmp_path):
    path = tmp_path / "graph.metis"
    write_metis(cycle_graph(8), str(path))
    return str(path)


class TestLoadGraph:
    def test_edge_list_detection(self, edge_list_file):
        graph, labels = load_graph(edge_list_file)
        assert graph.n == 10
        assert labels is not None

    def test_metis_detection(self, metis_file):
        graph, labels = load_graph(metis_file)
        assert graph.n == 8
        assert labels is None


class TestSolve:
    def test_solve_default(self, edge_list_file, capsys):
        assert main(["solve", edge_list_file]) == 0
        out = capsys.readouterr().out
        assert "independent set: size 4" in out

    def test_solve_each_algorithm(self, edge_list_file, capsys):
        for algorithm in ("BDOne", "BDTwo", "LinearTime", "NearLinear", "Greedy", "DU"):
            assert main(["solve", edge_list_file, "--algorithm", algorithm]) == 0

    def test_solve_vertex_cover(self, edge_list_file, capsys):
        assert main(["solve", edge_list_file, "--vertex-cover"]) == 0
        assert "minimum-vertex-cover heuristic: size 6" in capsys.readouterr().out

    def test_solve_writes_output(self, edge_list_file, tmp_path, capsys):
        out_path = str(tmp_path / "solution.txt")
        assert main(["solve", edge_list_file, "--output", out_path]) == 0
        with open(out_path, encoding="utf-8") as handle:
            vertices = [int(line) for line in handle]
        assert len(vertices) == 4

    def test_print_vertices(self, edge_list_file, capsys):
        assert main(["solve", edge_list_file, "--print-vertices"]) == 0
        lines = [ln for ln in capsys.readouterr().out.splitlines() if not ln.startswith("#")]
        assert len(lines) == 4

    def test_missing_file_is_an_error(self, capsys):
        assert main(["solve", "no-such-file.txt"]) == 1
        assert "error:" in capsys.readouterr().err


class TestKernelize:
    def test_kernelize_prints_sizes(self, metis_file, capsys):
        assert main(["kernelize", metis_file]) == 0
        out = capsys.readouterr().out
        assert "kernel: n=0" in out  # a cycle reduces fully

    def test_kernelize_writes_metis(self, edge_list_file, tmp_path, capsys):
        out_path = str(tmp_path / "kernel.metis")
        assert main(["kernelize", edge_list_file, "--output", out_path]) == 0
        assert os.path.exists(out_path)


class TestInfoAndGenerate:
    def test_info(self, edge_list_file, capsys):
        assert main(["info", edge_list_file]) == 0
        out = capsys.readouterr().out
        assert "vertices        : 10" in out
        assert "degeneracy      : 3" in out

    @pytest.mark.parametrize("family", ["powerlaw", "gnm", "web"])
    def test_generate_families(self, family, tmp_path, capsys):
        out_path = str(tmp_path / "generated.txt")
        assert (
            main(["generate", out_path, "--family", family, "--n", "200", "--seed", "1"]) == 0
        )
        graph, _ = load_graph(out_path)
        assert graph.n <= 200 and graph.m > 0

    def test_generate_then_solve_round_trip(self, tmp_path, capsys):
        out_path = str(tmp_path / "g.metis")
        assert main(["generate", out_path, "--n", "300", "--seed", "2"]) == 0
        assert main(["solve", out_path, "--algorithm", "LinearTime"]) == 0

    def test_generate_respects_density(self, tmp_path):
        sparse = str(tmp_path / "sparse.txt")
        dense = str(tmp_path / "dense.txt")
        main(["generate", sparse, "--family", "gnm", "--n", "500", "--avg-degree", "2"])
        main(["generate", dense, "--family", "gnm", "--n", "500", "--avg-degree", "8"])
        g_sparse, _ = load_graph(sparse)
        g_dense, _ = load_graph(dense)
        assert g_dense.m > 2 * g_sparse.m

    def test_info_on_dimacs(self, tmp_path, capsys):
        from repro.graphs import write_dimacs, petersen_graph

        path = str(tmp_path / "g.col")
        write_dimacs(petersen_graph(), path)
        assert main(["info", path]) == 0
        assert "edges           : 15" in capsys.readouterr().out

    def test_kernelize_edge_list_output(self, edge_list_file, tmp_path, capsys):
        out_path = str(tmp_path / "kernel.txt")
        assert main(
            ["kernelize", edge_list_file, "--method", "degree_one", "--output", out_path]
        ) == 0
        graph, _ = load_graph(out_path)
        assert graph.n == 10  # Petersen is degree-one-irreducible

    def test_solve_baseline_names(self, edge_list_file):
        for algorithm in ("SemiE", "OnlineMIS", "ReduMIS"):
            assert main(["solve", edge_list_file, "--algorithm", algorithm]) == 0


class TestTelemetryFlags:
    def test_solve_with_telemetry_writes_trace(self, edge_list_file, tmp_path, capsys):
        from repro.obs import load_trace
        from repro.obs.telemetry import get_telemetry

        trace = str(tmp_path / "trace.jsonl")
        assert main(["solve", edge_list_file, "--telemetry", trace]) == 0
        out = capsys.readouterr().out
        assert "independent set: size" in out
        assert "telemetry:" in out and trace in out
        records = load_trace(trace)
        kinds = {r["type"] for r in records}
        assert {"meta", "span", "counters", "profile"} <= kinds
        assert any(
            r["type"] == "span" and r["name"] == "reduce" for r in records
        )
        # The session flag must not leak past the command.
        assert get_telemetry() is None

    def test_solve_with_memory_probe(self, edge_list_file, tmp_path, capsys):
        from repro.obs import load_trace

        trace = str(tmp_path / "trace.jsonl")
        code = main(
            ["solve", edge_list_file, "--telemetry", trace, "--telemetry-memory"]
        )
        assert code == 0
        memory = [r for r in load_trace(trace) if r["type"] == "memory"]
        assert len(memory) == 1
        assert memory[0]["peak_bytes"] > 0

    def test_solve_without_telemetry_stays_silent(self, edge_list_file, capsys):
        assert main(["solve", edge_list_file]) == 0
        assert "telemetry" not in capsys.readouterr().out

    def test_obs_report_renders_a_trace(self, edge_list_file, tmp_path, capsys):
        trace = str(tmp_path / "trace.jsonl")
        assert main(["solve", edge_list_file, "--telemetry", trace]) == 0
        capsys.readouterr()
        assert main(["obs", "report", trace]) == 0
        out = capsys.readouterr().out
        assert "phase spans:" in out
        assert "reduce" in out
        assert "rule counters:" in out

    def test_obs_report_missing_file_is_an_error(self, tmp_path, capsys):
        assert main(["obs", "report", str(tmp_path / "nope.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err


class TestServe:
    def test_serve_session_round_trip(self, metis_file, tmp_path, capsys):
        requests = tmp_path / "requests.jsonl"
        state = tmp_path / "state.json"
        requests.write_text(
            "\n".join(
                [
                    '{"op": "register", "id": "g", "path": "%s"}' % metis_file,
                    '{"op": "solve", "id": "g"}',
                    '{"op": "mutate", "id": "g", "mutations": [["add_edge", 0, 4]]}',
                    '{"op": "solve", "id": "g"}',
                    '{"op": "upper_bound", "id": "g"}',
                    '{"op": "stats"}',
                ]
            )
            + "\n"
        )
        assert (
            main(["serve", str(requests), "--snapshot", str(state)]) == 0
        )
        import json

        lines = [
            json.loads(ln)
            for ln in capsys.readouterr().out.splitlines()
            if ln.strip()
        ]
        assert all(resp["ok"] for resp in lines)
        sources = [resp.get("source") for resp in lines if resp["op"] == "solve"]
        assert sources[0] == "cold"
        assert sources[1] in ("repair", "cold")
        assert state.exists()

    def test_serve_restore_reuses_state(self, metis_file, tmp_path, capsys):
        state = tmp_path / "state.json"
        first = tmp_path / "first.jsonl"
        first.write_text(
            '{"op": "register", "id": "g", "path": "%s"}\n'
            '{"op": "solve", "id": "g"}\n' % metis_file
        )
        assert main(["serve", str(first), "--snapshot", str(state)]) == 0
        capsys.readouterr()
        second = tmp_path / "second.jsonl"
        second.write_text('{"op": "solve", "id": "g"}\n')
        assert main(["serve", str(second), "--restore", str(state)]) == 0
        import json

        resp = json.loads(capsys.readouterr().out.strip())
        assert resp["ok"] and resp["source"] == "cache"

    def test_serve_failed_request_sets_exit_code(self, tmp_path, capsys):
        requests = tmp_path / "requests.jsonl"
        requests.write_text('{"op": "solve", "id": "missing"}\n')
        assert main(["serve", str(requests)]) == 1
        out = capsys.readouterr().out
        assert '"ok": false' in out

    def test_serve_writes_output_file(self, metis_file, tmp_path):
        requests = tmp_path / "requests.jsonl"
        responses = tmp_path / "responses.jsonl"
        requests.write_text(
            '{"op": "register", "id": "g", "path": "%s"}\n'
            '{"op": "solve", "id": "g"}\n' % metis_file
        )
        assert (
            main(["serve", str(requests), "--output", str(responses)]) == 0
        )
        assert len(responses.read_text().splitlines()) == 2

    def test_serve_async_replay_matches_sync(self, metis_file, tmp_path):
        import json

        requests = tmp_path / "requests.jsonl"
        sync_out = tmp_path / "sync.jsonl"
        async_out = tmp_path / "async.jsonl"
        requests.write_text(
            '{"op": "register", "id": "g", "path": "%s", "rid": "r0"}\n'
            '{"op": "solve", "id": "g", "rid": "r1"}\n'
            '{"op": "solve", "id": "g", "rid": "r2"}\n'
            '{"op": "ping", "rid": "r3"}\n' % metis_file
        )
        assert main(["serve", str(requests), "--output", str(sync_out)]) == 0
        assert (
            main(
                [
                    "serve",
                    str(requests),
                    "--async",
                    "--shards",
                    "2",
                    "--output",
                    str(async_out),
                ]
            )
            == 0
        )
        from repro.serve.loadgen import normalize_response

        sync_lines = [
            normalize_response(json.loads(line))
            for line in sync_out.read_text().splitlines()
        ]
        async_lines = [
            normalize_response(json.loads(line))
            for line in async_out.read_text().splitlines()
        ]
        assert sync_lines == async_lines

    def test_serve_async_rejects_snapshot_flags(self, tmp_path, capsys):
        requests = tmp_path / "requests.jsonl"
        requests.write_text('{"op": "ping"}\n')
        state = tmp_path / "state.json"
        assert (
            main(["serve", str(requests), "--async", "--snapshot", str(state)])
            == 1
        )
        assert "single-process" in capsys.readouterr().err

    def test_serve_async_bad_request_sets_exit_code(self, tmp_path, capsys):
        requests = tmp_path / "requests.jsonl"
        requests.write_text('{"op": "solve", "id": "missing", "rid": "r1"}\n')
        assert main(["serve", str(requests), "--async"]) == 1
        out = capsys.readouterr().out
        assert '"ok": false' in out


class TestLoadgen:
    def test_loadgen_report_round_trip(self, tmp_path, capsys):
        import json

        report = tmp_path / "report.json"
        assert (
            main(
                [
                    "loadgen",
                    "--vertices",
                    "120",
                    "--graphs",
                    "2",
                    "--requests",
                    "30",
                    "--burst",
                    "4",
                    "--shards",
                    "2",
                    "--edge-probability",
                    "0.05",
                    "--out",
                    str(report),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "speedup" in out and "equivalent=True" in out
        payload = json.loads(report.read_text())
        assert payload["equivalence"]["equivalent"]
        assert payload["shed_check"]["all_valid"]
        assert payload["sync"]["throughput"] > 0
        assert payload["async"]["throughput"] > 0

    def test_snapshot_summary_and_verify(self, metis_file, tmp_path, capsys):
        state = tmp_path / "state.json"
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            '{"op": "register", "id": "g", "path": "%s"}\n'
            '{"op": "solve", "id": "g"}\n' % metis_file
        )
        assert main(["serve", str(requests), "--snapshot", str(state)]) == 0
        capsys.readouterr()
        assert main(["snapshot", str(state), "--verify"]) == 0
        out = capsys.readouterr().out
        assert "graphs" in out and "g: n=8" in out
        assert "fingerprints match" in out

    def test_snapshot_corrupt_file_fails_verify(self, metis_file, tmp_path, capsys):
        import json

        state = tmp_path / "state.json"
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            '{"op": "register", "id": "g", "path": "%s"}\n' % metis_file
        )
        assert main(["serve", str(requests), "--snapshot", str(state)]) == 0
        payload = json.loads(state.read_text())
        payload["graphs"]["g"]["dynamic"]["edges"].pop()
        state.write_text(json.dumps(payload))
        capsys.readouterr()
        assert main(["snapshot", str(state), "--verify"]) == 1
        assert "error:" in capsys.readouterr().err
