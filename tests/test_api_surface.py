"""Coverage of the smaller public API corners."""

from repro.cli import build_parser
from repro.core import linear_time_reduce, near_linear_reduce
from repro.graphs import cycle_graph, paper_figure1, petersen_graph
from repro.localsearch import ConvergenceRecorder


class TestParser:
    def test_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["solve", "g.txt", "--algorithm", "BDOne"])
        assert args.command == "solve"
        assert args.algorithm == "BDOne"
        args = parser.parse_args(["generate", "out.txt", "--family", "web"])
        assert args.family == "web"


class TestReduceFunctions:
    def test_linear_time_reduce_direct(self):
        kernel, old_ids, log = linear_time_reduce(paper_figure1())
        assert kernel.n == 0
        assert old_ids == []
        assert log.peel_count == 0

    def test_near_linear_reduce_irreducible(self):
        kernel, old_ids, log = near_linear_reduce(petersen_graph())
        assert kernel.n == 10  # triangle-free 3-regular: nothing fires
        assert sorted(old_ids) == list(range(10))

    def test_reduce_functions_share_alpha_arithmetic(self):
        from repro.exact import brute_force_alpha

        g = cycle_graph(9)
        for reduce_fn in (linear_time_reduce, near_linear_reduce):
            kernel, _, log = reduce_fn(g)
            assert log.alpha_offset + brute_force_alpha(kernel) == 4


class TestGraphCSR:
    def test_csr_arrays_shape(self):
        g = cycle_graph(5)
        offsets, targets = g.csr_arrays()
        assert len(offsets) == 6
        assert len(targets) == 10
        assert offsets[-1] == len(targets)


class TestRecorderRestart:
    def test_restart_clears_events(self):
        recorder = ConvergenceRecorder()
        recorder.record(5)
        recorder.restart()
        assert recorder.events == []
        assert recorder.best_size == 0
