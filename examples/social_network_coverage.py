#!/usr/bin/env python3
"""Social-network coverage: seed selection with an independent set.

One of the paper's motivating applications (Section 1, [32]): pick a set of
users covering the network within their one-hop neighbourhoods, with no two
chosen users directly connected — i.e. a large *maximal* independent set.
A larger independent set means more simultaneously active, non-interfering
seeds, while maximality guarantees every user is at most one hop from a
seed.

This example builds a synthetic social network, compares the coverage
quality of the classic heuristics against the reducing-peeling family, and
shows the certificate telling us when no better seeding exists.

Run:  python examples/social_network_coverage.py
"""

from repro import du, greedy, linear_time, near_linear, power_law_graph
from repro.analysis import is_maximal_independent_set


def coverage_stats(graph, seeds):
    """Fraction of users that are a seed or adjacent to one."""
    covered = set(seeds)
    for seed in seeds:
        covered.update(graph.neighbors(seed))
    return len(covered) / graph.n


def main() -> None:
    # A mid-sized social network: heavy-tailed degrees, a few celebrities.
    network = power_law_graph(30_000, beta=2.1, average_degree=8.0, seed=11)
    print(f"social network: n={network.n:,} users, m={network.m:,} friendships")
    print(f"most-followed user has {network.max_degree()} friends\n")

    print(f"{'algorithm':12s} {'seeds':>8s} {'coverage':>9s} {'certified':>9s}")
    for algorithm in (greedy, du, linear_time, near_linear):
        result = algorithm(network)
        assert is_maximal_independent_set(network, result.independent_set)
        coverage = coverage_stats(network, result.independent_set)
        certified = "yes" if result.is_exact else "no"
        print(
            f"{result.algorithm:12s} {result.size:8,d} {coverage:8.1%} {certified:>9s}"
        )

    best = near_linear(network)
    print(
        f"\nNearLinear seeds {best.size:,} users"
        f" (upper bound {best.upper_bound:,}; gap <= {best.upper_bound - best.size})"
    )
    if best.is_exact:
        print("the seeding is certified maximum: no larger conflict-free seed set exists")


if __name__ == "__main__":
    main()
