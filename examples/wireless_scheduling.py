#!/usr/bin/env python3
"""Wireless interference scheduling via repeated independent sets.

Another motivating application from the paper's introduction ([5], [36]):
in a wireless network, links that interfere cannot transmit in the same
time slot, so a transmission schedule is a partition of the conflict graph
into independent sets — computed here by repeatedly extracting a large
independent set and removing it (the classic reduction of multiflow
scheduling to a sequence of MIS computations [36]).

A better per-round independent set means fewer rounds; the example compares
round counts when the extractor is Greedy vs NearLinear.

Run:  python examples/wireless_scheduling.py
"""

from repro import Graph, greedy, near_linear
from repro.graphs import gnp_random_graph
import random


def build_conflict_graph(stations: int, radio_range: float, seed: int) -> Graph:
    """Random geometric conflict graph: stations in the unit square,
    links interfere when their endpoints are within radio range."""
    rng = random.Random(seed)
    points = [(rng.random(), rng.random()) for _ in range(stations)]
    edges = []
    limit = radio_range * radio_range
    for i in range(stations):
        xi, yi = points[i]
        for j in range(i + 1, stations):
            xj, yj = points[j]
            if (xi - xj) ** 2 + (yi - yj) ** 2 <= limit:
                edges.append((i, j))
    return Graph.from_edges(stations, edges, name="conflict")


def schedule(graph: Graph, extractor) -> list:
    """Partition the vertex set into independent rounds."""
    remaining = list(range(graph.n))
    rounds = []
    current = graph
    ids = remaining
    while current.n:
        chosen = extractor(current).independent_set
        rounds.append(sorted(ids[v] for v in chosen))
        keep = [v for v in range(current.n) if v not in chosen]
        current, sub_ids = current.subgraph(keep)
        ids = [ids[v] for v in sub_ids]
    return rounds


def main() -> None:
    conflict = build_conflict_graph(stations=1_500, radio_range=0.05, seed=3)
    print(
        f"conflict graph: {conflict.n:,} stations, {conflict.m:,} interference pairs"
    )

    for name, extractor in (("Greedy", greedy), ("NearLinear", near_linear)):
        rounds = schedule(conflict, extractor)
        sizes = [len(r) for r in rounds]
        # Validate: every round is an independent set, all stations served.
        assert sum(sizes) == conflict.n
        print(
            f"\n{name}: {len(rounds)} time slots"
            f" (first round serves {sizes[0]:,} stations,"
            f" median round {sorted(sizes)[len(sizes) // 2]})"
        )

    print("\nfewer slots = higher network throughput; the reducing-peeling")
    print("extractor packs more transmissions into each round.")


if __name__ == "__main__":
    main()
