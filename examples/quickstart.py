#!/usr/bin/env python3
"""Quickstart: compute a near-maximum independent set of a large sparse graph.

Demonstrates the one-call API on a power-law random graph (the kind of
input the Reducing-Peeling framework is designed for), the Theorem-6.1
optimality certificate, and the equivalent minimum vertex cover.

Run:  python examples/quickstart.py
"""

from repro import (
    compute_independent_set,
    is_independent_set,
    near_linear,
    power_law_graph,
)
from repro.analysis import complement_vertex_cover


def main() -> None:
    # A 100k-vertex power-law graph, the shape of real social networks.
    graph = power_law_graph(100_000, beta=2.2, average_degree=6.0, seed=7)
    print(f"graph: n={graph.n:,} m={graph.m:,} max degree={graph.max_degree()}")

    # One call; NearLinear is the quality/speed sweet spot (paper Table 1).
    result = near_linear(graph)
    print(f"\nNearLinear found an independent set of size {result.size:,}")
    print(f"  upper bound on alpha (Theorem 6.1): {result.upper_bound:,}")
    print(f"  certified maximum: {result.is_exact}")
    print(f"  wall time: {result.elapsed:.2f}s")
    print(f"  reduction rules fired: {result.stats}")

    # The result is a plain frozenset of vertex ids.
    assert is_independent_set(graph, result.independent_set)

    # Independent set <-> vertex cover duality (paper Section 2).
    cover = complement_vertex_cover(graph, result.independent_set)
    print(f"\nequivalently, a vertex cover of size {len(cover):,}")

    # Every paper algorithm is one name away.
    for name in ("BDOne", "BDTwo", "LinearTime", "NearLinear"):
        r = compute_independent_set(graph, name)
        star = " (certified maximum)" if r.is_exact else ""
        print(f"  {name:11s} -> {r.size:,}{star}  [{r.elapsed:.2f}s]")


if __name__ == "__main__":
    main()
