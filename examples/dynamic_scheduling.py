#!/usr/bin/env python3
"""Scheduling on a *changing* conflict graph via the serving layer.

The other examples solve one frozen graph.  Real conflict graphs drift:
stations join and leave, interference appears and disappears as the radio
environment changes.  Re-kernelizing from scratch after every change wastes
almost all of its work — the paper's reductions are local, so a small edit
should only disturb a small neighbourhood.

:class:`repro.serve.SolverService` packages that observation: register the
graph once, mutate it in place, and let the service route each query to the
cheapest correct path — a kernel-cache hit when the structure reverted, a
localized repair around the dirty neighbourhood for small edits, or a full
re-solve once too much of the graph has changed.

Run:  python examples/dynamic_scheduling.py
"""

import random
import time

from repro import Graph
from repro.serve import Mutation, ServiceConfig, SolverService, cold_solve


def build_conflict_graph(stations: int, radio_range: float, seed: int) -> Graph:
    """Random geometric conflict graph (same model as wireless_scheduling)."""
    rng = random.Random(seed)
    points = [(rng.random(), rng.random()) for _ in range(stations)]
    edges = []
    limit = radio_range * radio_range
    for i in range(stations):
        xi, yi = points[i]
        for j in range(i + 1, stations):
            xj, yj = points[j]
            if (xi - xj) ** 2 + (yi - yj) ** 2 <= limit:
                edges.append((i, j))
    return Graph.from_edges(stations, edges, name="conflict")


def drift(dynamic, rng, flips: int):
    """A burst of environmental drift: a few interference pairs flip."""
    mutations = []
    n = dynamic.n_allocated
    while len(mutations) < flips:
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v or not (dynamic.is_live(u) and dynamic.is_live(v)):
            continue
        kind = "remove_edge" if dynamic.has_edge(u, v) else "add_edge"
        mutations.append(Mutation(kind, u, v))
    return mutations


def main() -> None:
    conflict = build_conflict_graph(stations=2_000, radio_range=0.04, seed=3)
    print(
        f"conflict graph: {conflict.n:,} stations,"
        f" {conflict.m:,} interference pairs"
    )

    service = SolverService(ServiceConfig(algorithm="near_linear"))
    gid = service.register(conflict)
    first = service.solve(gid)
    print(
        f"initial slot: {first.size:,} concurrent transmissions"
        f" (source={first.source}, certified <= {first.upper_bound:,})"
    )

    rng = random.Random(17)
    dynamic = service.dynamic_graph(gid)
    repair_wall = cold_wall = 0.0
    for epoch in range(10):
        service.apply(gid, drift(dynamic, rng, flips=6))

        start = time.perf_counter()
        result = service.solve(gid)
        repair_wall += time.perf_counter() - start

        snapshot, _ = dynamic.snapshot()
        start = time.perf_counter()
        fresh = cold_solve(snapshot, "near_linear")
        cold_wall += time.perf_counter() - start

        scope = result.repair_scope.get("region", 0)
        print(
            f"epoch {epoch}: {result.size:,} transmissions via"
            f" {result.source}"
            f" (touched {scope} of {snapshot.n:,} stations,"
            f" fresh solve finds {len(fresh.independent_set):,})"
        )
        assert result.size >= 0.95 * len(fresh.independent_set)

    counters = service.counters()
    print(
        f"\n10 drift epochs: served {repair_wall:.3f}s incremental"
        f" vs {cold_wall:.3f}s from scratch"
        f" ({cold_wall / repair_wall:.1f}x)"
    )
    print(
        f"service events: {counters['events']}"
        f"\ncache: {counters['cache']}"
    )


if __name__ == "__main__":
    main()
