#!/usr/bin/env python3
"""Optimality certificates and upper bounds for free (paper Theorem 6.1).

Every reducing-peeling run yields ``alpha(G) <= |I| + |R|`` as a by-product:
``R`` counts the peeled vertices that never made it back.  When ``R`` is
empty the solution is *certified maximum* — strictly more informative than
what Greedy/DU can ever report, at the same asymptotic cost.

The example sweeps graph density to show the certificate's phase behaviour
(sparse graphs certify; dense cores leave a gap) and compares the
by-product bound against the classic clique-cover / LP / cycle-cover bounds
used by exact solvers.

Run:  python examples/upper_bound_certificates.py
"""

from repro import gnm_random_graph, near_linear
from repro.exact.bounds import clique_cover_bound, cycle_cover_bound
from repro.core.lp_reduction import lp_upper_bound


def main() -> None:
    n = 20_000
    print(f"G(n, m) sweep, n = {n:,}")
    print(
        f"{'avg deg':>8s} {'|I|':>8s} {'|I|+|R|':>8s} {'gap<=':>6s} {'certified':>9s}"
    )
    for average_degree in (1.5, 2.0, 2.5, 3.0, 3.5, 4.0):
        graph = gnm_random_graph(n, int(n * average_degree / 2), seed=21)
        result = near_linear(graph)
        slack = result.upper_bound - result.size
        print(
            f"{average_degree:8.1f} {result.size:8,d} {result.upper_bound:8,d}"
            f" {slack:6d} {'yes' if result.is_exact else 'no':>9s}"
        )

    # Against the classic bounds on one instance.
    graph = gnm_random_graph(5_000, 9_000, seed=22)
    result = near_linear(graph)
    print(f"\nbound comparison on G({graph.n:,}, {graph.m:,}):")
    print(f"  clique cover bound : {clique_cover_bound(graph):,}")
    print(f"  LP relaxation bound: {int(lp_upper_bound(graph)):,}")
    print(f"  cycle cover bound  : {cycle_cover_bound(graph):,}")
    print(f"  reducing-peeling   : {result.upper_bound:,}  (with |I| = {result.size:,})")


if __name__ == "__main__":
    main()
