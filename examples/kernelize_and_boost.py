#!/usr/bin/env python3
"""Kernelization as a preprocessing service + boosting a local search.

Shows the Reducing-only mode (paper Section 6): shrink a graph to its
kernel, hand the kernel to *any* downstream solver — here the ARW iterated
local search, and the exact branch-and-reduce when the kernel is small —
and lift the kernel solution back to the original graph.

Run:  python examples/kernelize_and_boost.py
"""

from repro import arw, arw_nl, du, kernelize
from repro.bench import load
from repro.errors import BudgetExceededError
from repro.exact import maximum_independent_set


def main() -> None:
    # A "hard" instance: a web-crawl-like graph with a dense core that
    # survives every cheap reduction.
    graph = load("eu-2005-sim")
    print(f"input: {graph.name}  n={graph.n:,} m={graph.m:,}")

    # --- 1. Kernelize -----------------------------------------------------
    kernel_result = kernelize(graph, method="near_linear")
    kernel = kernel_result.kernel
    print(
        f"\nNearLinear kernel: n={kernel.n:,} m={kernel.m:,}"
        f"  ({kernel.n / graph.n:.1%} of the input)"
    )
    print(f"rules fired: {kernel_result.log.stats}")

    # --- 2. Solve the kernel with whatever fits ---------------------------
    if kernel.n == 0:
        print("kernel is empty: the reductions alone solved the instance")
        solution = kernel_result.lift(())
    elif kernel.n <= 80:
        print("kernel small enough for the exact branch-and-reduce solver")
        try:
            exact = maximum_independent_set(kernel, node_budget=50_000)
            solution = kernel_result.lift(exact.independent_set)
            print(f"lifted exact solution: {len(solution):,} (maximum)")
        except BudgetExceededError:
            solution = kernel_result.lift(())
    else:
        print("kernel still sizeable: running ARW local search on it")
        initial = du(kernel).independent_set
        kernel_best, recorder = arw(kernel, initial, time_budget=1.0, seed=1)
        solution = kernel_result.lift(kernel_best)
        print(f"ARW-on-kernel improvements: {len(recorder.events)} events")
        print(f"lifted solution: {len(solution):,}")

    # --- 3. Or just use the packaged boosted search ------------------------
    boosted = arw_nl(graph, time_budget=1.0, seed=1)
    first_time, first_size = boosted.recorder.first_event
    print(
        f"\nARW-NL (packaged): first solution {first_size:,} at"
        f" {first_time * 1000:.0f}ms, final {boosted.size:,}"
    )


if __name__ == "__main__":
    main()
