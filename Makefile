# Convenience targets for the Reducing-Peeling reproduction.

.PHONY: install test bench examples quicktest clean

install:
	pip install -e .

test:
	pytest tests/

quicktest:
	pytest tests/ -x -q -p no:randomly -k "not hypothesis"

bench:
	pytest benchmarks/ --benchmark-only

examples:
	python examples/quickstart.py
	python examples/social_network_coverage.py
	python examples/wireless_scheduling.py
	python examples/kernelize_and_boost.py
	python examples/upper_bound_certificates.py

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
