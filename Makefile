# Convenience targets for the Reducing-Peeling reproduction.

.PHONY: install test bench examples quicktest lint clean

install:
	pip install -e .

test:
	pytest tests/

quicktest:
	pytest tests/ -x -q -p no:randomly -k "not hypothesis"

# reprolint (the repo's own contract checker) always runs; ruff and mypy
# run when installed and are skipped otherwise, so `make lint` works in the
# minimal container while CI (which installs both) gets the full gate.
# All four project trees are linted strictly: the committed
# lint-baseline.json absorbs the accepted pre-existing advice, and the
# on-disk cache makes warm re-runs near-instant (delete .reprolint-cache.json
# to force a cold run).
lint:
	PYTHONPATH=src python -m repro.lint src tests benchmarks examples \
		--strict --jobs 0 --cache .reprolint-cache.json
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests; \
	else \
		echo "ruff not installed; skipping"; \
	fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy -p repro.core -p repro.perf; \
	else \
		echo "mypy not installed; skipping"; \
	fi

bench:
	pytest benchmarks/ --benchmark-only

examples:
	python examples/quickstart.py
	python examples/social_network_coverage.py
	python examples/wireless_scheduling.py
	python examples/kernelize_and_boost.py
	python examples/upper_bound_certificates.py
	python examples/dynamic_scheduling.py

clean:
	rm -rf build dist *.egg-info src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
