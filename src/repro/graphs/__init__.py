"""Graph substrate: representation, construction, generation, IO, analytics.

The central type is :class:`~repro.graphs.static_graph.Graph`, an immutable
adjacency-array graph mirroring the paper's 2m + n memory layout.  Everything
else in the library consumes and produces this type.
"""

from .builder import GraphBuilder
from .generators import (
    barabasi_albert_graph,
    binary_tree_graph,
    caterpillar_graph,
    collaboration_graph,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    disjoint_union,
    gnm_random_graph,
    gnp_random_graph,
    grid_graph,
    hypercube_graph,
    path_graph,
    planted_independent_set_graph,
    power_law_graph,
    power_law_sequence_graph,
    random_regular_graph,
    random_tree,
    star_graph,
    web_like_graph,
)
from .io import (
    dumps_edge_list,
    loads_edge_list,
    read_dimacs,
    read_edge_list,
    read_metis,
    write_dimacs,
    write_edge_list,
    write_metis,
)
from .named import (
    bdtwo_lower_bound_family,
    isolated_clique_gadget,
    mutual_dominance_gadget,
    paper_figure1,
    paper_figure1_modified,
    paper_figure2,
    paper_figure5,
    petersen_graph,
)
from .properties import (
    connected_components,
    count_triangles,
    degeneracy,
    degeneracy_ordering,
    degree_histogram,
    is_connected,
    largest_component,
    power_law_exponent_estimate,
    triangle_counts,
)
from .static_graph import Graph

__all__ = [
    "Graph",
    "GraphBuilder",
    # generators
    "barabasi_albert_graph",
    "binary_tree_graph",
    "caterpillar_graph",
    "collaboration_graph",
    "complete_bipartite_graph",
    "complete_graph",
    "cycle_graph",
    "disjoint_union",
    "gnm_random_graph",
    "gnp_random_graph",
    "grid_graph",
    "hypercube_graph",
    "path_graph",
    "planted_independent_set_graph",
    "power_law_graph",
    "power_law_sequence_graph",
    "random_regular_graph",
    "random_tree",
    "star_graph",
    "web_like_graph",
    # io
    "dumps_edge_list",
    "loads_edge_list",
    "read_dimacs",
    "read_edge_list",
    "read_metis",
    "write_dimacs",
    "write_edge_list",
    "write_metis",
    # named
    "bdtwo_lower_bound_family",
    "isolated_clique_gadget",
    "mutual_dominance_gadget",
    "paper_figure1",
    "paper_figure1_modified",
    "paper_figure2",
    "paper_figure5",
    "petersen_graph",
    # properties
    "connected_components",
    "count_triangles",
    "degeneracy",
    "degeneracy_ordering",
    "degree_histogram",
    "is_connected",
    "largest_component",
    "power_law_exponent_estimate",
    "triangle_counts",
]
