"""Reading and writing graphs in the formats common to MIS benchmarks.

Three formats are supported, covering the ecosystems the paper draws its
inputs from:

* **edge list** — the SNAP distribution format: one ``u v`` pair per line,
  ``#`` comments, arbitrary (possibly sparse) vertex ids which are compacted;
* **METIS** — the format used by KaMIS/ReduMIS: a header ``n m`` line
  followed by one 1-indexed adjacency line per vertex;
* **DIMACS** — the clique/colouring benchmark format: ``p edge n m`` header
  and ``e u v`` lines, 1-indexed.
"""

from __future__ import annotations

import io
import os
from typing import List, TextIO, Tuple, Union

from ..errors import GraphFormatError
from .builder import GraphBuilder
from .static_graph import Graph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_metis",
    "write_metis",
    "read_dimacs",
    "write_dimacs",
    "loads_edge_list",
    "dumps_edge_list",
]

PathOrFile = Union[str, "os.PathLike[str]", TextIO]


def _open_for_read(source: PathOrFile):
    if hasattr(source, "read"):
        return source, False
    return open(os.fspath(source), "r", encoding="utf-8"), True


def _open_for_write(target: PathOrFile):
    if hasattr(target, "write"):
        return target, False
    return open(os.fspath(target), "w", encoding="utf-8"), True


# ----------------------------------------------------------------------
# Edge list (SNAP style)
# ----------------------------------------------------------------------
def read_edge_list(source: PathOrFile, name: str = "") -> Tuple[Graph, List[int]]:
    """Read a SNAP-style edge list.

    Vertex labels may be arbitrary integers; they are compacted to
    ``0 .. n-1`` in sorted-label order.  A header comment of the form
    ``# repro graph: n=N ...`` (as written by :func:`write_edge_list`)
    declares the vertex *count*: when the edge lines mention fewer than
    ``N`` distinct labels, the smallest unused non-negative integers are
    added as isolated vertices, which preserves them across a round trip
    without inventing phantom vertices for 1-indexed or sparse-label
    files.  Returns ``(graph, labels)`` where ``labels[new_id]`` is the
    original label.
    """
    handle, close = _open_for_read(source)
    try:
        seen_labels: set = set()
        declared_n: int = 0
        raw_edges: List[Tuple[int, int]] = []
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith(("#", "%")):
                if "repro graph:" in line:
                    for token in line.split():
                        if token.startswith("n="):
                            declared_n = max(declared_n, int(token[2:]))
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(f"expected 'u v', got {line!r}", line_number)
            try:
                u_label, v_label = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphFormatError(f"non-integer vertex in {line!r}", line_number) from exc
            seen_labels.add(u_label)
            seen_labels.add(v_label)
            raw_edges.append((u_label, v_label))
        filler = 0
        while len(seen_labels) < declared_n:
            if filler not in seen_labels:
                seen_labels.add(filler)
            filler += 1
        labels = sorted(seen_labels)
        label_to_id = {label: new for new, label in enumerate(labels)}
        edges = [(label_to_id[u], label_to_id[v]) for u, v in raw_edges]
        graph = Graph.from_edges(len(labels), edges, name=name)
        return graph, labels
    finally:
        if close:
            handle.close()


def write_edge_list(graph: Graph, target: PathOrFile) -> None:
    """Write the graph as a SNAP-style edge list (one ``u v`` per line)."""
    handle, close = _open_for_write(target)
    try:
        handle.write(f"# repro graph: n={graph.n} m={graph.m}\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")
    finally:
        if close:
            handle.close()


def loads_edge_list(text: str, name: str = "") -> Graph:
    """Parse an edge list from a string (convenience wrapper)."""
    graph, _ = read_edge_list(io.StringIO(text), name=name)
    return graph


def dumps_edge_list(graph: Graph) -> str:
    """Serialise the graph to an edge-list string."""
    buffer = io.StringIO()
    write_edge_list(graph, buffer)
    return buffer.getvalue()


# ----------------------------------------------------------------------
# METIS
# ----------------------------------------------------------------------
def read_metis(source: PathOrFile, name: str = "") -> Graph:
    """Read a METIS graph file (1-indexed adjacency lines)."""
    handle, close = _open_for_read(source)
    try:
        lines = [ln.strip() for ln in handle]
    finally:
        if close:
            handle.close()
    # Comments are dropped, but blank lines after the header are adjacency
    # lines of isolated vertices and must be kept; trailing blanks beyond
    # the declared vertex count are ignored.
    content = [(i + 1, ln) for i, ln in enumerate(lines) if not ln.startswith("%")]
    while content and not content[0][1]:
        content.pop(0)
    if not content:
        raise GraphFormatError("empty METIS file")
    header_no, header = content[0]
    parts = header.split()
    if len(parts) < 2:
        raise GraphFormatError(f"bad METIS header {header!r}", header_no)
    try:
        n, m = int(parts[0]), int(parts[1])
    except ValueError as exc:
        raise GraphFormatError(f"bad METIS header {header!r}", header_no) from exc
    body = content[1 : n + 1]
    if len(body) != n:
        raise GraphFormatError(f"expected {n} adjacency lines, found {len(body)}")
    if any(ln for _, ln in content[n + 1 :]):
        raise GraphFormatError(f"unexpected content after {n} adjacency lines")
    builder = GraphBuilder(n, name=name)
    for u, (line_number, line) in enumerate(body):
        for token in line.split():
            try:
                v = int(token) - 1
            except ValueError as exc:
                raise GraphFormatError(f"non-integer neighbour {token!r}", line_number) from exc
            if not 0 <= v < n:
                raise GraphFormatError(f"neighbour {token} out of range", line_number)
            builder.add_edge(u, v)
    graph = builder.build()
    if graph.m != m:
        raise GraphFormatError(f"header declares m={m} but file contains m={graph.m}")
    return graph


def write_metis(graph: Graph, target: PathOrFile) -> None:
    """Write the graph in METIS format."""
    handle, close = _open_for_write(target)
    try:
        handle.write(f"{graph.n} {graph.m}\n")
        for u in range(graph.n):
            handle.write(" ".join(str(v + 1) for v in graph.neighbors(u)) + "\n")
    finally:
        if close:
            handle.close()


# ----------------------------------------------------------------------
# DIMACS
# ----------------------------------------------------------------------
def read_dimacs(source: PathOrFile, name: str = "") -> Graph:
    """Read a DIMACS ``p edge`` file (1-indexed ``e u v`` lines)."""
    handle, close = _open_for_read(source)
    try:
        n = None
        edges: List[Tuple[int, int]] = []
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("c"):
                continue
            parts = line.split()
            if parts[0] == "p":
                if len(parts) < 4:
                    raise GraphFormatError(f"bad problem line {line!r}", line_number)
                n = int(parts[2])
            elif parts[0] == "e":
                if n is None:
                    raise GraphFormatError("edge line before problem line", line_number)
                if len(parts) < 3:
                    raise GraphFormatError(f"bad edge line {line!r}", line_number)
                u, v = int(parts[1]) - 1, int(parts[2]) - 1
                if not (0 <= u < n and 0 <= v < n):
                    raise GraphFormatError(f"edge {line!r} out of range", line_number)
                edges.append((u, v))
        if n is None:
            raise GraphFormatError("missing problem line")
        return Graph.from_edges(n, edges, name=name)
    finally:
        if close:
            handle.close()


def write_dimacs(graph: Graph, target: PathOrFile) -> None:
    """Write the graph in DIMACS ``p edge`` format."""
    handle, close = _open_for_write(target)
    try:
        handle.write(f"p edge {graph.n} {graph.m}\n")
        for u, v in graph.edges():
            handle.write(f"e {u + 1} {v + 1}\n")
    finally:
        if close:
            handle.close()
