"""The paper's running-example graphs and other small named instances.

The SIGMOD'17 paper illustrates every algorithm on three small graphs
(Figures 1, 2 and 5) plus a modified Figure 1 used to motivate the dominance
reduction, the mutual-dominance gadget of Figure 14, and the four-layer
family used in the proof of Theorem 3.1 (the Ω(n log n) lower bound for
BDTwo).  All of them are reconstructed here, 0-indexed (paper vertex ``v1``
is id ``0``).

The edge sets were derived from the running-example narratives; the test
suite replays each narrative step by step against these graphs.
"""

from __future__ import annotations

from ..errors import GraphError
from .builder import GraphBuilder
from .static_graph import Graph

__all__ = [
    "paper_figure1",
    "paper_figure1_modified",
    "paper_figure2",
    "paper_figure5",
    "mutual_dominance_gadget",
    "isolated_clique_gadget",
    "bdtwo_lower_bound_family",
    "petersen_graph",
]


def paper_figure1() -> Graph:
    """Figure 1: n = 10, m = 12, α = 5.

    ``{v2, v5, v7, v9}`` is an independent set of size 4 and
    ``{v1, v4, v6, v8, v10}`` is a maximum independent set of size 5
    (0-indexed: ``{0, 3, 5, 7, 9}``).  BDOne reaches size 4 on this graph,
    while BDTwo, LinearTime and NearLinear all reach 5.
    """
    edges = [
        (0, 1), (0, 2),          # v1 - v2, v1 - v3
        (1, 2), (1, 3),          # v2 - v3, v2 - v4
        (2, 3),                  # v3 - v4
        (3, 4), (3, 8),          # v4 - v5, v4 - v9
        (4, 5), (4, 7),          # v5 - v6, v5 - v8
        (5, 6), (6, 7),          # v6 - v7, v7 - v8
        (8, 9),                  # v9 - v10
    ]
    return Graph.from_edges(10, edges, name="paper-fig1")


def paper_figure1_modified() -> Graph:
    """The Section-1 dominance example: Figure 1 minus v10, plus v9-edges.

    Remove ``v10`` and connect ``v9`` to ``v1, v5, v6, v7, v8``.  Minimum
    degree becomes 3, so no degree-one/two rule applies, yet ``v5``
    dominates ``v9`` and the dominance reduction unlocks the graph for
    LinearTime.  Vertices keep their Figure-1 ids (0-indexed, no v10).
    """
    base = [(u, v) for (u, v) in paper_figure1().edges() if 9 not in (u, v)]
    extra = [(8, 0), (8, 4), (8, 5), (8, 6), (8, 7)]
    return Graph.from_edges(9, base + extra, name="paper-fig1-modified")


def paper_figure2() -> Graph:
    """Figure 2: n = 6, m = 8, α = 3.

    ``{v2, v6}`` is a maximal independent set, ``{v1, v3, v4}`` is a maximum
    independent set (0-indexed ``{0, 2, 3}``).  Every vertex except ``v1``
    has degree ≥ 3 initially, matching the BDTwo initialisation narrative.
    """
    edges = [
        (0, 1),                  # v1 - v2
        (1, 2), (1, 3),          # v2 - v3, v2 - v4
        (2, 4), (2, 5),          # v3 - v5, v3 - v6
        (3, 4), (3, 5),          # v4 - v5, v4 - v6
        (4, 5),                  # v5 - v6
    ]
    return Graph.from_edges(6, edges, name="paper-fig2")


def paper_figure5() -> Graph:
    """Figure 5: n = 10, m = 13, α = 4.

    The LinearTime running example: the path ``(v1, v2, v3)`` has both
    endpoints attached to ``v4`` (case v = w), then ``(v5, v6)`` is an even
    path whose reduction rewires ``v10 – v7``, turning ``{v7, v8, v9, v10}``
    into a 4-clique.  LinearTime obtains ``{v1, v3, v6, v10}`` -shaped
    solutions of size 4.
    """
    edges = [
        (0, 1), (1, 2),          # v1 - v2 - v3
        (0, 3), (2, 3),          # v1 - v4, v3 - v4
        (3, 4),                  # v4 - v5
        (4, 5), (4, 9),          # v5 - v6, v5 - v10
        (5, 6),                  # v6 - v7
        (6, 7), (6, 8),          # v7 - v8, v7 - v9
        (7, 8), (7, 9), (8, 9),  # v8 - v9, v8 - v10, v9 - v10
    ]
    return Graph.from_edges(10, edges, name="paper-fig5")


def mutual_dominance_gadget() -> Graph:
    """Figure 14: two vertices that dominate each other.

    Vertices 0 and 1 are adjacent and share the neighbours {2, 3}; vertices
    2 and 3 each have one private pendant neighbour (4 and 5).  Then 0
    dominates 1 and 1 dominates 0, and after removing either of them the
    survivor is no longer dominated — the re-check in Algorithm 5 Line 8
    exists precisely for this situation.
    """
    edges = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 4), (3, 5)]
    return Graph.from_edges(6, edges, name="mutual-dominance")


def isolated_clique_gadget(clique_size: int, pendants_per_vertex: int = 1) -> Graph:
    """An isolated-vertex-reduction gadget (paper Figure 13(a)).

    Vertex 0 together with vertices ``1 .. clique_size - 1`` forms a clique;
    every clique vertex other than 0 additionally receives
    ``pendants_per_vertex`` private pendant neighbours.  Vertex 0 then
    satisfies the isolated vertex reduction, and (per Section A.3) it
    dominates each of its neighbours.
    """
    if clique_size < 2:
        raise GraphError("clique_size must be at least 2")
    builder = GraphBuilder(clique_size, name=f"isolated-clique({clique_size})")
    for u in range(clique_size):
        for v in range(u + 1, clique_size):
            builder.add_edge(u, v)
    for u in range(1, clique_size):
        for _ in range(pendants_per_vertex):
            w = builder.add_vertex()
            builder.add_edge(u, w)
    return builder.build()


def bdtwo_lower_bound_family(levels: int) -> Graph:
    """The four-layer family from the proof of Theorem 3.1.

    With ``n = 2 ** levels`` third-layer vertices, BDTwo performs
    Θ(n log n) work through cascading degree-two foldings while the graph
    has only Θ(n) edges.  Layers (0-indexed ids, in order):

    * layer 1 — two hub vertices, completely joined to layer 2;
    * layer 2 — ``2n`` vertices, ``w_{2i-1}, w_{2i}`` attached to ``v_i``;
    * layer 3 — ``v_1 .. v_n``, the vertices that get folded together;
    * layer 4 — folding triggers: round 1 has ``n/2`` degree-2 vertices
      (the k-th adjacent to ``v_{2k-1}, v_{2k}``), and round ``i ≥ 2`` has
      ``n / 2^i`` degree-3 vertices whose three layer-3 endpoints collapse
      to exactly two supervertices after round ``i - 1``.
    """
    if levels < 1:
        raise GraphError("levels must be at least 1")
    n = 1 << levels
    builder = GraphBuilder(2 + 2 * n + n, name=f"bdtwo-lb({levels})")
    hub_a, hub_b = 0, 1

    def w_id(j: int) -> int:  # j in 1 .. 2n
        return 1 + j

    def v_id(i: int) -> int:  # i in 1 .. n
        return 1 + 2 * n + i

    for j in range(1, 2 * n + 1):
        builder.add_edge(hub_a, w_id(j))
        builder.add_edge(hub_b, w_id(j))
    for i in range(1, n + 1):
        builder.add_edge(v_id(i), w_id(2 * i - 1))
        builder.add_edge(v_id(i), w_id(2 * i))
    # Round 1 triggers: degree-two vertices folding (v_{2k-1}, v_{2k}).
    for k in range(1, n // 2 + 1):
        u = builder.add_vertex()
        builder.add_edge(u, v_id(2 * k - 1))
        builder.add_edge(u, v_id(2 * k))
    # Rounds 2 .. levels: degree-three triggers.  For the block of originals
    # starting at s with width 2^i, the trigger attaches to the (eventual)
    # representative of the left quarter, of the left half, and of the whole
    # right half: {s + 2^(i-2) - 1, s + 2^(i-1) - 1, s + 2^i - 1} (1-indexed).
    for i in range(2, levels + 1):
        width = 1 << i
        for k in range(n // width):
            s = k * width + 1
            u = builder.add_vertex()
            builder.add_edge(u, v_id(s + (width >> 2) - 1))
            builder.add_edge(u, v_id(s + (width >> 1) - 1))
            builder.add_edge(u, v_id(s + width - 1))
    return builder.build()


def petersen_graph() -> Graph:
    """The Petersen graph (n = 10, 3-regular, α = 4).

    A classic vertex-transitive instance with no low-degree vertices at all:
    every reducing-peeling run must peel at least once, which makes it a
    good exactness-certificate negative test.
    """
    outer = [(i, (i + 1) % 5) for i in range(5)]
    inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
    spokes = [(i, 5 + i) for i in range(5)]
    return Graph.from_edges(10, outer + inner + spokes, name="petersen")
