"""Structural graph properties: triangles, components, degeneracy, histograms.

These are the substrate analytics the algorithms and benchmarks rely on:

* per-edge triangle counts δ(u, v) — the quantity NearLinear maintains
  incrementally (Lemma 5.2);
* connected components — used to split workloads and by tests;
* degeneracy ordering — ``a(G) ≤ degeneracy`` gives the arboricity-style
  bound quoted for the one-pass dominance reduction (Section 5);
* degree histograms — used to sanity-check the power-law generators.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Tuple

from .static_graph import Graph

__all__ = [
    "triangle_counts",
    "count_triangles",
    "connected_components",
    "largest_component",
    "is_connected",
    "degeneracy_ordering",
    "degeneracy",
    "degree_histogram",
    "power_law_exponent_estimate",
]


def triangle_counts(graph: Graph) -> Dict[Tuple[int, int], int]:
    """Per-edge triangle counts δ(u, v), keyed by ``(min(u,v), max(u,v))``.

    Uses the standard forward/degree-ordered intersection so the running
    time is O(m · a(G)) — the same bound the paper quotes for its one-pass
    dominance scan.
    """
    order = sorted(range(graph.n), key=graph.degree)
    rank = [0] * graph.n
    for pos, v in enumerate(order):
        rank[v] = pos
    forward: List[List[int]] = [[] for _ in range(graph.n)]
    for u in range(graph.n):
        for v in graph.neighbors(u):
            if rank[v] > rank[u]:
                forward[u].append(v)
    counts: Dict[Tuple[int, int], int] = {edge: 0 for edge in graph.edges()}
    forward_sets = [set(adj) for adj in forward]
    for u in range(graph.n):
        for i, v in enumerate(forward[u]):
            for w in forward[u][i + 1 :]:
                if w in forward_sets[v] or v in forward_sets[w]:
                    for a, b in ((u, v), (u, w), (v, w)):
                        key = (a, b) if a < b else (b, a)
                        counts[key] += 1
    return counts


def count_triangles(graph: Graph) -> int:
    """Total number of triangles in the graph."""
    return sum(triangle_counts(graph).values()) // 3


def connected_components(graph: Graph) -> List[List[int]]:
    """Connected components as sorted vertex lists, largest first."""
    seen = bytearray(graph.n)
    components: List[List[int]] = []
    for start in range(graph.n):
        if seen[start]:
            continue
        seen[start] = 1
        queue = deque([start])
        component = [start]
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if not seen[v]:
                    seen[v] = 1
                    component.append(v)
                    queue.append(v)
        component.sort()
        components.append(component)
    components.sort(key=len, reverse=True)
    return components


def largest_component(graph: Graph) -> Tuple[Graph, List[int]]:
    """The induced subgraph on the largest component plus the id mapping."""
    components = connected_components(graph)
    if not components:
        return Graph.empty(0), []
    return graph.subgraph(components[0])


def is_connected(graph: Graph) -> bool:
    """Whether the graph has at most one connected component."""
    return len(connected_components(graph)) <= 1


def degeneracy_ordering(graph: Graph) -> Tuple[List[int], int]:
    """Smallest-last vertex ordering and the graph's degeneracy.

    Classic bucket-based peeling in O(n + m): repeatedly remove the
    minimum-degree vertex.  The degeneracy upper-bounds the arboricity
    a(G) used in the paper's one-pass dominance complexity analysis.
    """
    n = graph.n
    degree = graph.degrees()
    max_deg = max(degree, default=0)
    buckets: List[List[int]] = [[] for _ in range(max_deg + 1)]
    for v in range(n):
        buckets[degree[v]].append(v)
    removed = bytearray(n)
    order: List[int] = []
    degeneracy_value = 0
    current = 0
    for _ in range(n):
        while current <= max_deg and not buckets[current]:
            current += 1
        # Lazy buckets hold stale entries; skip vertices whose degree moved.
        while True:
            v = buckets[current].pop()
            if not removed[v] and degree[v] == current:
                break
            while current <= max_deg and not buckets[current]:
                current += 1
        degeneracy_value = max(degeneracy_value, current)
        removed[v] = 1
        order.append(v)
        for w in graph.neighbors(v):
            if not removed[w]:
                degree[w] -= 1
                buckets[degree[w]].append(w)
                if degree[w] < current:
                    current = degree[w]
    return order, degeneracy_value


def degeneracy(graph: Graph) -> int:
    """The degeneracy (smallest-last peeling width) of the graph."""
    return degeneracy_ordering(graph)[1]


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Map from degree value to the number of vertices with that degree."""
    histogram: Dict[int, int] = {}
    for d in graph.degrees():
        histogram[d] = histogram.get(d, 0) + 1
    return histogram


def power_law_exponent_estimate(graph: Graph, d_min: int = 2) -> float:
    """Maximum-likelihood (Hill) estimate of the degree power-law exponent.

    ``beta ≈ 1 + k / Σ ln(d_i / (d_min - 0.5))`` over vertices with degree
    ≥ ``d_min``.  Used by tests to confirm the Chung–Lu generator produces
    the requested tail exponent within tolerance.
    """
    import math

    tail = [d for d in graph.degrees() if d >= d_min]
    if not tail:
        return float("inf")
    log_sum = sum(math.log(d / (d_min - 0.5)) for d in tail)
    if log_sum == 0.0:
        return float("inf")
    return 1.0 + len(tail) / log_sum
