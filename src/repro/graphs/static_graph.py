"""Immutable adjacency-array graph — the paper's 2m + n representation.

The paper (Section 2, "Graph Representation") stores every neighbourhood
consecutively in one large array with a per-vertex start pointer, i.e. a CSR
layout using ``2m + n`` integers.  :class:`Graph` mirrors that layout with two
flat lists (``_offsets`` of length ``n + 1`` and ``_targets`` of length
``2m``), which keeps the memory model honest for the paper's space accounting
(see :mod:`repro.analysis.memory`) and makes neighbourhood iteration cheap.

Graphs are simple (no self-loops, no parallel edges) and undirected; every
edge ``(u, v)`` appears in both ``neighbors(u)`` and ``neighbors(v)``.
Instances are immutable: all mutation happens either in
:class:`repro.graphs.builder.GraphBuilder` (construction time) or inside the
per-algorithm workspaces (run time).
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from typing import Iterable, Iterator, Optional, Sequence, Tuple

from ..errors import VertexError

try:  # Optional acceleration for subgraph extraction; plain-Python fallback below.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-less installs
    _np = None

__all__ = ["Graph"]

#: Below this vertex count the plain-Python subgraph path wins (numpy call
#: overhead dominates on small graphs).
_SUBGRAPH_NUMPY_CUTOFF = 2048


class Graph:
    """An immutable, simple, undirected graph in adjacency-array form.

    Parameters
    ----------
    offsets:
        CSR row pointers; ``offsets[v] .. offsets[v + 1]`` delimits the
        neighbourhood of vertex ``v``.  Length ``n + 1``.
    targets:
        Concatenated neighbour lists, each sorted ascending.  Length ``2m``.
    name:
        Optional human-readable name used in reports and benchmarks.

    Use :class:`repro.graphs.builder.GraphBuilder` or
    :meth:`Graph.from_edges` instead of calling this constructor directly;
    both validate and normalise their input, the constructor trusts it.
    """

    __slots__ = ("_offsets", "_targets", "_flat", "name")

    def __init__(self, offsets: Sequence[int], targets: Sequence[int], name: str = "") -> None:
        self._offsets: Tuple[int, ...] = tuple(offsets)
        self._targets: Tuple[int, ...] = tuple(targets)
        self._flat: Optional[Tuple[array, array]] = None
        self.name = name

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, n: int, edges: Iterable[Tuple[int, int]], name: str = "") -> "Graph":
        """Build a graph on ``n`` vertices from an iterable of edges.

        Self-loops and duplicate edges are silently dropped, matching the
        usual clean-up applied to raw SNAP edge lists.  Vertex ids must lie
        in ``[0, n)``.
        """
        # Import here to avoid a circular import at module load time.
        from .builder import GraphBuilder

        builder = GraphBuilder(n, name=name)
        for u, v in edges:
            builder.add_edge(u, v)
        return builder.build()

    @classmethod
    def empty(cls, n: int, name: str = "") -> "Graph":
        """Return the edgeless graph on ``n`` vertices."""
        return cls([0] * (n + 1), [], name=name)

    def renamed(self, name: str) -> "Graph":
        """A copy of this graph carrying a different display name."""
        return Graph(self._offsets, self._targets, name=name)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of vertices."""
        return len(self._offsets) - 1

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return len(self._targets) // 2

    def degree(self, v: int) -> int:
        """Degree of vertex ``v``."""
        self._check_vertex(v)
        return self._offsets[v + 1] - self._offsets[v]

    def degrees(self) -> list[int]:
        """Degrees of all vertices, indexed by vertex id."""
        offs = self._offsets
        return [offs[v + 1] - offs[v] for v in range(self.n)]

    def max_degree(self) -> int:
        """Maximum vertex degree Δ (0 for the empty graph)."""
        if self.n == 0:
            return 0
        return max(self.degrees())

    def average_degree(self) -> float:
        """Average degree 2m / n (0.0 for the empty graph)."""
        if self.n == 0:
            return 0.0
        return 2.0 * self.m / self.n

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """The sorted neighbourhood N(v) as a tuple."""
        self._check_vertex(v)
        return self._targets[self._offsets[v] : self._offsets[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the edge ``(u, v)`` is present (binary search, O(log d))."""
        self._check_vertex(u)
        self._check_vertex(v)
        lo, hi = self._offsets[u], self._offsets[u + 1]
        if hi - lo > self._offsets[v + 1] - self._offsets[v]:
            # Search the smaller neighbourhood.
            u, v = v, u
            lo, hi = self._offsets[u], self._offsets[u + 1]
        idx = bisect_left(self._targets, v, lo, hi)
        return idx < hi and self._targets[idx] == v

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over undirected edges once each, as ``(u, v)`` with u < v."""
        for u in range(self.n):
            for v in self.neighbors(u):
                if u < v:
                    yield (u, v)

    def vertices(self) -> range:
        """The vertex id range ``0 .. n-1``."""
        return range(self.n)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, keep: Iterable[int]) -> Tuple["Graph", list[int]]:
        """Induced subgraph on ``keep``.

        Returns ``(subgraph, old_ids)`` where ``old_ids[new_id]`` maps the
        compacted vertex ids of the subgraph back to this graph's ids.
        """
        old_ids = sorted(set(keep))
        if old_ids and not (0 <= old_ids[0] and old_ids[-1] < self.n):
            for v in old_ids:
                self._check_vertex(v)
        name = f"{self.name}[{len(old_ids)}]" if self.name else ""
        if _np is not None and self.n >= _SUBGRAPH_NUMPY_CUTOFF:
            return self._subgraph_numpy(old_ids, name), old_ids
        new_id = {old: new for new, old in enumerate(old_ids)}
        offsets = [0]
        targets: list[int] = []
        for old in old_ids:
            row = [new_id[w] for w in self.neighbors(old) if w in new_id]
            targets.extend(row)
            offsets.append(len(targets))
        return Graph(offsets, targets, name=name), old_ids

    def _subgraph_numpy(self, old_ids: list[int], name: str) -> "Graph":
        """Vectorised induced-subgraph extraction (same output as the
        dict-remap path: kept rows in id order, rows stay sorted because the
        id remap is monotone).  Zero-copy views over the cached
        :meth:`flat_csr` buffers; results come back as plain-int lists so
        downstream code never sees numpy scalars."""
        offs_arr, tgts_arr = self.flat_csr()
        offs = _np.frombuffer(offs_arr, dtype=_np.int64)
        tgts = (
            _np.frombuffer(tgts_arr, dtype=_np.int32)
            if len(tgts_arr)
            else _np.zeros(0, dtype=_np.int32)
        )
        n = self.n
        mask = _np.zeros(n, dtype=bool)
        keep_arr = _np.fromiter(old_ids, dtype=_np.int64, count=len(old_ids))
        mask[keep_arr] = True
        new_id = _np.cumsum(mask) - 1
        row_of_slot = _np.repeat(_np.arange(n, dtype=_np.int64), _np.diff(offs))
        slot_keep = mask[row_of_slot] & mask[tgts]
        kept_targets = new_id[tgts[slot_keep]]
        per_row = _np.bincount(
            new_id[row_of_slot[slot_keep]], minlength=len(old_ids)
        )
        offsets = _np.zeros(len(old_ids) + 1, dtype=_np.int64)
        _np.cumsum(per_row, out=offsets[1:])
        return Graph(offsets.tolist(), kept_targets.tolist(), name=name)

    def complement(self) -> "Graph":
        """The complement graph (dense; intended for small graphs only)."""
        offsets = [0]
        targets: list[int] = []
        for u in range(self.n):
            nbrs = set(self.neighbors(u))
            row = [v for v in range(self.n) if v != u and v not in nbrs]
            targets.extend(row)
            offsets.append(len(targets))
        return Graph(offsets, targets, name=f"~{self.name}" if self.name else "")

    def csr_arrays(self) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """The raw CSR arrays ``(offsets, targets)`` (read-only tuples).

        Exposed for numeric backends (e.g. building a ``scipy.sparse``
        matrix without re-walking the adjacency).
        """
        return self._offsets, self._targets

    def flat_csr(self) -> Tuple[array, array]:
        """The CSR layout as flat numeric buffers ``(offsets, targets)``.

        ``offsets`` is an ``array('q')`` of length ``n + 1`` and ``targets``
        an ``array('i')`` of length ``2m`` — exactly the 2m + O(n) words of
        the paper's accounting, with no per-vertex Python list objects.
        The arrays are built once and cached on the graph; they are shared,
        so callers that mutate (the run-time workspaces) must take a copy
        (``targets[:]`` is a C-level memcpy).
        """
        if self._flat is None:
            self._flat = (array("q", self._offsets), array("i", self._targets))
        return self._flat

    def adjacency_lists(self) -> list[list[int]]:
        """A fresh mutable list-of-lists copy of the adjacency structure."""
        return [list(self.neighbors(v)) for v in range(self.n)]

    def adjacency_sets(self) -> list[set[int]]:
        """A fresh mutable list-of-sets copy of the adjacency structure."""
        return [set(self.neighbors(v)) for v in range(self.n)]

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._offsets == other._offsets and self._targets == other._targets

    def __hash__(self) -> int:
        return hash((self._offsets, self._targets))

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<Graph{label} n={self.n} m={self.m}>"

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.n:
            raise VertexError(v, self.n)
