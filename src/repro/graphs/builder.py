"""Incremental construction of :class:`~repro.graphs.static_graph.Graph`.

The builder accepts edges in any order, drops self-loops and duplicates, and
emits the immutable adjacency-array representation.  It is the single place
where raw edge data is normalised, so every graph in the library shares the
same invariants (simple, undirected, sorted neighbourhoods).
"""

from __future__ import annotations

from typing import Iterable, Tuple

from ..errors import EdgeError, VertexError
from .static_graph import Graph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Accumulates edges and builds an immutable :class:`Graph`.

    Parameters
    ----------
    n:
        Number of vertices; vertex ids must lie in ``[0, n)``.
    name:
        Name forwarded to the built graph.
    strict:
        When true, adding a self-loop or a duplicate edge raises
        :class:`~repro.errors.EdgeError` instead of being ignored.
    """

    def __init__(self, n: int, name: str = "", strict: bool = False) -> None:
        if n < 0:
            raise VertexError(n, 0)
        self._n = n
        self._name = name
        self._strict = strict
        self._adjacency: list[set[int]] = [set() for _ in range(n)]
        self._m = 0

    @property
    def n(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def m(self) -> int:
        """Number of distinct undirected edges added so far."""
        return self._m

    def add_vertex(self) -> int:
        """Append a fresh isolated vertex and return its id."""
        self._adjacency.append(set())
        self._n += 1
        return self._n - 1

    def add_edge(self, u: int, v: int) -> bool:
        """Add the undirected edge ``(u, v)``.

        Returns ``True`` if the edge was new, ``False`` if it was a
        self-loop or duplicate (in non-strict mode).
        """
        self._check(u)
        self._check(v)
        if u == v:
            if self._strict:
                raise EdgeError(f"self-loop at vertex {u}")
            return False
        if v in self._adjacency[u]:
            if self._strict:
                raise EdgeError(f"duplicate edge ({u}, {v})")
            return False
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)
        self._m += 1
        return True

    def add_edges(self, edges: Iterable[Tuple[int, int]]) -> int:
        """Add many edges; returns the number of new edges actually added."""
        return sum(1 for u, v in edges if self.add_edge(u, v))

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``(u, v)`` has been added."""
        self._check(u)
        self._check(v)
        return v in self._adjacency[u]

    def build(self) -> Graph:
        """Emit the immutable adjacency-array graph."""
        offsets = [0]
        targets: list[int] = []
        for u in range(self._n):
            row = sorted(self._adjacency[u])
            targets.extend(row)
            offsets.append(len(targets))
        return Graph(offsets, targets, name=self._name)

    def _check(self, v: int) -> None:
        if not 0 <= v < self._n:
            raise VertexError(v, self._n)
