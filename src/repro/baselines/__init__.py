"""The competitor algorithms from the paper's evaluation.

* :func:`greedy` / :func:`du` — the classic linear-time heuristics;
* :func:`semi_external` — SemiE [30] with one-k / two-k swaps;
* :func:`online_mis` — OnlineMIS [19];
* :func:`redumis` — the (simplified) ReduMIS evolutionary search [28].
"""

from .du import du
from .greedy import greedy
from .online_mis import online_mis, quick_single_pass_reduce
from .redumis import redumis
from .semi_external import semi_external

__all__ = [
    "du",
    "greedy",
    "online_mis",
    "quick_single_pass_reduce",
    "redumis",
    "semi_external",
]
