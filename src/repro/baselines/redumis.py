"""ReduMIS — evolutionary search with full kernelization (Lamm et al. [28]).

The original ReduMIS applies the complete reduction portfolio of [1] to
obtain a minimal kernel, then evolves a population of independent sets with
graph-partitioning-based combine operations.  This reproduction keeps the
architecture and the performance *profile* the paper relies on:

* an expensive **full kernelization** up front (the reason ReduMIS starts
  late in the Figure-10 convergence plots — see
  :func:`repro.exact.vcsolver.full_kernelize`);
* a **population** of solutions built by seeded randomized greedy + local
  search;
* **combine** rounds: two tournament-selected parents, offspring seeded by
  their intersection (vertices both parents agree on are very likely in
  good solutions), completed greedily, mutated by force-insertions, and
  improved by ARW local search before replacing the population's worst.

The partition-based crossover of [28] is simplified to the
intersection-seeded rebuild; DESIGN.md §4 records the substitution.
"""

from __future__ import annotations

import random
import time
from typing import List, Optional, Set

from ..core.result import MISResult
from ..core.result import STAT_KERNEL_SIZE, STAT_ROUNDS
from ..exact.vcsolver import full_kernelize
from ..graphs.static_graph import Graph
from ..localsearch.arw import LocalSearchState, arw
from ..localsearch.events import ConvergenceRecorder

__all__ = ["redumis"]


def _randomized_greedy(graph: Graph, rng: random.Random) -> Set[int]:
    """A maximal independent set from a random low-degree-biased order."""
    order = sorted(range(graph.n), key=lambda v: (graph.degree(v), rng.random()))
    state = LocalSearchState(graph, [])
    for v in order:
        if state.tightness[v] == 0 and not state.in_solution[v]:
            state.insert(v)
    return state.solution()


def _complete_greedily(graph: Graph, seed_set: Set[int], rng: random.Random) -> Set[int]:
    """Extend a partial independent set to a maximal one, randomly biased."""
    state = LocalSearchState(graph, seed_set)
    order = sorted(range(graph.n), key=lambda v: (graph.degree(v), rng.random()))
    for v in order:
        if state.tightness[v] == 0 and not state.in_solution[v]:
            state.insert(v)
    return state.solution()


def redumis(
    graph: Graph,
    time_budget: float = 2.0,
    seed: int = 0,
    population_size: int = 8,
    max_rounds: Optional[int] = None,
    recorder: Optional[ConvergenceRecorder] = None,
) -> MISResult:
    """Evolutionary independent-set search on the full-rule kernel."""
    start = time.perf_counter()
    rng = random.Random(seed)
    if recorder is None:
        recorder = ConvergenceRecorder()
    kernel_result = full_kernelize(graph)
    kernel = kernel_result.kernel
    stats = {STAT_KERNEL_SIZE: kernel.n, STAT_ROUNDS: 0}

    if kernel.n == 0:
        solution = kernel_result.lift(())
        recorder.record(len(solution))
        return MISResult(
            algorithm="ReduMIS",
            graph_name=graph.name,
            independent_set=frozenset(solution),
            upper_bound=graph.n,
            stats=stats,
            elapsed=time.perf_counter() - start,
        )

    # Initial population: randomized greedy + a short local-search polish.
    population: List[Set[int]] = []
    for _ in range(population_size):
        individual = _randomized_greedy(kernel, rng)
        improved, _ = arw(
            kernel,
            individual,
            time_budget=time_budget / (4 * population_size),
            seed=rng.randrange(1 << 30),
            max_iterations=5,
        )
        population.append(improved)
        if recorder.elapsed > time_budget:
            break
    best = max(population, key=len)
    recorder.record(len(kernel_result.lift(best)))

    rounds = 0
    while recorder.elapsed < time_budget:
        rounds += 1
        if max_rounds is not None and rounds > max_rounds:
            break
        # Tournament selection of two parents.
        def pick() -> Set[int]:
            a, b = rng.sample(range(len(population)), 2)
            return max(population[a], population[b], key=len)

        parent_a, parent_b = pick(), pick()
        child_seed = parent_a & parent_b
        child = _complete_greedily(kernel, child_seed, rng)
        # Mutation: a couple of force-insertions shakes the offspring off
        # its parents' local optimum.
        state = LocalSearchState(kernel, child)
        for _ in range(rng.randrange(1, 3)):
            v = rng.randrange(kernel.n)
            state.force_insert(v)
        state.local_search()
        child = state.solution()
        improved, _ = arw(
            kernel,
            child,
            time_budget=min(0.05, time_budget / 10),
            seed=rng.randrange(1 << 30),
            max_iterations=10,
        )
        worst = min(range(len(population)), key=lambda i: len(population[i]))
        if len(improved) > len(population[worst]):
            population[worst] = improved
        if len(improved) > len(best):
            best = improved
            recorder.record(len(kernel_result.lift(best)))
    stats[STAT_ROUNDS] = rounds
    solution = kernel_result.lift(best)
    recorder.record(len(solution))
    return MISResult(
        algorithm="ReduMIS",
        graph_name=graph.name,
        independent_set=frozenset(solution),
        upper_bound=graph.n,
        stats=stats,
        elapsed=time.perf_counter() - start,
    )
