"""DU — dynamic-updating minimum-degree greedy (paper Section 1).

Like Greedy, but the minimum-degree vertex is chosen *adaptively* in the
remaining graph: after each selection the neighbourhood is removed and all
affected degrees are updated.  Equivalently (paper Section 3.1), DU is the
Reducing-Peeling framework with the alternative inexact rule "add the
minimum-degree vertex" and ℛ = {degree-one reduction}.

Linear time with the lazy min-degree bucket queue.
"""

from __future__ import annotations

import time

from ..core.bucket_queue import MinDegreeSelector
from ..core.result import MISResult
from ..graphs.static_graph import Graph

__all__ = ["du"]


def du(graph: Graph) -> MISResult:
    """Compute a maximal independent set with the dynamic-updating greedy."""
    start = time.perf_counter()
    n = graph.n
    degrees = graph.degrees()
    alive = bytearray([1]) * n if n else bytearray()
    selector = MinDegreeSelector(degrees, alive)
    adjacency = graph.adjacency_lists()
    solution = []
    while True:
        v = selector.pop_min()
        if v is None:
            break
        solution.append(v)
        alive[v] = 0
        # Remove N[v]: neighbours leave the graph, their neighbours' degrees drop.
        for w in adjacency[v]:
            if not alive[w]:
                continue
            alive[w] = 0
            for x in adjacency[w]:
                if alive[x]:
                    degrees[x] -= 1
                    selector.notify_decrease(x)
    return MISResult(
        algorithm="DU",
        graph_name=graph.name,
        independent_set=frozenset(solution),
        upper_bound=n,
        elapsed=time.perf_counter() - start,
    )
