"""Greedy — static minimum-degree greedy (paper Section 1).

Iteratively adds the vertex with the smallest *initial* degree to the
solution and removes it together with its neighbours; degrees are never
recomputed ("considers vertex degrees in a static way").  Linear time via
counting sort over the degree sequence.
"""

from __future__ import annotations

import time

from ..core.result import MISResult
from ..graphs.static_graph import Graph

__all__ = ["greedy"]


def greedy(graph: Graph) -> MISResult:
    """Compute a maximal independent set with the static greedy heuristic."""
    start = time.perf_counter()
    n = graph.n
    degrees = graph.degrees()
    max_degree = max(degrees, default=0)
    buckets = [[] for _ in range(max_degree + 1)]
    for v in range(n):
        buckets[degrees[v]].append(v)
    removed = bytearray(n)
    solution = []
    for bucket in buckets:
        for v in bucket:
            if removed[v]:
                continue
            solution.append(v)
            removed[v] = 1
            for w in graph.neighbors(v):
                removed[w] = 1
    return MISResult(
        algorithm="Greedy",
        graph_name=graph.name,
        independent_set=frozenset(solution),
        upper_bound=n,
        elapsed=time.perf_counter() - start,
    )
