"""OnlineMIS — local search with on-the-fly simple reductions [19].

Dahlum et al. accelerate ARW by (i) a *single quick pass* of the cheap
reductions (degree-one + degree-two isolation, i.e. the isolated vertex
reduction for clique sizes 1–3), (ii) a DU initial solution on the reduced
graph, and (iii) ARW local search during which the top-degree vertices are
cut away (the 1%-peeling heuristic the paper contrasts with exhaustive
Reducing).

This implementation performs the same three phases; the high-degree cut
removes the top ``cut_fraction`` of vertices by degree from the local
search's working graph, re-inserting them only at the final maximality
extension — mirroring how OnlineMIS treats them as "unlikely" vertices.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

from ..core.result import MISResult
from ..core.result import STAT_DEGREE_ONE, STAT_DEGREE_TWO_ISOLATION
from ..core.trace import DecisionLog
from ..graphs.static_graph import Graph
from ..localsearch.arw import arw
from ..localsearch.events import ConvergenceRecorder
from .du import du

__all__ = ["online_mis", "quick_single_pass_reduce"]


def quick_single_pass_reduce(graph: Graph) -> Tuple[Graph, List[int], DecisionLog]:
    """One pass of degree-one + degree-two-isolation over all vertices.

    Unlike the exhaustive kernelization of the reducing-peeling
    algorithms, each vertex is inspected once in id order (this is the
    "quick single pass" of [19]); returns the compacted residual graph,
    its id map, and the decision log.
    """
    adjacency = graph.adjacency_sets()
    alive = bytearray([1]) * graph.n if graph.n else bytearray()
    log = DecisionLog()

    def delete(v: int) -> None:
        alive[v] = 0
        log.exclude(v)
        for w in adjacency[v]:
            adjacency[w].discard(v)
        adjacency[v] = set()

    def take(v: int) -> None:
        alive[v] = 0
        log.include(v)
        for w in list(adjacency[v]):
            delete(w)
        adjacency[v] = set()

    for v in range(graph.n):
        if not alive[v]:
            continue
        d = len(adjacency[v])
        if d == 0:
            alive[v] = 0
            log.include(v)
        elif d == 1:
            take(v)
            log.bump(STAT_DEGREE_ONE)
        elif d == 2:
            a, b = adjacency[v]
            if b in adjacency[a]:
                take(v)
                log.bump(STAT_DEGREE_TWO_ISOLATION)
    old_ids = [v for v in range(graph.n) if alive[v]]
    new_id = {old: new for new, old in enumerate(old_ids)}
    offsets = [0]
    targets: List[int] = []
    for old in old_ids:
        row = sorted(new_id[w] for w in adjacency[old])
        targets.extend(row)
        offsets.append(len(targets))
    reduced = Graph(offsets, targets, name=f"{graph.name}-quick" if graph.name else "quick")
    return reduced, old_ids, log


def online_mis(
    graph: Graph,
    time_budget: float = 1.0,
    seed: int = 0,
    cut_fraction: float = 0.01,
    max_iterations: Optional[int] = None,
    recorder: Optional[ConvergenceRecorder] = None,
) -> MISResult:
    """Quick reductions + DU initialisation + ARW with a high-degree cut."""
    start = time.perf_counter()
    if recorder is None:
        recorder = ConvergenceRecorder()
    reduced, old_ids, log = quick_single_pass_reduce(graph)
    # Cut the top-degree vertices out of the working graph.
    cut_count = int(reduced.n * cut_fraction)
    working, working_ids = reduced, list(range(reduced.n))
    if cut_count:
        by_degree = sorted(range(reduced.n), key=reduced.degree)
        keep = by_degree[: reduced.n - cut_count]
        working, working_ids = reduced.subgraph(keep)
    initial = du(working).independent_set
    inner_clock_offset = recorder.elapsed
    inner_recorder = ConvergenceRecorder()
    best_working, _ = arw(
        working,
        initial,
        time_budget=time_budget,
        seed=seed,
        recorder=inner_recorder,
        max_iterations=max_iterations,
    )
    # Lift: working ids -> reduced ids -> original ids, then replay.
    final_log = log.copy()
    for v in best_working:
        final_log.include(old_ids[working_ids[v]])
    outcome = final_log.replay(graph)
    # Convergence events are recorded at full-graph scale: the lift adds a
    # constant offset (the reduced-away solution vertices + extension).
    lift_offset = len(outcome.vertices) - len(best_working)
    for t, size in inner_recorder.events:
        recorder.events.append((inner_clock_offset + t, size + lift_offset))
    return MISResult(
        algorithm="OnlineMIS",
        graph_name=graph.name,
        independent_set=outcome.vertices,
        upper_bound=graph.n,
        stats=dict(final_log.stats),
        elapsed=time.perf_counter() - start,
    )
