"""SemiE — the semi-external swap algorithm of Liu et al. [30].

The paper runs SemiE fully in memory ("we store the entire graph in main
memory to avoid I/Os") with *two-k swaps* enabled; it first computes an
initial solution with Greedy and then improves it with

* **one-k swaps** — remove one solution vertex ``x``, insert a maximal
  independent subset of ``x``'s 1-tight neighbours (k ≥ 2 required for a
  strict improvement), and
* **two-k swaps** — remove two solution vertices ``x, y`` sharing a
  2-tight neighbour, insert a maximal independent subset of the vertices
  blocked only by ``{x, y}`` (k ≥ 3 required).

The two-k phase is the expensive part — the reason SemiE is the slowest of
the linear-space heuristics in Figure 7(a).
"""

from __future__ import annotations

import time
from typing import List, Set

from ..core.result import MISResult
from ..core.result import STAT_ONE_K_GAIN, STAT_ROUNDS, STAT_TWO_K_GAIN
from ..graphs.static_graph import Graph
from ..localsearch.arw import LocalSearchState
from .greedy import greedy

__all__ = ["semi_external"]


def _pack_independent(graph: Graph, candidates: List[int]) -> List[int]:
    """Greedily select a maximal independent subset of ``candidates``."""
    chosen: List[int] = []
    chosen_set: Set[int] = set()
    for v in candidates:
        if not any(w in chosen_set for w in graph.neighbors(v)):
            chosen.append(v)
            chosen_set.add(v)
    return chosen


def _one_k_pass(state: LocalSearchState) -> int:
    """One sweep of one-k swaps; returns the total size gain."""
    graph = state.graph
    gained = 0
    for x in range(graph.n):
        if not state.in_solution[x]:
            continue
        candidates = state.one_tight_neighbors(x)
        if len(candidates) < 2:
            continue
        replacement = _pack_independent(graph, candidates)
        if len(replacement) >= 2:
            state.remove(x)
            for v in replacement:
                state.insert(v)
            gained += len(replacement) - 1
    return gained


def _two_k_pass(state: LocalSearchState) -> int:
    """One sweep of two-k swaps; returns the total size gain."""
    graph = state.graph
    gained = 0
    for bridge in range(graph.n):
        # A 2-tight vertex identifies the solution pair {x, y} to open up.
        if state.in_solution[bridge] or state.tightness[bridge] != 2:
            continue
        pair = [w for w in graph.neighbors(bridge) if state.in_solution[w]]
        if len(pair) != 2:
            continue
        x, y = pair
        candidates = _blocked_only_by(state, x, y)
        replacement = _pack_independent(graph, candidates)
        if len(replacement) >= 3:
            state.remove(x)
            state.remove(y)
            for v in replacement:
                state.insert(v)
            gained += len(replacement) - 2
    return gained


def _blocked_only_by(state: LocalSearchState, x: int, y: int) -> List[int]:
    """Non-solution vertices whose every solution neighbour is x or y."""
    graph = state.graph
    seen: Set[int] = set()
    result: List[int] = []
    for anchor in (x, y):
        for w in graph.neighbors(anchor):
            if w in seen or state.in_solution[w]:
                continue
            seen.add(w)
            blockers = sum(1 for z in graph.neighbors(w) if state.in_solution[z])
            expected = int(graph.has_edge(w, x)) + int(graph.has_edge(w, y))
            if blockers == expected:
                result.append(w)
    return result


def semi_external(graph: Graph, max_rounds: int = 10) -> MISResult:
    """Greedy initialisation followed by one-k / two-k swap rounds."""
    start = time.perf_counter()
    initial = greedy(graph).independent_set
    state = LocalSearchState(graph, initial)
    stats = {STAT_ONE_K_GAIN: 0, STAT_TWO_K_GAIN: 0, STAT_ROUNDS: 0}
    for _ in range(max_rounds):
        stats[STAT_ROUNDS] += 1
        gain = _one_k_pass(state)
        stats[STAT_ONE_K_GAIN] += gain
        two_gain = _two_k_pass(state)
        stats[STAT_TWO_K_GAIN] += two_gain
        # Free vertices can appear after swaps; claim them.
        for v in range(graph.n):
            if not state.in_solution[v] and state.tightness[v] == 0:
                state.insert(v)
        if gain == 0 and two_gain == 0:
            break
    return MISResult(
        algorithm="SemiE",
        graph_name=graph.name,
        independent_set=frozenset(state.solution()),
        upper_bound=graph.n,
        stats=stats,
        elapsed=time.perf_counter() - start,
    )
