"""Solution verification: independence, maximality, vertex covers.

Every algorithm's output is checked through these helpers in the test
suite; they are also part of the public API so downstream users can audit
results cheaply (all checks are O(n + m)).
"""

from __future__ import annotations

from typing import Iterable, List, Set

from ..errors import NotASolutionError
from ..graphs.static_graph import Graph

__all__ = [
    "is_independent_set",
    "is_maximal_independent_set",
    "is_vertex_cover",
    "assert_valid_solution",
    "complement_vertex_cover",
    "greedy_maximal_extension",
]


def is_independent_set(graph: Graph, vertices: Iterable[int]) -> bool:
    """Whether ``vertices`` is an independent set of ``graph``."""
    selected = set(vertices)
    # Deterministic scan order (the verifier sits on decision-log paths,
    # and RL009 cannot know the boolean is order-independent).
    ordered = sorted(selected)
    if any(not 0 <= v < graph.n for v in ordered):
        return False
    for v in ordered:
        for w in graph.neighbors(v):
            if w in selected:
                return False
    return True


def is_maximal_independent_set(graph: Graph, vertices: Iterable[int]) -> bool:
    """Whether ``vertices`` is independent and inclusion-maximal."""
    selected = set(vertices)
    if not is_independent_set(graph, selected):
        return False
    for v in range(graph.n):
        if v not in selected and not any(w in selected for w in graph.neighbors(v)):
            return False
    return True


def is_vertex_cover(graph: Graph, vertices: Iterable[int]) -> bool:
    """Whether ``vertices`` covers every edge of ``graph``."""
    selected = set(vertices)
    return all(u in selected or v in selected for u, v in graph.edges())


def assert_valid_solution(graph: Graph, vertices: Iterable[int], maximal: bool = True) -> None:
    """Raise :class:`~repro.errors.NotASolutionError` on an invalid solution."""
    selected = set(vertices)
    if not is_independent_set(graph, selected):
        raise NotASolutionError(f"{sorted(selected)} is not an independent set")
    if maximal and not is_maximal_independent_set(graph, selected):
        raise NotASolutionError(f"{sorted(selected)} is not maximal")


def complement_vertex_cover(graph: Graph, independent_set: Iterable[int]) -> Set[int]:
    """The vertex cover ``V \\ I`` corresponding to an independent set.

    The equivalence the paper leans on throughout: ``I`` is a (maximum)
    independent set iff ``V \\ I`` is a (minimum) vertex cover.
    """
    selected = set(independent_set)
    assert_valid_solution(graph, selected, maximal=False)
    return {v for v in range(graph.n) if v not in selected}


def greedy_maximal_extension(graph: Graph, vertices: Iterable[int]) -> Set[int]:
    """Extend an independent set to a maximal one (first-fit order)."""
    selected = set(vertices)
    assert_valid_solution(graph, selected, maximal=False)
    blocked: List[bool] = [False] * graph.n
    for v in selected:
        blocked[v] = True
        for w in graph.neighbors(v):
            blocked[w] = True
    for v in range(graph.n):
        if not blocked[v]:
            selected.add(v)
            blocked[v] = True
            for w in graph.neighbors(v):
                blocked[w] = True
    return selected
