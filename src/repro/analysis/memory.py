"""Memory accounting: the paper's word-count model plus live measurement.

Table 1 gives each algorithm's space complexity in *words* (integers):

* BDOne / LinearTime — ``2m + O(n)``: the static adjacency array plus a
  constant number of n-sized arrays (degrees, flags, worklists, the
  singly-linked lazy bucket structure);
* NearLinear — ``4m + O(n)``: adjacency plus one triangle count per
  directed edge;
* BDTwo — ``6m + O(n)``: doubly-linked adjacency lists with mutual
  references (three words per directed edge).

The paper measured resident memory with ``memusage``; in Python the
per-object overhead would drown the structural signal, so
:func:`model_words` reports the paper's structural word counts (preserving
the 3× BDTwo-vs-rest ratio, which is a data-structure property) and
:func:`measure_peak_bytes` offers a tracemalloc-based live measurement for
anyone who wants raw interpreter numbers.
"""

from __future__ import annotations

import tracemalloc
from typing import Callable, Dict, Tuple

from ..errors import ReproError
from ..graphs.static_graph import Graph

__all__ = ["MODEL_WORDS_PER_EDGE", "model_words", "measure_peak_bytes"]

#: Words of edge storage per *undirected* edge, per algorithm (Table 1).
MODEL_WORDS_PER_EDGE: Dict[str, int] = {
    "Greedy": 2,
    "DU": 2,
    "SemiE": 2,
    "BDOne": 2,
    "LinearTime": 2,
    "NearLinear": 4,
    "BDTwo": 6,
}

#: n-sized auxiliary arrays each algorithm keeps (degree, flags, queues…).
_MODEL_WORDS_PER_VERTEX: Dict[str, int] = {
    "Greedy": 3,
    "DU": 4,
    "SemiE": 5,
    "BDOne": 5,
    "LinearTime": 6,
    "NearLinear": 7,
    "BDTwo": 6,
}


def model_words(algorithm: str, graph: Graph) -> int:
    """Structural memory of ``algorithm`` on ``graph`` in integer words.

    Mirrors Table 1's ``c·m + O(n)`` with the constants the paper's
    representations imply.  Raises for unknown algorithm names.
    """
    try:
        per_edge = MODEL_WORDS_PER_EDGE[algorithm]
        per_vertex = _MODEL_WORDS_PER_VERTEX[algorithm]
    except KeyError:
        raise ReproError(
            f"no memory model for {algorithm!r}; known: {sorted(MODEL_WORDS_PER_EDGE)}"
        ) from None
    return per_edge * graph.m + per_vertex * graph.n


def measure_peak_bytes(fn: Callable[[], object]) -> Tuple[object, int]:
    """Run ``fn`` and return ``(result, peak_heap_bytes)`` via tracemalloc."""
    tracemalloc.start()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak
