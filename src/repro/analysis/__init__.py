"""Verification, metrics and memory accounting."""

from .memory import MODEL_WORDS_PER_EDGE, measure_peak_bytes, model_words
from .metrics import accuracy, best_of, gap, gaps_to_best, speedup_to_reach
from .verify import (
    assert_valid_solution,
    complement_vertex_cover,
    greedy_maximal_extension,
    is_independent_set,
    is_maximal_independent_set,
    is_vertex_cover,
)

__all__ = [
    "MODEL_WORDS_PER_EDGE",
    "accuracy",
    "assert_valid_solution",
    "best_of",
    "complement_vertex_cover",
    "gap",
    "gaps_to_best",
    "greedy_maximal_extension",
    "is_independent_set",
    "is_maximal_independent_set",
    "is_vertex_cover",
    "measure_peak_bytes",
    "model_words",
    "speedup_to_reach",
]
