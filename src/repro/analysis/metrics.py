"""Evaluation metrics used across the benchmark harness.

The paper reports three quantities for solution quality:

* **gap** — ``α(G) − |I|`` (Tables 3, 5) or ``best_known − |I|``
  (Tables 4, 6);
* **accuracy** — ``|I| / α(G)`` (Table 3's "Accuracy of NearLinear");
* convergence tuples ``(t, |I|)`` for the local-search comparison.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

__all__ = ["gap", "accuracy", "best_of", "gaps_to_best", "speedup_to_reach"]


def gap(reference: int, achieved: int) -> int:
    """``reference − achieved`` (0 means the reference size was matched)."""
    return reference - achieved


def accuracy(reference: int, achieved: int) -> float:
    """``achieved / reference`` as a fraction (1.0 when reference is 0)."""
    if reference == 0:
        return 1.0
    return achieved / reference


def best_of(sizes: Iterable[int]) -> int:
    """The best (largest) size among the given results."""
    return max(sizes, default=0)


def gaps_to_best(sizes: Dict[str, int]) -> Dict[str, int]:
    """Per-algorithm gap to the best size in the dict (Table 4's layout)."""
    reference = best_of(sizes.values())
    return {name: reference - size for name, size in sizes.items()}


def speedup_to_reach(
    series_a: Sequence[Tuple[float, int]],
    series_b: Sequence[Tuple[float, int]],
    target: int,
) -> Optional[float]:
    """How much faster series A reaches ``target`` than series B.

    Each series is a convergence record of ``(time, size)`` tuples sorted
    by time.  Returns ``t_b / t_a`` or ``None`` when either series never
    reaches the target.
    """
    t_a = _first_time_reaching(series_a, target)
    t_b = _first_time_reaching(series_b, target)
    if t_a is None or t_b is None:
        return None
    if t_a == 0:
        return float("inf")
    return t_b / t_a


def _first_time_reaching(series: Sequence[Tuple[float, int]], target: int) -> Optional[float]:
    for t, size in series:
        if size >= target:
            return t
    return None
