"""ARW boosted by reducing-peeling kernelization (paper Section 6).

ARW-LT and ARW-NL run the exact-rule half of LinearTime / NearLinear to
obtain the kernel 𝒦, seed the local search with the corresponding full
algorithm's solution *induced on the kernel*, iterate ARW on 𝒦, and lift
the best kernel solution back to the input graph.

Because the kernel may contain rewired edges that do not exist in the
original graph, the induced seed is repaired (one endpoint of each violated
kernel edge dropped) and re-extended before the search starts.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Set

from ..core.kernel import KernelResult, kernelize
from ..core.linear_time import linear_time
from ..core.near_linear import near_linear
from ..graphs.static_graph import Graph
from ..obs.telemetry import get_telemetry, phase
from .arw import arw
from .events import ConvergenceRecorder
from .flat_state import FlatLocalSearchState

__all__ = ["BoostedResult", "arw_lt", "arw_nl", "boosted_arw"]


class BoostedResult:
    """Outcome of a boosted ARW run."""

    __slots__ = ("independent_set", "recorder", "kernel_result")

    def __init__(
        self,
        independent_set: frozenset,
        recorder: ConvergenceRecorder,
        kernel_result: KernelResult,
    ) -> None:
        self.independent_set = independent_set
        self.recorder = recorder
        self.kernel_result = kernel_result

    @property
    def size(self) -> int:
        """Size of the lifted solution."""
        return len(self.independent_set)


def _induce_on_kernel(
    kernel: Graph, old_ids, full_solution: Iterable[int], state_factory=None
) -> Set[int]:
    """Project a full-graph solution onto the kernel and make it valid.

    Intersects, drops one endpoint of every kernel edge the projection
    violates (rewired edges may not exist in the original graph), then
    extends to a maximal set of the kernel.
    """
    if state_factory is None:
        state_factory = FlatLocalSearchState
    selected = set(full_solution)
    seed = {new for new, old in enumerate(old_ids) if old in selected}
    for v in sorted(seed):
        if v in seed and any(w in seed for w in kernel.neighbors(v)):
            seed.discard(v)
    state = state_factory(kernel, seed)
    for v in range(kernel.n):
        if not state.in_solution[v] and state.tightness[v] == 0:
            state.insert(v)
    return state.solution()


def boosted_arw(
    graph: Graph,
    method: str,
    time_budget: float = 1.0,
    seed: int = 0,
    max_iterations: Optional[int] = None,
    state_factory=None,
    rng: Optional[random.Random] = None,
) -> BoostedResult:
    """Run kernelize → seed → ARW → lift for the given kernel method.

    ``method`` is ``"linear_time"`` (ARW-LT) or ``"near_linear"``
    (ARW-NL).  The recorder's events are *lifted* sizes, so they compare
    directly with unboosted ARW on the input graph.  ``state_factory`` /
    ``rng`` are forwarded to :func:`~repro.localsearch.arw.arw` (flat
    search state and ``random.Random(seed)`` by default).
    """
    telemetry = get_telemetry()  # one global check per run
    recorder = ConvergenceRecorder()
    # The kernelize/solve spans below nest the reduce/lp-kernel/replay
    # spans that linear_time_reduce / near_linear emit themselves.
    with phase(
        telemetry, "kernelize", algorithm="BoostedARW",
        graph=graph.name, method=method,
    ) as span:
        kernel_result = kernelize(graph, method=method)
        if not kernel_result.is_solved:
            span.meta["kernel_vertices"] = kernel_result.kernel.n
    full = linear_time(graph) if method == "linear_time" else near_linear(graph)
    if kernel_result.is_solved:
        recorder.record(full.size)
        return BoostedResult(full.independent_set, recorder, kernel_result)
    with phase(telemetry, "seed-induce", algorithm="BoostedARW", graph=graph.name):
        seed_solution = _induce_on_kernel(
            kernel_result.kernel,
            kernel_result.old_ids,
            full.independent_set,
            state_factory=state_factory,
        )

    with phase(telemetry, "lift", algorithm="BoostedARW", graph=graph.name):
        lifted_best = kernel_result.lift(seed_solution)
    best = frozenset(lifted_best)
    recorder.record(len(best))

    kernel_clock_offset = recorder.elapsed
    kernel_recorder = ConvergenceRecorder()
    kernel_best, _ = arw(
        kernel_result.kernel,
        seed_solution,
        time_budget=time_budget,
        seed=seed,
        recorder=kernel_recorder,
        max_iterations=max_iterations,
        state_factory=state_factory,
        rng=rng,
    )
    with phase(telemetry, "lift", algorithm="BoostedARW", graph=graph.name):
        lifted = kernel_result.lift(kernel_best)
    if len(lifted) > len(best):
        best = frozenset(lifted)
    # Translate kernel improvement events into lifted sizes, on the outer
    # clock (kernel ARW started kernel_clock_offset seconds in).
    baseline = len(seed_solution)
    lift_offset = len(best) - len(kernel_best)
    for t, size in kernel_recorder.events:
        if size > baseline:
            recorder.record(size + lift_offset, elapsed=kernel_clock_offset + t)
    return BoostedResult(best, recorder, kernel_result)


def arw_lt(
    graph: Graph,
    time_budget: float = 1.0,
    seed: int = 0,
    max_iterations: Optional[int] = None,
    state_factory=None,
    rng: Optional[random.Random] = None,
) -> BoostedResult:
    """ARW boosted by LinearTime kernelization (paper's ARW-LT)."""
    return boosted_arw(
        graph, "linear_time", time_budget, seed, max_iterations, state_factory, rng
    )


def arw_nl(
    graph: Graph,
    time_budget: float = 1.0,
    seed: int = 0,
    max_iterations: Optional[int] = None,
    state_factory=None,
    rng: Optional[random.Random] = None,
) -> BoostedResult:
    """ARW boosted by NearLinear kernelization (paper's ARW-NL)."""
    return boosted_arw(
        graph, "near_linear", time_budget, seed, max_iterations, state_factory, rng
    )
