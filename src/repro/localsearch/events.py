"""Convergence recording for the iterated local-search experiments.

Eval-IV (Figures 10 and 15) plots, for every algorithm, the tuples
``(t, |I|)`` emitted whenever a new larger independent set is found.
:class:`ConvergenceRecorder` collects exactly those tuples against a shared
wall clock, and knows how to answer the questions the paper asks of the
plots (size at a time budget, time to reach a size).
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

__all__ = ["ConvergenceRecorder"]


class ConvergenceRecorder:
    """Collects ``(elapsed_seconds, size)`` improvement events."""

    def __init__(self) -> None:
        self._start = time.perf_counter()
        self.events: List[Tuple[float, int]] = []

    def restart(self) -> None:
        """Reset the clock and clear recorded events."""
        self._start = time.perf_counter()
        self.events = []

    @property
    def elapsed(self) -> float:
        """Seconds since the recorder (re)started."""
        return time.perf_counter() - self._start

    def record(self, size: int, elapsed: Optional[float] = None) -> None:
        """Record a new solution size if it improves on the last event.

        ``elapsed`` overrides the recorder's own clock reading — used when
        replaying events captured against a different clock (e.g. merging
        a kernel-ARW recorder onto the outer run's timeline).
        """
        if not self.events or size > self.events[-1][1]:
            self.events.append(
                (self.elapsed if elapsed is None else elapsed, size)
            )

    @property
    def best_size(self) -> int:
        """The largest size recorded so far (0 if none)."""
        return self.events[-1][1] if self.events else 0

    @property
    def first_event(self) -> Optional[Tuple[float, int]]:
        """The first reported solution, or ``None``."""
        return self.events[0] if self.events else None

    def size_at(self, budget: float) -> int:
        """The best size achieved within ``budget`` seconds."""
        best = 0
        for t, size in self.events:
            if t <= budget:
                best = size
            else:
                break
        return best

    def time_to_reach(self, target: int) -> Optional[float]:
        """When ``target`` was first reached, or ``None`` if never."""
        for t, size in self.events:
            if size >= target:
                return t
        return None
