"""Flat-buffer local-search state — ARW's production backend.

:class:`FlatLocalSearchState` is the flat twin of
:class:`~repro.localsearch.arw.LocalSearchState`: identical public surface
and *identical move sequences* (the differential suite asserts equal
solution-size trajectories under a fixed RNG seed), with the bookkeeping
restructured for throughput:

* adjacency is read straight off the graph's CSR buffers — no
  ``neighbors()`` method call or tuple materialisation per move;
* the (1,2)-swap scan keeps an **incremental 1-tight-neighbour index**:
  ``_one_tight_count[x]`` is the number of 1-tight outside neighbours of
  solution vertex ``x``, maintained O(1) per tightness transition via the
  ``_one_holder`` witness array (``_one_holder[w]`` is the unique solution
  neighbour of a 1-tight vertex ``w``).  Solution vertices with fewer than
  two 1-tight neighbours — the overwhelming majority at a local optimum —
  are skipped without touching their adjacency;
* candidate non-adjacency tests use a shared **timestamped mark array**
  instead of building ``set(neighbors(u))`` per candidate, so the scan
  allocates nothing.

The only non-O(1) index maintenance is the 2→1 tightness transition on
:meth:`remove`, which rescans the affected neighbourhood to rediscover the
surviving solution neighbour — removals are rare next to swap scans, which
is exactly the trade the index wants.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from ..errors import NotASolutionError
from ..graphs.static_graph import Graph
from ..core.hotpath import hot_loop

__all__ = ["FlatLocalSearchState"]


class FlatLocalSearchState:
    """Solution + tightness bookkeeping over flat CSR buffers."""

    __slots__ = (
        "graph",
        "in_solution",
        "tightness",
        "size",
        "_last_outside",
        "xadj",
        "adj",
        "_one_tight_count",
        "_one_holder",
        "_stamp",
        "_clock",
    )

    def __init__(self, graph: Graph, initial: Iterable[int]) -> None:
        self.graph = graph
        n = graph.n
        xadj, adj = graph.csr_arrays()
        self.xadj = xadj
        self.adj = adj
        self.in_solution = bytearray(n)
        self.tightness = [0] * n
        self.size = 0
        # Perturbation priority: iteration at which a vertex last left the
        # solution (0 = never been inside).
        self._last_outside = [0] * n
        self._one_tight_count = [0] * n
        self._one_holder = [0] * n
        self._stamp = [0] * n
        self._clock = 0
        for v in initial:
            self.insert(v)

    # ------------------------------------------------------------------
    # Elementary moves
    # ------------------------------------------------------------------
    @hot_loop
    def insert(self, v: int) -> None:
        """Add ``v`` to the solution (caller guarantees independence)."""
        if self.in_solution[v]:
            return
        if self.tightness[v]:
            raise NotASolutionError(f"vertex {v} has a solution neighbour")
        tight = self.tightness
        holder = self._one_holder
        one_tight = self._one_tight_count
        self.in_solution[v] = 1
        self.size += 1
        xadj = self.xadj
        count = 0
        for w in self.adj[xadj[v] : xadj[v + 1]]:
            t = tight[w] + 1
            tight[w] = t
            if t == 1:
                # w's unique solution neighbour is now v.
                holder[w] = v
                count += 1
            elif t == 2:
                # w stops being 1-tight for its previous holder.
                one_tight[holder[w]] -= 1
        one_tight[v] = count

    @hot_loop
    def remove(self, v: int, clock: int = 0) -> None:
        """Remove ``v`` from the solution."""
        in_solution = self.in_solution
        if not in_solution[v]:
            return
        tight = self.tightness
        holder = self._one_holder
        one_tight = self._one_tight_count
        adj = self.adj
        xadj = self.xadj
        in_solution[v] = 0
        self.size -= 1
        self._last_outside[v] = clock
        for w in adj[xadj[v] : xadj[v + 1]]:
            t = tight[w] - 1
            tight[w] = t
            if t == 1:
                # w just became 1-tight: rediscover its surviving solution
                # neighbour (the one transition that costs a row scan).
                for x in adj[xadj[w] : xadj[w + 1]]:
                    if in_solution[x]:
                        holder[w] = x
                        one_tight[x] += 1
                        break
            # t == 0: w was 1-tight held by v itself; v's index dies with it.

    def force_insert(self, v: int, clock: int = 0) -> None:
        """Insert ``v``, evicting its solution neighbours (perturbation)."""
        if self.in_solution[v]:
            return
        in_solution = self.in_solution
        xadj = self.xadj
        for w in self.adj[xadj[v] : xadj[v + 1]]:
            if in_solution[w]:
                self.remove(w, clock)
        self.insert(v)

    def solution(self) -> Set[int]:
        """The current solution as a set."""
        return {v for v in range(self.graph.n) if self.in_solution[v]}

    # ------------------------------------------------------------------
    # Moves of the ARW neighbourhood
    # ------------------------------------------------------------------
    # The comprehension is the C-speed gather idiom, which RL001 would
    # reject under @hot_loop — waived instead of marked.
    def one_tight_neighbors(self, x: int) -> List[int]:  # reprolint: disable=RL006
        """Non-solution neighbours of solution vertex ``x`` blocked only
        by ``x`` itself."""
        in_solution = self.in_solution
        tight = self.tightness
        xadj = self.xadj
        return [
            w
            for w in self.adj[xadj[x] : xadj[x + 1]]
            if not in_solution[w] and tight[w] == 1
        ]

    @hot_loop
    def find_one_two_swap(self, x: int) -> Optional[Tuple[int, int]]:
        """A pair of non-adjacent 1-tight neighbours of ``x``, if any.

        Same pair as the oracle's scan (first ``u`` in adjacency order that
        admits a partner, first such partner), reached faster: the
        1-tight index rejects hopeless ``x`` in O(1) and the stamp array
        replaces the per-candidate neighbour sets.
        """
        if self._one_tight_count[x] < 2:
            return None
        candidates = self.one_tight_neighbors(x)
        adj = self.adj
        xadj = self.xadj
        stamp = self._stamp
        clock = self._clock
        for i in range(len(candidates) - 1):
            u = candidates[i]
            clock += 1
            for y in adj[xadj[u] : xadj[u + 1]]:
                stamp[y] = clock
            for w in candidates[i + 1 :]:
                if stamp[w] != clock:
                    self._clock = clock
                    return u, w
        self._clock = clock
        return None

    def apply_one_two_swap(self, x: int, u: int, w: int) -> None:
        """Execute the swap: drop ``x``, insert ``u`` and ``w``."""
        self.remove(x)
        self.insert(u)
        self.insert(w)

    @hot_loop
    def local_search(self) -> int:
        """Exhaust (1,2)-swaps plus free insertions; returns improvement.

        Same pass structure (and therefore the same move sequence) as the
        oracle; the 1-tight index makes the swap scan skip almost every
        solution vertex without touching its row.
        """
        gained = 0
        improved = True
        n = self.graph.n
        in_solution = self.in_solution
        tight = self.tightness
        one_tight = self._one_tight_count
        insert = self.insert
        find_one_two_swap = self.find_one_two_swap
        while improved:
            improved = False
            for v in range(n):
                if not in_solution[v] and not tight[v]:
                    insert(v)
                    gained += 1
                    improved = True
            for x in range(n):
                if not in_solution[x] or one_tight[x] < 2:
                    continue
                swap = find_one_two_swap(x)
                if swap is not None:
                    self.remove(x)
                    insert(swap[0])
                    insert(swap[1])
                    gained += 1
                    improved = True
        return gained
