"""Iterated local search: ARW and its kernel-boosted variants."""

from .arw import LocalSearchState, arw
from .boosted import BoostedResult, arw_lt, arw_nl, boosted_arw
from .events import ConvergenceRecorder
from .flat_state import FlatLocalSearchState

__all__ = [
    "BoostedResult",
    "ConvergenceRecorder",
    "FlatLocalSearchState",
    "LocalSearchState",
    "arw",
    "arw_lt",
    "arw_nl",
    "boosted_arw",
]
