"""The ARW iterated local search (Andrade–Resende–Werneck [2], Section A.5).

Given an initial independent set, ARW alternates

* a **local search** step that exhausts (1,2)-swaps: a solution vertex
  ``x`` is traded for two of its non-adjacent *1-tight* neighbours
  (non-solution vertices whose only solution neighbour is ``x``), growing
  the solution by one; and
* a **perturbation** step that forces ``f`` random outside vertices into
  the solution (``f = i + 1`` with probability ``1/2^i``), evicting their
  solution neighbours, with priority to vertices that have been outside
  the solution longest.

The tightness counters make insertions/deletions O(d(v)); the swap scan
finds a valid (1,2)-swap in O(m) per round, following [2].

:func:`arw` drives the loop under a time budget and reports every
improvement through a :class:`~repro.localsearch.events.ConvergenceRecorder`.
"""

from __future__ import annotations

import random
import time
from typing import Iterable, List, Optional, Set, Tuple

from ..errors import NotASolutionError
from ..graphs.static_graph import Graph
from ..obs.telemetry import get_telemetry, phase
from .events import ConvergenceRecorder
from .flat_state import FlatLocalSearchState

__all__ = ["LocalSearchState", "arw"]


class LocalSearchState:
    """Solution + tightness bookkeeping for (1,2)-swap local search."""

    __slots__ = ("graph", "in_solution", "tightness", "size", "_last_outside")

    def __init__(self, graph: Graph, initial: Iterable[int]) -> None:
        self.graph = graph
        self.in_solution = bytearray(graph.n)
        self.tightness = [0] * graph.n
        self.size = 0
        # Perturbation priority: iteration at which a vertex last left the
        # solution (0 = never been inside).
        self._last_outside = [0] * graph.n
        for v in initial:
            self.insert(v)

    # ------------------------------------------------------------------
    # Elementary moves
    # ------------------------------------------------------------------
    def insert(self, v: int) -> None:
        """Add ``v`` to the solution (caller guarantees independence)."""
        if self.in_solution[v]:
            return
        if self.tightness[v]:
            raise NotASolutionError(f"vertex {v} has a solution neighbour")
        self.in_solution[v] = 1
        self.size += 1
        for w in self.graph.neighbors(v):
            self.tightness[w] += 1

    def remove(self, v: int, clock: int = 0) -> None:
        """Remove ``v`` from the solution."""
        if not self.in_solution[v]:
            return
        self.in_solution[v] = 0
        self.size -= 1
        self._last_outside[v] = clock
        for w in self.graph.neighbors(v):
            self.tightness[w] -= 1

    def force_insert(self, v: int, clock: int = 0) -> None:
        """Insert ``v``, evicting its solution neighbours (perturbation)."""
        if self.in_solution[v]:
            return
        for w in self.graph.neighbors(v):
            if self.in_solution[w]:
                self.remove(w, clock)
        self.insert(v)

    def solution(self) -> Set[int]:
        """The current solution as a set."""
        return {v for v in range(self.graph.n) if self.in_solution[v]}

    # ------------------------------------------------------------------
    # Moves of the ARW neighbourhood
    # ------------------------------------------------------------------
    def one_tight_neighbors(self, x: int) -> List[int]:
        """Non-solution neighbours of solution vertex ``x`` blocked only
        by ``x`` itself."""
        return [
            w
            for w in self.graph.neighbors(x)
            if not self.in_solution[w] and self.tightness[w] == 1
        ]

    def find_one_two_swap(self, x: int) -> Optional[Tuple[int, int]]:
        """A pair of non-adjacent 1-tight neighbours of ``x``, if any."""
        candidates = self.one_tight_neighbors(x)
        if len(candidates) < 2:
            return None
        candidate_set = set(candidates)
        for i, u in enumerate(candidates):
            u_neighbours = set(self.graph.neighbors(u))
            for w in candidates[i + 1 :]:
                if w not in u_neighbours:
                    return u, w
            # Every other candidate is adjacent to u: u cannot pair up,
            # but later candidates might pair among themselves.
            candidate_set.discard(u)
        return None

    def apply_one_two_swap(self, x: int, u: int, w: int) -> None:
        """Execute the swap: drop ``x``, insert ``u`` and ``w``."""
        self.remove(x)
        self.insert(u)
        self.insert(w)

    def local_search(self) -> int:
        """Exhaust (1,2)-swaps plus free insertions; returns improvement.

        Repeatedly scans solution vertices for a valid swap and inserts
        any 0-tight vertex on the way, until a full pass finds nothing.
        """
        gained = 0
        improved = True
        while improved:
            improved = False
            for v in range(self.graph.n):
                if not self.in_solution[v] and self.tightness[v] == 0:
                    self.insert(v)
                    gained += 1
                    improved = True
            for x in range(self.graph.n):
                if not self.in_solution[x]:
                    continue
                swap = self.find_one_two_swap(x)
                if swap is not None:
                    self.apply_one_two_swap(x, *swap)
                    gained += 1
                    improved = True
        return gained


def _perturbation_strength(rng: random.Random) -> int:
    """f = i + 1 with probability 1/2^i (Section A.5)."""
    strength = 1
    while rng.random() < 0.5:
        strength += 1
    return strength


def arw(
    graph: Graph,
    initial: Iterable[int],
    time_budget: float = 1.0,
    seed: int = 0,
    recorder: Optional[ConvergenceRecorder] = None,
    max_iterations: Optional[int] = None,
    state_factory=None,
    rng: Optional[random.Random] = None,
) -> Tuple[Set[int], ConvergenceRecorder]:
    """Iterated local search from ``initial`` under a wall-clock budget.

    Returns ``(best_solution, recorder)``; the recorder holds the
    ``(t, |I|)`` improvement events.  Deterministic given ``seed`` up to
    wall-clock dependent iteration counts (pass ``max_iterations`` for
    fully reproducible runs).

    ``state_factory`` overrides the search-state constructor (default
    :class:`~repro.localsearch.flat_state.FlatLocalSearchState`; pass
    :class:`LocalSearchState` to pin the legacy oracle — both produce the
    identical move sequence under the same RNG stream, which the
    differential suite asserts).  ``rng`` injects a pre-seeded
    ``random.Random`` and takes precedence over ``seed``.
    """
    if rng is None:
        rng = random.Random(seed)
    if state_factory is None:
        state_factory = FlatLocalSearchState
    telemetry = get_telemetry()  # one global check per run
    # Iterations are far too frequent for per-iteration spans; the loop
    # feeds aggregate (count, total) timers instead, and only the initial
    # exhaustive scan gets a span of its own.
    timer = None if telemetry is None else telemetry.timer
    state = state_factory(graph, initial)
    if recorder is None:
        recorder = ConvergenceRecorder()
    with phase(telemetry, "swap-scan", algorithm="ARW", graph=graph.name) as span:
        state.local_search()
        span.meta["initial_size"] = state.size
    best = state.solution()
    recorder.record(len(best))
    iteration = 0
    while recorder.elapsed < time_budget:
        iteration += 1
        if max_iterations is not None and iteration > max_iterations:
            break
        if timer is not None:
            tick = time.perf_counter()
        # Perturb: force in the f outside vertices least recently inside.
        strength = _perturbation_strength(rng)
        outside = [v for v in range(graph.n) if not state.in_solution[v]]
        if not outside:
            break
        outside.sort(key=lambda v: (state._last_outside[v], rng.random()))
        for v in outside[:strength]:
            state.force_insert(v, clock=iteration)
        if timer is not None:
            now = time.perf_counter()
            timer("perturb", now - tick)
            tick = now
        state.local_search()
        if timer is not None:
            timer("swap-scan", time.perf_counter() - tick)
        if state.size > len(best):
            best = state.solution()
            recorder.record(len(best))
        elif state.size < len(best) - 2:
            # Drifted too far down: restart from the best solution found.
            state = state_factory(graph, best)
    return best, recorder
