"""End-to-end smoke check for the serving layer (CI entry point).

``python -m repro.serve.smoke`` registers a seeded power-law graph, streams
a seeded mutation workload through the service (edge churn plus vertex
births and deaths), and after every batch:

* queries the service and a cold solver on the same snapshot,
* asserts the served solution is independent and maximal
  (:func:`repro.analysis.assert_valid_solution`), and
* asserts its size stays within the differential tolerance of the cold
  answer.

A final pass round-trips the service through :meth:`SolverService.save` /
:meth:`SolverService.load` and re-queries, so snapshot persistence is part
of the smoke surface.  Exit code 0 means every gate held.
"""

from __future__ import annotations

import argparse
import random
import sys
import tempfile
from typing import List, Optional

from ..analysis import assert_valid_solution
from ..graphs.generators import power_law_graph
from .dynamic_graph import DynamicGraph, Mutation
from .repair import cold_solve
from .service import ServiceConfig, SolverService

__all__ = ["main", "run_smoke"]

#: Served size must stay within this fraction of the cold-solve size —
#: the same tolerance the differential/bench layers use for heuristics.
SIZE_TOLERANCE = 0.95


def _random_mutations(
    rng: random.Random, dynamic: DynamicGraph, count: int
) -> List[Mutation]:
    mutations: List[Mutation] = []
    for _ in range(count):
        live = [v for v in dynamic.live_vertices()]
        roll = rng.random()
        if roll < 0.40 and len(live) >= 2:
            u, v = rng.sample(live, 2)
            mutations.append(Mutation("add_edge", u, v))
            # Keep the driver honest: apply as we go so later picks see
            # the intermediate state (ids die, newcomers become eligible).
            dynamic.add_edge(u, v)
        elif roll < 0.70 and dynamic.m > 0:
            u = rng.choice([v for v in live if dynamic.degree(v) > 0])
            v = rng.choice(dynamic.neighbors(u))
            mutations.append(Mutation("remove_edge", u, v))
            dynamic.remove_edge(u, v)
        elif roll < 0.85 and len(live) > 2:
            u = rng.choice(live)
            mutations.append(Mutation("remove_vertex", u))
            dynamic.remove_vertex(u)
        else:
            mutations.append(Mutation("add_vertex"))
            dynamic.add_vertex()
    return mutations


def run_smoke(
    n: int = 2_000,
    mutations: int = 100,
    batch: int = 10,
    seed: int = 7,
    algorithm: str = "linear_time",
    verbose: bool = True,
) -> int:
    """Run the register → mutate → query gauntlet; returns failures."""
    rng = random.Random(seed)
    graph = power_law_graph(n, beta=2.2, seed=seed)
    service = SolverService(ServiceConfig(algorithm=algorithm))
    # A shadow dynamic graph drives mutation *generation*; the generated
    # batch is then applied to the service through its public API.
    shadow = DynamicGraph(graph)
    graph_id = service.register(graph)

    first = service.solve(graph_id)
    failures = 0
    applied = 0
    while applied < mutations:
        step = min(batch, mutations - applied)
        batch_mutations = _random_mutations(rng, shadow, step)
        service.apply(graph_id, batch_mutations)
        applied += step

        result = service.solve(graph_id)
        snapshot, old_ids = service.dynamic_graph(graph_id).snapshot()
        compact = {old: new for new, old in enumerate(old_ids)}
        served = {compact[v] for v in result.independent_set}
        assert_valid_solution(snapshot, served)

        cold = cold_solve(snapshot, algorithm)
        ok = result.size >= SIZE_TOLERANCE * cold.size
        if not ok:
            failures += 1
        if verbose:
            flag = "ok " if ok else "FAIL"
            print(
                f"[{flag}] mutations={applied:4d} source={result.source:6s} "
                f"served={result.size} cold={cold.size} "
                f"scope={result.repair_scope or '-'}"
            )

    # Persistence leg: snapshot, restore, and re-query the restored copy.
    with tempfile.NamedTemporaryFile(
        mode="w", suffix=".json", delete=False
    ) as handle:
        path = handle.name
    service.save(path)
    restored = SolverService.load(path)
    replay = restored.solve(graph_id)
    snapshot, old_ids = restored.dynamic_graph(graph_id).snapshot()
    compact = {old: new for new, old in enumerate(old_ids)}
    assert_valid_solution(snapshot, {compact[v] for v in replay.independent_set})
    if replay.size != service.solve(graph_id).size:
        failures += 1
        if verbose:
            print(f"[FAIL] restore size drift: {replay.size}")
    if verbose:
        counters = service.counters()
        print(
            f"# smoke: first solve |I|={first.size}, {applied} mutations, "
            f"{failures} failures"
        )
        print(f"# cache: {counters['cache']}")
        print(f"# events: {counters['events']}")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    """CLI shim: ``python -m repro.serve.smoke [--n ...] [--mutations ...]``."""
    parser = argparse.ArgumentParser(
        prog="repro.serve.smoke",
        description="serve-layer smoke gauntlet (register / mutate / query)",
    )
    parser.add_argument("--n", type=int, default=2_000)
    parser.add_argument("--mutations", type=int, default=100)
    parser.add_argument("--batch", type=int, default=10)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--algorithm", default="linear_time")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)
    failures = run_smoke(
        n=args.n,
        mutations=args.mutations,
        batch=args.batch,
        seed=args.seed,
        algorithm=args.algorithm,
        verbose=not args.quiet,
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
