"""End-to-end smoke check for the serving layer (CI entry point).

``python -m repro.serve.smoke`` registers a seeded power-law graph, streams
a seeded mutation workload through the service (edge churn plus vertex
births and deaths), and after every batch:

* queries the service and a cold solver on the same snapshot,
* asserts the served solution is independent and maximal
  (:func:`repro.analysis.assert_valid_solution`), and
* asserts its size stays within the differential tolerance of the cold
  answer.

A final pass round-trips the service through :meth:`SolverService.save` /
:meth:`SolverService.load` and re-queries, so snapshot persistence is part
of the smoke surface.  Exit code 0 means every gate held.

With ``--metrics-out`` / ``--trace-out`` the gauntlet also exercises the
observability stack: the run executes inside a metrics session (and a
telemetry session for tracing), and extra gates assert that the Prometheus
exposition parses, that solve-latency p99 quantiles are populated, that
every request produced stamped spans, and — under an ``*_auto`` algorithm
— that backend-pick attribution reached both metrics and the trace.
"""

from __future__ import annotations

import argparse
import random
import sys
import tempfile
from contextlib import ExitStack
from typing import List, Optional

from ..analysis import assert_valid_solution
from ..graphs.generators import power_law_graph
from ..obs.metrics import (
    METRIC_AUTO_BACKEND_PICKS,
    METRIC_SERVE_REQUEST_SECONDS,
    METRIC_SERVE_REQUESTS,
    METRIC_SERVE_SOLVER_SECONDS,
    MetricsRegistry,
    metrics_session,
    parse_prometheus,
    quantile_samples,
)
from ..obs.telemetry import Telemetry, telemetry_session
from ..obs.trace_io import write_trace
from .dynamic_graph import DynamicGraph, Mutation
from .repair import cold_solve
from .service import ServiceConfig, SolverService

__all__ = ["main", "run_smoke"]

#: Served size must stay within this fraction of the cold-solve size —
#: the same tolerance the differential/bench layers use for heuristics.
SIZE_TOLERANCE = 0.95


def _random_mutations(
    rng: random.Random, dynamic: DynamicGraph, count: int
) -> List[Mutation]:
    mutations: List[Mutation] = []
    for _ in range(count):
        live = [v for v in dynamic.live_vertices()]
        roll = rng.random()
        if roll < 0.40 and len(live) >= 2:
            u, v = rng.sample(live, 2)
            mutations.append(Mutation("add_edge", u, v))
            # Keep the driver honest: apply as we go so later picks see
            # the intermediate state (ids die, newcomers become eligible).
            dynamic.add_edge(u, v)
        elif roll < 0.70 and dynamic.m > 0:
            u = rng.choice([v for v in live if dynamic.degree(v) > 0])
            v = rng.choice(dynamic.neighbors(u))
            mutations.append(Mutation("remove_edge", u, v))
            dynamic.remove_edge(u, v)
        elif roll < 0.85 and len(live) > 2:
            u = rng.choice(live)
            mutations.append(Mutation("remove_vertex", u))
            dynamic.remove_vertex(u)
        else:
            mutations.append(Mutation("add_vertex"))
            dynamic.add_vertex()
    return mutations


def _verify_observability(
    metrics: Optional[MetricsRegistry],
    telemetry: Optional[Telemetry],
    algorithm: str,
    verbose: bool,
) -> int:
    """Gate the obs leg of the smoke: exposition, quantiles, spans, picks."""
    failures = 0

    def gate(ok: bool, label: str) -> None:
        nonlocal failures
        if not ok:
            failures += 1
        if verbose or not ok:
            print(f"[{'ok ' if ok else 'FAIL'}] obs: {label}")

    if metrics is not None:
        exposition = metrics.to_prometheus()
        try:
            samples = parse_prometheus(exposition)
        except ValueError as exc:
            samples = {}
            gate(False, f"prometheus exposition parses ({exc})")
        else:
            gate(bool(samples), "prometheus exposition parses")
        gate(
            metrics.total(METRIC_SERVE_REQUESTS) > 0,
            "serve request counter populated",
        )
        solve_p99 = quantile_samples(samples, METRIC_SERVE_REQUEST_SECONDS, "p99")
        gate(
            any(value > 0 for value in solve_p99),
            "request-latency p99 quantiles populated",
        )
        solver_p99 = quantile_samples(samples, METRIC_SERVE_SOLVER_SECONDS, "p99")
        gate(
            any(value > 0 for value in solver_p99),
            "solver-latency p99 quantiles populated",
        )
        if algorithm.endswith("_auto"):
            gate(
                metrics.total(METRIC_AUTO_BACKEND_PICKS) > 0,
                "auto backend picks counted",
            )
    if telemetry is not None:
        records = telemetry.to_records()
        requests = {
            record.get("meta", {}).get("request")
            for record in records
            if record.get("type") == "span" and record.get("meta", {}).get("request")
        }
        gate(bool(requests), f"spans stamped with request ids ({len(requests)})")
        backends = {
            record.get("meta", {}).get("backend")
            for record in records
            if record.get("type") == "span"
        }
        gate(
            any(backends - {None, ""}),
            "solve spans carry backend attribution",
        )
        if algorithm.endswith("_auto"):
            picks = [r for r in records if r.get("type") == "backend_pick"]
            gate(bool(picks), "backend_pick records present in trace")
    return failures


def run_smoke(
    n: int = 2_000,
    mutations: int = 100,
    batch: int = 10,
    seed: int = 7,
    algorithm: str = "linear_time",
    verbose: bool = True,
    metrics_out: Optional[str] = None,
    trace_out: Optional[str] = None,
) -> int:
    """Run the register → mutate → query gauntlet; returns failures."""
    with ExitStack() as stack:
        metrics = None
        telemetry = None
        if metrics_out is not None:
            # Entered before the service is built so it adopts the global
            # registry; the service then feeds the exposition we assert on.
            metrics = stack.enter_context(metrics_session(label="serve-smoke"))
        if trace_out is not None:
            telemetry = stack.enter_context(telemetry_session(label="serve-smoke"))
        failures = _run_gauntlet(n, mutations, batch, seed, algorithm, verbose)
        failures += _verify_observability(metrics, telemetry, algorithm, verbose)
        if metrics is not None and metrics_out:
            if metrics_out.endswith(".jsonl"):
                metrics.write_jsonl(metrics_out)
            else:
                with open(metrics_out, "w", encoding="utf-8") as handle:
                    handle.write(metrics.to_prometheus())
            if verbose:
                print(f"# metrics written to {metrics_out}")
        if telemetry is not None and trace_out:
            write_trace(trace_out, telemetry.to_records())
            if verbose:
                print(f"# trace written to {trace_out}")
    return failures


def _run_gauntlet(
    n: int,
    mutations: int,
    batch: int,
    seed: int,
    algorithm: str,
    verbose: bool,
) -> int:
    rng = random.Random(seed)
    graph = power_law_graph(n, beta=2.2, seed=seed)
    service = SolverService(ServiceConfig(algorithm=algorithm))
    # A shadow dynamic graph drives mutation *generation*; the generated
    # batch is then applied to the service through its public API.
    shadow = DynamicGraph(graph)
    graph_id = service.register(graph)

    first = service.solve(graph_id)
    failures = 0
    applied = 0
    while applied < mutations:
        step = min(batch, mutations - applied)
        batch_mutations = _random_mutations(rng, shadow, step)
        service.apply(graph_id, batch_mutations)
        applied += step

        result = service.solve(graph_id)
        snapshot, old_ids = service.dynamic_graph(graph_id).snapshot()
        compact = {old: new for new, old in enumerate(old_ids)}
        served = {compact[v] for v in result.independent_set}
        assert_valid_solution(snapshot, served)

        cold = cold_solve(snapshot, algorithm)
        ok = result.size >= SIZE_TOLERANCE * cold.size
        if not ok:
            failures += 1
        if verbose:
            flag = "ok " if ok else "FAIL"
            print(
                f"[{flag}] mutations={applied:4d} source={result.source:6s} "
                f"served={result.size} cold={cold.size} "
                f"scope={result.repair_scope or '-'}"
            )

    # Persistence leg: snapshot, restore, and re-query the restored copy.
    with tempfile.NamedTemporaryFile(
        mode="w", suffix=".json", delete=False
    ) as handle:
        path = handle.name
    service.save(path)
    restored = SolverService.load(path)
    replay = restored.solve(graph_id)
    snapshot, old_ids = restored.dynamic_graph(graph_id).snapshot()
    compact = {old: new for new, old in enumerate(old_ids)}
    assert_valid_solution(snapshot, {compact[v] for v in replay.independent_set})
    if replay.size != service.solve(graph_id).size:
        failures += 1
        if verbose:
            print(f"[FAIL] restore size drift: {replay.size}")
    if verbose:
        counters = service.counters()
        print(
            f"# smoke: first solve |I|={first.size}, {applied} mutations, "
            f"{failures} failures"
        )
        print(f"# cache: {counters['cache']}")
        print(f"# events: {counters['events']}")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    """CLI shim: ``python -m repro.serve.smoke [--n ...] [--mutations ...]``."""
    parser = argparse.ArgumentParser(
        prog="repro.serve.smoke",
        description="serve-layer smoke gauntlet (register / mutate / query)",
    )
    parser.add_argument("--n", type=int, default=2_000)
    parser.add_argument("--mutations", type=int, default=100)
    parser.add_argument("--batch", type=int, default=10)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--algorithm", default="linear_time")
    parser.add_argument("--quiet", action="store_true")
    parser.add_argument(
        "--metrics-out",
        default=None,
        help="run inside a metrics session, gate the exposition, and write "
        "it here (.jsonl for records, anything else for Prometheus text)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="run inside a telemetry session, gate per-request spans, and "
        "write the trace here (JSONL)",
    )
    args = parser.parse_args(argv)
    failures = run_smoke(
        n=args.n,
        mutations=args.mutations,
        batch=args.batch,
        seed=args.seed,
        algorithm=args.algorithm,
        verbose=not args.quiet,
        metrics_out=args.metrics_out,
        trace_out=args.trace_out,
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
