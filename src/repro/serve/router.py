"""Shard routing: per-tenant graph namespaces across a worker fleet.

The asyncio front-end (:mod:`repro.serve.frontend`) does not touch a
:class:`~repro.serve.service.SolverService` directly — it hands batches of
protocol requests to a :class:`ShardRouter`, which owns ``N`` shard
workers and maps every graph id to exactly one of them.  Placement is a
stable hash (CRC-32 of the graph id — deterministic across processes,
unlike the salted builtin ``hash``), so a graph's register, mutates and
solves all land on the same worker and per-graph request order is simply
per-shard FIFO order.

Two worker flavours implement the same ``submit(batch) -> responses``
surface:

* :class:`InlineShardWorker` — a service in the router's own process.
  Zero dispatch overhead; what tests and single-process serving use.
* :class:`ProcessShardWorker` — a child process running
  :func:`_shard_worker_main`, spoken to over a duplex pipe with the same
  ``(kind, payload)`` message discipline as the component pool.  Each
  child hosts its own service and metrics registry.

All workers share one :class:`~repro.serve.cache.SharedCacheTier`
(a ``multiprocessing.Manager`` dict for process workers, a plain dict for
inline ones), so a graph kernelized by any worker is a cache hit for the
whole fleet — the "one kernel-cache tier" half of the sharding story.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import threading
import zlib
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ReproError
from ..obs.metrics import MetricsRegistry
from .cache import SharedCacheTier
from .service import ServiceConfig, SolverService

__all__ = [
    "InlineShardWorker",
    "ProcessShardWorker",
    "ShardRouter",
    "shard_for",
]

#: Pipe message kinds (parent -> worker): a request batch, a counters
#: probe, or an orderly stop.  Workers answer ``("ok", payload)`` or
#: ``("err", "ExcType: message")`` — an error answer never kills the
#: worker loop, mirroring the JSONL protocol's bad-request stance.
_MSG_BATCH = "batch"
_MSG_COUNTERS = "counters"
_MSG_STOP = "stop"


def shard_for(graph_id: str, shards: int) -> int:
    """Stable graph-id -> shard placement (CRC-32, not the salted hash)."""
    if shards <= 1:
        return 0
    return zlib.crc32(graph_id.encode("utf-8")) % shards


def _config_payload(config: ServiceConfig) -> Dict[str, Any]:
    """The picklable field subset of a :class:`ServiceConfig`.

    ``workspace_factory`` is a live callable and cannot ride a spawn
    payload; process shards refuse it loudly rather than dropping it.
    """
    payload = dataclasses.asdict(config)
    if payload.pop("workspace_factory", None) is not None:
        raise ReproError(
            "process shard workers cannot ship a workspace_factory; "
            "use thread-mode shards for oracle workspaces"
        )
    return payload


def _shard_worker_main(
    conn: Any,
    shard: int,
    config_payload: Dict[str, Any],
    tier_store: Any,
    tier_lock: Any,
    tier_capacity: int,
) -> None:
    """Child-process shard loop: one service, one pipe, batches in FIFO.

    Module-level so both fork and spawn start methods can import it by
    reference.  The worker builds its *own* service and metrics registry
    (a child must never write the parent's), attaches the fleet-shared
    cache tier, and then answers ``(kind, payload)`` messages until a
    ``stop`` arrives or the pipe closes.
    """
    # Imported here, not at module top, purely for symmetry with the
    # handler's lazy CLI import chain; requests -> cli is cycle-prone.
    from .requests import handle_request

    service = SolverService(
        ServiceConfig(**config_payload),
        metrics=MetricsRegistry(label=f"shard-{shard}"),
    )
    service.cache.attach_tier(
        SharedCacheTier(tier_store, tier_lock, capacity=tier_capacity)
    )
    while True:
        try:
            kind, payload = conn.recv()
        except (EOFError, OSError):
            break
        if kind == _MSG_STOP:
            conn.send(("ok", None))
            break
        try:
            if kind == _MSG_BATCH:
                conn.send(("ok", [handle_request(service, r) for r in payload]))
            elif kind == _MSG_COUNTERS:
                conn.send(("ok", service.counters()))
            else:
                conn.send(("err", f"ReproError: unknown shard message {kind!r}"))
        except Exception as exc:  # pragma: no cover - handler never raises
            conn.send(("err", f"{type(exc).__name__}: {exc}"))


class InlineShardWorker:
    """A shard worker hosted in the router's own process.

    ``submit`` is serialized by a lock: the front-end runs one dispatcher
    per shard, but tests and the sync comparison path may call in from
    several threads at once.
    """

    def __init__(
        self,
        shard: int,
        config: ServiceConfig,
        tier: SharedCacheTier,
    ) -> None:
        self.shard = shard
        self.service = SolverService(
            config, metrics=MetricsRegistry(label=f"shard-{shard}")
        )
        self.service.cache.attach_tier(tier)
        self._lock = threading.Lock()

    def submit(self, batch: List[Dict[str, object]]) -> List[Dict[str, object]]:
        """Handle a request batch in order, returning one response each."""
        from .requests import handle_request

        with self._lock:
            return [handle_request(self.service, request) for request in batch]

    def counters(self) -> Dict[str, object]:
        """This shard's service + cache counters."""
        with self._lock:
            return self.service.counters()

    def close(self) -> None:
        """Nothing to tear down for an in-process worker."""


class ProcessShardWorker:
    """A shard worker living in a child process behind a duplex pipe."""

    def __init__(
        self,
        shard: int,
        config: ServiceConfig,
        tier_store: Any,
        tier_lock: Any,
        tier_capacity: int,
        start_method: Optional[str] = None,
    ) -> None:
        self.shard = shard
        ctx = multiprocessing.get_context(start_method)
        self._conn, child_conn = ctx.Pipe(duplex=True)
        self._process = ctx.Process(
            target=_shard_worker_main,
            args=(
                child_conn,
                shard,
                _config_payload(config),
                tier_store,
                tier_lock,
                tier_capacity,
            ),
            name=f"repro-shard-{shard}",
            daemon=True,
        )
        self._process.start()
        child_conn.close()
        self._lock = threading.Lock()

    def _call(self, kind: str, payload: object) -> Any:
        with self._lock:
            if not self._process.is_alive() and kind != _MSG_STOP:
                raise ReproError(f"shard {self.shard} worker is not running")
            self._conn.send((kind, payload))
            status, answer = self._conn.recv()
        if status != "ok":
            raise ReproError(f"shard {self.shard} worker error: {answer}")
        return answer

    def submit(self, batch: List[Dict[str, object]]) -> List[Dict[str, object]]:
        """Ship a request batch to the child; blocks for its responses."""
        responses = self._call(_MSG_BATCH, batch)
        return list(responses)

    def counters(self) -> Dict[str, object]:
        """This shard's service + cache counters (fetched from the child)."""
        counters = self._call(_MSG_COUNTERS, None)
        return dict(counters)

    def close(self) -> None:
        """Stop the child process (orderly, falling back to terminate)."""
        try:
            self._call(_MSG_STOP, None)
        except (ReproError, EOFError, OSError):
            pass
        self._process.join(timeout=5.0)
        if self._process.is_alive():  # pragma: no cover - defensive
            self._process.terminate()
            self._process.join(timeout=5.0)
        self._conn.close()


class ShardRouter:
    """Dispatch protocol requests across ``shards`` workers by graph id.

    Parameters
    ----------
    shards:
        Worker count.  Shard placement is :func:`shard_for`; requests with
        no graph id (``stats``, ``save``, ``ping``) go to shard 0 unless
        the caller aggregates across shards itself (the front-end does,
        for ``stats``).
    config:
        Per-worker :class:`ServiceConfig`; every shard gets the same one.
    mode:
        ``"thread"`` hosts every shard in-process (cheap, what tests use);
        ``"process"`` forks one child per shard for real CPU isolation.
    tier_capacity:
        Entry bound of the fleet-shared cache tier.
    start_method:
        Process-mode only; forwarded to :func:`multiprocessing.get_context`.
    """

    def __init__(
        self,
        shards: int = 1,
        config: Optional[ServiceConfig] = None,
        mode: str = "thread",
        tier_capacity: int = 512,
        start_method: Optional[str] = None,
    ) -> None:
        if shards < 1:
            raise ReproError(f"shard count must be >= 1, got {shards}")
        if mode not in ("thread", "process"):
            raise ReproError(f"unknown shard mode {mode!r}; use thread|process")
        self.shards = shards
        self.mode = mode
        self.config = config or ServiceConfig()
        self._manager: Optional[Any] = None
        if mode == "process":
            self._manager = multiprocessing.Manager()
            tier_store: Any = self._manager.dict()
            tier_lock: Any = self._manager.Lock()
            self.tier = SharedCacheTier(tier_store, tier_lock, tier_capacity)
            self._workers: List[Any] = [
                ProcessShardWorker(
                    shard,
                    self.config,
                    tier_store,
                    tier_lock,
                    tier_capacity,
                    start_method=start_method,
                )
                for shard in range(shards)
            ]
        else:
            self.tier = SharedCacheTier(capacity=tier_capacity)
            self._workers = [
                InlineShardWorker(shard, self.config, self.tier)
                for shard in range(shards)
            ]
        self._closed = False

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_for(self, request: Dict[str, object]) -> int:
        """The shard a request belongs to (graph-id hash; 0 if id-less)."""
        graph_id = request.get("id")
        if graph_id is None:
            return 0
        return shard_for(str(graph_id), self.shards)

    def dispatch(
        self, shard: int, batch: List[Dict[str, object]]
    ) -> List[Dict[str, object]]:
        """Run a batch on one shard worker, in order; blocks for answers."""
        return self._workers[shard].submit(batch)

    def dispatch_all(
        self, requests: List[Dict[str, object]]
    ) -> List[Dict[str, object]]:
        """Route a mixed request list, preserving input order in the output.

        Requests are grouped per shard (keeping each shard's FIFO order),
        dispatched shard by shard, and the responses reassembled into the
        input's positions.  This is the synchronous routing path — the
        async front-end drives :meth:`dispatch` itself for overlap.
        """
        by_shard: Dict[int, List[Tuple[int, Dict[str, object]]]] = {}
        for position, request in enumerate(requests):
            by_shard.setdefault(self.shard_for(request), []).append(
                (position, request)
            )
        responses: List[Optional[Dict[str, object]]] = [None] * len(requests)
        for shard, items in sorted(by_shard.items()):
            answers = self.dispatch(shard, [request for _, request in items])
            for (position, _), answer in zip(items, answers):
                responses[position] = answer
        return [response for response in responses if response is not None]

    # ------------------------------------------------------------------
    # Introspection and lifecycle
    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, object]:
        """Aggregated + per-shard counters (cache totals summed fleet-wide)."""
        per_shard = [worker.counters() for worker in self._workers]
        totals: Dict[str, float] = {}
        graphs = 0
        for counters in per_shard:
            graphs += int(counters.get("graphs", 0))  # type: ignore[arg-type]
            cache = counters.get("cache", {})
            if isinstance(cache, dict):
                for key in ("hits", "shared_hits", "misses", "evictions", "entries"):
                    totals[key] = totals.get(key, 0) + int(cache.get(key, 0))
        served = totals.get("hits", 0) + totals.get("shared_hits", 0)
        lookups = served + totals.get("misses", 0)
        return {
            "shards": self.shards,
            "mode": self.mode,
            "graphs": graphs,
            "cache": {
                **{key: int(value) for key, value in totals.items()},
                "hit_rate": (served / lookups) if lookups else 0.0,
                "tier_entries": len(self.tier),
            },
            "per_shard": per_shard,
        }

    def close(self) -> None:
        """Stop every worker and the manager (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            worker.close()
        if self._manager is not None:
            self._manager.shutdown()
            self._manager = None

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"<ShardRouter shards={self.shards} mode={self.mode}>"
