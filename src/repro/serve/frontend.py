"""The asyncio serving front-end: admission → batch → shard → worker.

``repro serve --async`` boots this instead of the synchronous stream pump.
The front-end speaks the same JSONL rid/tenant wire protocol as
:mod:`repro.serve.requests` — over a TCP socket, one JSON object per line,
one response line per request — plus a minimal HTTP ``POST`` adapter for
curl-style callers.  Behind the protocol sit three stages:

1. **Admission** (:meth:`AsyncFrontend.submit`).  Every request lands in a
   per-shard queue.  A solve that would *wait past its own deadline*
   (estimated wait = queue depth × EWMA service time) is not queued behind
   the backlog: it is rewritten to a zero-budget solve and placed in the
   shard's express lane, so the worker's stale-degradation path answers it
   immediately with the patched last-known-good solution — a valid
   independent set, marked ``"shed": true`` — instead of a late answer or
   an error.  The same express path absorbs solves arriving at a full
   queue; non-degradable verbs (mutations, registers) get a structured
   ``admission queue full`` error because dropping them would lose writes.

2. **Micro-batching** (per-shard dispatcher).  Each shard has one
   dispatcher task that drains its lanes (express first) into a batch of
   at most ``max_batch`` requests and ships the batch over one
   worker round-trip.  Within a batch, *adjacent identical solves* — same
   graph, same timeout, nothing in between — collapse to one leader
   dispatch whose answer is copied to the followers (``"coalesced":
   true``); under a read-heavy burst the fleet pays one
   fingerprint + cache lookup for the whole run instead of one per
   request.  Adjacency is what makes this exact: a mutate between two
   solves breaks the run, so coalescing never reorders effects.

3. **Sharding** (:class:`~repro.serve.router.ShardRouter`).  Graph ids map
   to workers by stable hash; each dispatcher blocks in its own
   single-thread executor, so shards overlap while per-shard FIFO order —
   the protocol's consistency contract — is preserved end to end.

Shutdown is drain-first: :meth:`AsyncFrontend.drain` stops admission,
waits for every queued future, then stops the dispatchers — in-flight
requests complete, which is what the CLI's SIGTERM handler relies on.
"""

from __future__ import annotations

import asyncio
import json
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..errors import ReproError
from ..obs.metrics import (
    METRIC_FRONTEND_BATCH_SIZE,
    METRIC_FRONTEND_BATCHES,
    METRIC_FRONTEND_COALESCED,
    METRIC_FRONTEND_CONNECTIONS,
    METRIC_FRONTEND_PROTOCOL_ERRORS,
    METRIC_FRONTEND_QUEUE_DEPTH,
    METRIC_FRONTEND_REQUEST_SECONDS,
    METRIC_FRONTEND_REQUESTS,
    METRIC_FRONTEND_SHED,
    MetricsRegistry,
    get_metrics,
)
from .requests import MAX_REQUEST_BYTES, error_response, parse_request_line, salvage_rid
from .router import ShardRouter

__all__ = ["AsyncFrontend", "serve_forever"]

#: Verbs that may be answered by the stale-degradation path instead of
#: queueing past their deadline.  Everything else mutates service state
#: and must either run or fail loudly.
_SHEDDABLE_OPS = frozenset({"solve", "upper_bound"})

#: EWMA smoothing for the per-shard service-time estimate that drives
#: deadline-aware admission.  0.2 ≈ the last ~10 batches dominate.
_EWMA_ALPHA = 0.2


class _Pending:
    """One admitted request waiting for its shard dispatcher."""

    __slots__ = ("request", "future", "enqueued_at", "shed")

    def __init__(
        self,
        request: Dict[str, object],
        future: "asyncio.Future[Dict[str, object]]",
        enqueued_at: float,
        shed: bool = False,
    ) -> None:
        self.request = request
        self.future = future
        self.enqueued_at = enqueued_at
        self.shed = shed


def _coalesce_key(request: Dict[str, object]) -> Optional[Tuple[object, ...]]:
    """The identity under which two adjacent requests share one dispatch.

    Only pure reads coalesce, and only when every field that changes the
    *answer* matches; rid/tenant are provenance, not answer inputs.
    """
    op = request.get("op")
    if op not in _SHEDDABLE_OPS:
        return None
    return (op, request.get("id"), request.get("timeout"))


class AsyncFrontend:
    """Admission control + micro-batching in front of a :class:`ShardRouter`.

    Parameters
    ----------
    router:
        The shard fleet; the front-end owns its lifecycle only if
        ``own_router`` (the CLI path) — tests pass a router they manage.
    max_queue_depth:
        Per-shard admitted-but-undispatched bound.  Solves past it are
        shed to the express lane; writes past it are refused.
    max_batch:
        Upper bound on one dispatcher drain (and so on one worker
        round-trip).
    metrics:
        Registry for the ``repro_frontend_*`` series; defaults to the
        process-global one when enabled.
    """

    def __init__(
        self,
        router: ShardRouter,
        max_queue_depth: int = 128,
        max_batch: int = 32,
        metrics: Optional[MetricsRegistry] = None,
        own_router: bool = False,
    ) -> None:
        if max_queue_depth < 1:
            raise ReproError(f"max_queue_depth must be >= 1, got {max_queue_depth}")
        if max_batch < 1:
            raise ReproError(f"max_batch must be >= 1, got {max_batch}")
        self.router = router
        self.max_queue_depth = max_queue_depth
        self.max_batch = max_batch
        self.metrics = metrics or get_metrics() or MetricsRegistry(label="frontend")
        self._own_router = own_router
        shards = router.shards
        self._normal: List[Deque[_Pending]] = [deque() for _ in range(shards)]
        self._express: List[Deque[_Pending]] = [deque() for _ in range(shards)]
        self._wakeups: List[asyncio.Event] = []
        self._dispatchers: List["asyncio.Task[None]"] = []
        self._executors: List[ThreadPoolExecutor] = []
        self._ewma_seconds: List[float] = [0.0] * shards
        self._inflight: List[int] = [0] * shards
        self._draining = False
        self._started = False
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spin up one dispatcher task + executor per shard (idempotent)."""
        if self._started:
            return
        self._started = True
        for shard in range(self.router.shards):
            self._wakeups.append(asyncio.Event())
            self._executors.append(
                ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix=f"repro-dispatch-{shard}"
                )
            )
            self._dispatchers.append(
                asyncio.create_task(
                    self._dispatch_loop(shard), name=f"dispatch-{shard}"
                )
            )

    async def drain(self) -> None:
        """Stop admission, let every queued request finish, stop dispatchers."""
        self._draining = True
        # Queued entries still hold their futures; in-flight batches have
        # already left the queues, so poll the in-flight counters too.
        while any(
            self._queue_depth(shard) or self._inflight[shard]
            for shard in range(self.router.shards)
        ):
            await asyncio.sleep(0.01)
        for event in self._wakeups:
            event.set()  # unblock dispatchers so they can observe draining
        for task in self._dispatchers:
            task.cancel()
        for task in self._dispatchers:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._dispatchers.clear()
        for executor in self._executors:
            executor.shutdown(wait=True)
        self._executors.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._own_router:
            self.router.close()
        self._started = False

    # ------------------------------------------------------------------
    # Stage 1: admission
    # ------------------------------------------------------------------
    def _queue_depth(self, shard: int) -> int:
        return len(self._normal[shard]) + len(self._express[shard])

    def _estimated_wait(self, shard: int) -> float:
        return self._queue_depth(shard) * self._ewma_seconds[shard]

    async def submit(self, request: Dict[str, object]) -> Dict[str, object]:
        """Admit one request and await its response (the async entry point)."""
        op = request.get("op")
        self.metrics.inc(METRIC_FRONTEND_REQUESTS, op=str(op))
        if op == "ping":
            response: Dict[str, object] = {"op": "ping", "ok": True, "pong": True}
            if "rid" in request:
                response["rid"] = str(request["rid"])
            return response
        if op == "stats":
            return await self._stats(request)
        if self._draining:
            return error_response(
                "ReproError: server is draining, request refused",
                rid=str(request["rid"]) if "rid" in request else None,
                op=op,
            )
        loop = asyncio.get_running_loop()
        shard = self.router.shard_for(request)
        entry = _Pending(request, loop.create_future(), loop.time())
        depth = self._queue_depth(shard)
        sheddable = op in _SHEDDABLE_OPS
        over_depth = depth >= self.max_queue_depth
        timeout = request.get("timeout")
        past_deadline = (
            sheddable
            and timeout is not None
            and self._estimated_wait(shard) > float(timeout)  # type: ignore[arg-type]
        )
        if (over_depth or past_deadline) and sheddable:
            # Shed: answer from the degradation path *now* instead of
            # queueing past the deadline.  A zero budget makes the worker
            # return the patched last-known-good solution (or, for a
            # never-solved graph, solve it — there is nothing stale to
            # degrade to, and first-touch solves are exactly the cache
            # misses the tier amortizes).
            shed_request = dict(request)
            shed_request["timeout"] = 0.0
            entry = _Pending(shed_request, entry.future, entry.enqueued_at, shed=True)
            self._express[shard].append(entry)
            self.metrics.inc(METRIC_FRONTEND_SHED, shard=str(shard))
        elif over_depth:
            self.metrics.inc(METRIC_FRONTEND_SHED, shard=str(shard))
            return error_response(
                f"ReproError: admission queue full "
                f"(depth {depth} >= {self.max_queue_depth}) for op {op!r}",
                rid=str(request["rid"]) if "rid" in request else None,
                op=op,
            )
        else:
            self._normal[shard].append(entry)
        self.metrics.set_gauge(
            METRIC_FRONTEND_QUEUE_DEPTH, self._queue_depth(shard), shard=str(shard)
        )
        self._wakeups[shard].set()
        response = await entry.future
        self.metrics.observe(
            METRIC_FRONTEND_REQUEST_SECONDS, loop.time() - entry.enqueued_at
        )
        return response

    async def _stats(self, request: Dict[str, object]) -> Dict[str, object]:
        """Fleet-wide stats: aggregated router counters + front-end view."""
        loop = asyncio.get_running_loop()
        counters = await loop.run_in_executor(None, self.router.counters)
        response: Dict[str, object] = {
            "op": "stats",
            "ok": True,
            "counters": counters,
            "frontend": self.snapshot(),
        }
        if "rid" in request:
            response["rid"] = str(request["rid"])
        return response

    # ------------------------------------------------------------------
    # Stage 2 + 3: batching and dispatch
    # ------------------------------------------------------------------
    def _drain_batch(self, shard: int) -> List[_Pending]:
        batch: List[_Pending] = []
        for lane in (self._express[shard], self._normal[shard]):
            while lane and len(batch) < self.max_batch:
                batch.append(lane.popleft())
        return batch

    async def _dispatch_loop(self, shard: int) -> None:
        loop = asyncio.get_running_loop()
        executor = self._executors[shard]
        wakeup = self._wakeups[shard]
        while True:
            if not self._queue_depth(shard):
                wakeup.clear()
                await wakeup.wait()
            batch = self._drain_batch(shard)
            if not batch:
                continue
            self._inflight[shard] = len(batch)
            self.metrics.set_gauge(
                METRIC_FRONTEND_QUEUE_DEPTH,
                self._queue_depth(shard),
                shard=str(shard),
            )
            started = loop.time()
            leaders, followers = self._coalesce(batch)
            try:
                answers = await loop.run_in_executor(
                    executor,
                    self.router.dispatch,
                    shard,
                    [entry.request for entry in leaders],
                )
            except Exception as exc:  # noqa: BLE001 - futures must resolve
                failure = f"{type(exc).__name__}: {exc}"
                for entry in batch:
                    if not entry.future.done():
                        entry.future.set_result(
                            error_response(
                                failure,
                                rid=str(entry.request.get("rid"))
                                if "rid" in entry.request
                                else None,
                                op=entry.request.get("op"),
                            )
                        )
                self._inflight[shard] = 0
                continue
            elapsed = loop.time() - started
            if leaders:
                per_request = elapsed / len(leaders)
                previous = self._ewma_seconds[shard]
                self._ewma_seconds[shard] = (
                    per_request
                    if previous == 0.0
                    else previous + _EWMA_ALPHA * (per_request - previous)
                )
            self.metrics.inc(METRIC_FRONTEND_BATCHES, shard=str(shard))
            self.metrics.observe(METRIC_FRONTEND_BATCH_SIZE, len(batch))
            for entry, answer in zip(leaders, answers):
                entry.future.set_result(self._finish(entry, answer))
            for entry, leader_index in followers:
                self.metrics.inc(METRIC_FRONTEND_COALESCED, shard=str(shard))
                copied = dict(answers[leader_index])
                copied["coalesced"] = True
                if "rid" in entry.request:
                    copied["rid"] = str(entry.request["rid"])
                else:
                    copied.pop("rid", None)
                entry.future.set_result(self._finish(entry, copied))
            self._inflight[shard] = 0

    @staticmethod
    def _coalesce(
        batch: List[_Pending],
    ) -> Tuple[List[_Pending], List[Tuple[_Pending, int]]]:
        """Split a FIFO batch into dispatched leaders and copied followers.

        A follower is a request identical (same :func:`_coalesce_key`) to
        the *immediately preceding* leader — adjacency guarantees no write
        slid in between, so sharing the leader's answer is exact.
        """
        leaders: List[_Pending] = []
        followers: List[Tuple[_Pending, int]] = []
        previous_key: Optional[Tuple[object, ...]] = None
        for entry in batch:
            key = _coalesce_key(entry.request)
            if key is not None and key == previous_key and leaders:
                followers.append((entry, len(leaders) - 1))
            else:
                leaders.append(entry)
                previous_key = key
        return leaders, followers

    def _finish(
        self, entry: _Pending, answer: Dict[str, object]
    ) -> Dict[str, object]:
        if entry.shed:
            answer = dict(answer)
            answer["shed"] = True
        return answer

    # ------------------------------------------------------------------
    # Wire protocols
    # ------------------------------------------------------------------
    async def start_server(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Listen for JSONL (and HTTP POST) connections; returns (host, port)."""
        await self.start()
        self._server = await asyncio.start_server(
            self._handle_connection, host, port, limit=MAX_REQUEST_BYTES + 4096
        )
        sockets = self._server.sockets or []
        address = sockets[0].getsockname()
        return str(address[0]), int(address[1])

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.inc(METRIC_FRONTEND_CONNECTIONS)
        try:
            first = await reader.readline()
            if not first:
                return
            if first.startswith(b"POST ") or first.startswith(b"GET "):
                await self._handle_http(first, reader, writer)
                return
            await self._handle_jsonl_line(first, writer)
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    # Oversized line with no newline in sight: answer
                    # structurally and hang up — the stream is unframed now.
                    self.metrics.inc(METRIC_FRONTEND_PROTOCOL_ERRORS)
                    self._write_json(
                        writer,
                        error_response(
                            f"ReproError: request line exceeds "
                            f"MAX_REQUEST_BYTES={MAX_REQUEST_BYTES}"
                        ),
                    )
                    break
                if not line:
                    break
                await self._handle_jsonl_line(line, writer)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _handle_jsonl_line(
        self, raw: bytes, writer: asyncio.StreamWriter
    ) -> None:
        line = raw.decode("utf-8", errors="replace").strip()
        if not line or line.startswith("#"):
            return
        try:
            request = parse_request_line(line)
        except ReproError as exc:
            self.metrics.inc(METRIC_FRONTEND_PROTOCOL_ERRORS)
            self._write_json(writer, error_response(str(exc), rid=salvage_rid(line)))
            return
        response = await self.submit(request)
        self._write_json(writer, response)
        await writer.drain()

    async def _handle_http(
        self,
        first: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Minimal HTTP adapter: POST body = JSONL requests, response = JSONL.

        One request-response exchange per connection (``Connection: close``)
        — enough for curl and smoke probes without an HTTP dependency.
        """
        try:
            method = first.split(b" ", 1)[0].decode("ascii", errors="replace")
            content_length = 0
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
                name, _, value = header.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    content_length = int(value.strip())
            if method != "POST":
                body = b'{"ok": false, "error": "ReproError: POST JSONL only"}\n'
                status = "405 Method Not Allowed"
                self.metrics.inc(METRIC_FRONTEND_PROTOCOL_ERRORS)
            elif content_length > MAX_REQUEST_BYTES:
                body = json.dumps(
                    error_response(
                        f"ReproError: body too large ({content_length} bytes)"
                    ),
                    sort_keys=True,
                ).encode("utf-8") + b"\n"
                status = "413 Payload Too Large"
                self.metrics.inc(METRIC_FRONTEND_PROTOCOL_ERRORS)
            else:
                payload = await reader.readexactly(content_length)
                responses: List[bytes] = []
                for raw_line in payload.decode("utf-8", errors="replace").splitlines():
                    raw_line = raw_line.strip()
                    if not raw_line or raw_line.startswith("#"):
                        continue
                    try:
                        request = parse_request_line(raw_line)
                    except ReproError as exc:
                        self.metrics.inc(METRIC_FRONTEND_PROTOCOL_ERRORS)
                        response = error_response(str(exc), rid=salvage_rid(raw_line))
                    else:
                        response = await self.submit(request)
                    responses.append(
                        json.dumps(response, sort_keys=True).encode("utf-8")
                    )
                body = b"\n".join(responses) + (b"\n" if responses else b"")
                status = "200 OK"
            head = (
                f"HTTP/1.1 {status}\r\n"
                f"Content-Type: application/x-ndjson\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode("ascii")
            writer.write(head + body)
            await writer.drain()
        except (asyncio.IncompleteReadError, ValueError):
            self.metrics.inc(METRIC_FRONTEND_PROTOCOL_ERRORS)

    @staticmethod
    def _write_json(writer: asyncio.StreamWriter, response: Dict[str, object]) -> None:
        writer.write(json.dumps(response, sort_keys=True).encode("utf-8") + b"\n")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Front-end counters as a JSON-serialisable dict."""
        return {
            "requests": self.metrics.total(METRIC_FRONTEND_REQUESTS),
            "shed": self.metrics.total(METRIC_FRONTEND_SHED),
            "batches": self.metrics.total(METRIC_FRONTEND_BATCHES),
            "coalesced": self.metrics.total(METRIC_FRONTEND_COALESCED),
            "protocol_errors": self.metrics.total(METRIC_FRONTEND_PROTOCOL_ERRORS),
            "queue_depths": [self._queue_depth(s) for s in range(self.router.shards)],
            "draining": self._draining,
        }


async def serve_forever(
    frontend: AsyncFrontend,
    host: str = "127.0.0.1",
    port: int = 0,
    ready: Optional[Any] = None,
    stop: Optional[asyncio.Event] = None,
) -> Tuple[str, int]:
    """Boot the socket server and run until ``stop`` is set, then drain.

    ``ready`` (any object with ``put``/``set``) is signalled with the bound
    ``(host, port)`` once listening — how the CLI and tests learn the
    ephemeral port.  Returns the bound address after shutdown.
    """
    bound = await frontend.start_server(host, port)
    if ready is not None:
        # Duck-typed: asyncio.Queue (put_nowait — .put is a coroutine),
        # plain queues/announcers (put), events (set).
        put_nowait = getattr(ready, "put_nowait", None)
        if put_nowait is not None:
            put_nowait(bound)
        elif hasattr(ready, "put"):
            ready.put(bound)
        elif hasattr(ready, "set"):
            ready.set()
    if stop is None:
        stop = asyncio.Event()
    await stop.wait()
    await frontend.drain()
    return bound
