"""Localized solution repair after graph mutations.

A mutation batch dirties a handful of vertices; re-running the whole
reducing-peeling pipeline for that is the cold-solve cost the serving layer
exists to avoid.  Repair instead revisits only the **affected region** —
the dirty seeds plus a configurable hop radius
(:func:`repro.core.components.affected_region`) — and keeps every decision
outside it:

1. the previous solution is restricted to the region's complement, which
   stays independent because no edge outside the region changed;
2. region vertices adjacent to a kept outside-solution vertex are
   *blocked* (choosing them would conflict with a kept decision);
3. the induced subgraph on the remaining *free* region is re-solved from
   scratch — degree-one, degree-two-path and (for NearLinear) dominance
   rules re-run on exactly the affected neighbourhood — component-wise via
   :func:`~repro.perf.parallel.solve_by_components_parallel`;
4. the merged assignment is extended to a maximal independent set of the
   full snapshot (:func:`~repro.core.trace.extend_to_maximal`), which also
   lets blocked-but-actually-free vertices re-enter.

The result is always independent and maximal on the current graph; its
size tracks a cold solve because steps 1–3 reproduce exactly what a cold
per-component solve would decide inside the region, and the O(n + m)
extension pass is the only global work.

:func:`patch_solution` is the graceful-degradation fallback: drop
conflicts, extend to maximal — last-known-good quality, guaranteed
feasibility, microseconds of work.  The service returns it with a
staleness flag when a repair exceeds its time budget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..core.components import affected_region
from ..core.result import MISResult
from ..core.trace import extend_to_maximal
from ..graphs.properties import connected_components
from ..graphs.static_graph import Graph
from ..perf.parallel import (
    ALGORITHM_BY_NAME,
    DEFAULT_PARALLEL_THRESHOLD,
    solve_by_components_parallel,
)

__all__ = [
    "RepairOutcome",
    "cold_solve",
    "patch_solution",
    "repair_solution",
]


def cold_solve(
    graph: Graph,
    algorithm: Union[str, Callable[[Graph], MISResult]],
    workspace_factory: Optional[Callable[..., object]] = None,
) -> MISResult:
    """Solve ``graph`` from scratch with the service's configured algorithm.

    ``algorithm`` is an :data:`~repro.perf.parallel.ALGORITHM_BY_NAME`
    registry name (``"bdone"`` / ``"linear_time"`` / ``"near_linear"``) or
    a callable.  ``workspace_factory`` is forwarded to the driver's oracle
    hook — the differential suite runs the service's solve path under both
    the flat and the legacy backend and asserts identical answers.
    """
    if isinstance(algorithm, str):
        try:
            solver = ALGORITHM_BY_NAME[algorithm]
        except KeyError:
            raise ValueError(
                f"unknown algorithm name {algorithm!r}; "
                f"registered: {sorted(ALGORITHM_BY_NAME)}"
            ) from None
    else:
        solver = algorithm
    if workspace_factory is None:
        return solver(graph)
    return solver(graph, workspace_factory=workspace_factory)


def patch_solution(graph: Graph, in_set: List[bool]) -> List[bool]:
    """Make an assignment feasible: drop conflicts, extend to maximal.

    Conflicts are resolved in id order (the higher endpoint of a violated
    edge leaves), matching the determinism contract of the rest of the
    library.  The input list is not modified.
    """
    patched = list(in_set)
    offsets, targets = graph.flat_csr()
    for v in range(graph.n):
        if not patched[v]:
            continue
        for i in range(offsets[v], offsets[v + 1]):
            w = targets[i]
            if w < v and patched[w]:
                patched[v] = False
                break
    extend_to_maximal(patched, graph)
    return patched


@dataclass(frozen=True)
class RepairOutcome:
    """A repaired assignment plus the scope accounting telemetry wants."""

    in_set: List[bool]
    region_size: int
    free_size: int
    blocked_size: int
    components: int
    solver_elapsed: float

    @property
    def size(self) -> int:
        """Cardinality of the repaired independent set."""
        return sum(self.in_set)

    def scope(self) -> Dict[str, int]:
        """The repair-scope counters as a JSON-friendly dict."""
        return {
            "region": self.region_size,
            "free": self.free_size,
            "blocked": self.blocked_size,
            "components": self.components,
        }


def repair_solution(
    graph: Graph,
    in_set: Sequence[bool],
    seeds: Sequence[int],
    algorithm: Union[str, Callable[[Graph], MISResult]],
    radius: int = 2,
    processes: int = 1,
    min_component_size: int = DEFAULT_PARALLEL_THRESHOLD,
) -> RepairOutcome:
    """Repair ``in_set`` around the dirty ``seeds`` on the current snapshot.

    ``in_set`` is the previous solution mapped into the snapshot's compact
    id space (dead vertices already dropped); ``seeds`` are the mutated
    vertices in the same space.  Returns a new assignment that is
    independent and maximal on ``graph``.
    """
    start = time.perf_counter()
    region = affected_region(graph, seeds, radius=radius)
    in_region = bytearray(graph.n)
    for v in region:
        in_region[v] = 1
    # Region vertices adjacent to a *kept* outside-solution vertex cannot
    # be chosen; everything else in the region is re-decided from scratch.
    blocked: List[int] = []
    free: List[int] = []
    for v in region:
        conflicted = False
        for w in graph.neighbors(v):
            if not in_region[w] and in_set[w]:
                conflicted = True
                break
        (blocked if conflicted else free).append(v)
    repaired = list(in_set)
    for v in region:
        repaired[v] = False
    components = 0
    if free:
        subgraph, old_ids = graph.subgraph(free)
        components = len(connected_components(subgraph))
        sub_result = solve_by_components_parallel(
            subgraph,
            algorithm,
            processes=processes,
            min_component_size=min_component_size,
        )
        for v in sub_result.independent_set:
            repaired[old_ids[v]] = True
    extend_to_maximal(repaired, graph)
    return RepairOutcome(
        in_set=repaired,
        region_size=len(region),
        free_size=len(free),
        blocked_size=len(blocked),
        components=components,
        solver_elapsed=time.perf_counter() - start,
    )
