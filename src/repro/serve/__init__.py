"""repro.serve — incremental solving service over the reducing-peeling core.

The one-shot solvers answer "what is a near-maximum independent set of this
graph?"; this package answers the production-shaped question "…and now the
graph changed, again" without paying a cold solve per query:

* :class:`~repro.serve.service.SolverService` — register graphs, query
  repeatedly, mutate between queries;
* :class:`~repro.serve.dynamic_graph.DynamicGraph` — the mutable front for
  the immutable CSR :class:`~repro.graphs.static_graph.Graph`;
* :class:`~repro.serve.cache.KernelCache` — bounded LRU of solved snapshots
  keyed by :func:`~repro.serve.fingerprint.graph_fingerprint`, with an
  optional fleet-shared :class:`~repro.serve.cache.SharedCacheTier`;
* :mod:`~repro.serve.repair` — localized repair of a solution around the
  mutated region;
* :mod:`~repro.serve.requests` — the JSONL request protocol behind
  ``repro serve``;
* :mod:`~repro.serve.router` — graph-id sharding across a worker fleet;
* :mod:`~repro.serve.frontend` — the asyncio front-end behind
  ``repro serve --async`` (admission control, micro-batching, shedding);
* :mod:`~repro.serve.loadgen` — the seeded load generator behind
  ``repro loadgen`` and the ``serve_load`` bench track;
* :mod:`~repro.serve.smoke` — the CI smoke gauntlet
  (``python -m repro.serve.smoke``).

See ``docs/serving.md`` for the full tour.
"""

from .cache import CacheEntry, KernelCache, SharedCacheTier
from .dynamic_graph import MUTATION_KINDS, DynamicGraph, Mutation
from .fingerprint import graph_fingerprint
from .frontend import AsyncFrontend, serve_forever
from .loadgen import (
    LoadgenConfig,
    LoadgenReport,
    build_workload,
    run_serve_load_benchmark,
)
from .repair import RepairOutcome, cold_solve, patch_solution, repair_solution
from .requests import (
    MAX_REQUEST_BYTES,
    error_response,
    handle_request,
    parse_request_line,
    run_requests,
    salvage_rid,
    serve_stream,
)
from .router import ShardRouter, shard_for
from .service import SNAPSHOT_VERSION, ServeResult, ServiceConfig, SolverService

__all__ = [
    "AsyncFrontend",
    "CacheEntry",
    "DynamicGraph",
    "KernelCache",
    "LoadgenConfig",
    "LoadgenReport",
    "MAX_REQUEST_BYTES",
    "MUTATION_KINDS",
    "Mutation",
    "RepairOutcome",
    "SNAPSHOT_VERSION",
    "ServeResult",
    "ServiceConfig",
    "ShardRouter",
    "SharedCacheTier",
    "SolverService",
    "build_workload",
    "cold_solve",
    "error_response",
    "graph_fingerprint",
    "handle_request",
    "parse_request_line",
    "patch_solution",
    "repair_solution",
    "run_requests",
    "run_serve_load_benchmark",
    "salvage_rid",
    "serve_forever",
    "serve_stream",
    "shard_for",
]
