"""repro.serve — incremental solving service over the reducing-peeling core.

The one-shot solvers answer "what is a near-maximum independent set of this
graph?"; this package answers the production-shaped question "…and now the
graph changed, again" without paying a cold solve per query:

* :class:`~repro.serve.service.SolverService` — register graphs, query
  repeatedly, mutate between queries;
* :class:`~repro.serve.dynamic_graph.DynamicGraph` — the mutable front for
  the immutable CSR :class:`~repro.graphs.static_graph.Graph`;
* :class:`~repro.serve.cache.KernelCache` — bounded LRU of solved snapshots
  keyed by :func:`~repro.serve.fingerprint.graph_fingerprint`;
* :mod:`~repro.serve.repair` — localized repair of a solution around the
  mutated region;
* :mod:`~repro.serve.requests` — the JSONL request protocol behind
  ``repro serve``;
* :mod:`~repro.serve.smoke` — the CI smoke gauntlet
  (``python -m repro.serve.smoke``).

See ``docs/serving.md`` for the full tour.
"""

from .cache import CacheEntry, KernelCache
from .dynamic_graph import MUTATION_KINDS, DynamicGraph, Mutation
from .fingerprint import graph_fingerprint
from .repair import RepairOutcome, cold_solve, patch_solution, repair_solution
from .requests import handle_request, run_requests, serve_stream
from .service import SNAPSHOT_VERSION, ServeResult, ServiceConfig, SolverService

__all__ = [
    "CacheEntry",
    "DynamicGraph",
    "KernelCache",
    "MUTATION_KINDS",
    "Mutation",
    "RepairOutcome",
    "SNAPSHOT_VERSION",
    "ServeResult",
    "ServiceConfig",
    "SolverService",
    "cold_solve",
    "graph_fingerprint",
    "handle_request",
    "patch_solution",
    "repair_solution",
    "run_requests",
    "serve_stream",
]
