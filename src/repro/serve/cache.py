"""Bounded LRU cache of solved kernel state, keyed by graph fingerprint.

Strash ("On the Power of Simple Reductions") argues the kernel — not the
raw graph — is the asset worth keeping warm: it is what every repeated
query re-derives and what all the solve time flows through.  The cache
therefore stores, per ``(fingerprint, algorithm)`` pair, the *outcome* of
kernelizing-and-solving a snapshot: the solution in the snapshot's compact
id space, the Theorem-6.1 bound, the kernel dimensions, and the rule
counters.  Two registered graphs that are structurally identical share
entries — the fingerprint, not the handle, is the key.

The cache is bounded (LRU eviction) because a mutation-heavy workload
creates a new fingerprint per mutation batch and would otherwise grow the
map without limit.  Hit/miss/eviction counters feed the service's
telemetry (``serve:cache-hit`` / ``serve:cache-miss``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..obs.metrics import (
    METRIC_SERVE_CACHE_ENTRIES,
    METRIC_SERVE_CACHE_EVICTIONS,
    METRIC_SERVE_CACHE_HITS,
    METRIC_SERVE_CACHE_MISSES,
    MetricsRegistry,
)

__all__ = ["CacheEntry", "KernelCache"]


@dataclass(frozen=True)
class CacheEntry:
    """One solved snapshot, in the snapshot's compact id space.

    ``solution`` uses compact ids (``0 .. n-1`` of the fingerprinted
    snapshot) so the entry is handle-independent; callers translate through
    their own ``old_ids`` map.  ``exact_bound`` records whether
    ``upper_bound`` is a Theorem-6.1 certificate (cold solves) or the
    trivial ``n`` (repaired solutions, which carry no certificate).
    """

    fingerprint: str
    algorithm: str
    solution: Tuple[int, ...]
    upper_bound: int
    is_exact: bool
    exact_bound: bool
    kernel_n: int = -1
    kernel_m: int = -1
    rule_counts: Dict[str, int] = field(default_factory=dict)
    solver_elapsed: float = 0.0

    @property
    def size(self) -> int:
        """Solution cardinality."""
        return len(self.solution)

    def to_payload(self) -> Dict[str, object]:
        """JSON-serialisable form (service snapshots)."""
        return {
            "fingerprint": self.fingerprint,
            "algorithm": self.algorithm,
            "solution": list(self.solution),
            "upper_bound": self.upper_bound,
            "is_exact": self.is_exact,
            "exact_bound": self.exact_bound,
            "kernel_n": self.kernel_n,
            "kernel_m": self.kernel_m,
            "rule_counts": dict(self.rule_counts),
            "solver_elapsed": self.solver_elapsed,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "CacheEntry":
        """Rebuild an entry dumped with :meth:`to_payload`."""
        return cls(
            fingerprint=str(payload["fingerprint"]),
            algorithm=str(payload["algorithm"]),
            solution=tuple(int(v) for v in payload["solution"]),  # type: ignore[union-attr]
            upper_bound=int(payload["upper_bound"]),  # type: ignore[arg-type]
            is_exact=bool(payload["is_exact"]),
            exact_bound=bool(payload["exact_bound"]),
            kernel_n=int(payload.get("kernel_n", -1)),  # type: ignore[arg-type]
            kernel_m=int(payload.get("kernel_m", -1)),  # type: ignore[arg-type]
            rule_counts={
                str(k): int(v)
                for k, v in payload.get("rule_counts", {}).items()  # type: ignore[union-attr]
            },
            solver_elapsed=float(payload.get("solver_elapsed", 0.0)),  # type: ignore[arg-type]
        )


class KernelCache:
    """Bounded LRU map ``(fingerprint, algorithm) -> CacheEntry``.

    Traffic accounting lives in a :class:`~repro.obs.metrics.MetricsRegistry`
    — pass the owning service's registry to share one source of truth, or
    let the cache build a private one.  The classic ``hits`` / ``misses`` /
    ``evictions`` attributes are thin read-only views over the registry, so
    the dict-style :meth:`counters` and a Prometheus scrape can never
    disagree.
    """

    def __init__(
        self, capacity: int = 64, metrics: Optional[MetricsRegistry] = None
    ) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[str, str], CacheEntry]" = OrderedDict()
        self.metrics = metrics if metrics is not None else MetricsRegistry(
            label="kernel-cache"
        )

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hits(self) -> int:
        """Lookup hits (registry view)."""
        return int(self.metrics.value(METRIC_SERVE_CACHE_HITS))

    @property
    def misses(self) -> int:
        """Lookup misses (registry view)."""
        return int(self.metrics.value(METRIC_SERVE_CACHE_MISSES))

    @property
    def evictions(self) -> int:
        """LRU evictions (registry view)."""
        return int(self.metrics.value(METRIC_SERVE_CACHE_EVICTIONS))

    def get(self, fingerprint: str, algorithm: str) -> Optional[CacheEntry]:
        """Look up an entry, refreshing its LRU position on a hit."""
        key = (fingerprint, algorithm)
        entry = self._entries.get(key)
        if entry is None:
            self.metrics.inc(METRIC_SERVE_CACHE_MISSES)
            return None
        self._entries.move_to_end(key)
        self.metrics.inc(METRIC_SERVE_CACHE_HITS)
        return entry

    def put(self, entry: CacheEntry) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail if full."""
        key = (entry.fingerprint, entry.algorithm)
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = entry
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.metrics.inc(METRIC_SERVE_CACHE_EVICTIONS)
        self.metrics.set_gauge(METRIC_SERVE_CACHE_ENTRIES, len(self._entries))

    def clear(self) -> None:
        """Drop every entry (counters are kept — they describe traffic)."""
        self._entries.clear()
        self.metrics.set_gauge(METRIC_SERVE_CACHE_ENTRIES, 0)

    @property
    def hit_rate(self) -> float:
        """Hits over total lookups (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def counters(self) -> Dict[str, object]:
        """A JSON-serialisable stats view for reports and snapshots."""
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def entries(self) -> Tuple[CacheEntry, ...]:
        """The cached entries, LRU-oldest first (snapshot order)."""
        return tuple(self._entries.values())

    def __repr__(self) -> str:
        return (
            f"<KernelCache {len(self._entries)}/{self.capacity} "
            f"hits={self.hits} misses={self.misses}>"
        )
