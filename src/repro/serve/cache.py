"""Bounded LRU cache of solved kernel state, keyed by graph fingerprint.

Strash ("On the Power of Simple Reductions") argues the kernel — not the
raw graph — is the asset worth keeping warm: it is what every repeated
query re-derives and what all the solve time flows through.  The cache
therefore stores, per ``(fingerprint, algorithm)`` pair, the *outcome* of
kernelizing-and-solving a snapshot: the solution in the snapshot's compact
id space, the Theorem-6.1 bound, the kernel dimensions, and the rule
counters.  Two registered graphs that are structurally identical share
entries — the fingerprint, not the handle, is the key.

The cache is bounded (LRU eviction) because a mutation-heavy workload
creates a new fingerprint per mutation batch and would otherwise grow the
map without limit.  Hit/miss/eviction counters feed the service's
telemetry (``serve:cache-hit`` / ``serve:cache-miss``).

For the sharded front-end (:mod:`repro.serve.frontend`) the per-worker
LRU grows a second level: a :class:`SharedCacheTier` — a fleet-wide
fingerprint-keyed map of entry *payloads* living in a
``multiprocessing.Manager`` dict (process workers) or a plain dict
(thread workers).  A worker that misses locally consults the tier before
solving, so a graph kernelized by one worker is a cache hit for all of
them; tier hits are promoted into the local LRU and counted separately
(``repro_serve_cache_shared_hits_total``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, MutableMapping, Optional, Tuple

from ..obs.metrics import (
    METRIC_SERVE_CACHE_ENTRIES,
    METRIC_SERVE_CACHE_EVICTIONS,
    METRIC_SERVE_CACHE_HITS,
    METRIC_SERVE_CACHE_MISSES,
    METRIC_SERVE_CACHE_SHARED_HITS,
    MetricsRegistry,
)

__all__ = ["CacheEntry", "KernelCache", "SharedCacheTier"]


@dataclass(frozen=True)
class CacheEntry:
    """One solved snapshot, in the snapshot's compact id space.

    ``solution`` uses compact ids (``0 .. n-1`` of the fingerprinted
    snapshot) so the entry is handle-independent; callers translate through
    their own ``old_ids`` map.  ``exact_bound`` records whether
    ``upper_bound`` is a Theorem-6.1 certificate (cold solves) or the
    trivial ``n`` (repaired solutions, which carry no certificate).
    """

    fingerprint: str
    algorithm: str
    solution: Tuple[int, ...]
    upper_bound: int
    is_exact: bool
    exact_bound: bool
    kernel_n: int = -1
    kernel_m: int = -1
    rule_counts: Dict[str, int] = field(default_factory=dict)
    solver_elapsed: float = 0.0

    @property
    def size(self) -> int:
        """Solution cardinality."""
        return len(self.solution)

    def to_payload(self) -> Dict[str, object]:
        """JSON-serialisable form (service snapshots)."""
        return {
            "fingerprint": self.fingerprint,
            "algorithm": self.algorithm,
            "solution": list(self.solution),
            "upper_bound": self.upper_bound,
            "is_exact": self.is_exact,
            "exact_bound": self.exact_bound,
            "kernel_n": self.kernel_n,
            "kernel_m": self.kernel_m,
            "rule_counts": dict(self.rule_counts),
            "solver_elapsed": self.solver_elapsed,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "CacheEntry":
        """Rebuild an entry dumped with :meth:`to_payload`."""
        return cls(
            fingerprint=str(payload["fingerprint"]),
            algorithm=str(payload["algorithm"]),
            solution=tuple(int(v) for v in payload["solution"]),  # type: ignore[union-attr]
            upper_bound=int(payload["upper_bound"]),  # type: ignore[arg-type]
            is_exact=bool(payload["is_exact"]),
            exact_bound=bool(payload["exact_bound"]),
            kernel_n=int(payload.get("kernel_n", -1)),  # type: ignore[arg-type]
            kernel_m=int(payload.get("kernel_m", -1)),  # type: ignore[arg-type]
            rule_counts={
                str(k): int(v)
                for k, v in payload.get("rule_counts", {}).items()  # type: ignore[union-attr]
            },
            solver_elapsed=float(payload.get("solver_elapsed", 0.0)),  # type: ignore[arg-type]
        )


class SharedCacheTier:
    """A fleet-wide second cache level: fingerprint-keyed entry payloads.

    The store is any mutable mapping of ``"fingerprint|algorithm"`` →
    :meth:`CacheEntry.to_payload` dicts: a plain dict for thread-mode shard
    workers, a ``multiprocessing.Manager().dict()`` proxy for process
    workers (the proxy pickles, so the tier rides the worker spawn payload).
    Eviction is bounded but deliberately coarse — payloads carry an
    insertion sequence number and the oldest is dropped when the tier is
    full; the precise LRU lives in each worker's local
    :class:`KernelCache`.
    """

    _SEQ_KEY = "__tier_seq__"

    def __init__(
        self,
        store: Optional[MutableMapping] = None,
        lock: Optional[object] = None,
        capacity: int = 512,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"tier capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._store: MutableMapping = store if store is not None else {}
        self._lock = lock if lock is not None else threading.Lock()

    @staticmethod
    def _key(fingerprint: str, algorithm: str) -> str:
        return f"{fingerprint}|{algorithm}"

    def __len__(self) -> int:
        with self._lock:
            return len(self._store) - (1 if self._SEQ_KEY in self._store else 0)

    def get(self, fingerprint: str, algorithm: str) -> Optional[CacheEntry]:
        """Look up an entry; ``None`` when the fleet has not solved it."""
        with self._lock:
            payload = self._store.get(self._key(fingerprint, algorithm))
        if payload is None:
            return None
        return CacheEntry.from_payload(payload)

    def put(self, entry: CacheEntry) -> None:
        """Publish an entry payload for the whole fleet, evicting oldest."""
        payload = entry.to_payload()
        with self._lock:
            seq = int(self._store.get(self._SEQ_KEY, 0)) + 1
            self._store[self._SEQ_KEY] = seq
            payload["__seq"] = seq
            self._store[self._key(entry.fingerprint, entry.algorithm)] = payload
            while len(self._store) - 1 > self.capacity:
                oldest = min(
                    (
                        (value.get("__seq", 0), key)
                        for key, value in self._store.items()
                        if key != self._SEQ_KEY
                    ),
                )[1]
                del self._store[oldest]

    def __repr__(self) -> str:
        return f"<SharedCacheTier {len(self)}/{self.capacity}>"


class KernelCache:
    """Bounded LRU map ``(fingerprint, algorithm) -> CacheEntry``.

    Traffic accounting lives in a :class:`~repro.obs.metrics.MetricsRegistry`
    — pass the owning service's registry to share one source of truth, or
    let the cache build a private one.  The classic ``hits`` / ``misses`` /
    ``evictions`` attributes are thin read-only views over the registry, so
    the dict-style :meth:`counters` and a Prometheus scrape can never
    disagree.

    With a :class:`SharedCacheTier` attached, a local miss consults the
    tier before reporting a miss: a tier hit is promoted into the local LRU
    and counted as ``shared_hits`` (never double-counted as a miss), so
    ``hits + shared_hits + misses`` always equals the number of lookups.
    All operations are thread-safe: thread-mode shard dispatchers share one
    process and hammer their caches concurrently.
    """

    def __init__(
        self,
        capacity: int = 64,
        metrics: Optional[MetricsRegistry] = None,
        tier: Optional[SharedCacheTier] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[str, str], CacheEntry]" = OrderedDict()
        self.metrics = metrics if metrics is not None else MetricsRegistry(
            label="kernel-cache"
        )
        self._tier = tier
        self._lock = threading.Lock()

    def attach_tier(self, tier: Optional[SharedCacheTier]) -> None:
        """Attach (or detach, with ``None``) the fleet-shared second level."""
        self._tier = tier

    @property
    def tier(self) -> Optional[SharedCacheTier]:
        """The attached shared tier, if any."""
        return self._tier

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hits(self) -> int:
        """Local lookup hits (registry view)."""
        return int(self.metrics.value(METRIC_SERVE_CACHE_HITS))

    @property
    def shared_hits(self) -> int:
        """Lookups answered by the shared tier (registry view)."""
        return int(self.metrics.value(METRIC_SERVE_CACHE_SHARED_HITS))

    @property
    def misses(self) -> int:
        """Lookup misses (registry view)."""
        return int(self.metrics.value(METRIC_SERVE_CACHE_MISSES))

    @property
    def evictions(self) -> int:
        """LRU evictions (registry view)."""
        return int(self.metrics.value(METRIC_SERVE_CACHE_EVICTIONS))

    def get(self, fingerprint: str, algorithm: str) -> Optional[CacheEntry]:
        """Look up an entry, refreshing its LRU position on a hit.

        Falls through to the shared tier on a local miss; only a miss in
        *both* levels counts as a miss.
        """
        key = (fingerprint, algorithm)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
        if entry is not None:
            self.metrics.inc(METRIC_SERVE_CACHE_HITS)
            return entry
        if self._tier is not None:
            shared = self._tier.get(fingerprint, algorithm)
            if shared is not None:
                self._put_local(shared)
                self.metrics.inc(METRIC_SERVE_CACHE_SHARED_HITS)
                return shared
        self.metrics.inc(METRIC_SERVE_CACHE_MISSES)
        return None

    def _put_local(self, entry: CacheEntry) -> None:
        key = (entry.fingerprint, entry.algorithm)
        evicted = 0
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
            entries = len(self._entries)
        if evicted:
            self.metrics.inc(METRIC_SERVE_CACHE_EVICTIONS, evicted)
        self.metrics.set_gauge(METRIC_SERVE_CACHE_ENTRIES, entries)

    def put(self, entry: CacheEntry) -> None:
        """Insert (or refresh) an entry, evicting the LRU tail if full.

        The entry is also published to the shared tier (when attached) so
        sibling workers see it on their next lookup.
        """
        self._put_local(entry)
        if self._tier is not None:
            self._tier.put(entry)

    def clear(self) -> None:
        """Drop every local entry (counters are kept — they describe
        traffic; the shared tier is left for the rest of the fleet)."""
        with self._lock:
            self._entries.clear()
        self.metrics.set_gauge(METRIC_SERVE_CACHE_ENTRIES, 0)

    @property
    def hit_rate(self) -> float:
        """Hits (local + shared) over total lookups (0.0 before any)."""
        served = self.hits + self.shared_hits
        total = served + self.misses
        return served / total if total else 0.0

    def counters(self) -> Dict[str, object]:
        """A JSON-serialisable stats view for reports and snapshots."""
        return {
            "capacity": self.capacity,
            "entries": len(self._entries),
            "hits": self.hits,
            "shared_hits": self.shared_hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def entries(self) -> Tuple[CacheEntry, ...]:
        """The cached entries, LRU-oldest first (snapshot order)."""
        return tuple(self._entries.values())

    def __repr__(self) -> str:
        return (
            f"<KernelCache {len(self._entries)}/{self.capacity} "
            f"hits={self.hits} misses={self.misses}>"
        )
