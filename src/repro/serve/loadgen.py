"""Seeded load generation for the serving stack, and its gated benchmark.

``repro loadgen`` replays a deterministic mixed workload — registers,
bursty solves, mutations, stats probes — against both serving paths and
reports what a capacity review needs: p50/p99 latency, request
throughput, shed rate, coalesce rate, and fleet cache hit rate.

Determinism is the point.  The workload is a pure function of
(:class:`LoadgenConfig`, seed): same seed, same graphs, same request
stream, same rids.  That is what lets the harness make the strong claim
the ``serve_load`` bench track gates on — the async front-end's answers
are compared *rid by rid* against the synchronous single-process
:class:`~repro.serve.service.SolverService` answers for the identical
stream, and must match exactly once provenance and timing fields
(``rid``/``elapsed``/``source``/``backend``/…) are stripped.  Those
fields legitimately differ: a coalesced follower inherits its leader's
``source``, a shard worker may repair where the sync service cold-solves
after an eviction — but the independent set, its bound, and the
exactness flags must be identical.

The workload is burst-shaped (``burst`` consecutive identical solves per
arrival) because that is the serving pattern the front-end is built for:
read-heavy traffic where many concurrent callers ask about the same
graph between mutations.  The sync service pays the full
fingerprint-and-lookup path per request; the front-end answers each
burst with one dispatch.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from random import Random
from typing import Dict, List, Optional, Tuple

from ..errors import ReproError
from ..graphs.generators import gnp_random_graph
from .requests import handle_request
from .router import ShardRouter
from .service import ServiceConfig, SolverService

__all__ = [
    "LoadgenConfig",
    "LoadgenReport",
    "build_workload",
    "normalize_response",
    "replay_async",
    "replay_sync",
    "run_serve_load_benchmark",
]

#: Response fields that legitimately differ between serving paths:
#: request identity, timing, and answer *provenance* — everything except
#: the answer itself.
PROVENANCE_FIELDS = frozenset(
    {
        "rid",
        "elapsed",
        "source",
        "backend",
        "repair_scope",
        "coalesced",
        "shed",
        "stale",
    }
)


@dataclass(frozen=True)
class LoadgenConfig:
    """Shape of one seeded workload (all counts are exact, not expected).

    ``requests`` counts the *stream* — the measured steady-state traffic.
    The ``graphs`` register requests ride ahead of it as untimed setup in
    every replay: registration kernelizes (a cold-start cost every serving
    path pays identically, and exactly once per graph), so folding it into
    the throughput number would just dilute the comparison both paths are
    meant to expose.
    """

    seed: int = 2017
    graphs: int = 4
    vertices: int = 2500
    edge_probability: float = 0.008
    requests: int = 400
    burst: int = 8
    mutate_every: int = 6  # one mutation burst per this many arrivals
    stats_every: int = 25  # one stats probe per this many arrivals
    timeout: Optional[float] = None  # per-solve budget; None = unbounded
    tenants: int = 3

    def graph_specs(self) -> List[Tuple[str, int, float, int]]:
        """The (id, n, p, seed) of every registered graph."""
        if self.graphs < 1:
            raise ReproError(f"loadgen needs >= 1 graph, got {self.graphs}")
        if self.requests < 1 or self.burst < 1:
            raise ReproError(
                f"loadgen needs >= 1 request and burst, got "
                f"requests={self.requests} burst={self.burst}"
            )
        return [
            (f"g{index}", self.vertices, self.edge_probability, self.seed + index)
            for index in range(self.graphs)
        ]


@dataclass
class LoadgenReport:
    """One replay's measurements plus its normalized answers."""

    label: str
    wall: float
    latencies: List[float] = field(default_factory=list)
    responses: List[Dict[str, object]] = field(default_factory=list)
    measured: int = 0
    shed: int = 0
    coalesced: int = 0
    errors: int = 0
    cache_hit_rate: float = 0.0

    @property
    def throughput(self) -> float:
        """Stream requests per second (setup registers are untimed)."""
        return self.measured / self.wall if self.wall > 0 else 0.0

    def percentile(self, q: float) -> float:
        """Latency percentile ``q`` in [0, 1] (0.0 with no samples)."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def to_payload(self) -> Dict[str, object]:
        """JSON-serialisable summary (what ``repro loadgen`` prints)."""
        return {
            "label": self.label,
            "requests": len(self.responses),
            "measured": self.measured,
            "wall": self.wall,
            "throughput": self.throughput,
            "p50": self.percentile(0.50),
            "p99": self.percentile(0.99),
            "shed": self.shed,
            "coalesced": self.coalesced,
            "errors": self.errors,
            "cache_hit_rate": self.cache_hit_rate,
        }


def build_workload(config: LoadgenConfig) -> List[Dict[str, object]]:
    """The full deterministic request stream, registers first.

    Every request carries a stable ``rid`` (stream position) and a
    seeded ``tenant`` — the join keys for the equivalence check and for
    trace attribution.
    """
    rng = Random(config.seed)
    requests: List[Dict[str, object]] = []
    for graph_id, n, p, seed in config.graph_specs():
        graph = gnp_random_graph(n, p, seed=seed, name=graph_id)
        requests.append(
            {
                "op": "register",
                "id": graph_id,
                "rid": f"s{len(requests):06d}",
                "n": graph.n,
                "edges": [[u, v] for u, v in graph.edges()],
            }
        )
    # One warmup solve per graph rides in the setup prefix: it pays the
    # unavoidable first cold solve outside the measured window, so the
    # stream measures steady-state serving (the warmup *answers* still
    # join the equivalence check — they must match like any other rid).
    for graph_id, _, _, _ in config.graph_specs():
        requests.append(
            {"op": "solve", "id": graph_id, "rid": f"s{len(requests):06d}"}
        )
    graph_ids = [spec[0] for spec in config.graph_specs()]
    setup = len(requests)
    arrival = 0
    while len(requests) - setup < config.requests:
        arrival += 1
        graph_id = rng.choice(graph_ids)
        tenant = f"t{rng.randrange(config.tenants)}"
        if config.mutate_every and arrival % config.mutate_every == 0:
            u = rng.randrange(config.vertices)
            v = rng.randrange(config.vertices)
            if u != v:
                kind = "add_edge" if rng.random() < 0.7 else "remove_edge"
                requests.append(
                    {
                        "op": kind,
                        "id": graph_id,
                        "u": u,
                        "v": v,
                        "rid": f"r{len(requests):06d}",
                        "tenant": tenant,
                    }
                )
        elif config.stats_every and arrival % config.stats_every == 0:
            requests.append(
                {"op": "stats", "rid": f"r{len(requests):06d}", "tenant": tenant}
            )
        for _ in range(config.burst):
            if len(requests) - setup >= config.requests:
                break
            solve: Dict[str, object] = {
                "op": "solve",
                "id": graph_id,
                "rid": f"r{len(requests):06d}",
                "tenant": tenant,
            }
            if config.timeout is not None:
                solve["timeout"] = config.timeout
            requests.append(solve)
    return requests[: setup + config.requests]


def split_workload(
    workload: List[Dict[str, object]],
) -> Tuple[List[Dict[str, object]], List[Dict[str, object]]]:
    """(setup, stream): the untimed warmup prefix vs the measured rest.

    Setup requests are marked by their ``s``-prefixed rids (registers plus
    one warmup solve per graph); the measured stream uses ``r`` rids.
    """
    setup: List[Dict[str, object]] = []
    for request in workload:
        if not str(request.get("rid", "")).startswith("s"):
            break
        setup.append(request)
    return setup, workload[len(setup):]


def normalize_response(response: Dict[str, object]) -> Dict[str, object]:
    """Strip provenance/timing so two serving paths can be compared.

    ``stats`` responses collapse to their envelope — the two paths
    legitimately report differently-shaped counters (single service vs
    aggregated fleet).
    """
    if response.get("op") == "stats":
        return {"op": "stats", "ok": response.get("ok")}
    return {
        key: value
        for key, value in response.items()
        if key not in PROVENANCE_FIELDS and key not in ("counters", "frontend")
    }


def _sync_cache_hit_rate(service: SolverService) -> float:
    counters = service.cache.counters()
    return float(counters.get("hit_rate", 0.0))  # type: ignore[arg-type]


def replay_sync(
    workload: List[Dict[str, object]],
    service_config: Optional[ServiceConfig] = None,
    window: int = 64,
) -> LoadgenReport:
    """The baseline: one synchronous single-process service, in order.

    The setup prefix is executed untimed; the clock covers only the
    request stream.  Setup responses are still recorded so the
    equivalence check spans every rid.

    Latency is reported under the same closed-loop client model the async
    replay uses — ``window`` callers, each sending its next request when
    one completes.  Against a serial server that makes a request's
    latency the rolling sum of the last ``window`` service times (queue
    wait + service), which is what a caller actually experiences; bare
    per-call service time would flatter the baseline's tail by measuring
    an offered load of one.
    """
    service = SolverService(service_config or ServiceConfig())
    report = LoadgenReport(label="sync", wall=0.0)
    setup, stream = split_workload(workload)
    for request in setup:
        response = handle_request(service, request)
        report.responses.append(response)
        if not response.get("ok"):
            report.errors += 1
    service_seconds: List[float] = []
    started = time.perf_counter()
    for request in stream:
        t0 = time.perf_counter()
        response = handle_request(service, request)
        service_seconds.append(time.perf_counter() - t0)
        report.responses.append(response)
        if not response.get("ok"):
            report.errors += 1
    report.wall = time.perf_counter() - started
    report.measured = len(stream)
    rolling = 0.0
    for index, seconds in enumerate(service_seconds):
        rolling += seconds
        if index >= window:
            rolling -= service_seconds[index - window]
        report.latencies.append(rolling)
    report.cache_hit_rate = _sync_cache_hit_rate(service)
    return report


def replay_async(
    workload: List[Dict[str, object]],
    shards: int = 4,
    mode: str = "thread",
    max_batch: int = 32,
    max_queue_depth: int = 128,
    window: int = 64,
    service_config: Optional[ServiceConfig] = None,
) -> LoadgenReport:
    """Replay through the async front-end, pipelined but order-preserving.

    Requests are admitted in stream order (task creation order pins the
    enqueue order, so per-graph FIFO — the consistency contract — holds)
    with at most ``window`` outstanding at once: enough concurrency for
    micro-batching to engage, bounded so write verbs are never refused by
    a full queue during an equivalence run.
    """
    import asyncio

    from .frontend import AsyncFrontend

    report = LoadgenReport(label=f"async-{mode}-{shards}shard", wall=0.0)

    async def _run() -> None:
        router = ShardRouter(shards=shards, config=service_config, mode=mode)
        frontend = AsyncFrontend(
            router,
            max_queue_depth=max_queue_depth,
            max_batch=max_batch,
            own_router=True,
        )
        await frontend.start()
        loop = asyncio.get_running_loop()
        gate = asyncio.Semaphore(window)
        setup, stream = split_workload(workload)
        setup_responses = [await frontend.submit(request) for request in setup]
        slots: List[Optional[Dict[str, object]]] = [None] * len(stream)
        latencies: List[float] = [0.0] * len(stream)

        async def _one(position: int, request: Dict[str, object]) -> None:
            t0 = loop.time()
            try:
                slots[position] = await frontend.submit(request)
            finally:
                latencies[position] = loop.time() - t0
                gate.release()

        started = time.perf_counter()
        tasks = []
        for position, request in enumerate(stream):
            await gate.acquire()
            tasks.append(asyncio.create_task(_one(position, request)))
        await asyncio.gather(*tasks)
        report.wall = time.perf_counter() - started
        report.measured = len(stream)
        report.latencies = latencies
        report.responses = setup_responses + [
            slot for slot in slots if slot is not None
        ]
        report.errors = sum(
            1 for response in report.responses if not response.get("ok")
        )
        report.shed = sum(
            1 for response in report.responses if response.get("shed")
        )
        report.coalesced = sum(
            1 for response in report.responses if response.get("coalesced")
        )
        counters = router.counters()
        cache = counters.get("cache", {})
        if isinstance(cache, dict):
            report.cache_hit_rate = float(cache.get("hit_rate", 0.0))  # type: ignore[arg-type]
        await frontend.drain()

    asyncio.run(_run())
    return report


def compare_reports(
    baseline: LoadgenReport, candidate: LoadgenReport
) -> Dict[str, object]:
    """Rid-by-rid equivalence of two replays of the same workload."""
    by_rid = {
        str(response.get("rid")): normalize_response(response)
        for response in baseline.responses
    }
    mismatches: List[str] = []
    for response in candidate.responses:
        rid = str(response.get("rid"))
        expected = by_rid.get(rid)
        actual = normalize_response(response)
        if expected is None:
            mismatches.append(f"{rid}: missing in baseline")
        elif expected != actual:
            mismatches.append(
                f"{rid}: {json.dumps(expected, sort_keys=True)} != "
                f"{json.dumps(actual, sort_keys=True)}"
            )
    return {
        "equivalent": not mismatches,
        "compared": len(candidate.responses),
        "mismatches": mismatches[:10],
    }


def validate_shed_answers(
    workload: List[Dict[str, object]],
    shards: int = 2,
    mode: str = "thread",
) -> Dict[str, object]:
    """Force deadline shedding and check every shed answer is still valid.

    Replays with microscopic solve budgets and a tiny admission window so
    the estimated wait always exceeds the deadline; every shed response
    must still be ``ok`` with a real independent set (the stale-degradation
    promise), never an error.
    """
    squeezed: List[Dict[str, object]] = []
    for request in workload:
        if request.get("op") == "solve":
            tight = dict(request)
            tight["timeout"] = 1e-9
            squeezed.append(tight)
        else:
            squeezed.append(request)
    report = replay_async(
        squeezed,
        shards=shards,
        mode=mode,
        max_batch=4,
        max_queue_depth=8,
        window=8,
    )
    shed_ok = 0
    shed_bad = 0
    for response in report.responses:
        if not response.get("shed"):
            continue
        valid = (
            response.get("ok") is True
            and isinstance(response.get("independent_set"), list)
            and int(response.get("size", 0)) > 0  # type: ignore[arg-type]
        )
        if valid:
            shed_ok += 1
        else:
            shed_bad += 1
    return {
        "shed": report.shed,
        "shed_valid": shed_ok,
        "shed_invalid": shed_bad,
        "all_valid": report.shed > 0 and shed_bad == 0,
    }


def run_serve_load_benchmark(
    config: Optional[LoadgenConfig] = None,
    shards: int = 4,
    mode: str = "thread",
    service_config: Optional[ServiceConfig] = None,
) -> Dict[str, object]:
    """The ``serve_load`` gated-track payload: sync vs async, verified.

    Returns the record ``bench_regression`` commits — walls, latency
    percentiles, throughput speedup, the rid-by-rid equivalence verdict,
    and the shed-validity verdict.  Raises :class:`ReproError` if the
    equivalence check fails: a fast wrong answer must never become a
    committed baseline.
    """
    config = config or LoadgenConfig()
    workload = build_workload(config)
    sync_report = replay_sync(workload, service_config)
    async_report = replay_async(
        workload, shards=shards, mode=mode, service_config=service_config
    )
    equivalence = compare_reports(sync_report, async_report)
    if not equivalence["equivalent"]:
        raise ReproError(
            "serve_load equivalence failed: "
            + "; ".join(equivalence["mismatches"])  # type: ignore[arg-type]
        )
    shed_check = validate_shed_answers(workload, shards=min(2, shards), mode=mode)
    return {
        "config": {
            "seed": config.seed,
            "graphs": config.graphs,
            "vertices": config.vertices,
            "requests": config.requests,
            "burst": config.burst,
            "shards": shards,
            "mode": mode,
        },
        "sync": sync_report.to_payload(),
        "async": async_report.to_payload(),
        "sync_wall": sync_report.wall,
        "async_wall": async_report.wall,
        "speedup": (
            async_report.throughput / sync_report.throughput
            if sync_report.throughput
            else 0.0
        ),
        "equivalence": equivalence,
        "shed_check": shed_check,
    }
