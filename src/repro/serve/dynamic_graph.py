"""A mutable graph that snapshots into the immutable solver representation.

:class:`~repro.graphs.static_graph.Graph` is deliberately immutable — every
solver in the library assumes frozen CSR buffers.  The serving layer sits in
front of that world: callers register a graph once and then mutate it
between queries (``add_edge`` / ``remove_edge`` / ``add_vertex`` /
``remove_vertex``, or a batched :meth:`DynamicGraph.apply`).

:class:`DynamicGraph` keeps the mutable adjacency as a list of sets over a
stable *dynamic id* space: ids are never reused, removed vertices stay
allocated-but-dead, and every mutation reports the set of live vertices
whose neighbourhood changed — the **dirty seeds** that drive localized
repair (:mod:`repro.serve.repair`).  :meth:`snapshot` compacts the live
vertices into a fresh immutable :class:`Graph` plus an id map, cached until
the next mutation so repeated warm queries pay nothing beyond a version
check.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import accumulate, chain
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..errors import ReproError, VertexError
from ..graphs.static_graph import Graph
from .fingerprint import graph_fingerprint

__all__ = ["DynamicGraph", "Mutation", "MUTATION_KINDS"]

#: The four mutation verbs, in wire-format spelling.
MUTATION_KINDS = ("add_edge", "remove_edge", "add_vertex", "remove_vertex")


@dataclass(frozen=True)
class Mutation:
    """One graph mutation in wire form.

    ``kind`` is one of :data:`MUTATION_KINDS`; ``u``/``v`` are dynamic
    vertex ids (``add_vertex`` uses neither, ``remove_vertex`` only ``u``).
    """

    kind: str
    u: Optional[int] = None
    v: Optional[int] = None

    def as_list(self) -> List[object]:
        """The JSONL wire encoding: ``["add_edge", u, v]`` etc."""
        if self.kind == "add_vertex":
            return [self.kind]
        if self.kind == "remove_vertex":
            return [self.kind, self.u]
        return [self.kind, self.u, self.v]

    @classmethod
    def from_list(cls, raw: List[object]) -> "Mutation":
        """Parse the wire encoding produced by :meth:`as_list`."""
        if not raw or raw[0] not in MUTATION_KINDS:
            raise ReproError(f"bad mutation {raw!r}; kinds: {MUTATION_KINDS}")
        kind = str(raw[0])
        if kind == "add_vertex":
            return cls(kind)
        if kind == "remove_vertex":
            if len(raw) < 2:
                raise ReproError(f"remove_vertex needs a vertex id, got {raw!r}")
            return cls(kind, int(raw[1]))  # type: ignore[arg-type]
        if len(raw) < 3:
            raise ReproError(f"{kind} needs two vertex ids, got {raw!r}")
        return cls(kind, int(raw[1]), int(raw[2]))  # type: ignore[arg-type]


class DynamicGraph:
    """Mutable, simple, undirected graph over a stable dynamic-id space."""

    __slots__ = (
        "name",
        "version",
        "_adj",
        "_alive",
        "_live",
        "_edges",
        "_snapshot",
        "_fingerprint",
        "_base",
        "_dirty_rows",
        "_liveness_dirty",
    )

    def __init__(self, graph: Optional[Graph] = None, name: str = "") -> None:
        if graph is not None:
            self._adj: List[Set[int]] = graph.adjacency_sets()
            self._alive = bytearray([1]) * graph.n if graph.n else bytearray()
            self._live = graph.n
            self._edges = graph.m
            self.name = name or graph.name
        else:
            self._adj = []
            self._alive = bytearray()
            self._live = 0
            self._edges = 0
            self.name = name
        #: Bumped on every effective mutation; snapshot/fingerprint caches
        #: are valid only for the version they were computed at.
        self.version = 0
        self._snapshot: Optional[Tuple[int, Graph, List[int]]] = None
        self._fingerprint: Optional[Tuple[int, str]] = None
        # Incremental-rebuild state: the last materialised snapshot
        # (graph, old_ids, dynamic->compact map), the dynamic ids whose
        # neighbourhood changed since it was built, and whether the live
        # vertex set itself changed (which invalidates the id map).
        self._base: Optional[Tuple[Graph, List[int], Dict[int, int]]] = None
        self._dirty_rows: Set[int] = set()
        self._liveness_dirty = False

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def n_allocated(self) -> int:
        """Total ids ever allocated (live + dead)."""
        return len(self._adj)

    @property
    def n(self) -> int:
        """Number of live vertices."""
        return self._live

    @property
    def m(self) -> int:
        """Number of live undirected edges."""
        return self._edges

    def is_live(self, v: int) -> bool:
        """Whether dynamic id ``v`` is currently a vertex of the graph."""
        return 0 <= v < len(self._adj) and bool(self._alive[v])

    def live_vertices(self) -> Iterator[int]:
        """Iterate over the live dynamic ids in ascending order."""
        alive = self._alive
        return (v for v in range(len(self._adj)) if alive[v])

    def degree(self, v: int) -> int:
        """Degree of live vertex ``v``."""
        self._check_live(v)
        return len(self._adj[v])

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """The sorted neighbourhood of live vertex ``v`` (dynamic ids)."""
        self._check_live(v)
        return tuple(sorted(self._adj[v]))

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the live edge ``(u, v)`` is present."""
        self._check_live(u)
        self._check_live(v)
        return v in self._adj[u]

    # ------------------------------------------------------------------
    # Mutations — each returns the set of dirty live seeds
    # ------------------------------------------------------------------
    def add_vertex(self) -> int:
        """Allocate a fresh isolated vertex; returns its dynamic id."""
        v = len(self._adj)
        self._adj.append(set())
        self._alive.append(1)
        self._live += 1
        self._liveness_dirty = True
        self._bump()
        return v

    def remove_vertex(self, v: int) -> Set[int]:
        """Delete live vertex ``v`` and its incident edges.

        Returns the former neighbours — the live vertices whose
        neighbourhoods changed.  The id stays allocated and dead; it is
        never reused.
        """
        self._check_live(v)
        dirty = set(self._adj[v])
        for w in dirty:
            self._adj[w].discard(v)
        self._edges -= len(dirty)
        self._adj[v] = set()
        self._alive[v] = 0
        self._live -= 1
        self._liveness_dirty = True
        self._bump()
        return dirty

    def add_edge(self, u: int, v: int) -> Set[int]:
        """Insert the edge ``(u, v)``; no-op (empty dirty set) if present."""
        self._check_live(u)
        self._check_live(v)
        if u == v:
            raise ReproError(f"self-loop ({u}, {v}) not allowed")
        if v in self._adj[u]:
            return set()
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._edges += 1
        self._dirty_rows.update((u, v))
        self._bump()
        return {u, v}

    def remove_edge(self, u: int, v: int) -> Set[int]:
        """Delete the edge ``(u, v)``; no-op (empty dirty set) if absent."""
        self._check_live(u)
        self._check_live(v)
        if v not in self._adj[u]:
            return set()
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._edges -= 1
        self._dirty_rows.update((u, v))
        self._bump()
        return {u, v}

    def apply(self, mutations: Iterable[Mutation]) -> Set[int]:
        """Apply a mutation batch; returns the union of dirty seeds.

        ``add_vertex`` mutations contribute their new id to the dirty set,
        so a later query knows the newcomer needs a decision.
        """
        dirty: Set[int] = set()
        for mutation in mutations:
            if mutation.kind == "add_vertex":
                dirty.add(self.add_vertex())
            elif mutation.kind == "remove_vertex":
                dirty.discard(mutation.u)  # type: ignore[arg-type]
                dirty |= self.remove_vertex(mutation.u)  # type: ignore[arg-type]
            elif mutation.kind == "add_edge":
                dirty |= self.add_edge(mutation.u, mutation.v)  # type: ignore[arg-type]
            elif mutation.kind == "remove_edge":
                dirty |= self.remove_edge(mutation.u, mutation.v)  # type: ignore[arg-type]
            else:  # pragma: no cover - Mutation.from_list already validates
                raise ReproError(f"unknown mutation kind {mutation.kind!r}")
        return {v for v in dirty if self.is_live(v)}

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> Tuple[Graph, List[int]]:
        """The current graph as ``(immutable_graph, old_ids)``.

        ``old_ids[compact_id] = dynamic_id``; the result is cached until
        the next mutation, so repeated warm queries reuse one compaction.
        When the live vertex set is unchanged since the last build, only
        the mutated rows are re-sorted — unchanged CSR rows are reused
        from the previous snapshot, so an edge flip on a large graph
        costs far less than a full O(n + m) recompaction.
        """
        cached = self._snapshot
        if cached is not None and cached[0] == self.version:
            return cached[1], cached[2]
        adj = self._adj
        base = self._base
        if base is not None and not self._liveness_dirty:
            base_graph, old_ids, compact = base
            changed = self._dirty_rows
            # Slice the frozen CSR tuples directly: one bounds-checked
            # neighbors() call per row would dominate on large graphs.
            base_offsets, base_targets = base_graph.csr_arrays()
            rows: List[Tuple[int, ...]] = [
                tuple(sorted(compact[w] for w in adj[old]))
                if old in changed
                else base_targets[base_offsets[new] : base_offsets[new + 1]]
                for new, old in enumerate(old_ids)
            ]
        else:
            old_ids = [v for v in range(len(adj)) if self._alive[v]]
            compact = {old: new for new, old in enumerate(old_ids)}
            if len(old_ids) == len(adj):  # every id live: identity map
                rows = [tuple(sorted(row)) for row in adj]
            else:
                rows = [
                    tuple(sorted(compact[w] for w in adj[old]))
                    for old in old_ids
                ]
        offsets = list(accumulate(chain((0,), map(len, rows))))
        targets = tuple(chain.from_iterable(rows))
        graph = Graph(offsets, targets, name=self.name)
        self._base = (graph, old_ids, compact)
        self._dirty_rows = set()
        self._liveness_dirty = False
        self._snapshot = (self.version, graph, old_ids)
        return graph, old_ids

    def fingerprint(self) -> str:
        """The structural fingerprint of the current snapshot (cached)."""
        cached = self._fingerprint
        if cached is not None and cached[0] == self.version:
            return cached[1]
        graph, _ = self.snapshot()
        value = graph_fingerprint(graph)
        self._fingerprint = (self.version, value)
        return value

    # ------------------------------------------------------------------
    # Serialisation (service snapshots)
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, object]:
        """A JSON-serialisable dump preserving the dynamic-id space."""
        return {
            "name": self.name,
            "n_allocated": len(self._adj),
            "alive": [v for v in range(len(self._adj)) if self._alive[v]],
            "edges": [
                [u, v]
                for u in range(len(self._adj))
                if self._alive[u]
                for v in sorted(self._adj[u])
                if u < v
            ],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "DynamicGraph":
        """Rebuild a graph dumped with :meth:`to_payload`."""
        dynamic = cls(name=str(payload.get("name", "")))
        n_allocated = int(payload["n_allocated"])  # type: ignore[arg-type]
        alive = {int(v) for v in payload.get("alive", [])}  # type: ignore[union-attr]
        dynamic._adj = [set() for _ in range(n_allocated)]
        dynamic._alive = bytearray(
            1 if v in alive else 0 for v in range(n_allocated)
        )
        dynamic._live = len(alive)
        for u, v in payload.get("edges", []):  # type: ignore[union-attr]
            u, v = int(u), int(v)
            if u not in alive or v not in alive:
                raise ReproError(f"snapshot edge ({u}, {v}) touches a dead vertex")
            dynamic._adj[u].add(v)
            dynamic._adj[v].add(u)
            dynamic._edges += 1
        return dynamic

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _bump(self) -> None:
        self.version += 1
        self._snapshot = None
        self._fingerprint = None

    def _check_live(self, v: int) -> None:
        if not 0 <= v < len(self._adj):
            raise VertexError(v, len(self._adj))
        if not self._alive[v]:
            raise ReproError(f"vertex {v} was removed and its id is retired")

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<DynamicGraph{label} n={self.n} m={self.m} v{self.version}>"
