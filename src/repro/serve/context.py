"""Per-request identity and budget: the tracing handle of the serving layer.

A :class:`RequestContext` travels with one request through
:class:`~repro.serve.service.SolverService`: the request id and tenant are
stamped onto every telemetry span the request opens (including solver
phase spans and, through the worker trace stamps, spans from
:func:`repro.perf.parallel.solve_by_components_parallel` worker
processes), and the deadline is the request's absolute time budget.

Contexts are cheap frozen dataclasses; callers that do not pass one get an
auto-numbered context (``req-000001`` …) so traces always correlate, and
the JSONL request protocol (:mod:`repro.serve.requests`) maps the wire
fields ``rid`` / ``tenant`` onto them.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["RequestContext", "next_request_id"]

_REQUEST_IDS = itertools.count(1)


def next_request_id() -> str:
    """The next auto-assigned request id for this process."""
    return f"req-{next(_REQUEST_IDS):06d}"


@dataclass(frozen=True)
class RequestContext:
    """Identity and budget of one service request.

    Attributes
    ----------
    request_id:
        Correlates every span, metric label, and response of the request.
    tenant:
        Free-form namespace owner (multi-tenant deployments; empty for
        single-tenant use).
    deadline:
        Absolute ``time.perf_counter()`` instant the request must answer
        by, or ``None`` for unbounded.  Absolute (not a duration) so the
        budget survives being handed between service internals without
        double-counting elapsed time.
    """

    request_id: str
    tenant: str = ""
    deadline: Optional[float] = None

    @classmethod
    def create(
        cls,
        request_id: Optional[str] = None,
        tenant: str = "",
        timeout: Optional[float] = None,
    ) -> "RequestContext":
        """Build a context, auto-numbering the id and converting a relative
        ``timeout`` (seconds from now) into the absolute deadline."""
        return cls(
            request_id=request_id or next_request_id(),
            tenant=tenant,
            deadline=None if timeout is None else time.perf_counter() + timeout,
        )

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (negative when blown); ``None`` if
        unbounded."""
        if self.deadline is None:
            return None
        return self.deadline - time.perf_counter()

    def expired(self) -> bool:
        """Whether the deadline has already passed."""
        return self.deadline is not None and time.perf_counter() >= self.deadline

    def trace_fields(self) -> Dict[str, object]:
        """The span-stamp fields (request id always, tenant when set)."""
        fields: Dict[str, object] = {"request": self.request_id}
        if self.tenant:
            fields["tenant"] = self.tenant
        return fields

    def __repr__(self) -> str:
        tenant = f" tenant={self.tenant!r}" if self.tenant else ""
        return f"<RequestContext {self.request_id}{tenant}>"
