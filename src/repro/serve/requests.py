"""The JSONL request protocol: one request object per line, one response out.

``repro serve`` drives a :class:`~repro.serve.service.SolverService` from a
JSON-lines stream — a file, a pipe, or stdin — which makes the service
scriptable without a network stack and keeps request logs replayable.

Request shapes (``op`` selects the verb, everything else is its payload)::

    {"op": "register", "id": "g1", "path": "web.metis"}
    {"op": "register", "id": "g2", "n": 5, "edges": [[0, 1], [1, 2]]}
    {"op": "solve", "id": "g1", "timeout": 0.5}
    {"op": "upper_bound", "id": "g1"}
    {"op": "mutate", "id": "g1",
     "mutations": [["add_edge", 3, 7], ["remove_vertex", 2], ["add_vertex"]]}
    {"op": "add_edge", "id": "g1", "u": 3, "v": 7}     # and the other verbs
    {"op": "stats"}
    {"op": "save", "path": "service.snapshot.json"}

Any request may also carry ``"rid"`` (a caller-chosen request id) and
``"tenant"``: they become the request's
:class:`~repro.serve.context.RequestContext`, so the service stamps every
telemetry span and metric of that request with them; requests without a
``rid`` get an auto-numbered one.  The response echoes the ``rid`` it used
(chosen or assigned), which is how a log line joins its span tree.

Every response echoes ``op`` (and ``id`` when present), carries
``"ok": true`` on success, and ``"ok": false`` plus ``"error"`` on
failure — a bad request never tears down the service or the stream.
The hardening contract: a malformed, non-object, or oversized request
line yields a structured error that still echoes the caller's ``rid``
whenever one is salvageable from the raw bytes (:func:`salvage_rid`),
and *no* input — however hostile — surfaces a server-side traceback.
"""

from __future__ import annotations

import json
import re
from typing import Callable, Dict, Iterable, Iterator, List, Optional, TextIO

from ..errors import ReproError
from ..graphs.static_graph import Graph
from .context import RequestContext
from .dynamic_graph import Mutation
from .service import ServeResult, SolverService

__all__ = [
    "MAX_REQUEST_BYTES",
    "error_response",
    "handle_request",
    "parse_request_line",
    "run_requests",
    "salvage_rid",
    "serve_stream",
]

#: Upper bound on one JSONL request line.  A line past this is rejected
#: *before* parsing — ``json.loads`` on an adversarial multi-megabyte line
#: would hold the event loop / stream pump hostage.  Generous enough for
#: inline edge-list registers of ~50k edges.
MAX_REQUEST_BYTES = 4_000_000

#: A caller rid inside an otherwise unparseable line.  String form only
#: (numeric rids survive json.loads, which has already failed here);
#: bounded so the salvage itself cannot be abused.
_RID_PATTERN = re.compile(r'"rid"\s*:\s*"([^"\\]{1,128})"')


def _load_request_graph(request: Dict[str, object]) -> Graph:
    if "path" in request:
        # Imported lazily: repro.cli imports this module's package via
        # repro.__init__, and the reverse import at module load would cycle.
        from ..cli import load_graph

        graph, _ = load_graph(str(request["path"]))
        return graph
    if "edges" in request:
        n = int(request.get("n", 0))  # type: ignore[arg-type]
        edges = [(int(u), int(v)) for u, v in request["edges"]]  # type: ignore[union-attr]
        size = max([n] + [max(u, v) + 1 for u, v in edges]) if edges else n
        return Graph.from_edges(size, edges)
    raise ReproError("register needs either 'path' or 'edges'")


def salvage_rid(line: str) -> Optional[str]:
    """Best-effort recovery of a string ``rid`` from a broken request line.

    Lets a structured parse error still join the caller's request log;
    returns ``None`` when nothing trustworthy is found.
    """
    match = _RID_PATTERN.search(line)
    return match.group(1) if match else None


def error_response(
    error: str,
    rid: Optional[str] = None,
    op: Optional[object] = None,
) -> Dict[str, object]:
    """A structured protocol-level failure (parse errors, oversize lines)."""
    response: Dict[str, object] = {"op": op, "ok": False, "error": error}
    if rid is not None:
        response["rid"] = rid
    return response


def _result_payload(result: ServeResult) -> Dict[str, object]:
    payload: Dict[str, object] = {
        "size": result.size,
        "independent_set": sorted(result.independent_set),
        "upper_bound": result.upper_bound,
        "is_exact": result.is_exact,
        "exact_bound": result.exact_bound,
        "source": result.source,
        "backend": result.backend,
        "stale": result.stale,
        "elapsed": result.elapsed,
    }
    if result.repair_scope:
        payload["repair_scope"] = dict(result.repair_scope)
    return payload


def handle_request(
    service: SolverService, request: Dict[str, object]
) -> Dict[str, object]:
    """Execute one request against ``service``; never raises for bad input."""
    if not isinstance(request, dict):
        return error_response(
            f"ReproError: request must be a JSON object, got {type(request).__name__}"
        )
    op = request.get("op")
    context = RequestContext.create(
        request_id=str(request["rid"]) if "rid" in request else None,
        tenant=str(request.get("tenant", "")),
    )
    response: Dict[str, object] = {"op": op, "ok": True, "rid": context.request_id}
    if "id" in request:
        response["id"] = request["id"]
    try:
        if op == "register":
            graph = _load_request_graph(request)
            graph_id = service.register(
                graph,
                graph_id=str(request["id"]) if "id" in request else None,
                context=context,
            )
            response["id"] = graph_id
            response["n"] = graph.n
            response["m"] = graph.m
        elif op in ("solve", "upper_bound"):
            graph_id = str(request["id"])
            timeout = request.get("timeout")
            timeout = None if timeout is None else float(timeout)  # type: ignore[arg-type]
            if op == "solve":
                result = service.solve(graph_id, timeout, context=context)
                response.update(_result_payload(result))
            else:
                response["upper_bound"] = service.upper_bound(
                    graph_id, timeout, context=context
                )
        elif op == "mutate":
            graph_id = str(request["id"])
            mutations = [
                Mutation.from_list(raw)  # type: ignore[arg-type]
                for raw in request.get("mutations", [])  # type: ignore[union-attr]
            ]
            response["dirty"] = service.apply(graph_id, mutations, context=context)
            response["mutations"] = len(mutations)
        elif op == "add_edge":
            service.add_edge(
                str(request["id"]), int(request["u"]), int(request["v"]), context  # type: ignore[arg-type]
            )
        elif op == "remove_edge":
            service.remove_edge(
                str(request["id"]), int(request["u"]), int(request["v"]), context  # type: ignore[arg-type]
            )
        elif op == "add_vertex":
            response["vertex"] = service.add_vertex(str(request["id"]), context)
        elif op == "remove_vertex":
            service.remove_vertex(str(request["id"]), int(request["v"]), context)  # type: ignore[arg-type]
        elif op == "unregister":
            service.unregister(str(request["id"]), context=context)
        elif op == "ping":
            # Liveness probe for load generators and health checks; touches
            # no graph state so it is safe at any queue depth.
            response["pong"] = True
        elif op == "stats":
            response["counters"] = service.counters()
        elif op == "save":
            path = str(request["path"])
            service.save(path)
            response["path"] = path
        else:
            raise ReproError(
                f"unknown op {op!r}; see repro.serve.requests for the protocol"
            )
    except (ReproError, KeyError, TypeError, ValueError, OSError) as exc:
        response["ok"] = False
        response["error"] = f"{type(exc).__name__}: {exc}"
    except Exception as exc:  # noqa: BLE001 - protocol promise: no tracebacks
        # Anything the explicit tuple missed is still a *request* failure,
        # not a server failure: answer structurally and keep serving.
        response["ok"] = False
        response["error"] = f"InternalError({type(exc).__name__}): {exc}"
    return response


def run_requests(
    service: SolverService, requests: Iterable[Dict[str, object]]
) -> Iterator[Dict[str, object]]:
    """Lazily map a request stream to responses (one per request)."""
    for request in requests:
        yield handle_request(service, request)


def parse_request_line(line: str) -> Dict[str, object]:
    """Parse one raw JSONL line into a request dict, or raise ``ReproError``.

    Enforces the protocol hardening contract in one place (the sync stream
    pump and the async front-end both call it): oversized lines are
    rejected before parsing, parse failures and non-object payloads raise
    a :class:`ReproError` whose message is safe to echo to the caller.
    """
    if len(line) > MAX_REQUEST_BYTES:
        raise ReproError(
            f"request line too large ({len(line)} bytes > "
            f"MAX_REQUEST_BYTES={MAX_REQUEST_BYTES})"
        )
    try:
        request = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ReproError(f"JSONDecodeError: {exc}") from None
    if not isinstance(request, dict):
        raise ReproError(
            f"request must be a JSON object, got {type(request).__name__}"
        )
    return request


def serve_stream(
    service: SolverService,
    source: Iterable[str],
    sink: TextIO,
    errors: Optional[List[str]] = None,
    should_stop: Optional[Callable[[], bool]] = None,
) -> int:
    """Drive ``service`` from JSONL ``source`` lines, writing responses to
    ``sink``.  Returns the number of failed requests (malformed lines count
    as failures and are reported on the stream like any other error).

    ``should_stop`` is polled between requests: when it turns true the pump
    stops reading and returns — the graceful-shutdown hook, so a signal
    handler can drain the in-flight request instead of killing mid-write.
    """
    failed = 0
    for line in source:
        if should_stop is not None and should_stop():
            break
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            request = parse_request_line(line)
        except ReproError as exc:
            response = error_response(str(exc), rid=salvage_rid(line))
        else:
            response = handle_request(service, request)
        if not response.get("ok"):
            failed += 1
            if errors is not None:
                errors.append(str(response.get("error")))
        sink.write(json.dumps(response, sort_keys=True) + "\n")
        sink.flush()
    return failed
