"""The JSONL request protocol: one request object per line, one response out.

``repro serve`` drives a :class:`~repro.serve.service.SolverService` from a
JSON-lines stream — a file, a pipe, or stdin — which makes the service
scriptable without a network stack and keeps request logs replayable.

Request shapes (``op`` selects the verb, everything else is its payload)::

    {"op": "register", "id": "g1", "path": "web.metis"}
    {"op": "register", "id": "g2", "n": 5, "edges": [[0, 1], [1, 2]]}
    {"op": "solve", "id": "g1", "timeout": 0.5}
    {"op": "upper_bound", "id": "g1"}
    {"op": "mutate", "id": "g1",
     "mutations": [["add_edge", 3, 7], ["remove_vertex", 2], ["add_vertex"]]}
    {"op": "add_edge", "id": "g1", "u": 3, "v": 7}     # and the other verbs
    {"op": "stats"}
    {"op": "save", "path": "service.snapshot.json"}

Any request may also carry ``"rid"`` (a caller-chosen request id) and
``"tenant"``: they become the request's
:class:`~repro.serve.context.RequestContext`, so the service stamps every
telemetry span and metric of that request with them; requests without a
``rid`` get an auto-numbered one.  The response echoes the ``rid`` it used
(chosen or assigned), which is how a log line joins its span tree.

Every response echoes ``op`` (and ``id`` when present), carries
``"ok": true`` on success, and ``"ok": false`` plus ``"error"`` on
failure — a bad request never tears down the service or the stream.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Iterator, List, Optional, TextIO

from ..errors import ReproError
from ..graphs.static_graph import Graph
from .context import RequestContext
from .dynamic_graph import Mutation
from .service import ServeResult, SolverService

__all__ = ["handle_request", "run_requests", "serve_stream"]


def _load_request_graph(request: Dict[str, object]) -> Graph:
    if "path" in request:
        # Imported lazily: repro.cli imports this module's package via
        # repro.__init__, and the reverse import at module load would cycle.
        from ..cli import load_graph

        graph, _ = load_graph(str(request["path"]))
        return graph
    if "edges" in request:
        n = int(request.get("n", 0))  # type: ignore[arg-type]
        edges = [(int(u), int(v)) for u, v in request["edges"]]  # type: ignore[union-attr]
        size = max([n] + [max(u, v) + 1 for u, v in edges]) if edges else n
        return Graph.from_edges(size, edges)
    raise ReproError("register needs either 'path' or 'edges'")


def _result_payload(result: ServeResult) -> Dict[str, object]:
    payload: Dict[str, object] = {
        "size": result.size,
        "independent_set": sorted(result.independent_set),
        "upper_bound": result.upper_bound,
        "is_exact": result.is_exact,
        "exact_bound": result.exact_bound,
        "source": result.source,
        "backend": result.backend,
        "stale": result.stale,
        "elapsed": result.elapsed,
    }
    if result.repair_scope:
        payload["repair_scope"] = dict(result.repair_scope)
    return payload


def handle_request(
    service: SolverService, request: Dict[str, object]
) -> Dict[str, object]:
    """Execute one request against ``service``; never raises for bad input."""
    op = request.get("op")
    context = RequestContext.create(
        request_id=str(request["rid"]) if "rid" in request else None,
        tenant=str(request.get("tenant", "")),
    )
    response: Dict[str, object] = {"op": op, "ok": True, "rid": context.request_id}
    if "id" in request:
        response["id"] = request["id"]
    try:
        if op == "register":
            graph = _load_request_graph(request)
            graph_id = service.register(
                graph,
                graph_id=str(request["id"]) if "id" in request else None,
                context=context,
            )
            response["id"] = graph_id
            response["n"] = graph.n
            response["m"] = graph.m
        elif op in ("solve", "upper_bound"):
            graph_id = str(request["id"])
            timeout = request.get("timeout")
            timeout = None if timeout is None else float(timeout)  # type: ignore[arg-type]
            if op == "solve":
                result = service.solve(graph_id, timeout, context=context)
                response.update(_result_payload(result))
            else:
                response["upper_bound"] = service.upper_bound(
                    graph_id, timeout, context=context
                )
        elif op == "mutate":
            graph_id = str(request["id"])
            mutations = [
                Mutation.from_list(raw)  # type: ignore[arg-type]
                for raw in request.get("mutations", [])  # type: ignore[union-attr]
            ]
            response["dirty"] = service.apply(graph_id, mutations, context=context)
            response["mutations"] = len(mutations)
        elif op == "add_edge":
            service.add_edge(
                str(request["id"]), int(request["u"]), int(request["v"]), context  # type: ignore[arg-type]
            )
        elif op == "remove_edge":
            service.remove_edge(
                str(request["id"]), int(request["u"]), int(request["v"]), context  # type: ignore[arg-type]
            )
        elif op == "add_vertex":
            response["vertex"] = service.add_vertex(str(request["id"]), context)
        elif op == "remove_vertex":
            service.remove_vertex(str(request["id"]), int(request["v"]), context)  # type: ignore[arg-type]
        elif op == "unregister":
            service.unregister(str(request["id"]), context=context)
        elif op == "stats":
            response["counters"] = service.counters()
        elif op == "save":
            path = str(request["path"])
            service.save(path)
            response["path"] = path
        else:
            raise ReproError(
                f"unknown op {op!r}; see repro.serve.requests for the protocol"
            )
    except (ReproError, KeyError, TypeError, ValueError, OSError) as exc:
        response["ok"] = False
        response["error"] = f"{type(exc).__name__}: {exc}"
    return response


def run_requests(
    service: SolverService, requests: Iterable[Dict[str, object]]
) -> Iterator[Dict[str, object]]:
    """Lazily map a request stream to responses (one per request)."""
    for request in requests:
        yield handle_request(service, request)


def serve_stream(
    service: SolverService,
    source: Iterable[str],
    sink: TextIO,
    errors: Optional[List[str]] = None,
) -> int:
    """Drive ``service`` from JSONL ``source`` lines, writing responses to
    ``sink``.  Returns the number of failed requests (malformed lines count
    as failures and are reported on the stream like any other error).
    """
    failed = 0
    for line in source:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            response: Dict[str, object] = {
                "op": None,
                "ok": False,
                "error": f"JSONDecodeError: {exc}",
            }
        else:
            response = handle_request(service, request)
        if not response.get("ok"):
            failed += 1
            if errors is not None:
                errors.append(str(response.get("error")))
        sink.write(json.dumps(response, sort_keys=True) + "\n")
    return failed
