"""The long-lived incremental solving service.

:class:`SolverService` turns the library's one-shot solvers into something
a request loop can sit on top of:

* :meth:`~SolverService.register` admits a graph, kernelizes it once
  (through the flat workspaces — :func:`repro.core.kernel.kernelize`'s
  default backends) and keeps the kernel state for reuse;
* :meth:`~SolverService.solve` / :meth:`~SolverService.upper_bound` answer
  repeated queries from a bounded LRU cache keyed by the snapshot's
  structural fingerprint — an unchanged graph never pays a second solve;
* the mutation API (:meth:`~SolverService.add_edge`,
  :meth:`~SolverService.remove_edge`, :meth:`~SolverService.add_vertex`,
  :meth:`~SolverService.remove_vertex`, batched
  :meth:`~SolverService.apply`) accumulates dirty seeds and the next query
  performs **localized repair** (:mod:`repro.serve.repair`), falling back
  to a full re-kernelize-and-solve once the dirty fraction passes
  ``ServiceConfig.dirty_threshold``;
* a per-request timeout degrades gracefully: when the budget is exhausted
  before the repair can run, the service returns the last-known-good
  solution patched to feasibility, flagged ``stale=True``;
* :meth:`~SolverService.snapshot_payload` / :meth:`SolverService.restore`
  round-trip the whole service state (graphs, solutions, kernels, cache)
  through JSON for disk persistence.

Observability: every public entry point opens a phase span (``serve:*``),
stamped with the request's :class:`~repro.serve.context.RequestContext`
(request id, tenant) so a query's solver phases — including per-component
worker spans from the parallel driver — merge into one request span tree.
Request latency, cache traffic, repair-vs-fresh and timeout-degradation
counts publish into a :class:`~repro.obs.metrics.MetricsRegistry`; the
classic :meth:`SolverService.counters` dict is a thin view over it, so the
headless stats and a Prometheus scrape can never drift apart.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Union

from ..core.auto import STAT_AUTO_FLAT, STAT_AUTO_VEC
from ..core.kernel import KernelResult, kernelize
from ..core.result import (
    MISResult,
    STAT_SERVE_CACHE_HIT,
    STAT_SERVE_CACHE_MISS,
    STAT_SERVE_FULL_RESOLVE,
    STAT_SERVE_MUTATIONS,
    STAT_SERVE_REPAIR,
    STAT_SERVE_REPAIR_COMPONENTS,
    STAT_SERVE_REPAIR_VERTICES,
    STAT_SERVE_STALE_RETURN,
)
from ..errors import ReproError
from ..graphs.static_graph import Graph
from ..obs.metrics import (
    METRIC_SERVE_CACHE_HITS,
    METRIC_SERVE_CACHE_MISSES,
    METRIC_SERVE_FULL_RESOLVES,
    METRIC_SERVE_GRAPHS,
    METRIC_SERVE_MUTATIONS,
    METRIC_SERVE_REPAIR_COMPONENTS,
    METRIC_SERVE_REPAIR_VERTICES,
    METRIC_SERVE_REPAIRS,
    METRIC_SERVE_REQUEST_SECONDS,
    METRIC_SERVE_REQUESTS,
    METRIC_SERVE_SOLVER_SECONDS,
    METRIC_SERVE_STALE_RETURNS,
    MetricsRegistry,
    get_metrics,
)
from ..obs.telemetry import get_telemetry, phase
from ..perf.parallel import DEFAULT_PARALLEL_THRESHOLD
from .cache import CacheEntry, KernelCache
from .context import RequestContext
from .dynamic_graph import DynamicGraph, Mutation
from .repair import cold_solve, patch_solution, repair_solution

__all__ = ["ServeResult", "ServiceConfig", "SolverService", "SNAPSHOT_VERSION"]

#: Old-style event keys (``serve:*`` stat counters, kept for telemetry and
#: the :attr:`SolverService.events` view) mapped to their registry series.
_EVENT_METRICS: Dict[str, str] = {
    STAT_SERVE_CACHE_HIT: METRIC_SERVE_CACHE_HITS,
    STAT_SERVE_CACHE_MISS: METRIC_SERVE_CACHE_MISSES,
    STAT_SERVE_REPAIR: METRIC_SERVE_REPAIRS,
    STAT_SERVE_REPAIR_VERTICES: METRIC_SERVE_REPAIR_VERTICES,
    STAT_SERVE_REPAIR_COMPONENTS: METRIC_SERVE_REPAIR_COMPONENTS,
    STAT_SERVE_FULL_RESOLVE: METRIC_SERVE_FULL_RESOLVES,
    STAT_SERVE_STALE_RETURN: METRIC_SERVE_STALE_RETURNS,
    STAT_SERVE_MUTATIONS: METRIC_SERVE_MUTATIONS,
}

#: Events whose registry series the shared :class:`KernelCache` already
#: increments — ``_bump`` must not count them a second time.
_CACHE_COUNTED = frozenset({STAT_SERVE_CACHE_HIT, STAT_SERVE_CACHE_MISS})


def _backend_of(algorithm: str, rule_counts: Optional[Dict[str, int]]) -> str:
    """Which execution backend produced a solution (span/metric label).

    ``*_auto`` results carry the dispatcher's pick in their rule counters;
    fixed backends are named by the algorithm itself.
    """
    if rule_counts:
        if rule_counts.get(STAT_AUTO_VEC):
            return "vectorized"
        if rule_counts.get(STAT_AUTO_FLAT):
            return "flat"
    if algorithm.endswith("_vec"):
        return "vectorized"
    if algorithm.endswith("_auto"):
        return "auto"
    return "flat"

SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of a :class:`SolverService`.

    Attributes
    ----------
    algorithm:
        :data:`~repro.perf.parallel.ALGORITHM_BY_NAME` registry name used
        for cold solves and repairs (must be a name, not a callable, so
        snapshots and worker dispatch can serialise it).
    kernel_method:
        :data:`~repro.core.kernel.KERNEL_METHODS` rule set applied at
        register time and on full re-kernelizes.
    cache_capacity:
        LRU bound of the kernel cache (entries, not bytes).
    dirty_threshold:
        When ``|dirty region seeds| / live vertices`` exceeds this, repair
        is abandoned in favour of a full re-kernelize-and-solve.
    repair_radius:
        Hop radius around dirty seeds that repair re-decides.
    processes / min_component_size:
        Forwarded to the parallel per-component driver for repairs and
        registered-graph solves; the default of one process solves inline
        (mutation regions are usually far below the dispatch break-even).
    default_timeout:
        Per-request budget in seconds applied when the call site passes
        none (``None`` = unbounded).
    workspace_factory:
        Oracle hook forwarded to :func:`repro.serve.repair.cold_solve`;
        ``None`` keeps the flat production backends.
    """

    algorithm: str = "linear_time"
    kernel_method: str = "linear_time"
    cache_capacity: int = 64
    dirty_threshold: float = 0.25
    repair_radius: int = 2
    processes: int = 1
    min_component_size: int = DEFAULT_PARALLEL_THRESHOLD
    default_timeout: Optional[float] = None
    workspace_factory: Optional[Callable[..., object]] = None


@dataclass(frozen=True)
class ServeResult:
    """One query answer, in the registered graph's dynamic-id space.

    ``source`` says how the answer was produced: ``"cache"`` (fingerprint
    hit), ``"cold"`` (fresh solve, also the full-re-kernelize path),
    ``"repair"`` (localized repair) or ``"stale"`` (budget exhausted — the
    patched last-known-good solution; ``stale`` is True only here).
    ``exact_bound`` marks ``upper_bound`` as a Theorem-6.1 certificate
    rather than the trivial live-vertex count.  ``backend`` attributes the
    answer to the execution backend that produced it (``"flat"`` /
    ``"vectorized"``, resolved through the auto dispatcher's pick counters
    for ``*_auto`` algorithms; ``"none"`` for stale returns, where no
    solver ran).
    """

    graph_id: str
    algorithm: str
    independent_set: frozenset
    upper_bound: int
    is_exact: bool
    exact_bound: bool
    source: str
    backend: str = ""
    stale: bool = False
    elapsed: float = 0.0
    repair_scope: Dict[str, int] = field(default_factory=dict)

    @property
    def size(self) -> int:
        """Number of vertices in the independent set."""
        return len(self.independent_set)

    def __repr__(self) -> str:
        flag = " stale" if self.stale else ""
        return (
            f"<ServeResult {self.graph_id} |I|={self.size} "
            f"source={self.source}{flag}>"
        )


class _GraphState:
    """Per-registered-graph mutable state (internal)."""

    __slots__ = ("graph_id", "dynamic", "dirty", "solution", "stale", "kernel")

    def __init__(self, graph_id: str, dynamic: DynamicGraph) -> None:
        self.graph_id = graph_id
        self.dynamic = dynamic
        #: Dynamic ids whose neighbourhood changed since the last
        #: successful solve (cleared on cold solve and repair, kept on a
        #: stale return so the next query retries the repair).
        self.dirty: Set[int] = set()
        #: Last returned solution, as dynamic ids; None before first solve.
        self.solution: Optional[frozenset] = None
        self.stale = False
        self.kernel: Optional[KernelResult] = None


class SolverService:
    """A long-lived, mutation-aware independent-set solving service."""

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        #: One registry shared by the service, its cache, and — when the
        #: process enabled metrics globally — the exposition endpoints.
        #: Sharing is load-bearing: it is what keeps :meth:`counters` and a
        #: Prometheus scrape reading the same numbers.
        # Shard workers (router._shard_worker_main) always pass an explicit
        # per-child registry, so the global fallthrough never runs forked.
        self.metrics = (
            metrics or get_metrics() or MetricsRegistry(label="serve")  # reprolint: disable=RL007
        )
        self.cache = KernelCache(self.config.cache_capacity, metrics=self.metrics)
        self._graphs: Dict[str, _GraphState] = {}
        self._counter = 0

    @property
    def events(self) -> Dict[str, int]:
        """Classic ``serve:*`` event counters — a view over the registry.

        Only events that fired appear (matching the historical dict-of-
        bumps behaviour); cache hit/miss counts are the cache's own
        registry series, so this view and ``cache.counters()`` agree by
        construction.
        """
        view: Dict[str, int] = {}
        for key, metric in _EVENT_METRICS.items():
            value = int(self.metrics.total(metric))
            if value:
                view[key] = value
        return view

    # ------------------------------------------------------------------
    # Registration and mutation
    # ------------------------------------------------------------------
    def register(
        self,
        graph: Union[Graph, DynamicGraph],
        graph_id: Optional[str] = None,
        context: Optional[RequestContext] = None,
    ) -> str:
        """Admit a graph; returns its handle.

        The graph is kernelized once with ``config.kernel_method`` (flat
        workspaces) and the kernel kept on the handle; queries then run
        against the cache/repair machinery.  Passing a
        :class:`DynamicGraph` adopts it (no copy); passing a
        :class:`Graph` wraps it.
        """
        telemetry = get_telemetry()
        if graph_id is None:
            self._counter += 1
            graph_id = f"g{self._counter}"
        if graph_id in self._graphs:
            raise ReproError(f"graph id {graph_id!r} already registered")
        dynamic = graph if isinstance(graph, DynamicGraph) else DynamicGraph(graph)
        state = _GraphState(graph_id, dynamic)
        with self._request_scope(telemetry, context):
            with phase(telemetry, "serve:register", graph=graph_id):
                snapshot, _ = dynamic.snapshot()
                state.kernel = kernelize(snapshot, method=self.config.kernel_method)
        self._graphs[graph_id] = state
        self.metrics.set_gauge(METRIC_SERVE_GRAPHS, len(self._graphs))
        return graph_id

    def unregister(
        self, graph_id: str, context: Optional[RequestContext] = None
    ) -> None:
        """Forget a handle (cache entries persist until evicted)."""
        telemetry = get_telemetry()
        self._state(graph_id)
        with self._request_scope(telemetry, context):
            with phase(telemetry, "serve:unregister", graph=graph_id):
                del self._graphs[graph_id]
        self.metrics.set_gauge(METRIC_SERVE_GRAPHS, len(self._graphs))

    def graph_ids(self) -> List[str]:
        """The registered handles, in registration order."""
        return list(self._graphs)

    def dynamic_graph(self, graph_id: str) -> DynamicGraph:
        """The mutable graph behind a handle (shared, not a copy)."""
        return self._state(graph_id).dynamic

    def kernel(self, graph_id: str) -> Optional[KernelResult]:
        """The most recent register-time / full-resolve kernel state."""
        return self._state(graph_id).kernel

    def add_edge(
        self,
        graph_id: str,
        u: int,
        v: int,
        context: Optional[RequestContext] = None,
    ) -> None:
        """Insert edge ``(u, v)`` (dynamic ids); marks the endpoints dirty."""
        self._mutate(graph_id, [Mutation("add_edge", u, v)], context)

    def remove_edge(
        self,
        graph_id: str,
        u: int,
        v: int,
        context: Optional[RequestContext] = None,
    ) -> None:
        """Delete edge ``(u, v)``; marks the endpoints dirty."""
        self._mutate(graph_id, [Mutation("remove_edge", u, v)], context)

    def add_vertex(
        self, graph_id: str, context: Optional[RequestContext] = None
    ) -> int:
        """Allocate a fresh isolated vertex; returns its dynamic id."""
        state = self._state(graph_id)
        before = state.dynamic.n_allocated
        self._mutate(graph_id, [Mutation("add_vertex")], context)
        return before

    def remove_vertex(
        self, graph_id: str, v: int, context: Optional[RequestContext] = None
    ) -> None:
        """Delete vertex ``v``; marks its former neighbours dirty."""
        self._mutate(graph_id, [Mutation("remove_vertex", v)], context)

    def apply(
        self,
        graph_id: str,
        mutations: Iterable[Mutation],
        context: Optional[RequestContext] = None,
    ) -> int:
        """Apply a mutation batch; returns the number of dirty seeds added."""
        return self._mutate(graph_id, list(mutations), context)

    def _mutate(
        self,
        graph_id: str,
        mutations: List[Mutation],
        context: Optional[RequestContext] = None,
    ) -> int:
        start = time.perf_counter()
        telemetry = get_telemetry()
        state = self._state(graph_id)
        with self._request_scope(telemetry, context):
            with phase(
                telemetry, "serve:mutate", graph=graph_id, mutations=len(mutations)
            ) as span:
                dirty = state.dynamic.apply(mutations)
                # Seeds that died inside the batch were already folded into
                # their neighbours' dirtiness by DynamicGraph.apply; stale
                # survivors from previous batches are re-validated here.
                state.dirty = {
                    v for v in (state.dirty | dirty) if state.dynamic.is_live(v)
                }
                span.meta["dirty"] = len(state.dirty)
        self._bump(STAT_SERVE_MUTATIONS, len(mutations), telemetry)
        self.metrics.inc(METRIC_SERVE_REQUESTS, op="mutate")
        self.metrics.observe(
            METRIC_SERVE_REQUEST_SECONDS, time.perf_counter() - start, op="mutate"
        )
        return len(dirty)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def solve(
        self,
        graph_id: str,
        timeout: Optional[float] = None,
        context: Optional[RequestContext] = None,
    ) -> ServeResult:
        """Answer an independent-set query for the handle's current graph.

        Resolution order: fingerprint cache hit → localized repair (when
        only a bounded region is dirty) → full re-kernelize-and-solve.
        ``timeout`` (seconds, default ``config.default_timeout``) bounds
        the work; a ``context`` deadline tightens it further.  On
        exhaustion the last-known-good solution is patched to feasibility
        and returned with ``stale=True``.
        """
        start = time.perf_counter()
        telemetry = get_telemetry()
        state = self._state(graph_id)
        if timeout is None:
            timeout = self.config.default_timeout
        deadline = None if timeout is None else start + timeout
        if context is not None and context.deadline is not None:
            deadline = (
                context.deadline
                if deadline is None
                else min(deadline, context.deadline)
            )
        with self._request_scope(telemetry, context):
            with phase(telemetry, "serve:solve", graph=graph_id) as span:
                result = self._solve_locked(state, deadline, telemetry, start)
                span.meta["source"] = result.source
                span.meta["size"] = result.size
                span.meta["backend"] = result.backend
        self.metrics.inc(METRIC_SERVE_REQUESTS, op="solve", source=result.source)
        self.metrics.observe(
            METRIC_SERVE_REQUEST_SECONDS, result.elapsed, op="solve"
        )
        return result

    def upper_bound(
        self,
        graph_id: str,
        timeout: Optional[float] = None,
        context: Optional[RequestContext] = None,
    ) -> int:
        """A certified Theorem-6.1 upper bound for the current graph.

        Served from the cache when the cached entry carries a certificate;
        otherwise forces a cold solve (repaired solutions only carry the
        trivial bound, which this endpoint refuses to return unless the
        timeout leaves no alternative).
        """
        result = self.solve(graph_id, timeout=timeout, context=context)
        if result.exact_bound:
            return result.upper_bound
        state = self._state(graph_id)
        telemetry = get_telemetry()
        with self._request_scope(telemetry, context):
            with phase(telemetry, "serve:upper-bound", graph=graph_id):
                entry = self._cold_entry(state, telemetry)
        snapshot, old_ids = state.dynamic.snapshot()
        state.solution = frozenset(old_ids[v] for v in entry.solution)
        state.stale = False
        state.dirty.clear()
        return entry.upper_bound

    # ------------------------------------------------------------------
    # Solve internals
    # ------------------------------------------------------------------
    def _solve_locked(
        self,
        state: _GraphState,
        deadline: Optional[float],
        telemetry,
        start: float,
    ) -> ServeResult:
        dynamic = state.dynamic
        algorithm = self.config.algorithm
        fingerprint = dynamic.fingerprint()
        entry = self.cache.get(fingerprint, algorithm)
        snapshot, old_ids = dynamic.snapshot()
        if entry is not None:
            self._bump(STAT_SERVE_CACHE_HIT, 1, telemetry)
            solution = frozenset(old_ids[v] for v in entry.solution)
            state.solution = solution
            state.stale = False
            state.dirty.clear()
            return ServeResult(
                graph_id=state.graph_id,
                algorithm=algorithm,
                independent_set=solution,
                upper_bound=entry.upper_bound,
                is_exact=entry.is_exact,
                exact_bound=entry.exact_bound,
                source="cache",
                backend=_backend_of(algorithm, entry.rule_counts),
                elapsed=time.perf_counter() - start,
            )
        self._bump(STAT_SERVE_CACHE_MISS, 1, telemetry)

        can_repair = (
            state.solution is not None
            and state.dirty
            and snapshot.n > 0
            and len(state.dirty) <= self.config.dirty_threshold * snapshot.n
        )
        if can_repair and (deadline is None or time.perf_counter() < deadline):
            return self._repair(
                state, snapshot, old_ids, fingerprint, deadline, telemetry, start
            )
        if (
            deadline is not None
            and state.solution is not None
            and time.perf_counter() >= deadline
        ):
            return self._stale_return(state, snapshot, old_ids, telemetry, start)
        return self._full_solve(
            state, snapshot, old_ids, fingerprint, telemetry, start
        )

    def _repair(
        self,
        state: _GraphState,
        snapshot: Graph,
        old_ids: List[int],
        fingerprint: str,
        deadline: Optional[float],
        telemetry,
        start: float,
    ) -> ServeResult:
        compact = {old: new for new, old in enumerate(old_ids)}
        in_set = [False] * snapshot.n
        for v in state.solution or ():
            new = compact.get(v)
            if new is not None:
                in_set[new] = True
        seeds = sorted(compact[v] for v in state.dirty if v in compact)
        outcome = repair_solution(
            snapshot,
            in_set,
            seeds,
            algorithm=self.config.algorithm,
            radius=self.config.repair_radius,
            processes=self.config.processes,
            min_component_size=self.config.min_component_size,
        )
        if deadline is not None and time.perf_counter() > deadline:
            # The repair finished but blew the budget: the answer is still
            # the best available, so return it; only *future* queries see
            # the fresher state.  (A pre-repair overrun takes the stale
            # path in _solve_locked instead.)
            pass
        solution = frozenset(
            old_ids[v] for v in range(snapshot.n) if outcome.in_set[v]
        )
        state.solution = solution
        state.stale = False
        state.dirty.clear()
        entry = CacheEntry(
            fingerprint=fingerprint,
            algorithm=self.config.algorithm,
            solution=tuple(
                v for v in range(snapshot.n) if outcome.in_set[v]
            ),
            upper_bound=snapshot.n,
            is_exact=False,
            exact_bound=False,
            solver_elapsed=outcome.solver_elapsed,
        )
        self.cache.put(entry)
        self._bump(STAT_SERVE_REPAIR, 1, telemetry)
        self._bump(STAT_SERVE_REPAIR_VERTICES, outcome.region_size, telemetry)
        self._bump(STAT_SERVE_REPAIR_COMPONENTS, outcome.components, telemetry)
        backend = _backend_of(self.config.algorithm, None)
        self.metrics.observe(
            METRIC_SERVE_SOLVER_SECONDS,
            outcome.solver_elapsed,
            mode="repair",
            backend=backend,
        )
        return ServeResult(
            graph_id=state.graph_id,
            algorithm=self.config.algorithm,
            independent_set=solution,
            upper_bound=snapshot.n,
            is_exact=False,
            exact_bound=False,
            source="repair",
            backend=backend,
            elapsed=time.perf_counter() - start,
            repair_scope=outcome.scope(),
        )

    def _stale_return(
        self,
        state: _GraphState,
        snapshot: Graph,
        old_ids: List[int],
        telemetry,
        start: float,
    ) -> ServeResult:
        compact = {old: new for new, old in enumerate(old_ids)}
        in_set = [False] * snapshot.n
        for v in state.solution or ():
            new = compact.get(v)
            if new is not None:
                in_set[new] = True
        patched = patch_solution(snapshot, in_set)
        solution = frozenset(
            old_ids[v] for v in range(snapshot.n) if patched[v]
        )
        # Keep the dirty set: the next query (with budget) retries repair.
        state.solution = solution
        state.stale = True
        self._bump(STAT_SERVE_STALE_RETURN, 1, telemetry)
        return ServeResult(
            graph_id=state.graph_id,
            algorithm=self.config.algorithm,
            independent_set=solution,
            upper_bound=snapshot.n,
            is_exact=False,
            exact_bound=False,
            source="stale",
            backend="none",
            stale=True,
            elapsed=time.perf_counter() - start,
        )

    def _full_solve(
        self,
        state: _GraphState,
        snapshot: Graph,
        old_ids: List[int],
        fingerprint: str,
        telemetry,
        start: float,
    ) -> ServeResult:
        entry = self._cold_entry(state, telemetry, snapshot, fingerprint)
        solution = frozenset(old_ids[v] for v in entry.solution)
        state.solution = solution
        state.stale = False
        state.dirty.clear()
        return ServeResult(
            graph_id=state.graph_id,
            algorithm=self.config.algorithm,
            independent_set=solution,
            upper_bound=entry.upper_bound,
            is_exact=entry.is_exact,
            exact_bound=True,
            source="cold",
            backend=_backend_of(self.config.algorithm, entry.rule_counts),
            elapsed=time.perf_counter() - start,
        )

    def _cold_entry(
        self,
        state: _GraphState,
        telemetry,
        snapshot: Optional[Graph] = None,
        fingerprint: Optional[str] = None,
    ) -> CacheEntry:
        """Cold solve the current snapshot, refresh the kernel, cache it."""
        if snapshot is None:
            snapshot, _ = state.dynamic.snapshot()
        if fingerprint is None:
            fingerprint = state.dynamic.fingerprint()
        with phase(telemetry, "serve:full-solve", graph=state.graph_id):
            result = cold_solve(
                snapshot,
                self.config.algorithm,
                workspace_factory=self.config.workspace_factory,
            )
            state.kernel = kernelize(snapshot, method=self.config.kernel_method)
        self._bump(STAT_SERVE_FULL_RESOLVE, 1, telemetry)
        self.metrics.observe(
            METRIC_SERVE_SOLVER_SECONDS,
            result.elapsed,
            mode="cold",
            backend=_backend_of(self.config.algorithm, dict(result.stats)),
        )
        entry = CacheEntry(
            fingerprint=fingerprint,
            algorithm=self.config.algorithm,
            solution=tuple(sorted(result.independent_set)),
            upper_bound=result.upper_bound,
            is_exact=result.is_exact,
            exact_bound=True,
            kernel_n=state.kernel.kernel.n,
            kernel_m=state.kernel.kernel.m,
            rule_counts=dict(result.stats),
            solver_elapsed=result.elapsed,
        )
        self.cache.put(entry)
        return entry

    # ------------------------------------------------------------------
    # Introspection and persistence
    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, object]:
        """Service + cache counters as a JSON-serialisable dict."""
        return {
            "graphs": len(self._graphs),
            "events": dict(self.events),
            "cache": self.cache.counters(),
        }

    def snapshot_payload(self) -> Dict[str, object]:
        """The whole service state as a JSON-serialisable payload."""
        graphs: Dict[str, object] = {}
        for graph_id, state in self._graphs.items():
            record: Dict[str, object] = {
                "dynamic": state.dynamic.to_payload(),
                "solution": sorted(state.solution) if state.solution is not None else None,
                "stale": state.stale,
                "dirty": sorted(state.dirty),
                "fingerprint": state.dynamic.fingerprint(),
            }
            if state.kernel is not None:
                record["kernel"] = state.kernel.to_payload()
            graphs[graph_id] = record
        return {
            "version": SNAPSHOT_VERSION,
            "config": {
                "algorithm": self.config.algorithm,
                "kernel_method": self.config.kernel_method,
                "cache_capacity": self.config.cache_capacity,
                "dirty_threshold": self.config.dirty_threshold,
                "repair_radius": self.config.repair_radius,
                "processes": self.config.processes,
                "min_component_size": self.config.min_component_size,
                "default_timeout": self.config.default_timeout,
            },
            "counter": self._counter,
            "graphs": graphs,
            "cache": [entry.to_payload() for entry in self.cache.entries()],
        }

    def save(self, path: str) -> None:
        """Write :meth:`snapshot_payload` to ``path`` as JSON."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.snapshot_payload(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def restore(cls, payload: Dict[str, object]) -> "SolverService":
        """Rebuild a service from a :meth:`snapshot_payload` dump.

        Fingerprints are recomputed and verified against the recorded
        ones, so a corrupted or hand-edited snapshot fails loudly instead
        of serving wrong answers.
        """
        version = payload.get("version")
        if version != SNAPSHOT_VERSION:
            raise ReproError(
                f"unsupported snapshot version {version!r} "
                f"(this build reads {SNAPSHOT_VERSION})"
            )
        raw_config = dict(payload.get("config", {}))  # type: ignore[arg-type]
        config = ServiceConfig(
            algorithm=str(raw_config.get("algorithm", "linear_time")),
            kernel_method=str(raw_config.get("kernel_method", "linear_time")),
            cache_capacity=int(raw_config.get("cache_capacity", 64)),
            dirty_threshold=float(raw_config.get("dirty_threshold", 0.25)),
            repair_radius=int(raw_config.get("repair_radius", 2)),
            processes=int(raw_config.get("processes", 1)),
            min_component_size=int(
                raw_config.get("min_component_size", DEFAULT_PARALLEL_THRESHOLD)
            ),
            default_timeout=(
                None
                if raw_config.get("default_timeout") is None
                else float(raw_config["default_timeout"])  # type: ignore[arg-type]
            ),
        )
        service = cls(config)
        service._counter = int(payload.get("counter", 0))  # type: ignore[arg-type]
        for graph_id, record in dict(payload.get("graphs", {})).items():  # type: ignore[arg-type]
            dynamic = DynamicGraph.from_payload(record["dynamic"])
            recorded = record.get("fingerprint")
            if recorded is not None and dynamic.fingerprint() != recorded:
                raise ReproError(
                    f"snapshot fingerprint mismatch for graph {graph_id!r}; "
                    "the payload is corrupted"
                )
            state = _GraphState(str(graph_id), dynamic)
            solution = record.get("solution")
            state.solution = (
                frozenset(int(v) for v in solution) if solution is not None else None
            )
            state.stale = bool(record.get("stale", False))
            state.dirty = {int(v) for v in record.get("dirty", [])}
            kernel_payload = record.get("kernel")
            if kernel_payload is not None:
                snapshot, _ = dynamic.snapshot()
                state.kernel = KernelResult.from_payload(snapshot, kernel_payload)
            service._graphs[str(graph_id)] = state
        for entry_payload in payload.get("cache", []):  # type: ignore[union-attr]
            service.cache.put(CacheEntry.from_payload(entry_payload))
        return service

    @classmethod
    def load(cls, path: str) -> "SolverService":
        """Read a JSON snapshot written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.restore(json.load(handle))

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _state(self, graph_id: str) -> _GraphState:
        try:
            return self._graphs[graph_id]
        except KeyError:
            raise ReproError(
                f"unknown graph id {graph_id!r}; "
                f"registered: {sorted(self._graphs)}"
            ) from None

    @staticmethod
    @contextmanager
    def _request_scope(telemetry, context: Optional[RequestContext]):
        """The span-stamping scope of one request.

        With telemetry active every span the request opens (including
        solver phases and parallel worker spans, through the trace stamp)
        carries the request id and tenant; with telemetry off this is a
        free pass-through — no context object is even allocated.
        """
        if telemetry is None:
            yield
            return
        ctx = context if context is not None else RequestContext.create()
        with telemetry.scoped(**ctx.trace_fields()):
            yield

    def _bump(self, key: str, amount: int, telemetry) -> None:
        if key not in _CACHE_COUNTED:
            # Cache hits/misses are already counted (once) by the shared
            # cache registry; everything else lands here.
            self.metrics.inc(_EVENT_METRICS[key], amount)
        if telemetry is not None:
            telemetry.count(key, amount)

    def __repr__(self) -> str:
        return (
            f"<SolverService graphs={len(self._graphs)} "
            f"algorithm={self.config.algorithm!r} cache={self.cache!r}>"
        )
