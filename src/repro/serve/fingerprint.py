"""Stable graph fingerprints — the kernel cache's key space.

The serving layer needs to recognise "the same graph" across repeated
queries, across registered handles, and across snapshot/restore cycles
without comparing ``2m + n`` integers per lookup.  The fingerprint is a
SHA-256 digest over the compacted CSR buffers (offsets + targets) plus the
vertex count, so

* it is **canonical**: two :class:`~repro.graphs.static_graph.Graph`
  instances compare equal iff their fingerprints match (the CSR layout is
  itself canonical — rows sorted, ids compacted);
* it is **cheap to recompute**: one pass over the flat buffers in C
  (``hashlib`` over ``array.tobytes()``), no Python-level iteration;
* it is **mutation-sensitive**: any edge or vertex change produces a new
  snapshot and therefore a new digest, which is exactly the cache
  invalidation the service wants.

The digest covers raw buffer bytes, so it is stable across processes on
the same platform (the ``array`` typecodes ``'q'``/``'i'`` are 8 and 4
bytes on every CPython build the repo supports); snapshot restores verify
fingerprints defensively rather than trusting them blindly.
"""

from __future__ import annotations

import hashlib

from ..graphs.static_graph import Graph

__all__ = ["graph_fingerprint"]

#: Domain separator, bumped if the hashed layout ever changes.
_FINGERPRINT_TAG = b"repro-graph-fingerprint-v1"


def graph_fingerprint(graph: Graph) -> str:
    """Hex SHA-256 digest identifying ``graph`` structurally.

    Equal graphs (same compacted CSR arrays) hash equal; any structural
    difference — vertex count, edge set, even an isolated-vertex count —
    changes the digest.
    """
    offsets, targets = graph.flat_csr()
    digest = hashlib.sha256()
    digest.update(_FINGERPRINT_TAG)
    digest.update(graph.n.to_bytes(8, "little"))
    digest.update(offsets.tobytes())
    digest.update(targets.tobytes())
    return digest.hexdigest()
