"""Exception hierarchy for the ``repro`` library.

All library-specific failures derive from :class:`ReproError` so that callers
can catch every error raised by this package with a single ``except`` clause
while still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class GraphError(ReproError):
    """Raised when a graph is structurally invalid for the requested operation."""


class VertexError(GraphError):
    """Raised when a vertex id is out of range or otherwise invalid."""

    def __init__(self, vertex: int, n: int) -> None:
        super().__init__(f"vertex {vertex} is not in the range [0, {n})")
        self.vertex = vertex
        self.n = n


class EdgeError(GraphError):
    """Raised when an edge is invalid (self-loop, duplicate where forbidden)."""


class GraphFormatError(ReproError):
    """Raised when a graph file cannot be parsed."""

    def __init__(self, message: str, line_number: int | None = None) -> None:
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


class BudgetExceededError(ReproError):
    """Raised when an exact computation exceeds its node or time budget.

    The exact branch-and-reduce solver has worst-case exponential running
    time; callers give it a budget and this error carries the best bounds
    known at the point the budget ran out.
    """

    def __init__(self, message: str, best_lower: int = 0, best_upper: int | None = None) -> None:
        super().__init__(message)
        self.best_lower = best_lower
        self.best_upper = best_upper


class NotASolutionError(ReproError):
    """Raised by verification helpers when a claimed solution is invalid."""
