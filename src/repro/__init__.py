"""repro — Reducing-Peeling near-maximum independent sets.

A faithful, production-quality reproduction of

    Lijun Chang, Wei Li, Wenjie Zhang.
    "Computing A Near-Maximum Independent Set in Linear Time by
    Reducing-Peeling."  SIGMOD 2017.

Quickstart::

    from repro import power_law_graph, near_linear

    graph = power_law_graph(100_000, beta=2.3, average_degree=6, seed=7)
    result = near_linear(graph)
    print(result.size, result.upper_bound, result.is_exact)

Package map
-----------
``repro.core``
    The paper's contribution: the Reducing-Peeling framework, the four
    algorithms (BDOne, BDTwo, LinearTime, NearLinear), the reduction rules,
    kernelization, and the Theorem-6.1 upper bound.
``repro.graphs``
    Graph substrate: adjacency-array representation, builders, generators
    (power-law, G(n,m), web-like, …), IO, named paper examples, analytics.
``repro.exact``
    Brute force oracle, VCSolver-style branch-and-reduce, classic α upper
    bounds.
``repro.baselines``
    Greedy, DU, SemiE, OnlineMIS, ReduMIS.
``repro.localsearch``
    ARW iterated local search and the kernel-boosted ARW-LT / ARW-NL.
``repro.analysis``
    Verification, metrics, memory model.
``repro.bench``
    Benchmark datasets and harness utilities.
``repro.perf``
    Performance subsystem: parallel per-component solving over flat CSR
    buffers and the perf-regression harness (see ``docs/performance.md``).
``repro.serve``
    Incremental solving service: register graphs once, mutate them between
    queries, answer from a fingerprint-keyed kernel cache with localized
    repair (see ``docs/serving.md``).
"""

from . import analysis, baselines, bench, core, exact, external, graphs, localsearch, perf, serve
from .analysis import (
    assert_valid_solution,
    is_independent_set,
    is_maximal_independent_set,
    is_vertex_cover,
)
from .baselines import du, greedy, online_mis, redumis, semi_external
from .core import (
    ALGORITHMS,
    KernelResult,
    MISResult,
    VCResult,
    bdone,
    bdtwo,
    compute_independent_set,
    kernelize,
    linear_time,
    minimum_vertex_cover,
    near_linear,
    solve_by_components,
)
from .errors import (
    BudgetExceededError,
    GraphError,
    GraphFormatError,
    NotASolutionError,
    ReproError,
    VertexError,
)
from .exact import brute_force_mis, full_kernelize, independence_number, maximum_independent_set
from .graphs import (
    Graph,
    GraphBuilder,
    barabasi_albert_graph,
    gnm_random_graph,
    gnp_random_graph,
    power_law_graph,
    read_edge_list,
    read_metis,
    web_like_graph,
)
from .localsearch import arw, arw_lt, arw_nl
from .perf import solve_by_components_parallel
from .serve import DynamicGraph, Mutation, ServeResult, ServiceConfig, SolverService

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "BudgetExceededError",
    "DynamicGraph",
    "Graph",
    "GraphBuilder",
    "GraphError",
    "GraphFormatError",
    "KernelResult",
    "MISResult",
    "Mutation",
    "NotASolutionError",
    "ReproError",
    "ServeResult",
    "ServiceConfig",
    "SolverService",
    "VCResult",
    "VertexError",
    "analysis",
    "arw",
    "arw_lt",
    "arw_nl",
    "assert_valid_solution",
    "barabasi_albert_graph",
    "baselines",
    "bdone",
    "bdtwo",
    "bench",
    "brute_force_mis",
    "compute_independent_set",
    "core",
    "du",
    "exact",
    "external",
    "full_kernelize",
    "gnm_random_graph",
    "gnp_random_graph",
    "graphs",
    "greedy",
    "independence_number",
    "is_independent_set",
    "is_maximal_independent_set",
    "is_vertex_cover",
    "kernelize",
    "linear_time",
    "localsearch",
    "maximum_independent_set",
    "minimum_vertex_cover",
    "near_linear",
    "perf",
    "solve_by_components",
    "solve_by_components_parallel",
    "online_mis",
    "power_law_graph",
    "read_edge_list",
    "read_metis",
    "redumis",
    "semi_external",
    "serve",
    "web_like_graph",
]
