"""Command-line interface: ``python -m repro <command>``.

Five subcommands cover the library's everyday uses:

* ``solve``     — compute an independent set (or vertex cover) of a graph
  file with any of the paper's algorithms; ``--telemetry trace.jsonl``
  additionally records a phase-span trace (see :mod:`repro.obs`);
* ``kernelize`` — shrink a graph to its kernel and write it back out;
* ``info``      — print structural statistics of a graph file;
* ``generate``  — emit a synthetic graph (power-law, G(n,m), web-like);
* ``obs``       — inspect observability artefacts (``obs report`` pretty-
  prints a JSON-lines telemetry trace);
* ``serve``     — drive the incremental solving service from a JSONL
  request stream (see :mod:`repro.serve.requests` for the protocol);
  ``--async --shards N`` runs the sharded asyncio front-end instead
  (:mod:`repro.serve.frontend`), replaying the file or, with ``--port``,
  listening for JSONL/HTTP connections until SIGTERM/SIGINT;
* ``loadgen``   — seeded load generator comparing the sync loop against
  the async front-end with rid-level answer verification
  (:mod:`repro.serve.loadgen`);
* ``bench``     — run the perf-regression suite with backend selection
  (``--backend {legacy,flat,vectorized,auto,all}``);
* ``calibrate`` — measure the flat/vectorized crossover on this machine
  and persist the ``auto`` backend's dispatch thresholds
  (:mod:`repro.bench.calibrate`);
* ``snapshot``  — summarize a service snapshot written by ``serve
  --snapshot`` or :meth:`repro.serve.SolverService.save`.

Graph files are auto-detected by extension: ``.metis``/``.graph`` (METIS),
``.col``/``.dimacs`` (DIMACS), anything else as a SNAP edge list.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

from .analysis import complement_vertex_cover
from .baselines import du, greedy, online_mis, redumis, semi_external
from .core import ALGORITHMS, KERNEL_METHODS, compute_independent_set, kernelize
from .errors import ReproError
from .graphs import (
    Graph,
    gnm_random_graph,
    power_law_graph,
    read_dimacs,
    read_edge_list,
    read_metis,
    web_like_graph,
    write_edge_list,
    write_metis,
)

__all__ = ["main", "build_parser"]

_BASELINES = {
    "Greedy": greedy,
    "DU": du,
    "SemiE": semi_external,
    "OnlineMIS": online_mis,
    "ReduMIS": redumis,
}


def load_graph(path: str) -> Tuple[Graph, Optional[List[int]]]:
    """Read a graph file, dispatching on the extension.

    Returns ``(graph, labels)``; ``labels`` maps compacted ids back to the
    file's original labels for edge lists, and is ``None`` for the
    1-indexed formats.
    """
    lower = path.lower()
    if lower.endswith((".metis", ".graph")):
        return read_metis(path, name=path), None
    if lower.endswith((".col", ".dimacs")):
        return read_dimacs(path, name=path), None
    graph, labels = read_edge_list(path, name=path)
    return graph, labels


def _cmd_solve(args: argparse.Namespace) -> int:
    graph, labels = load_graph(args.graph)
    name = args.algorithm

    def run():
        if name in _BASELINES:
            return _BASELINES[name](graph)
        return compute_independent_set(graph, name)

    if args.telemetry:
        from .obs import (
            MemoryProbe,
            probe_record,
            summarize,
            telemetry_session,
            write_trace,
        )

        with telemetry_session(label=f"solve-{name}") as telemetry:
            if args.telemetry_memory:
                with MemoryProbe() as probe:
                    result = run()
                probe_record(probe, name, graph, telemetry=telemetry)
            else:
                result = run()
        records = telemetry.to_records()
        count = write_trace(args.telemetry, records)
        span_total = summarize(records)["span_total"]
        print(
            f"# telemetry: {count} records to {args.telemetry} "
            f"(span total {span_total:.3f}s; "
            f"view with `python -m repro obs report {args.telemetry}`)"
        )
    else:
        result = run()
    vertices = sorted(result.independent_set)
    if args.vertex_cover:
        vertices = sorted(complement_vertex_cover(graph, result.independent_set))
        print(f"# minimum-vertex-cover heuristic: size {len(vertices)}")
    else:
        print(f"# independent set: size {result.size}")
        print(f"# upper bound on alpha: {result.upper_bound}")
        print(f"# certified maximum: {result.is_exact}")
    print(f"# algorithm: {result.algorithm}, time: {result.elapsed:.3f}s")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            for v in vertices:
                handle.write(f"{labels[v] if labels else v}\n")
        print(f"# wrote {len(vertices)} vertex ids to {args.output}")
    elif args.print_vertices:
        for v in vertices:
            print(labels[v] if labels else v)
    return 0


def _cmd_kernelize(args: argparse.Namespace) -> int:
    graph, _ = load_graph(args.graph)
    kernel_result = kernelize(graph, method=args.method)
    kernel = kernel_result.kernel
    print(f"# input : n={graph.n} m={graph.m}")
    print(f"# kernel: n={kernel.n} m={kernel.m} (method={args.method})")
    print(f"# rules fired: {dict(kernel_result.log.stats)}")
    if args.output:
        if args.output.lower().endswith((".metis", ".graph")):
            write_metis(kernel, args.output)
        else:
            write_edge_list(kernel, args.output)
        print(f"# wrote kernel to {args.output}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from .graphs import connected_components, degeneracy, degree_histogram

    graph, _ = load_graph(args.graph)
    histogram = degree_histogram(graph)
    components = connected_components(graph)
    print(f"vertices        : {graph.n}")
    print(f"edges           : {graph.m}")
    print(f"average degree  : {graph.average_degree():.2f}")
    print(f"maximum degree  : {graph.max_degree()}")
    print(f"degree <= 2     : {sum(histogram.get(d, 0) for d in (0, 1, 2))}")
    print(f"components      : {len(components)}")
    print(f"largest comp.   : {len(components[0]) if components else 0}")
    print(f"degeneracy      : {degeneracy(graph)}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.family == "powerlaw":
        graph = power_law_graph(
            args.n, beta=args.beta, average_degree=args.avg_degree, seed=args.seed
        )
    elif args.family == "gnm":
        graph = gnm_random_graph(args.n, int(args.n * args.avg_degree / 2), seed=args.seed)
    else:
        graph = web_like_graph(
            args.n, attach=max(1, round(args.avg_degree / 2)), seed=args.seed
        )
    if args.output.lower().endswith((".metis", ".graph")):
        write_metis(graph, args.output)
    else:
        write_edge_list(graph, args.output)
    print(f"# wrote {args.family} graph n={graph.n} m={graph.m} to {args.output}")
    return 0


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from .obs import load_trace, render_report

    print(render_report(load_trace(args.trace), title=f"trace: {args.trace}"))
    return 0


def _cmd_obs_watch(args: argparse.Namespace) -> int:
    from .obs.watch import main as watch_main

    argv = ["--dir", args.dir, "--tolerance", str(args.tolerance)]
    if args.json:
        argv.append("--json")
    if args.out:
        argv.extend(["--out", args.out])
    if args.strict:
        argv.append("--strict")
    return watch_main(argv)


def _cmd_serve(args: argparse.Namespace) -> int:
    import json
    import signal
    from contextlib import ExitStack

    from .serve import SolverService, ServiceConfig
    from .serve.requests import serve_stream

    if getattr(args, "use_async", False):
        return _serve_async(args)

    # Graceful shutdown: the first SIGTERM/SIGINT asks the stream pump to
    # stop after the in-flight request (the flush/snapshot epilogue below
    # still runs, and the exit code stays 0); a second signal interrupts a
    # blocked stdin read by raising KeyboardInterrupt, which the pump
    # treats the same way.
    stop_requested = {"flag": False}

    def _on_signal(signum: int, _frame: object) -> None:
        if stop_requested["flag"]:
            raise KeyboardInterrupt
        stop_requested["flag"] = True
        print(
            f"# signal {signum}: draining in-flight request, then flushing",
            file=sys.stderr,
        )

    previous_handlers = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous_handlers[signum] = signal.signal(signum, _on_signal)
        except ValueError:  # pragma: no cover - non-main thread (tests)
            pass

    with ExitStack() as stack:
        telemetry = None
        if args.metrics_out:
            # Enabled before the service is built, so it adopts the global
            # registry and the exposition sees every request.
            from .obs.metrics import metrics_session

            stack.enter_context(metrics_session(label="repro-serve"))
        if args.trace_out:
            from .obs import telemetry_session

            telemetry = stack.enter_context(telemetry_session(label="repro-serve"))
        if args.restore:
            service = SolverService.load(args.restore)
            print(
                f"# restored {len(service.graph_ids())} graph(s) from {args.restore}",
                file=sys.stderr,
            )
        else:
            service = SolverService(
                ServiceConfig(
                    algorithm=args.algorithm,
                    cache_capacity=args.cache_capacity,
                    dirty_threshold=args.dirty_threshold,
                    repair_radius=args.repair_radius,
                    default_timeout=args.timeout,
                )
            )
        if args.requests == "-":
            source = sys.stdin
            close_source = None
        else:
            close_source = open(args.requests, "r", encoding="utf-8")
            source = close_source
        if args.output:
            sink = open(args.output, "w", encoding="utf-8")
        else:
            sink = sys.stdout
        try:
            failed = serve_stream(
                service,
                source,
                sink,
                should_stop=lambda: stop_requested["flag"],
            )
        except KeyboardInterrupt:
            # Second signal while blocked on a read: treat as a completed
            # drain so the epilogue still flushes and the exit code is 0.
            failed = 0
        finally:
            for signum, handler in previous_handlers.items():
                signal.signal(signum, handler)
            if close_source is not None:
                close_source.close()
            if args.output:
                sink.close()
        if args.snapshot:
            service.save(args.snapshot)
            print(f"# snapshot written to {args.snapshot}", file=sys.stderr)
        if args.stats:
            print(
                f"# counters: {json.dumps(service.counters(), sort_keys=True)}",
                file=sys.stderr,
            )
        if args.metrics_out:
            if args.metrics_out.endswith(".jsonl"):
                count = service.metrics.write_jsonl(args.metrics_out)
                print(
                    f"# metrics: {count} records to {args.metrics_out}",
                    file=sys.stderr,
                )
            else:
                with open(args.metrics_out, "w", encoding="utf-8") as handle:
                    handle.write(service.metrics.to_prometheus())
                print(
                    f"# metrics: Prometheus exposition to {args.metrics_out}",
                    file=sys.stderr,
                )
        if args.trace_out and telemetry is not None:
            from .obs import write_trace

            count = write_trace(args.trace_out, telemetry.to_records())
            print(
                f"# trace: {count} records to {args.trace_out} "
                f"(view with `python -m repro obs report {args.trace_out}`)",
                file=sys.stderr,
            )
    return 1 if failed else 0


def _serve_async(args: argparse.Namespace) -> int:
    """``repro serve --async``: sharded front-end, replay or socket mode.

    With ``--port`` the front-end listens for JSONL/HTTP connections until
    SIGTERM/SIGINT, then drains.  Without it the request file (or stdin)
    is replayed through the same admission/batch/shard path and responses
    stream to ``--output``/stdout — byte-comparable with the sync mode
    modulo provenance fields.
    """
    import asyncio
    import json
    import signal
    from contextlib import ExitStack

    from .serve import AsyncFrontend, ServiceConfig, ShardRouter, serve_forever
    from .serve.requests import error_response, parse_request_line, salvage_rid

    if args.restore or args.snapshot:
        raise ReproError(
            "--restore/--snapshot apply to the single-process mode only; "
            "the async front-end shards state across workers"
        )
    if args.trace_out:
        raise ReproError(
            "--trace-out applies to the single-process mode only; use "
            "--metrics-out for the frontend's repro_frontend_* series"
        )
    config = ServiceConfig(
        algorithm=args.algorithm,
        cache_capacity=args.cache_capacity,
        dirty_threshold=args.dirty_threshold,
        repair_radius=args.repair_radius,
        default_timeout=args.timeout,
    )
    failed = 0
    with ExitStack() as stack:
        if args.metrics_out:
            from .obs.metrics import metrics_session

            stack.enter_context(metrics_session(label="repro-serve"))
        router = ShardRouter(shards=args.shards, config=config, mode=args.mode)
        frontend = AsyncFrontend(
            router,
            max_queue_depth=args.max_queue_depth,
            max_batch=args.max_batch,
            own_router=True,
        )
        final_stats: dict = {}

        if args.port is not None:

            async def _run_server() -> None:
                stop = asyncio.Event()
                loop = asyncio.get_running_loop()
                for signum in (signal.SIGTERM, signal.SIGINT):
                    try:
                        loop.add_signal_handler(signum, stop.set)
                    except (NotImplementedError, RuntimeError):
                        pass  # pragma: no cover - non-main thread / platform

                class _Announce:
                    def put(self, bound: tuple) -> None:
                        print(
                            f"# listening on {bound[0]}:{bound[1]} "
                            f"({args.shards} shard(s), mode={args.mode}); "
                            "SIGTERM/SIGINT drains and exits 0",
                            file=sys.stderr,
                        )

                await serve_forever(
                    frontend, host=args.host, port=args.port,
                    ready=_Announce(), stop=stop,
                )
                final_stats.update(frontend.snapshot())

            asyncio.run(_run_server())
        else:
            stop_requested = {"flag": False}

            def _on_signal(signum: int, _frame: object) -> None:
                stop_requested["flag"] = True

            previous = {}
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    previous[signum] = signal.signal(signum, _on_signal)
                except ValueError:  # pragma: no cover - non-main thread
                    pass
            if args.requests == "-":
                source = sys.stdin
                close_source = None
            else:
                close_source = open(args.requests, "r", encoding="utf-8")
                source = close_source
            sink = open(args.output, "w", encoding="utf-8") if args.output else sys.stdout

            async def _replay() -> None:
                nonlocal failed
                await frontend.start()
                try:
                    for line in source:
                        if stop_requested["flag"]:
                            break
                        if not line.strip():
                            continue
                        try:
                            request = parse_request_line(line)
                        except ReproError as exc:
                            response = error_response(str(exc), rid=salvage_rid(line))
                            failed += 1
                        else:
                            response = await frontend.submit(request)
                            if response.get("error"):
                                failed += 1
                        sink.write(json.dumps(response, sort_keys=True) + "\n")
                        sink.flush()
                    final_stats.update(frontend.snapshot())
                    final_stats["router"] = router.counters()
                finally:
                    await frontend.drain()

            try:
                asyncio.run(_replay())
            finally:
                for signum, handler in previous.items():
                    signal.signal(signum, handler)
                if close_source is not None:
                    close_source.close()
                if args.output:
                    sink.close()
        if args.stats:
            print(
                f"# frontend: {json.dumps(final_stats, sort_keys=True)}",
                file=sys.stderr,
            )
        if args.metrics_out:
            if args.metrics_out.endswith(".jsonl"):
                count = frontend.metrics.write_jsonl(args.metrics_out)
                print(
                    f"# metrics: {count} records to {args.metrics_out}",
                    file=sys.stderr,
                )
            else:
                with open(args.metrics_out, "w", encoding="utf-8") as handle:
                    handle.write(frontend.metrics.to_prometheus())
                print(
                    f"# metrics: Prometheus exposition to {args.metrics_out}",
                    file=sys.stderr,
                )
    return 1 if failed else 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    import json

    from .serve.loadgen import LoadgenConfig, run_serve_load_benchmark

    config = LoadgenConfig(
        seed=args.seed,
        graphs=args.graphs,
        vertices=args.vertices,
        edge_probability=args.edge_probability,
        requests=args.requests,
        burst=args.burst,
        mutate_every=args.mutate_every,
    )
    result = run_serve_load_benchmark(
        config=config, shards=args.shards, mode=args.mode
    )
    for label in ("sync", "async"):
        payload = result[label]
        assert isinstance(payload, dict)
        print(
            f"# {label:5s}: {payload['throughput']:8.1f} req/s  "
            f"p50 {payload['p50'] * 1000.0:7.2f}ms  "
            f"p99 {payload['p99'] * 1000.0:7.2f}ms  "
            f"shed {payload['shed']}  coalesced {payload['coalesced']}  "
            f"cache_hit_rate {payload['cache_hit_rate']:.2f}"
        )
    equivalence = result["equivalence"]
    shed_check = result["shed_check"]
    assert isinstance(equivalence, dict) and isinstance(shed_check, dict)
    print(
        f"# speedup {result['speedup']:.2f}x  "
        f"equivalent={equivalence['equivalent']} "
        f"(compared {equivalence['compared']})  "
        f"shed_valid={shed_check['all_valid']} "
        f"({shed_check['shed_valid']}/{shed_check['shed']})"
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"# report written to {args.out}", file=sys.stderr)
    ok = bool(equivalence["equivalent"]) and bool(shed_check["all_valid"])
    return 0 if ok else 1


def _cmd_snapshot(args: argparse.Namespace) -> int:
    import json

    with open(args.snapshot, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    config = payload.get("config", {})
    graphs = payload.get("graphs", {})
    cache = payload.get("cache", [])
    print(f"snapshot version : {payload.get('version')}")
    print(f"algorithm        : {config.get('algorithm')}")
    print(f"kernel method    : {config.get('kernel_method')}")
    print(f"graphs           : {len(graphs)}")
    for graph_id, record in graphs.items():
        dynamic = record.get("dynamic", {})
        alive = dynamic.get("alive", [])
        edges = dynamic.get("edges", [])
        solution = record.get("solution")
        dirty = record.get("dirty", [])
        stale = " stale" if record.get("stale") else ""
        kernel = record.get("kernel", {})
        line = (
            f"  {graph_id}: n={len(alive)} m={len(edges)} "
            f"|I|={'-' if solution is None else len(solution)} "
            f"dirty={len(dirty)}{stale}"
        )
        if kernel:
            line += f" kernel_n={kernel.get('kernel_n')}"
        print(line)
    print(f"cache entries    : {len(cache)}")
    for entry in cache:
        print(
            f"  {entry.get('fingerprint', '')[:12]}… "
            f"algo={entry.get('algorithm')} |I|={len(entry.get('solution', []))} "
            f"certified={entry.get('exact_bound')}"
        )
    if args.verify:
        from .serve import SolverService

        SolverService.restore(payload)
        print("# verify: fingerprints match, snapshot restores cleanly")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .perf.bench_regression import main as bench_main

    argv = ["--suite", args.suite, "--backend", args.backend, "--out", args.out]
    argv.extend(["--repeats", str(args.repeats)])
    argv.extend(["--max-regression", str(args.max_regression)])
    if args.compare:
        argv.extend(["--compare", args.compare])
    if args.telemetry:
        argv.append("--telemetry")
        argv.extend(["--telemetry-out", args.telemetry_out])
    return bench_main(argv)


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from .bench.calibrate import main as calibrate_main

    argv = ["--repeats", str(args.repeats)]
    if args.out:
        argv.extend(["--out", args.out])
    if args.dry_run:
        argv.append("--dry-run")
    return calibrate_main(argv)


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint.cli import run as lint_run

    argv = list(args.paths)
    if args.strict:
        argv.append("--strict")
    if args.format != "human":
        argv.extend(["--format", args.format])
    if args.rules:
        argv.extend(["--rules", args.rules])
    if args.list_rules:
        argv.append("--list-rules")
    if args.jobs != 1:
        argv.extend(["--jobs", str(args.jobs)])
    if args.cache:
        argv.extend(["--cache", args.cache])
    if args.baseline:
        argv.extend(["--baseline", args.baseline])
    if args.no_baseline:
        argv.append("--no-baseline")
    if args.update_baseline:
        argv.append("--update-baseline")
    if args.sarif_out:
        argv.extend(["--sarif-out", args.sarif_out])
    return lint_run(argv)


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reducing-Peeling near-maximum independent sets (SIGMOD'17)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    solve = commands.add_parser("solve", help="compute an independent set")
    solve.add_argument("graph", help="graph file (edge list / METIS / DIMACS)")
    solve.add_argument(
        "--algorithm",
        default="NearLinear",
        choices=sorted(ALGORITHMS) + sorted(_BASELINES),
        help="which algorithm to run (default NearLinear)",
    )
    solve.add_argument("--vertex-cover", action="store_true", help="output the complement cover")
    solve.add_argument("--output", help="write the vertex ids to this file")
    solve.add_argument(
        "--print-vertices", action="store_true", help="print the vertex ids to stdout"
    )
    solve.add_argument(
        "--telemetry",
        metavar="TRACE",
        help="record a phase-span telemetry trace to this JSON-lines file",
    )
    solve.add_argument(
        "--telemetry-memory",
        action="store_true",
        help="with --telemetry: add a tracemalloc peak-heap probe (slow)",
    )
    solve.set_defaults(handler=_cmd_solve)

    kernel = commands.add_parser("kernelize", help="reduce a graph to its kernel")
    kernel.add_argument("graph")
    kernel.add_argument(
        "--method",
        default="near_linear",
        choices=sorted(KERNEL_METHODS),
    )
    kernel.add_argument("--output", help="write the kernel graph to this file")
    kernel.set_defaults(handler=_cmd_kernelize)

    info = commands.add_parser("info", help="print graph statistics")
    info.add_argument("graph")
    info.set_defaults(handler=_cmd_info)

    generate = commands.add_parser("generate", help="emit a synthetic graph")
    generate.add_argument("output")
    generate.add_argument("--family", default="powerlaw", choices=["powerlaw", "gnm", "web"])
    generate.add_argument("--n", type=int, default=10_000)
    generate.add_argument("--avg-degree", type=float, default=6.0)
    generate.add_argument("--beta", type=float, default=2.2)
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(handler=_cmd_generate)

    obs = commands.add_parser("obs", help="inspect observability artefacts")
    obs_commands = obs.add_subparsers(dest="obs_command", required=True)
    obs_report = obs_commands.add_parser(
        "report", help="pretty-print a JSON-lines telemetry trace"
    )
    obs_report.add_argument("trace", help="trace file written by --telemetry")
    obs_report.set_defaults(handler=_cmd_obs_report)
    obs_watch = obs_commands.add_parser(
        "watch",
        help="flag gated bench tracks that drifted from their trajectory best",
    )
    obs_watch.add_argument(
        "--dir", default=".", help="directory holding BENCH_PR*.json baselines"
    )
    obs_watch.add_argument(
        "--tolerance",
        type=float,
        default=2.0,
        help="flag when latest wall exceeds trajectory best by this ratio",
    )
    obs_watch.add_argument(
        "--json", action="store_true", help="emit the trajectory as JSON"
    )
    obs_watch.add_argument("--out", default=None, help="also write the output here")
    obs_watch.add_argument(
        "--strict", action="store_true", help="exit nonzero on any flagged track"
    )
    obs_watch.set_defaults(handler=_cmd_obs_watch)

    serve = commands.add_parser(
        "serve", help="drive the incremental solving service from JSONL requests"
    )
    serve.add_argument(
        "requests", help="JSONL request file ('-' reads from stdin)"
    )
    serve.add_argument("--output", help="write JSONL responses here (default stdout)")
    serve.add_argument(
        "--algorithm",
        default="linear_time",
        choices=[
            "bdone",
            "linear_time",
            "near_linear",
            "bdone_vec",
            "linear_time_vec",
            "near_linear_vec",
            "bdone_auto",
            "linear_time_auto",
            "near_linear_auto",
        ],
        help="solver used for cold solves and repairs (default linear_time; "
        "the _vec variants run the vectorized frontier-sweep backend, the "
        "_auto variants pick flat or vectorized per graph)",
    )
    serve.add_argument("--cache-capacity", type=int, default=64)
    serve.add_argument(
        "--dirty-threshold",
        type=float,
        default=0.25,
        help="dirty fraction beyond which repair falls back to a full solve",
    )
    serve.add_argument("--repair-radius", type=int, default=2)
    serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-request budget in seconds (graceful stale fallback)",
    )
    serve.add_argument("--snapshot", help="save the service state here on exit")
    serve.add_argument("--restore", help="start from a saved service snapshot")
    serve.add_argument(
        "--stats", action="store_true", help="print cache/repair counters to stderr"
    )
    serve.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write a metrics snapshot on exit (.jsonl for JSON lines, "
        "anything else gets the Prometheus text exposition)",
    )
    serve.add_argument(
        "--trace-out",
        metavar="TRACE",
        help="record per-request telemetry spans to this JSON-lines file",
    )
    serve.add_argument(
        "--async",
        dest="use_async",
        action="store_true",
        help="run the sharded asyncio front-end (admission control, "
        "micro-batching, deadline shedding) instead of the inline loop",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=4,
        help="worker shards for --async (graphs are routed by id; default 4)",
    )
    serve.add_argument(
        "--mode",
        default="thread",
        choices=["thread", "process"],
        help="shard worker isolation for --async (default thread)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address for --async --port"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        help="with --async: listen for JSONL/HTTP connections on this port "
        "(0 picks an ephemeral one) instead of replaying the request file",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=32,
        help="micro-batch ceiling per shard dispatch for --async (default 32)",
    )
    serve.add_argument(
        "--max-queue-depth",
        type=int,
        default=128,
        help="per-shard admission limit for --async; beyond it sheddable "
        "requests degrade to the stale answer (default 128)",
    )
    serve.set_defaults(handler=_cmd_serve)

    loadgen = commands.add_parser(
        "loadgen",
        help="seeded load generator: sync vs async serve, verified answers",
    )
    loadgen.add_argument("--seed", type=int, default=2017)
    loadgen.add_argument("--graphs", type=int, default=4)
    loadgen.add_argument("--vertices", type=int, default=2500)
    loadgen.add_argument(
        "--edge-probability", type=float, default=0.008, metavar="P"
    )
    loadgen.add_argument(
        "--requests", type=int, default=400, help="timed stream length"
    )
    loadgen.add_argument(
        "--burst", type=int, default=8, help="identical solves per arrival"
    )
    loadgen.add_argument(
        "--mutate-every",
        type=int,
        default=6,
        help="mutate a graph every N arrivals (default 6)",
    )
    loadgen.add_argument("--shards", type=int, default=4)
    loadgen.add_argument("--mode", default="thread", choices=["thread", "process"])
    loadgen.add_argument("--out", default=None, help="write the JSON report here")
    loadgen.set_defaults(handler=_cmd_loadgen)

    snapshot = commands.add_parser(
        "snapshot", help="summarize a saved service snapshot"
    )
    snapshot.add_argument("snapshot", help="snapshot JSON written by `repro serve`")
    snapshot.add_argument(
        "--verify",
        action="store_true",
        help="additionally restore the snapshot and verify its fingerprints",
    )
    snapshot.set_defaults(handler=_cmd_snapshot)

    bench = commands.add_parser(
        "bench", help="run the perf-regression suite (repro.perf.bench_regression)"
    )
    bench.add_argument(
        "--suite",
        default="quick",
        choices=["smoke", "quick", "full"],
        help="graph suite to run (default quick)",
    )
    bench.add_argument(
        "--backend",
        default="all",
        choices=["legacy", "flat", "vectorized", "auto", "all"],
        help="which backend tracks to time: the classic flat-vs-legacy "
        "tracks, the vectorized rounds backend, the auto dispatcher, or "
        "everything (default all)",
    )
    bench.add_argument("--out", default="bench_report.json", help="report path")
    bench.add_argument(
        "--compare", default=None, metavar="BASELINE", help="baseline JSON to gate against"
    )
    bench.add_argument("--max-regression", type=float, default=2.0)
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument(
        "--telemetry", action="store_true", help="collect a phase-span trace"
    )
    bench.add_argument("--telemetry-out", default="bench_telemetry.jsonl")
    bench.set_defaults(handler=_cmd_bench)

    calibrate = commands.add_parser(
        "calibrate",
        help="measure the flat/vectorized crossover for the auto backend",
    )
    calibrate.add_argument(
        "--repeats", type=int, default=3, help="timing repeats (best-of)"
    )
    calibrate.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="calibration file to write (default: per-machine cache path, "
        "or $REPRO_CALIBRATION when set)",
    )
    calibrate.add_argument(
        "--dry-run",
        action="store_true",
        help="measure and print the thresholds without writing the file",
    )
    calibrate.set_defaults(handler=_cmd_calibrate)

    lint = commands.add_parser(
        "lint", help="run reprolint, the repo's contract checker"
    )
    lint.add_argument("paths", nargs="*", default=["src", "tests"])
    lint.add_argument("--strict", action="store_true")
    lint.add_argument(
        "--format", choices=("human", "json", "sarif"), default="human"
    )
    lint.add_argument("--rules", default=None, metavar="RLxxx[,RLxxx...]")
    lint.add_argument("--list-rules", action="store_true")
    lint.add_argument("--jobs", type=int, default=1, metavar="N")
    lint.add_argument("--cache", default=None, metavar="PATH")
    lint.add_argument("--baseline", default=None, metavar="PATH")
    lint.add_argument("--no-baseline", action="store_true")
    lint.add_argument("--update-baseline", action="store_true")
    lint.add_argument("--sarif-out", default=None, metavar="PATH")
    lint.set_defaults(handler=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover — ``python -m repro.cli``
    sys.exit(main())
