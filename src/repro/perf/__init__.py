"""Performance subsystem: parallel per-component driving and regression tracking.

Two pieces live here:

* :func:`solve_by_components_parallel` — the multiprocessing twin of
  :func:`repro.core.components.solve_by_components`.  Components above a
  size threshold are shipped to worker processes as flat CSR byte buffers
  (no per-vertex Python objects cross the process boundary) and solved
  concurrently; small components are solved inline.  The merged result is
  field-for-field identical to the serial driver's, modulo the algorithm
  label and wall time.
* :mod:`repro.perf.bench_regression` — the perf-regression harness.  It
  times the flat-buffer backend against the list-of-lists oracle on seeded
  generator graphs, records kernel sizes and live-counter costs, writes a
  JSON report, and can compare a fresh run against a committed baseline
  (used by the CI ``perf-smoke`` job).
"""

from .parallel import DEFAULT_PARALLEL_THRESHOLD, solve_by_components_parallel

__all__ = ["DEFAULT_PARALLEL_THRESHOLD", "solve_by_components_parallel"]
