"""Performance subsystem: parallel per-component driving and regression tracking.

Two pieces live here:

* :func:`solve_by_components_parallel` — the multiprocessing twin of
  :func:`repro.core.components.solve_by_components`.  Components above a
  size threshold are shipped to worker processes as flat CSR byte buffers
  (no per-vertex Python objects cross the process boundary) and solved
  concurrently; small components are solved inline.  Algorithms can be
  passed by :data:`~repro.perf.parallel.ALGORITHM_BY_NAME` registry name
  (``"bdone"``, ``"linear_time"``, ``"near_linear"``), in which case only
  the name crosses the process boundary.  The merged result is
  field-for-field identical to the serial driver's, modulo the algorithm
  label and wall time.
* :mod:`repro.perf.bench_regression` — the perf-regression harness.  It
  times each flat-buffer backend against its oracle twin (LinearTime,
  NearLinear and ARW-LT tracks) on seeded generator graphs, records kernel
  sizes and live-counter costs, writes a JSON report, and can compare a
  fresh run against a committed baseline (used by the CI ``perf-smoke``
  job).
"""

from .parallel import (
    ALGORITHM_BY_NAME,
    DEFAULT_PARALLEL_THRESHOLD,
    WorkerPool,
    decode_graph_payload,
    encode_graph_payload,
    solve_by_components_parallel,
)

__all__ = [
    "ALGORITHM_BY_NAME",
    "DEFAULT_PARALLEL_THRESHOLD",
    "WorkerPool",
    "decode_graph_payload",
    "encode_graph_payload",
    "solve_by_components_parallel",
]
