"""Parallel per-component solving over flat CSR buffers.

Independent sets compose over connected components (``α(G) = Σ α(Gᵢ)``), so
the per-component driver in :mod:`repro.core.components` is exact.  This
module adds the obvious next step: components are *independent* work items,
so the large ones can be solved in worker processes concurrently.

Serialization is the interesting part.  Pickling a
:class:`~repro.graphs.static_graph.Graph` would ship ``2m + n`` boxed
Python integers per component; instead each component subgraph is exported
through :meth:`~repro.graphs.static_graph.Graph.flat_csr` and sent as two
raw byte strings (``array('q')`` offsets, ``array('i')`` targets) that the
worker rehydrates with :meth:`array.array.frombytes` — one memcpy each way.

The merge is identical to the serial driver's: per-component independent
sets are translated back through the component's id map, bounds and rule
stats are summed, and the certificate holds iff every component certified.
``solve_by_components_parallel(g, alg)`` therefore equals
``solve_by_components(g, alg)`` on every field except ``algorithm`` (which
gains a ``/components-parallel`` suffix) and ``elapsed``.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool
import os
import shutil
import tempfile
import time
from array import array
from typing import Callable, List, Optional, Tuple, Union

from ..core.auto import bdone_auto, linear_time_auto, near_linear_auto
from ..core.bdone import bdone
from ..core.linear_time import linear_time
from ..core.near_linear import near_linear
from ..core.result import MISResult
from ..core.vectorized import bdone_vec, linear_time_vec, near_linear_vec
from ..graphs.properties import connected_components
from ..graphs.static_graph import Graph
from ..obs.telemetry import disable, enable, get_telemetry
from ..obs.trace_io import collect_worker_traces, write_trace

__all__ = [
    "ALGORITHM_BY_NAME",
    "DEFAULT_PARALLEL_THRESHOLD",
    "WorkerPool",
    "decode_graph_payload",
    "encode_graph_payload",
    "solve_by_components_parallel",
]

# Components smaller than this are solved inline: process dispatch plus
# result pickling costs more than a small solve saves.
DEFAULT_PARALLEL_THRESHOLD = 2_000

#: Algorithms dispatchable by name over the raw CSR byte-buffer protocol.
#: Names ship to the workers instead of pickled callables, so the payload
#: stays three byte strings plus two short strings per component.  The
#: ``*_vec`` entries are the vectorized-backend solvers — module-level
#: functions in :mod:`repro.core.vectorized`, so they pickle by reference
#: exactly like the scalar ones.  The ``*_auto`` entries dispatch between
#: flat and vectorized per graph (:mod:`repro.core.auto`); handed to the
#: component pool, each *component* gets its own backend pick.
ALGORITHM_BY_NAME: dict = {
    "bdone": bdone,
    "linear_time": linear_time,
    "near_linear": near_linear,
    "bdone_vec": bdone_vec,
    "linear_time_vec": linear_time_vec,
    "near_linear_vec": near_linear_vec,
    "bdone_auto": bdone_auto,
    "linear_time_auto": linear_time_auto,
    "near_linear_auto": near_linear_auto,
}


def encode_graph_payload(graph: Graph) -> Tuple[bytes, bytes, str]:
    """Export ``graph`` as the flat CSR wire triple ``(offsets, targets, name)``.

    This is the serialization the component pool ships to its workers — two
    raw byte strings (``array('q')`` offsets, ``array('i')`` targets) plus
    the graph name — and the same codec the shard router
    (:mod:`repro.serve.router`) uses to hand whole graphs to shard workers:
    one memcpy out, one memcpy back in, never ``2m + n`` boxed ints.
    """
    offsets, targets = graph.flat_csr()
    return offsets.tobytes(), targets.tobytes(), graph.name


def decode_graph_payload(
    offsets_bytes: bytes, targets_bytes: bytes, name: str
) -> Graph:
    """Rebuild a :class:`Graph` from :func:`encode_graph_payload` output."""
    offsets = array("q")
    offsets.frombytes(offsets_bytes)
    targets = array("i")
    targets.frombytes(targets_bytes)
    return Graph(offsets, targets, name=name)


class WorkerPool:
    """A reusable component-solving worker pool.

    ``solve_by_components_parallel`` creates and tears down a
    ``multiprocessing.Pool`` per call, which is fine for one-shot CLI runs
    but wasteful for a server answering a stream of solves: fork/spawn cost
    lands on every request.  A ``WorkerPool`` keeps the processes alive
    across calls — pass it via the ``pool=`` parameter and the driver skips
    its own pool lifecycle.  The pool is lazy (processes start on first
    use) and restartable (``close`` then reuse re-forks).
    """

    def __init__(
        self,
        processes: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        self.processes = max(1, processes if processes is not None else (os.cpu_count() or 1))
        self._ctx = multiprocessing.get_context(start_method)
        self._pool: Optional[multiprocessing.pool.Pool] = None

    @property
    def started(self) -> bool:
        """Whether worker processes are currently alive."""
        return self._pool is not None

    def _ensure(self) -> "multiprocessing.pool.Pool":
        if self._pool is None:
            self._pool = self._ctx.Pool(self.processes)
        return self._pool

    def map(self, payloads: List[Tuple[bytes, bytes, str, Union[str, Callable[[Graph], MISResult]], int, Optional[str], dict]]) -> List[MISResult]:
        """Solve ``payloads`` (see :func:`_solve_flat`) on the live workers."""
        return self._ensure().map(_solve_flat, payloads)

    def close(self) -> None:
        """Stop the worker processes; the pool may be reused afterwards."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "live" if self.started else "idle"
        return f"<WorkerPool processes={self.processes} {state}>"


def _resolve_algorithm(
    algorithm: Union[str, Callable[[Graph], MISResult]],
) -> Callable[[Graph], MISResult]:
    """Accept a registry name or a module-level callable."""
    if isinstance(algorithm, str):
        try:
            return ALGORITHM_BY_NAME[algorithm]
        except KeyError:
            raise ValueError(
                f"unknown algorithm name {algorithm!r}; "
                f"registered: {sorted(ALGORITHM_BY_NAME)}"
            ) from None
    return algorithm


def _solve_flat(
    payload: Tuple[
        bytes,
        bytes,
        str,
        Union[str, Callable[[Graph], MISResult]],
        int,
        Optional[str],
        dict,
    ],
) -> MISResult:
    """Worker: rebuild a component graph from flat buffers and solve it.

    Module-level so the default (pickle-based) pool start methods can find
    it by reference.  The algorithm arrives either as a registry name
    (resolved here, in the worker) or as a module-level callable (every
    public algorithm in :mod:`repro.core` is picklable by reference).

    ``trace_path`` is ``None`` unless the parent had telemetry enabled; a
    worker cannot share the parent's sink (different process, different
    clock), so it runs its own and flushes it to the given JSON-lines file,
    stamped with ``stamp`` — the component id plus the parent's scoped
    context fields (request id, tenant) — for the parent to collect and
    adopt, so worker spans land inside the originating request's tree.
    """
    (
        offsets_bytes,
        targets_bytes,
        name,
        algorithm,
        component,
        trace_path,
        stamp,
    ) = payload
    graph = decode_graph_payload(offsets_bytes, targets_bytes, name)
    if trace_path is None:
        return _resolve_algorithm(algorithm)(graph)
    sink = enable(label=f"worker-component-{component}", context=dict(stamp))
    try:
        return _resolve_algorithm(algorithm)(graph)
    finally:
        disable()
        write_trace(trace_path, sink.to_records(), stamp=stamp)


def solve_by_components_parallel(
    graph: Graph,
    algorithm: Union[str, Callable[[Graph], MISResult]],
    processes: Optional[int] = None,
    min_component_size: int = DEFAULT_PARALLEL_THRESHOLD,
    start_method: Optional[str] = None,
    pool: Optional[WorkerPool] = None,
) -> MISResult:
    """Run ``algorithm`` per connected component, large components in parallel.

    Parameters
    ----------
    graph:
        The (possibly disconnected) input graph.
    algorithm:
        Either a :data:`ALGORITHM_BY_NAME` registry name (``"bdone"``,
        ``"linear_time"``, ``"near_linear"`` — the name is what ships to
        the workers) or a module-level callable ``Graph -> MISResult``
        (e.g. :func:`repro.core.linear_time.linear_time`); a callable must
        be picklable.
    processes:
        Worker count; defaults to ``os.cpu_count()``.  ``1`` disables the
        pool entirely and solves everything inline.
    min_component_size:
        Components with fewer vertices are solved inline in the parent —
        dispatch overhead dominates below this size.
    start_method:
        Forwarded to :func:`multiprocessing.get_context` (``None`` keeps the
        platform default, ``fork`` on Linux).
    pool:
        An already-running :class:`WorkerPool` to dispatch pooled components
        on.  When given, the driver skips its own per-call pool lifecycle
        (the caller owns start-up and shutdown) and ``processes`` /
        ``start_method`` are ignored — the pool's own settings win.

    Returns the merged :class:`~repro.core.result.MISResult`; identical to
    :func:`repro.core.components.solve_by_components` except for the
    ``/components-parallel`` algorithm suffix and the wall time.
    """
    start = time.perf_counter()
    telemetry = get_telemetry()  # one global check per run
    solver = _resolve_algorithm(algorithm)
    components = connected_components(graph)
    inline: List[Tuple[int, List[int], Graph]] = []
    pooled: List[Tuple[int, List[int], Graph]] = []
    for index, component in enumerate(components):
        subgraph, old_ids = graph.subgraph(component)
        if len(component) >= min_component_size:
            pooled.append((index, old_ids, subgraph))
        else:
            inline.append((index, old_ids, subgraph))

    def _solve_inline(index: int, subgraph: Graph) -> MISResult:
        # Context stamping gives in-parent solves the same per-component
        # attribution the worker traces get from their file stamp.
        if telemetry is None:
            return solver(subgraph)
        with telemetry.scoped(component=index):
            return solver(subgraph)

    solved: List[Tuple[List[int], MISResult]] = [
        (old_ids, _solve_inline(index, subgraph))
        for index, old_ids, subgraph in inline
    ]
    if pooled:
        if processes is None:
            processes = os.cpu_count() or 1
        workers = max(1, min(processes, len(pooled)))
        if pool is not None:
            workers = pool.processes  # caller-owned pool: its sizing wins
        if workers == 1 and pool is None:
            solved.extend(
                (old_ids, _solve_inline(index, subgraph))
                for index, old_ids, subgraph in pooled
            )
        else:
            trace_dir: Optional[str] = None
            trace_paths: List[str] = []
            if telemetry is not None:
                trace_dir = tempfile.mkdtemp(prefix="repro-obs-")
            # Parent scoped-context fields (request id, tenant …) ride the
            # payload so worker traces attribute to the calling request.
            parent_fields = dict(telemetry.context) if telemetry is not None else {}
            payloads = []
            for index, _, subgraph in pooled:
                offsets_bytes, targets_bytes, graph_name = encode_graph_payload(
                    subgraph
                )
                trace_path = (
                    os.path.join(trace_dir, f"component-{index}.jsonl")
                    if trace_dir is not None
                    else None
                )
                if trace_path is not None:
                    trace_paths.append(trace_path)
                stamp = dict(parent_fields)
                stamp["component"] = index
                payloads.append(
                    (
                        offsets_bytes,
                        targets_bytes,
                        graph_name,
                        algorithm,
                        index,
                        trace_path,
                        stamp,
                    )
                )
            try:
                if pool is not None:
                    results = pool.map(payloads)
                else:
                    ctx = multiprocessing.get_context(start_method)
                    with ctx.Pool(workers) as owned_pool:
                        results = owned_pool.map(_solve_flat, payloads)
                if telemetry is not None:
                    telemetry.adopt(collect_worker_traces(trace_paths))
            finally:
                if trace_dir is not None:
                    shutil.rmtree(trace_dir, ignore_errors=True)
            solved.extend(
                (old_ids, result)
                for (_, old_ids, _), result in zip(pooled, results)
            )

    vertices: List[int] = []
    upper_bound = 0
    peeled = 0
    surviving = 0
    stats: dict = {}
    algorithm_name = "unknown"
    for old_ids, result in solved:
        algorithm_name = result.algorithm
        vertices.extend(old_ids[v] for v in result.independent_set)
        upper_bound += result.upper_bound
        peeled += result.peeled
        surviving += result.surviving_peels
        for rule, count in result.stats.items():
            stats[rule] = stats.get(rule, 0) + count
    return MISResult(
        algorithm=f"{algorithm_name}/components-parallel",
        graph_name=graph.name,
        independent_set=frozenset(vertices),
        upper_bound=upper_bound,
        peeled=peeled,
        surviving_peels=surviving,
        is_exact=surviving == 0,
        stats=stats,
        elapsed=time.perf_counter() - start,
    )
