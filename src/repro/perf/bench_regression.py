"""Perf-regression harness: flat backends vs. their oracles, tracked over time.

Runs the reducing-peeling algorithms on seeded generator graphs (so every
run sees byte-identical inputs), timing each flat-buffer backend against
its oracle twin — :class:`~repro.core.workspace.FlatWorkspace` vs the
list-of-lists :class:`~repro.core.workspace.ArrayWorkspace` for BDOne /
LinearTime, :class:`~repro.core.flat_dominance.FlatTriangleWorkspace` vs
the list-of-dicts :class:`~repro.core.dominance.TriangleWorkspace` for
NearLinear, and :class:`~repro.localsearch.flat_state.FlatLocalSearchState`
vs the legacy :class:`~repro.localsearch.arw.LocalSearchState` for ARW-LT —
and writes a JSON report.  The report also records kernel sizes (so a rule
regression shows up as a kernel-size diff, not just a timing blip) and the
per-call cost of the maintained live counters next to an O(n)-scan
reference.

Usage::

    python -m repro.perf.bench_regression                  # full suite
    python -m repro.perf.bench_regression --quick          # CI-sized suite
    python -m repro.perf.bench_regression --quick \
        --out bench_quick.json --compare BENCH_PR7.json    # regression gate

``--compare`` checks the fresh run against a committed baseline and exits
nonzero when any gated track's flat wall time (see :data:`GATED_TRACKS`)
regressed by more than ``--max-regression`` (a ratio; 2.0 means "twice as
slow") on any graph present in both reports.  Only graphs in the
intersection are compared, so a ``--quick`` run gates cleanly against a
full-suite baseline.

``--telemetry`` adds a phase-span trace (``--telemetry-out``, JSON lines)
and a ``telemetry`` section to the report.  The trace comes from a
*separate untimed pass* after the timed suite — instrumented runs take the
generic method-call loop, so the gated flat wall times are never measured
through instrumentation.  See ``docs/observability.md``.

``--watch DIR`` additionally loads every committed ``BENCH_PR*.json``
under ``DIR`` and embeds the reconstructed per-track trajectory (see
:mod:`repro.obs.watch`) into the report under ``"trajectory"``, flagging
any gated track whose latest committed wall drifted more than
``--watch-tolerance`` from its all-time best — the slow-leak check the
single-baseline ``--compare`` gate cannot do.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..analysis.verify import is_independent_set
from ..core.auto import STAT_AUTO_VEC, linear_time_auto, near_linear_auto
from ..core.bdone import bdone
from ..core.dominance import TriangleWorkspace
from ..core.linear_time import linear_time, linear_time_reduce
from ..core.near_linear import near_linear, near_linear_reduce
from ..core.vectorized import linear_time_vec, near_linear_vec
from ..core.workspace import ArrayWorkspace, FlatWorkspace
from ..graphs.generators import gnm_random_graph, power_law_graph, web_like_graph
from ..graphs.static_graph import Graph
from ..localsearch.arw import LocalSearchState
from ..localsearch.boosted import arw_lt
from ..localsearch.flat_state import FlatLocalSearchState
from ..obs.report import render_report, summarize
from ..obs.telemetry import telemetry_session
from ..obs.trace_io import write_trace

__all__ = [
    "build_suite",
    "run_suite",
    "run_telemetry_pass",
    "compare_reports",
    "main",
]

SCHEMA_VERSION = 8

#: The tracks the CI gate watches: record key in ``timings[graph]`` plus
#: the wall-time field inside it.  LinearTime is the paper's headline
#: contribution; NearLinear and ARW-LT gate the flat dominance workspace
#: and the flat local-search state respectively; ServeIncremental gates
#: the serving layer's localized-repair latency on mutation streams; the
#: ``*_vec`` tracks gate the vectorized frontier-sweep backend
#: (:mod:`repro.core.vectorized`); the ``*_auto`` tracks gate the
#: calibrated dispatcher (:mod:`repro.core.auto`) — its wall time, and
#: (inside the record) how far it sits from the best fixed backend.
GATED_TRACKS: Dict[str, Tuple[str, str]] = {
    "linear_time": ("LinearTime", "flat_wall"),
    "near_linear": ("NearLinear", "flat_wall"),
    "arw_lt": ("ARW-LT", "flat_wall"),
    "serve_incremental": ("ServeIncremental", "repair_wall"),
    "linear_time_vec": ("LinearTime-vec", "vec_wall"),
    "near_linear_vec": ("NearLinear-vec", "vec_wall"),
    "linear_time_auto": ("LinearTime-auto", "auto_wall"),
    "near_linear_auto": ("NearLinear-auto", "auto_wall"),
    "serve_load": ("ServeLoad", "async_wall"),
}

#: Which track families each ``--backend`` value runs.  ``legacy`` and
#: ``flat`` both select the classic comparative tracks (each one times the
#: flat backend *and* its legacy oracle — they are two sides of the same
#: record); ``vectorized`` selects the batch-rounds backend tracks;
#: ``auto`` runs the vectorized tracks plus the dispatcher tracks (the
#: auto record scores itself against the fixed walls the vec track just
#: measured, so they travel together).
BACKEND_CHOICES = ("legacy", "flat", "vectorized", "auto", "all")

#: Edge flips per mutation round in the serve track — small enough to stay
#: on the repair path, large enough to touch several neighbourhoods.
_SERVE_MUTATIONS_PER_ROUND = 4

#: Fixed iteration budget for the ARW-LT end-to-end track — wall-clock
#: budgets would make the measured work machine-dependent.
_ARW_ITERATIONS = 40

#: Per-suite shape of the ``serve_load`` track's replay workload (see
#: :mod:`repro.serve.loadgen`): loadgen-config overrides plus the shard
#: fleet size.  The smoke shape exists so the track runs inside the unit
#: tests in well under a second; the quick/full shapes are serving-scale
#: (the graphs are big enough that answer materialization, not dispatch
#: overhead, dominates a cache hit — the regime the front-end amortizes).
_SERVE_LOAD_SHAPES: Dict[str, Dict[str, object]] = {
    "smoke": {
        "vertices": 300,
        "edge_probability": 0.02,
        "graphs": 2,
        "requests": 80,
        "burst": 8,
        "mutate_every": 10,
        "shards": 2,
    },
    "quick": {
        "vertices": 4_000,
        "edge_probability": 0.002,
        "graphs": 4,
        "requests": 300,
        "burst": 16,
        "mutate_every": 25,
        "shards": 4,
    },
    "full": {
        "vertices": 10_000,
        "edge_probability": 0.001,
        "graphs": 4,
        "requests": 600,
        "burst": 16,
        "mutate_every": 25,
        "shards": 4,
    },
}

# name -> (factory, run NearLinear + kernels on it?)
_SUITES: Dict[str, List[Tuple[str, Callable[[], Graph], bool]]] = {
    "smoke": [
        ("plr-300", lambda: power_law_graph(300, beta=2.3, average_degree=5.0, seed=1), True),
        ("gnm-400", lambda: gnm_random_graph(400, 1200, seed=2), True),
    ],
    "quick": [
        ("plr-4k", lambda: power_law_graph(4_000, beta=2.2, average_degree=6.0, seed=3), True),
        ("gnm-3k", lambda: gnm_random_graph(3_000, 9_000, seed=4), True),
        ("web-3k", lambda: web_like_graph(3_000, attach=3, seed=5), True),
    ],
}
_SUITES["full"] = _SUITES["quick"] + [
    # The big one: the ARW track and the kernel exports are skipped here to
    # keep the full suite under a minute; the backend comparisons (including
    # NearLinear flat-vs-TriangleWorkspace, the PR 2 headline) are not.
    ("plr-50k", lambda: power_law_graph(50_000, beta=2.2, average_degree=6.0, seed=7), False),
]


def build_suite(name: str) -> List[Tuple[str, Graph, bool]]:
    """Materialise the named suite's graphs (deterministic: seeded)."""
    return [(gname, factory(), deep) for gname, factory, deep in _SUITES[name]]


def _best_of(fn: Callable[[], object], repeats: int) -> Tuple[object, float]:
    """Run ``fn`` ``repeats`` times; return (last result, best wall time)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def _time_backends(
    algorithm: Callable[..., object],
    graph: Graph,
    repeats: int,
    oracle_factory: type = ArrayWorkspace,
) -> Dict[str, float]:
    """Time ``algorithm`` end-to-end under its flat and oracle backends.

    ``oracle_factory`` is the reference workspace passed through the
    algorithm's ``workspace_factory`` hook (the default backend is always
    the flat one); the two runs must agree on the solution.
    """
    flat_result, flat_wall = _best_of(lambda: algorithm(graph), repeats)
    oracle_result, oracle_wall = _best_of(
        lambda: algorithm(graph, workspace_factory=oracle_factory), repeats
    )
    assert flat_result.independent_set == oracle_result.independent_set
    return {
        "flat_wall": flat_wall,
        "oracle_wall": oracle_wall,
        "flat_solver": flat_result.elapsed,
        "oracle_solver": oracle_result.elapsed,
        "speedup": oracle_wall / flat_wall if flat_wall > 0 else float("inf"),
        "size": len(flat_result.independent_set),
        "upper_bound": flat_result.upper_bound,
    }


def _time_vec_track(
    vec_algorithm: Callable[[Graph], object],
    flat_algorithm: Callable[..., object],
    graph: Graph,
    repeats: int,
    oracle_factory: type,
    exact_match: bool,
) -> Dict[str, float]:
    """Time a vectorized solver against the flat and legacy-oracle runs.

    Unlike :func:`_time_backends`, the vectorized solver may legally pick a
    *different* (equally valid) decision sequence inside a batch round, so
    the solution-set assertion is validity plus size accounting rather than
    set equality — except when ``exact_match`` is set (NearLinear-vec's
    phase-1 sweep is byte-identical to the flat one, so its whole pipeline
    must agree exactly).  On the suite graphs the only observed divergence
    is LinearTime-vec finding a slightly *larger* set on the G(n,m) inputs
    (replay salvages one extra peeled vertex); the report records both
    sizes so any quality drift is visible in review.
    """
    vec_result, vec_wall = _best_of(lambda: vec_algorithm(graph), repeats)
    flat_result, flat_wall = _best_of(lambda: flat_algorithm(graph), repeats)
    oracle_result, oracle_wall = _best_of(
        lambda: flat_algorithm(graph, workspace_factory=oracle_factory), repeats
    )
    assert is_independent_set(graph, vec_result.independent_set)
    if exact_match:
        assert vec_result.independent_set == flat_result.independent_set
    else:
        # Quality guard in the spirit of the serve track's 95% check, but
        # tighter: a silent quality collapse fails the bench run itself.
        assert len(vec_result.independent_set) >= 0.995 * len(
            flat_result.independent_set
        ), (len(vec_result.independent_set), len(flat_result.independent_set))
    return {
        "vec_wall": vec_wall,
        "flat_wall": flat_wall,
        "oracle_wall": oracle_wall,
        "vec_solver": vec_result.elapsed,
        "speedup": oracle_wall / vec_wall if vec_wall > 0 else float("inf"),
        "speedup_vs_flat": flat_wall / vec_wall if vec_wall > 0 else float("inf"),
        "size": len(vec_result.independent_set),
        "flat_size": len(flat_result.independent_set),
        "upper_bound": vec_result.upper_bound,
    }


def _time_auto_track(
    auto_algorithm: Callable[[Graph], object],
    graph: Graph,
    repeats: int,
    vec_record: Dict[str, float],
) -> Dict[str, object]:
    """Time the auto dispatcher and score it against the fixed backends.

    ``vec_record`` is the just-measured vec track for the same family
    (``vec_wall`` / ``flat_wall``): the best fixed wall is their minimum,
    and ``vs_best`` is the acceptance-criterion ratio — 1.0 means the
    dispatcher matched the best fixed backend exactly; anything beyond
    ~1.05 (plus timing noise) means it picked the wrong side of the
    crossover for this graph.
    """
    auto_result, auto_wall = _best_of(lambda: auto_algorithm(graph), repeats)
    assert is_independent_set(graph, auto_result.independent_set)
    picked = "vectorized" if auto_result.stats.get(STAT_AUTO_VEC) else "flat"
    best_fixed = min(vec_record["vec_wall"], vec_record["flat_wall"])
    return {
        "auto_wall": auto_wall,
        "picked": picked,
        "best_fixed_wall": best_fixed,
        "vs_best": auto_wall / best_fixed if best_fixed > 0 else float("inf"),
        "size": len(auto_result.independent_set),
    }


def _greedy_maximal(graph: Graph) -> List[int]:
    """Deterministic greedy maximal independent set (id order) — the
    common seed for the swap-scan throughput measurements."""
    taken = bytearray(graph.n)
    solution: List[int] = []
    for v in range(graph.n):
        if not taken[v]:
            solution.append(v)
            taken[v] = 1
            for w in graph.neighbors(v):
                taken[w] = 1
    return solution


def _time_arw_lt(graph: Graph, repeats: int) -> Optional[Dict[str, float]]:
    """The ARW-LT track: swap-scan throughput plus fixed-iteration e2e.

    Measures (a) one :meth:`local_search` exhaust on the LinearTime kernel
    from a deterministic greedy seed, for both search states, and (b) the
    full ``arw_lt`` pipeline under a fixed iteration budget and RNG seed.
    Returns ``None`` when the kernel is empty (nothing to search — the
    exact rules solved the graph).
    """
    kernel, _, _ = linear_time_reduce(graph)
    if kernel.n == 0:
        return None
    seed_solution = _greedy_maximal(kernel)

    def scan(factory: type) -> float:
        best = float("inf")
        for _ in range(repeats):
            state = factory(kernel, seed_solution)
            start = time.perf_counter()
            state.local_search()
            best = min(best, time.perf_counter() - start)
        return best

    flat_scan = scan(FlatLocalSearchState)
    oracle_scan = scan(LocalSearchState)

    flat_result, flat_wall = _best_of(
        lambda: arw_lt(
            graph,
            time_budget=3600.0,
            max_iterations=_ARW_ITERATIONS,
            rng=random.Random(0),
        ),
        repeats,
    )
    oracle_result, oracle_wall = _best_of(
        lambda: arw_lt(
            graph,
            time_budget=3600.0,
            max_iterations=_ARW_ITERATIONS,
            state_factory=LocalSearchState,
            rng=random.Random(0),
        ),
        repeats,
    )
    assert flat_result.independent_set == oracle_result.independent_set
    return {
        "flat_scan": flat_scan,
        "oracle_scan": oracle_scan,
        "scan_speedup": oracle_scan / flat_scan if flat_scan > 0 else float("inf"),
        "flat_wall": flat_wall,
        "oracle_wall": oracle_wall,
        "speedup": oracle_wall / flat_wall if flat_wall > 0 else float("inf"),
        "size": flat_result.size,
        "kernel_n": kernel.n,
        "iterations": _ARW_ITERATIONS,
    }


def _time_serve_incremental(graph: Graph, repeats: int) -> Dict[str, float]:
    """The serving-layer track: warm-cache latency and repair-vs-fresh.

    Registers the graph with a :class:`~repro.serve.SolverService`, then
    measures (a) a warm cache-hit query against the cold solve it avoids,
    and (b) ``repeats`` seeded mutation rounds where the repair-path query
    races a fresh cold solve of the same mutated snapshot.  The repaired
    solution must stay within 95% of the fresh size — a silent quality
    collapse fails the bench, not just the speedup.
    """
    from ..serve import Mutation, ServiceConfig, SolverService
    from ..serve.repair import cold_solve

    _, cold_wall = _best_of(lambda: cold_solve(graph, "linear_time"), repeats)

    service = SolverService(ServiceConfig(algorithm="linear_time"))
    graph_id = service.register(graph)
    first = service.solve(graph_id)
    _, warm_wall = _best_of(lambda: service.solve(graph_id), repeats)

    rng = random.Random(11)
    repair_wall = float("inf")
    fresh_wall = float("inf")
    repair_size = fresh_size = 0
    region_total = 0
    dynamic = service.dynamic_graph(graph_id)
    for _ in range(repeats):
        live = list(dynamic.live_vertices())
        mutations = []
        for _ in range(_SERVE_MUTATIONS_PER_ROUND):
            u, v = rng.sample(live, 2)
            kind = "remove_edge" if dynamic.has_edge(u, v) else "add_edge"
            mutations.append(Mutation(kind, u, v))
        service.apply(graph_id, mutations)

        start = time.perf_counter()
        repaired = service.solve(graph_id)
        repair_wall = min(repair_wall, time.perf_counter() - start)
        assert repaired.source == "repair", repaired.source
        region_total += repaired.repair_scope["region"]

        snapshot, _ = dynamic.snapshot()
        fresh, round_fresh_wall = _best_of(
            lambda: cold_solve(snapshot, "linear_time"), 1
        )
        fresh_wall = min(fresh_wall, round_fresh_wall)
        repair_size = repaired.size
        fresh_size = len(fresh.independent_set)
        assert repaired.size >= 0.95 * fresh_size, (repaired.size, fresh_size)

    return {
        "cold_wall": cold_wall,
        "warm_wall": warm_wall,
        "warm_speedup": cold_wall / warm_wall if warm_wall > 0 else float("inf"),
        "repair_wall": repair_wall,
        "fresh_wall": fresh_wall,
        "repair_speedup": (
            fresh_wall / repair_wall if repair_wall > 0 else float("inf")
        ),
        "size": repair_size,
        "fresh_size": fresh_size,
        "first_size": first.size,
        "rounds": repeats,
        "mean_region": region_total / repeats,
        "mutations_per_round": _SERVE_MUTATIONS_PER_ROUND,
    }


def _time_serve_load(suite: str) -> Dict[str, object]:
    """The ``serve_load`` track: the async front-end vs the sync service.

    Replays the suite-shaped seeded workload (:data:`_SERVE_LOAD_SHAPES`)
    through both serving paths under the same closed-loop client model and
    records walls, latency percentiles, and the throughput speedup.  The
    underlying harness hard-fails on a rid-level answer mismatch, so a
    committed record is also an equivalence certificate; the shed check
    (deadline-starved replay) is recorded alongside — every shed request
    must still have produced a valid answer.
    """
    from ..serve.loadgen import LoadgenConfig, run_serve_load_benchmark

    shape = dict(_SERVE_LOAD_SHAPES[suite])
    shards = int(shape.pop("shards"))  # type: ignore[arg-type]
    config = LoadgenConfig(**shape)  # type: ignore[arg-type]
    result = run_serve_load_benchmark(config, shards=shards, mode="thread")
    sync = result["sync"]
    asy = result["async"]
    return {
        "async_wall": result["async_wall"],
        "sync_wall": result["sync_wall"],
        "speedup": result["speedup"],
        "sync_p50": sync["p50"],  # type: ignore[index]
        "sync_p99": sync["p99"],  # type: ignore[index]
        "async_p50": asy["p50"],  # type: ignore[index]
        "async_p99": asy["p99"],  # type: ignore[index]
        "throughput": asy["throughput"],  # type: ignore[index]
        "coalesced": asy["coalesced"],  # type: ignore[index]
        "cache_hit_rate": asy["cache_hit_rate"],  # type: ignore[index]
        "shards": shards,
        "requests": result["config"]["requests"],  # type: ignore[index]
        "equivalent": result["equivalence"]["equivalent"],  # type: ignore[index]
        "shed_all_valid": result["shed_check"]["all_valid"],  # type: ignore[index]
    }


def _counter_timings(graph: Graph, calls: int = 20_000) -> Dict[str, float]:
    """Per-call cost (µs) of the maintained live counters vs. an O(n) scan."""
    workspace = FlatWorkspace(graph, track_degree_two=True)
    start = time.perf_counter()
    for _ in range(calls):
        workspace.live_vertex_count
        workspace.live_edge_count()
    maintained = (time.perf_counter() - start) / calls * 1e6

    alive = workspace.alive
    deg = workspace.deg
    scan_calls = max(1, calls // 200)  # the scan is ~n times slower; sample it
    start = time.perf_counter()
    for _ in range(scan_calls):
        sum(alive)
        sum(d for d, a in zip(deg, alive) if a) // 2
    scan = (time.perf_counter() - start) / scan_calls * 1e6
    return {"maintained_us": maintained, "scan_us": scan, "calls": calls}


def run_suite(suite: str, repeats: int, backend: str = "all") -> Dict[str, object]:
    """Run the named suite; return the JSON-serialisable report.

    ``backend`` selects the track families (see :data:`BACKEND_CHOICES`):
    ``legacy``/``flat`` run the classic comparative tracks, ``vectorized``
    the batch-rounds tracks, ``auto`` those plus the dispatcher tracks,
    ``all`` (the default, and what the committed baselines use) runs
    everything.
    """
    if backend not in BACKEND_CHOICES:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {BACKEND_CHOICES}"
        )
    classic = backend in ("legacy", "flat", "all")
    vectorized = backend in ("vectorized", "auto", "all")
    auto_tracks = backend in ("auto", "all")
    report: Dict[str, object] = {
        "schema": SCHEMA_VERSION,
        "suite": suite,
        "backend": backend,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "repeats": repeats,
        "graphs": {},
        "timings": {},
        "kernels": {},
    }
    largest: Optional[Graph] = None
    for gname, graph, deep in build_suite(suite):
        report["graphs"][gname] = {"n": graph.n, "m": graph.m}
        if largest is None or graph.n > largest.n:
            largest = graph
        timings: Dict[str, object] = {}
        if classic:
            timings["BDOne"] = _time_backends(bdone, graph, repeats)
            timings["LinearTime"] = _time_backends(linear_time, graph, repeats)
            timings["NearLinear"] = _time_backends(
                near_linear, graph, repeats, oracle_factory=TriangleWorkspace
            )
        if vectorized:
            timings["LinearTime-vec"] = _time_vec_track(
                linear_time_vec,
                linear_time,
                graph,
                repeats,
                oracle_factory=ArrayWorkspace,
                exact_match=False,
            )
            timings["NearLinear-vec"] = _time_vec_track(
                near_linear_vec,
                near_linear,
                graph,
                repeats,
                oracle_factory=TriangleWorkspace,
                exact_match=True,
            )
        if auto_tracks:
            timings["LinearTime-auto"] = _time_auto_track(
                linear_time_auto, graph, repeats, timings["LinearTime-vec"]
            )
            timings["NearLinear-auto"] = _time_auto_track(
                near_linear_auto, graph, repeats, timings["NearLinear-vec"]
            )
        if classic and deep:
            arw_track = _time_arw_lt(graph, repeats)
            if arw_track is not None:
                timings["ARW-LT"] = arw_track
        if classic:
            timings["ServeIncremental"] = _time_serve_incremental(graph, repeats)
        report["timings"][gname] = timings
        kernel, _, _ = linear_time_reduce(graph)
        kernels = {"linear_time": {"n": kernel.n, "m": kernel.m}}
        if deep:
            nl_kernel, _, _ = near_linear_reduce(graph)
            kernels["near_linear"] = {"n": nl_kernel.n, "m": nl_kernel.m}
        report["kernels"][gname] = kernels
    if classic:
        # The serving front-end track lives under a pseudo-graph key: its
        # input is a whole workload, not one suite graph, but the gate
        # machinery (record key + wall field per graph) applies unchanged.
        report["graphs"]["serve-load"] = dict(_SERVE_LOAD_SHAPES[suite])
        report["timings"]["serve-load"] = {"ServeLoad": _time_serve_load(suite)}
    if largest is not None:
        report["live_counters"] = _counter_timings(largest)
    return report


def run_telemetry_pass(suite: str) -> Tuple[List[Dict[str, object]], Dict[str, object]]:
    """One telemetered solve per (graph, gated algorithm); returns records + summary.

    Kept separate from :func:`run_suite` on purpose: an active telemetry
    sink routes the drivers through the instrumented (generic) loops, so
    the gated flat wall times must be measured with telemetry *off* and the
    traces collected in an extra pass afterwards.
    """
    with telemetry_session(label=f"bench-{suite}") as telemetry:
        for _gname, graph, deep in build_suite(suite):
            linear_time(graph)
            near_linear(graph)
            linear_time_vec(graph)
            near_linear_vec(graph)
            if deep:
                arw_lt(
                    graph,
                    time_budget=3600.0,
                    max_iterations=_ARW_ITERATIONS,
                    rng=random.Random(0),
                )
    records = telemetry.to_records()
    return records, summarize(records)


def compare_reports(
    baseline: Dict[str, object],
    current: Dict[str, object],
    max_regression: float,
) -> List[str]:
    """Return regression messages (empty when the gate passes).

    Compares every :data:`GATED_TRACKS` flat wall time per graph, over the
    intersection of graphs in both reports; a track missing from either
    side of a graph (e.g. ARW-LT on a solved-by-rules graph) is skipped.
    """
    failures: List[str] = []
    base_timings = baseline.get("timings", {})
    cur_timings = current.get("timings", {})
    shared = sorted(set(base_timings) & set(cur_timings))
    if not shared:
        return [
            "no graphs in common between baseline and current report; "
            "cannot gate (baseline suite: %s, current suite: %s)"
            % (baseline.get("suite"), current.get("suite"))
        ]
    for track, (record, field) in sorted(GATED_TRACKS.items()):
        for gname in shared:
            base = base_timings[gname].get(record)
            cur = cur_timings[gname].get(record)
            if not base or not cur or field not in base or field not in cur:
                continue
            base_wall = base[field]
            cur_wall = cur[field]
            if base_wall <= 0:
                continue
            ratio = cur_wall / base_wall
            if ratio > max_regression:
                failures.append(
                    f"{track} on {gname}: {cur_wall:.4f}s vs baseline "
                    f"{base_wall:.4f}s ({ratio:.2f}x > {max_regression:.2f}x allowed)"
                )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.bench_regression", description=__doc__
    )
    parser.add_argument(
        "--suite", choices=sorted(_SUITES), default="full", help="graph suite to run"
    )
    parser.add_argument(
        "--quick", action="store_true", help="shorthand for --suite quick"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="shorthand for --suite smoke (tests)"
    )
    parser.add_argument("--out", default="bench_report.json", help="report path")
    parser.add_argument(
        "--compare", default=None, metavar="BASELINE", help="baseline JSON to gate against"
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=2.0,
        help="fail when the gated wall time exceeds baseline by this ratio",
    )
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats (best-of)")
    parser.add_argument(
        "--backend",
        choices=list(BACKEND_CHOICES),
        default="all",
        help="track families to run: classic flat-vs-legacy, vectorized "
        "rounds, or both (default all)",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="collect a phase-span trace in an extra (untimed) pass",
    )
    parser.add_argument(
        "--telemetry-out",
        default="bench_telemetry.jsonl",
        metavar="TRACE",
        help="JSON-lines trace path for --telemetry",
    )
    parser.add_argument(
        "--watch",
        default=None,
        metavar="DIR",
        help="embed the BENCH_PR*.json trajectory from DIR into the report",
    )
    parser.add_argument(
        "--watch-tolerance",
        type=float,
        default=None,
        help="trajectory drift ratio for --watch (default: the watchdog's)",
    )
    args = parser.parse_args(argv)

    suite = "smoke" if args.smoke else "quick" if args.quick else args.suite
    report = run_suite(suite, max(1, args.repeats), backend=args.backend)
    watch_failures: List[str] = []
    if args.watch:
        from ..obs.watch import DEFAULT_TOLERANCE, build_trajectory, discover_baselines

        trajectory = build_trajectory(
            discover_baselines(args.watch),
            tolerance=(
                args.watch_tolerance
                if args.watch_tolerance is not None
                else DEFAULT_TOLERANCE
            ),
        )
        report["trajectory"] = trajectory
        watch_failures = list(trajectory["regressions"])
    if args.telemetry:
        records, summary = run_telemetry_pass(suite)
        write_trace(args.telemetry_out, records)
        report["telemetry"] = {
            "trace": args.telemetry_out,
            "phases": summary["phases"],
            "span_total": summary["span_total"],
            "counters": summary["counters"],
            "timers": summary["timers"],
            "profiles": [
                {
                    "algorithm": profile.get("algorithm"),
                    "graph": profile.get("graph"),
                    "samples": len(profile.get("samples") or []),
                }
                for profile in summary["profiles"]
            ],
        }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    for gname, timings in report["timings"].items():
        line = [gname]
        for alg, rec in timings.items():
            if "async_wall" in rec:
                part = (
                    f"{alg} async {rec['async_wall']:.4f}s "
                    f"({rec['speedup']:.2f}x vs sync, "
                    f"p99 {rec['async_p99'] * 1000:.1f}ms)"
                )
            elif "repair_wall" in rec:
                part = (
                    f"{alg} repair {rec['repair_wall']:.4f}s "
                    f"({rec['repair_speedup']:.2f}x) warm {rec['warm_speedup']:.0f}x"
                )
            elif "auto_wall" in rec:
                part = (
                    f"{alg} {rec['picked']} {rec['auto_wall']:.4f}s "
                    f"({rec['vs_best']:.2f}x best fixed)"
                )
            elif "vec_wall" in rec:
                part = (
                    f"{alg} vec {rec['vec_wall']:.4f}s ({rec['speedup']:.2f}x, "
                    f"{rec['speedup_vs_flat']:.2f}x vs flat)"
                )
            else:
                part = f"{alg} flat {rec['flat_wall']:.4f}s ({rec['speedup']:.2f}x)"
                if "scan_speedup" in rec:
                    part += f" scan {rec['scan_speedup']:.2f}x"
            line.append(part)
        print("  ".join(line))
    print(f"report written to {args.out}")
    if args.telemetry:
        print(render_report(records, title=f"telemetry ({args.telemetry_out}):"))

    for message in watch_failures:
        print(f"TRAJECTORY: {message}", file=sys.stderr)
    if args.compare:
        with open(args.compare) as handle:
            baseline = json.load(handle)
        failures = compare_reports(baseline, report, args.max_regression)
        if failures:
            for message in failures:
                print(f"REGRESSION: {message}", file=sys.stderr)
            return 1
        print(f"regression gate passed against {args.compare}")
    return 1 if watch_failures else 0


if __name__ == "__main__":
    sys.exit(main())
