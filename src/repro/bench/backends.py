"""Backend selection for the table/figure benchmark scripts.

The benchmark suite regenerates the paper's tables with the default (flat
CSR) drivers.  ``pytest benchmarks/ --backend vectorized`` re-runs the
same scripts with the reducing-peeling family swapped for another
execution backend, so the paper artefacts double as a cross-backend
differential harness:

* ``legacy``     — the reference oracles (list-of-lists
  :class:`~repro.core.workspace.ArrayWorkspace`, list-of-dicts
  :class:`~repro.core.dominance.TriangleWorkspace`);
* ``flat``       — the flat CSR buffers (the default);
* ``vectorized`` — batch frontier sweeps over numpy buffers
  (:mod:`repro.core.vectorized`);
* ``auto``       — per-instance dispatch between ``flat`` and
  ``vectorized`` using the calibrated size/density heuristic
  (:mod:`repro.core.auto`; recalibrate with ``repro calibrate``).

Only the three algorithms with multi-backend drivers are swapped; BDTwo
(whose fold workspace has no alternative backend) always runs its own
driver, and scripts that need it fetch it directly.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..core.auto import bdone_auto, linear_time_auto, near_linear_auto
from ..core.bdone import bdone
from ..core.dominance import TriangleWorkspace
from ..core.linear_time import linear_time
from ..core.near_linear import near_linear
from ..core.result import MISResult
from ..core.vectorized import bdone_vec, linear_time_vec, near_linear_vec
from ..core.workspace import ArrayWorkspace
from ..graphs.static_graph import Graph

__all__ = ["BACKENDS", "resolve_backend"]

Solver = Callable[[Graph], MISResult]


def _bdone_legacy(graph: Graph) -> MISResult:
    return bdone(graph, workspace_factory=ArrayWorkspace)


def _linear_time_legacy(graph: Graph) -> MISResult:
    return linear_time(graph, workspace_factory=ArrayWorkspace)


def _near_linear_legacy(graph: Graph) -> MISResult:
    return near_linear(graph, workspace_factory=TriangleWorkspace)


BACKENDS: Dict[str, Dict[str, Solver]] = {
    "legacy": {
        "bdone": _bdone_legacy,
        "linear_time": _linear_time_legacy,
        "near_linear": _near_linear_legacy,
    },
    "flat": {
        "bdone": bdone,
        "linear_time": linear_time,
        "near_linear": near_linear,
    },
    "vectorized": {
        "bdone": bdone_vec,
        "linear_time": linear_time_vec,
        "near_linear": near_linear_vec,
    },
    "auto": {
        "bdone": bdone_auto,
        "linear_time": linear_time_auto,
        "near_linear": near_linear_auto,
    },
}


def resolve_backend(name: str) -> Dict[str, Solver]:
    """The solver family for ``name`` (see :data:`BACKENDS` for choices).

    Unknown names raise :class:`ValueError` listing the valid choices —
    scripts surface it directly, so the message is the help text.
    """
    try:
        return BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; choose from {sorted(BACKENDS)}"
        ) from None
