"""Timing/one-shot execution helpers shared by the benchmark files.

``pytest-benchmark`` handles the statistically careful timing of the hot
calls; these helpers cover the surrounding bookkeeping — running a suite of
algorithms over a suite of graphs once each and collecting (size, time,
memory) triples for the table printers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from ..analysis.memory import model_words
from ..core.result import MISResult
from ..graphs.static_graph import Graph

__all__ = ["RunRecord", "run_algorithms", "time_call"]


@dataclass(frozen=True)
class RunRecord:
    """One (algorithm, graph) execution.

    ``elapsed`` is the wall time around the call as measured by the harness;
    ``solver_elapsed`` is the time the solver reported for itself
    (:attr:`~repro.core.result.MISResult.elapsed`).  The difference exposes
    wrapper overhead — result materialisation, replay, dispatch — that the
    solver-internal clock cannot see.
    """

    algorithm: str
    graph_name: str
    size: int
    upper_bound: int
    is_exact: bool
    elapsed: float
    solver_elapsed: float
    model_memory_words: int

    @classmethod
    def from_result(
        cls,
        name: str,
        result: MISResult,
        elapsed: float,
        model_memory_words: int = 0,
    ) -> "RunRecord":
        """Build a record from a solver result and the harness wall time.

        ``solver_elapsed`` is always taken from ``result.elapsed`` — the two
        clocks have one source of truth and cannot diverge.  The harness
        clock wraps the solver clock, so ``elapsed`` is clamped up to it
        (sub-microsecond jitter between two ``perf_counter`` windows would
        otherwise produce a negative overhead).
        """
        return cls(
            algorithm=name,
            graph_name=result.graph_name,
            size=result.size,
            upper_bound=result.upper_bound,
            is_exact=result.is_exact,
            elapsed=max(elapsed, result.elapsed),
            solver_elapsed=result.elapsed,
            model_memory_words=model_memory_words,
        )

    @property
    def overhead(self) -> float:
        """Harness wall time not accounted for by the solver's own clock."""
        return self.elapsed - self.solver_elapsed


def time_call(fn: Callable[[], object]) -> Tuple[object, float]:
    """Run ``fn`` once, returning ``(result, wall_seconds)``."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def run_algorithms(
    graph: Graph,
    algorithms: Sequence[Tuple[str, Callable[[Graph], MISResult]]],
) -> List[RunRecord]:
    """Run each named algorithm once on ``graph``; collect records."""
    records: List[RunRecord] = []
    for name, fn in algorithms:
        result, elapsed = time_call(lambda fn=fn: fn(graph))
        try:
            words = model_words(name, graph)
        except Exception:
            words = 0
        records.append(
            RunRecord.from_result(name, result, elapsed, model_memory_words=words)
        )
    return records
