"""``repro calibrate`` — measure the flat/vectorized crossover on this host.

The ``auto`` backend (:mod:`repro.core.auto`) dispatches on two numbers:
a per-family vertex-count crossover and a minimum degree-≤2 fraction.
The fraction is structural (it separates reduction-heavy graphs from the
G(n, m) regime and does not move between machines), but the crossover is
a ratio of numpy batch throughput to interpreter throughput and *does*
move — a machine with a slow BLAS or a fast interpreter shifts it by a
size class either way.

This module reruns the crossover measurement locally: a ladder of seeded
power-law graphs (the reduction-heavy family both vectorized drivers are
built for), each timed best-of-``repeats`` under the flat and vectorized
solvers, per family.  The calibrated crossover is the geometric midpoint
between the last ladder size where flat held and the first where
vectorized won *decisively and kept winning* (a ≥10% margin — ties and
single noisy wins below the real crossover do not drag the threshold
down), clamped to no less than the shipped default: near the default the
two backends sit within noise on reduction-heavy graphs, while other
graph families (web-like preferential attachment) still favour flat
there, so calibration only ever moves a crossover *up* — toward flat —
on machines where the batch rounds pay off later.  The result is
persisted to :func:`repro.core.auto.calibration_path` (override with
``$REPRO_CALIBRATION``) and picked up by every later ``auto`` solve.

Usage::

    repro calibrate                     # measure + write the file
    repro calibrate --dry-run           # measure + print, don't write
    repro calibrate --repeats 5         # steadier timings
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.auto import (
    DEFAULT_CALIBRATION,
    Calibration,
    calibration_path,
    reset_calibration_cache,
)
from ..core.linear_time import linear_time
from ..core.near_linear import near_linear
from ..core.vectorized import linear_time_vec, near_linear_vec
from ..graphs.generators import power_law_graph
from ..graphs.static_graph import Graph

__all__ = ["measure_crossovers", "run_calibration", "main"]

#: Vertex counts of the seeded power-law ladder.  The real crossover sits
#: in the low thousands on every machine measured so far; the ladder
#: brackets it with one size class of headroom on each side.
LADDER: Tuple[int, ...] = (1_000, 2_000, 4_000, 8_000)

#: When vectorized never wins on the ladder, the crossover is pinned one
#: doubling above the ladder top — "not on this machine, at these sizes".
_NEVER_FACTOR = 2

#: A ladder size only counts as a vectorized win when it clears this
#: ratio — near the crossover the walls tie within noise, and a tie must
#: not pull the threshold down.
_WIN_MARGIN = 0.9

_FAMILIES: Dict[str, Tuple[Callable[[Graph], object], Callable[[Graph], object]]] = {
    "linear_time": (linear_time, linear_time_vec),
    "near_linear": (near_linear, near_linear_vec),
}


def _ladder_graph(n: int) -> Graph:
    """The calibration instance at size ``n`` (seeded: same graph always)."""
    return power_law_graph(n, beta=2.2, average_degree=6.0, seed=7)


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure_crossovers(
    repeats: int = 3,
    ladder: Sequence[int] = LADDER,
    echo: Optional[Callable[[str], None]] = None,
) -> Tuple[Dict[str, int], Dict[str, List[Dict[str, float]]]]:
    """Time flat vs vectorized per family over the ladder.

    Returns ``(crossover_n, samples)``: the fitted per-family crossovers
    plus the raw timings that produced them (recorded in the calibration
    file for provenance).  ``echo`` receives one progress line per
    measurement when given.
    """
    crossovers: Dict[str, int] = {}
    samples: Dict[str, List[Dict[str, float]]] = {}
    graphs = [(n, _ladder_graph(n)) for n in ladder]
    # One untimed warm-up per solver: the first call pays lazy imports
    # (numpy/scipy) and cache fills that would otherwise land entirely on
    # the smallest ladder size and drag the fitted crossover around.
    warmup = graphs[0][1]
    for flat_solver, vec_solver in _FAMILIES.values():
        flat_solver(warmup)
        vec_solver(warmup)
    for family, (flat_solver, vec_solver) in _FAMILIES.items():
        rows: List[Dict[str, float]] = []
        for n, graph in graphs:
            flat_wall = _best_of(lambda: flat_solver(graph), repeats)
            vec_wall = _best_of(lambda: vec_solver(graph), repeats)
            rows.append({"n": n, "flat_wall": flat_wall, "vec_wall": vec_wall})
            if echo is not None:
                winner = "vec" if vec_wall <= flat_wall else "flat"
                echo(
                    f"  {family} n={n}: flat {flat_wall:.4f}s "
                    f"vec {vec_wall:.4f}s -> {winner}"
                )
        samples[family] = rows
        floor = DEFAULT_CALIBRATION.crossover_for(family)
        crossovers[family] = max(floor, _fit_crossover(rows))
    return crossovers, samples


def _fit_crossover(rows: List[Dict[str, float]]) -> int:
    """Smallest ladder size from which vectorized wins for good.

    Walks the ladder bottom-up looking for the first size where the
    vectorized wall time wins *decisively* (by :data:`_WIN_MARGIN`) and
    never loses again at larger sizes; the crossover is the geometric
    midpoint between that size and the one below it.  No such size → one
    doubling above the ladder top.  The caller clamps the result to the
    shipped default, so this fit can only push a crossover upward.
    """
    for i, row in enumerate(rows):
        decisive = row["vec_wall"] <= _WIN_MARGIN * row["flat_wall"]
        if decisive and all(r["vec_wall"] <= r["flat_wall"] for r in rows[i:]):
            hi = int(row["n"])
            lo = int(rows[i - 1]["n"]) if i > 0 else hi // 2
            return int(round((lo * hi) ** 0.5))
    return int(rows[-1]["n"]) * _NEVER_FACTOR


def run_calibration(
    repeats: int = 3,
    out: Optional[str] = None,
    dry_run: bool = False,
    echo: Optional[Callable[[str], None]] = None,
    ladder: Optional[Sequence[int]] = None,
) -> Calibration:
    """Measure, fit, and (unless ``dry_run``) persist a calibration."""
    crossovers, samples = measure_crossovers(
        repeats=repeats, ladder=LADDER if ladder is None else ladder, echo=echo
    )
    path = out or calibration_path()
    calibration = Calibration(
        crossover_n=crossovers,
        min_low_frac=DEFAULT_CALIBRATION.min_low_frac,
        source="dry-run" if dry_run else path,
    )
    if not dry_run:
        payload = calibration.to_payload()
        payload["samples"] = samples
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        reset_calibration_cache()
    return calibration


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro calibrate", description=__doc__
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats (best-of)"
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="calibration file to write (default: the auto backend's "
        "per-machine path; see repro.core.auto.calibration_path)",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="measure and print the fitted thresholds without writing",
    )
    args = parser.parse_args(argv)

    print("calibrating flat/vectorized crossover (seeded power-law ladder):")
    calibration = run_calibration(
        repeats=max(1, args.repeats),
        out=args.out,
        dry_run=args.dry_run,
        echo=print,
    )
    for family in sorted(calibration.crossover_n):
        print(f"crossover_n[{family}] = {calibration.crossover_n[family]}")
    print(f"min_low_frac = {calibration.min_low_frac}")
    if args.dry_run:
        print("dry run: nothing written")
    else:
        print(f"calibration written to {calibration.source}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
