"""Fixed-width table rendering for the benchmark harness.

The benchmarks print their results in the same row layout as the paper's
tables so eyeballing a run against the paper is immediate.  Rendering is
dependency-free: plain monospace columns with a rule under the header.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

__all__ = ["render_table", "format_number", "format_seconds"]

Cell = Union[str, int, float, None]


def format_number(value: Cell) -> str:
    """Human-friendly formatting: thousands separators, trimmed floats."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return f"{value:,}"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return f"{int(value):,}"
        return f"{value:,.3f}"
    return str(value)


def format_seconds(seconds: float) -> str:
    """Seconds with adaptive precision (µs → s)."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: str = "",
) -> str:
    """Render a monospace table; numbers are right-aligned."""
    formatted: List[List[str]] = [[format_number(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in formatted:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in formatted:
        cells = []
        for i, cell in enumerate(row):
            if i == 0:
                cells.append(cell.ljust(widths[i]))
            else:
                cells.append(cell.rjust(widths[i]))
        lines.append("  ".join(cells))
    return "\n".join(lines)
