"""Time-budgeted convergence harness for the Eval-IV comparison.

Runs the five local-search contenders — ARW, OnlineMIS, ReduMIS, ARW-LT,
ARW-NL — on one graph under a shared wall-clock budget, each producing its
``(t, |I|)`` improvement series, and renders the series as the text
equivalent of the paper's Figure 10 / 15 plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..baselines.du import du
from ..baselines.online_mis import online_mis
from ..baselines.redumis import redumis
from ..graphs.static_graph import Graph
from ..localsearch.arw import arw
from ..localsearch.boosted import arw_lt, arw_nl
from ..localsearch.events import ConvergenceRecorder
from .tables import format_seconds

__all__ = ["ConvergenceRun", "run_convergence_suite", "render_convergence"]


@dataclass(frozen=True)
class ConvergenceRun:
    """One algorithm's convergence record on one graph."""

    algorithm: str
    events: Tuple[Tuple[float, int], ...]

    @property
    def final_size(self) -> int:
        """Best size at the end of the budget."""
        return self.events[-1][1] if self.events else 0

    @property
    def first_size(self) -> int:
        """Size of the first reported solution."""
        return self.events[0][1] if self.events else 0

    @property
    def first_time(self) -> float:
        """When the first solution was reported."""
        return self.events[0][0] if self.events else float("inf")


def run_convergence_suite(
    graph: Graph, time_budget: float = 1.0, seed: int = 0
) -> Dict[str, ConvergenceRun]:
    """Run all five contenders on ``graph`` under ``time_budget`` seconds."""
    runs: Dict[str, ConvergenceRun] = {}

    recorder = ConvergenceRecorder()
    initial = du(graph).independent_set
    arw(graph, initial, time_budget=time_budget, seed=seed, recorder=recorder)
    runs["ARW"] = ConvergenceRun("ARW", tuple(recorder.events))

    recorder = ConvergenceRecorder()
    online_mis(graph, time_budget=time_budget, seed=seed, recorder=recorder)
    runs["OnlineMIS"] = ConvergenceRun("OnlineMIS", tuple(recorder.events))

    recorder = ConvergenceRecorder()
    redumis(graph, time_budget=time_budget, seed=seed, recorder=recorder)
    runs["ReduMIS"] = ConvergenceRun("ReduMIS", tuple(recorder.events))

    result = arw_lt(graph, time_budget=time_budget, seed=seed)
    runs["ARW-LT"] = ConvergenceRun("ARW-LT", tuple(result.recorder.events))

    result = arw_nl(graph, time_budget=time_budget, seed=seed)
    runs["ARW-NL"] = ConvergenceRun("ARW-NL", tuple(result.recorder.events))
    return runs


def render_convergence(graph_name: str, runs: Dict[str, ConvergenceRun]) -> str:
    """Text rendition of a Figure-10 panel: one series line per algorithm."""
    lines = [f"Convergence on {graph_name} (t -> |I|):"]
    best = max((run.final_size for run in runs.values()), default=0)
    for name in ("ARW", "OnlineMIS", "ReduMIS", "ARW-LT", "ARW-NL"):
        run = runs.get(name)
        if run is None:
            continue
        series = ", ".join(f"{format_seconds(t)}->{size:,}" for t, size in run.events[:6])
        if len(run.events) > 6:
            series += ", …"
        accuracy = 100.0 * run.final_size / best if best else 100.0
        lines.append(
            f"  {name:10s} first=({format_seconds(run.first_time)}, {run.first_size:,}) "
            f"final={run.final_size:,} ({accuracy:.3f}% of best)  [{series}]"
        )
    return "\n".join(lines)
