"""Benchmark harness support: datasets, runners, table/plot rendering."""

from .backends import BACKENDS, resolve_backend
from .calibrate import measure_crossovers, run_calibration
from .convergence import ConvergenceRun, render_convergence, run_convergence_suite
from .datasets import (
    ALL_DATASETS,
    EASY_DATASETS,
    HARD_DATASETS,
    DatasetSpec,
    dataset_names,
    load,
)
from .runner import RunRecord, run_algorithms, time_call
from .tables import format_number, format_seconds, render_table

__all__ = [
    "ALL_DATASETS",
    "BACKENDS",
    "ConvergenceRun",
    "DatasetSpec",
    "EASY_DATASETS",
    "HARD_DATASETS",
    "RunRecord",
    "dataset_names",
    "format_number",
    "format_seconds",
    "load",
    "measure_crossovers",
    "render_convergence",
    "render_table",
    "resolve_backend",
    "run_algorithms",
    "run_calibration",
    "run_convergence_suite",
    "time_call",
]
