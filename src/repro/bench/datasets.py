"""Benchmark instance registry — synthetic stand-ins for the paper's graphs.

The paper evaluates on twenty SNAP / LAW graphs (Table 2), split into twelve
*easy* instances (VCSolver finishes within the time limit — Table 3) and
eight *hard* ones (Table 4, Figures 10/15).  Real downloads are unavailable
offline, so each named graph is replaced by a seeded synthetic stand-in that
matches its **average degree** and its **structural family**, scaled to
Python-feasible sizes:

* ``powerlaw`` — Chung–Lu with β = 2.3 for the social / communication
  networks (GrQc, Email, Epinions, dblp, wiki-Talk, as-Skitter, LiveJ);
* ``collab`` — unions of small Zipf-popular cliques for the collaboration
  networks (CondMat, AstroPh, hollywood), whose clique structure is what
  makes the dominance reduction so effective on them;
* ``web`` — triad-closing preferential attachment with geometric out-degree
  for the crawls (BerkStan, in-2004);
* ``hard-core`` — a power-law/web base fused with a dense random core, so
  that (like the paper's hard instances) a sizeable kernel survives every
  cheap reduction and all algorithms must peel.

DESIGN.md §4 documents why this preserves each experiment's shape: the
reduction rules fire on degree/triangle structure only.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import ReproError
from ..graphs.builder import GraphBuilder
from ..graphs.generators import collaboration_graph, power_law_graph, web_like_graph
from ..graphs.static_graph import Graph

__all__ = ["DatasetSpec", "EASY_DATASETS", "HARD_DATASETS", "ALL_DATASETS", "load", "dataset_names"]


@dataclass(frozen=True)
class DatasetSpec:
    """One benchmark instance: a named, seeded synthetic stand-in.

    Attributes
    ----------
    name:
        Paper graph it stands in for, with a ``-sim`` suffix.
    paper_n, paper_m:
        The original graph's size (Table 2), kept for reporting.
    family:
        ``"powerlaw"``, ``"collab"``, ``"web"`` or ``"hard-core"``.
    n:
        Stand-in vertex count (scaled down).
    average_degree:
        Matched to the paper graph's 2m/n.
    seed:
        Generator seed; instances are fully deterministic.
    """

    name: str
    paper_n: int
    paper_m: int
    family: str
    n: int
    average_degree: float
    seed: int
    beta: float = 2.1
    core: int = 0

    def build(self) -> Graph:
        """Materialise the stand-in graph."""
        if self.family == "powerlaw":
            graph = power_law_graph(
                self.n, beta=self.beta, average_degree=self.average_degree, seed=self.seed
            )
        elif self.family == "collab":
            # Team (cast) size scales with density, as it does for the real
            # collaboration graphs; a team of k authors contributes
            # ~k(k-1)/2 edges, ~70% of them new.
            max_team = max(5, round(self.average_degree / 3))
            edges_per_paper = max_team * (max_team - 1) / 2 * 0.7
            papers = max(1, int(self.n * self.average_degree / 2 / edges_per_paper))
            graph = collaboration_graph(
                self.n, papers=papers, max_team=max_team, seed=self.seed
            )
        elif self.family == "web":
            attach = max(1, round(self.average_degree / 2))
            graph = web_like_graph(self.n, attach=attach, closure=0.6, seed=self.seed)
        else:
            raise ReproError(f"unknown dataset family {self.family!r}")
        if self.core:
            graph = _fuse_core(graph, self.core, self.seed)
        return graph.renamed(self.name)


def _fuse_core(base: Graph, core_size: int, seed: int) -> Graph:
    """Overlay a dense random core on ``core_size`` random vertices.

    The core survives the cheap reductions (its LP relaxation is all-½ and
    it has neither low-degree vertices nor dominance), so it becomes the
    instance's kernel.  Easy instances use a small core (a few dozen
    vertices — VCSolver still finishes, but the weak heuristics show
    gaps); hard instances use a core of ~5% of the vertices at ~10× the
    ambient density, which is what makes the paper's hard instances hard.
    """
    rng = random.Random(seed * 31 + core_size)
    builder = GraphBuilder(base.n, name=base.name)
    for u, v in base.edges():
        builder.add_edge(u, v)
    core = rng.sample(range(base.n), core_size)
    for i in range(core_size):
        for j in range(i + 1, core_size):
            if rng.random() < 0.5:
                builder.add_edge(core[i], core[j])
    return builder.build()


#: Twelve easy instances (paper Table 3).  Sizes follow Table 2, scaled.
#: The five graphs whose paper kernels are non-empty (Epinions, BerkStan,
#: as-Skitter, in-2004, LiveJ) carry a small dense core so that — exactly
#: as in Table 3 — NearLinear leaves a kernel, weak heuristics show gaps,
#: and VCSolver still certifies the independence number.
EASY_DATASETS: Tuple[DatasetSpec, ...] = (
    DatasetSpec("GrQc-sim", 5_242, 14_484, "powerlaw", 2_500, 5.5, 101),
    DatasetSpec("CondMat-sim", 23_133, 93_439, "collab", 4_000, 8.1, 102),
    DatasetSpec("AstroPh-sim", 18_772, 198_050, "collab", 3_000, 12.0, 103),
    DatasetSpec("Email-sim", 265_214, 364_481, "powerlaw", 8_000, 2.8, 104),
    DatasetSpec("Epinions-sim", 75_879, 405_740, "powerlaw", 5_000, 10.7, 105, core=24),
    DatasetSpec("dblp-sim", 933_258, 3_353_618, "powerlaw", 10_000, 7.2, 107),
    DatasetSpec("wiki-Talk-sim", 2_394_385, 4_659_565, "powerlaw", 12_000, 3.9, 108),
    DatasetSpec("BerkStan-sim", 685_230, 6_649_470, "powerlaw", 8_000, 19.4, 109, beta=2.0, core=44),
    DatasetSpec("as-Skitter-sim", 1_696_415, 11_095_398, "powerlaw", 12_000, 13.1, 110, core=36),
    DatasetSpec("in-2004-sim", 1_382_870, 13_591_473, "powerlaw", 10_000, 19.7, 111, beta=2.0, core=40),
    DatasetSpec("LiveJ-sim", 4_847_571, 42_851_237, "powerlaw", 15_000, 17.7, 112, beta=2.05, core=36),
    DatasetSpec("hollywood-sim", 1_985_306, 114_492_816, "collab", 4_000, 40.0, 113),
)

#: Eight hard instances (paper Table 4 / Figures 10, 15): a web-like base
#: fused with a core of ~5% of the vertices, far beyond exact solving.
HARD_DATASETS: Tuple[DatasetSpec, ...] = (
    DatasetSpec("cnr-2000-sim", 325_557, 2_738_969, "web", 4_000, 16.8, 201, core=200),
    DatasetSpec("eu-2005-sim", 862_664, 16_138_468, "web", 4_000, 18.0, 202, core=200),
    DatasetSpec("soc-pokec-sim", 1_632_803, 22_301_964, "powerlaw", 5_000, 14.0, 203, core=250),
    DatasetSpec("indochina-sim", 7_414_768, 150_984_819, "web", 5_000, 20.0, 204, core=250),
    DatasetSpec("uk-2002-sim", 18_484_117, 261_787_258, "web", 6_000, 14.0, 205, core=300),
    DatasetSpec("uk-2005-sim", 39_454_746, 783_027_125, "web", 6_000, 20.0, 206, core=300),
    DatasetSpec("webbase-sim", 115_657_290, 854_809_761, "powerlaw", 8_000, 7.5, 207, core=400),
    DatasetSpec("it-2004-sim", 41_290_682, 1_027_474_947, "web", 6_000, 25.0, 208, core=300),
)

ALL_DATASETS: Tuple[DatasetSpec, ...] = EASY_DATASETS + HARD_DATASETS

_BY_NAME: Dict[str, DatasetSpec] = {spec.name: spec for spec in ALL_DATASETS}
_CACHE: Dict[str, Graph] = {}


def dataset_names(kind: str = "all") -> List[str]:
    """Names of the registered datasets (``"easy"``, ``"hard"`` or ``"all"``)."""
    if kind == "easy":
        return [spec.name for spec in EASY_DATASETS]
    if kind == "hard":
        return [spec.name for spec in HARD_DATASETS]
    if kind == "all":
        return [spec.name for spec in ALL_DATASETS]
    raise ReproError(f"unknown dataset kind {kind!r}")


def load(name: str) -> Graph:
    """Materialise (and memoise) the stand-in graph for ``name``."""
    try:
        spec = _BY_NAME[name]
    except KeyError:
        raise ReproError(f"unknown dataset {name!r}; known: {sorted(_BY_NAME)}") from None
    if name not in _CACHE:
        _CACHE[name] = spec.build()
    return _CACHE[name]
