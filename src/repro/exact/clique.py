"""Maximum clique via the complement graph (paper's Related Works note).

A set is a clique of ``G`` iff it is an independent set of the complement
``Ḡ``, so the exact MIS solver doubles as an exact clique solver.  The
paper points out why this equivalence is *not* viable for large sparse
graphs — the complement of a sparse graph is a dense Θ(n²)-edge graph —
so this helper is deliberately guarded to small instances where the
complement is affordable; it exists for the many small/medium clique
workloads (DIMACS instances, subgraph queries) a library user brings.
"""

from __future__ import annotations

from typing import FrozenSet

from ..errors import GraphError
from ..graphs.static_graph import Graph
from .vcsolver import maximum_independent_set

__all__ = ["maximum_clique", "clique_number"]

_MAX_COMPLEMENT_VERTICES = 2_000


def maximum_clique(graph: Graph, node_budget: int = 200_000) -> FrozenSet[int]:
    """A certified maximum clique of ``graph`` (small graphs only).

    Materialises the complement (Θ(n²) memory — refused above
    ``2,000`` vertices) and runs the branch-and-reduce MIS solver on it.
    Raises :class:`~repro.errors.BudgetExceededError` like the MIS solver.
    """
    if graph.n > _MAX_COMPLEMENT_VERTICES:
        raise GraphError(
            f"complement-based clique search limited to {_MAX_COMPLEMENT_VERTICES} "
            f"vertices (got {graph.n}); the complement of a sparse graph is dense"
        )
    complement = graph.complement()
    result = maximum_independent_set(complement, node_budget=node_budget)
    return result.independent_set


def clique_number(graph: Graph, node_budget: int = 200_000) -> int:
    """ω(G) via :func:`maximum_clique`."""
    return len(maximum_clique(graph, node_budget=node_budget))
