"""Exact maximum independent set by exhaustive bitmask search.

The reference oracle for the property-test suite: correct by construction,
usable up to roughly 30 vertices.  Uses memoized branch-on-max-degree
recursion over vertex bitmasks with the standard degree-≤1 shortcut.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from ..errors import GraphError
from ..graphs.static_graph import Graph

__all__ = ["brute_force_mis", "brute_force_alpha"]

_MAX_VERTICES = 40


def brute_force_mis(graph: Graph) -> FrozenSet[int]:
    """A maximum independent set of ``graph`` (exhaustive, n ≤ 40).

    Deterministic: among equally sized sets, the one produced by the fixed
    branching order.
    """
    n = graph.n
    if n > _MAX_VERTICES:
        raise GraphError(f"brute force limited to {_MAX_VERTICES} vertices, got {n}")
    closed: List[int] = []
    adjacency: List[int] = []
    for v in range(n):
        mask = 0
        for w in graph.neighbors(v):
            mask |= 1 << w
        adjacency.append(mask)
        closed.append(mask | (1 << v))
    memo: Dict[int, Tuple[int, int]] = {}

    def solve(mask: int) -> Tuple[int, int]:
        """Return (α, solution bitmask) of the induced subgraph ``mask``."""
        if mask == 0:
            return 0, 0
        cached = memo.get(mask)
        if cached is not None:
            return cached
        # Pick the max-degree vertex inside the mask; vertices of degree
        # ≤ 1 are taken greedily (always safe).
        best_v, best_d = -1, -1
        remaining = mask
        while remaining:
            low = remaining & -remaining
            v = low.bit_length() - 1
            remaining ^= low
            d = bin(adjacency[v] & mask).count("1")
            if d <= 1:
                size, chosen = solve(mask & ~closed[v])
                result = (size + 1, chosen | (1 << v))
                memo[mask] = result
                return result
            if d > best_d:
                best_v, best_d = v, d
        v = best_v
        # Branch: v excluded / v included.
        size_out, chosen_out = solve(mask & ~(1 << v))
        size_in, chosen_in = solve(mask & ~closed[v])
        size_in += 1
        chosen_in |= 1 << v
        result = (size_in, chosen_in) if size_in >= size_out else (size_out, chosen_out)
        memo[mask] = result
        return result

    _, chosen = solve((1 << n) - 1)
    return frozenset(v for v in range(n) if chosen >> v & 1)


def brute_force_alpha(graph: Graph) -> int:
    """The independence number α(G) by exhaustive search (n ≤ 40)."""
    return len(brute_force_mis(graph))
