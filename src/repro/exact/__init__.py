"""Exact solving and bounding substrate.

* :func:`brute_force_mis` / :func:`brute_force_alpha` — the exhaustive
  oracle used by property tests (n ≤ 40);
* :func:`maximum_independent_set` / :func:`independence_number` — the
  VCSolver-style branch-and-reduce solver for the Table-3 ground truth;
* :func:`full_kernelize` — the full-rule kernelizer (KernelReduMIS's
  reduction phase, Eval-III);
* the clique-cover / LP / cycle-cover upper bounds of Table 7.
"""

from .bounds import (
    clique_cover_bound,
    combined_upper_bound,
    cycle_cover_bound,
    forest_alpha,
)
from .brute_force import brute_force_alpha, brute_force_mis
from .clique import clique_number, maximum_clique
from .vcsolver import (
    ExactResult,
    full_kernelize,
    independence_number,
    maximum_independent_set,
)

__all__ = [
    "ExactResult",
    "brute_force_alpha",
    "brute_force_mis",
    "clique_cover_bound",
    "clique_number",
    "maximum_clique",
    "combined_upper_bound",
    "cycle_cover_bound",
    "forest_alpha",
    "full_kernelize",
    "independence_number",
    "maximum_independent_set",
]
