"""Upper bounds on the independence number (paper Table 7, "existing").

The exact solver of [1] (Akiba–Iwata) prunes with the minimum of three
bounds, all reimplemented here:

* **clique cover** — any partition of V into cliques gives α ≤ #cliques
  (each clique contributes at most one vertex); built greedily along a
  degeneracy order;
* **LP** — the half-integral relaxation bound ``|V₀| + |V_½|/2`` from
  :mod:`repro.core.lp_reduction`;
* **cycle cover** — partition V into vertex-disjoint cycles plus a leftover
  forest: a cycle of length ℓ contributes ⌊ℓ/2⌋ and the forest's exact α is
  computed by tree DP, so α(G) ≤ Σ⌊ℓ/2⌋ + α(forest).

These compete against the reducing-peeling by-product bound of Theorem 6.1
in the Table-7 benchmark.
"""

from __future__ import annotations

import math
from typing import Dict, List, Set, Tuple

from ..core.lp_reduction import lp_upper_bound
from ..graphs.properties import degeneracy_ordering
from ..graphs.static_graph import Graph

__all__ = [
    "clique_cover_bound",
    "cycle_cover_bound",
    "forest_alpha",
    "combined_upper_bound",
]


def clique_cover_bound(graph: Graph) -> int:
    """Greedy clique cover size: α(G) ≤ number of cliques.

    Processes vertices in reverse degeneracy (smallest-last) order, placing
    each into the first existing clique it completes; neighbours appearing
    later in the order are few (≤ degeneracy), keeping the scan cheap.
    """
    order, _ = degeneracy_ordering(graph)
    clique_of: Dict[int, int] = {}
    cliques: List[Set[int]] = []
    for v in reversed(order):
        neighbours = set(graph.neighbors(v))
        candidate_ids = sorted({clique_of[w] for w in neighbours if w in clique_of})
        placed = False
        for cid in candidate_ids:
            if cliques[cid] <= neighbours:
                cliques[cid].add(v)
                clique_of[v] = cid
                placed = True
                break
        if not placed:
            clique_of[v] = len(cliques)
            cliques.append({v})
    return len(cliques)


def forest_alpha(graph: Graph, vertices: List[int]) -> int:
    """Exact α of an induced *forest* via the classic two-state tree DP.

    ``vertices`` must induce an acyclic subgraph; each tree contributes
    ``max(take_root, skip_root)``.
    """
    vertex_set = set(vertices)
    visited: Set[int] = set()
    total = 0
    for root in vertices:
        if root in visited:
            continue
        # Iterative post-order DP: state = (α excluding v, α including v).
        stack: List[Tuple[int, int, bool]] = [(root, -1, False)]
        exclude: Dict[int, int] = {}
        include: Dict[int, int] = {}
        while stack:
            v, parent, processed = stack.pop()
            if processed:
                exc = inc = 0
                for w in graph.neighbors(v):
                    if w != parent and w in vertex_set:
                        exc += max(exclude[w], include[w])
                        inc += exclude[w]
                exclude[v] = exc
                include[v] = inc + 1
                continue
            visited.add(v)
            stack.append((v, parent, True))
            for w in graph.neighbors(v):
                if w != parent and w in vertex_set and w not in visited:
                    stack.append((w, v, False))
        total += max(exclude[root], include[root])
    return total


def cycle_cover_bound(graph: Graph) -> int:
    """Disjoint-cycle decomposition bound: Σ⌊ℓᵢ/2⌋ + α(leftover forest).

    Repeatedly extracts a cycle by DFS from the current residual graph
    until none remains; the residual is then a forest whose α is exact.
    Any vertex partition ``{Vᵢ}`` satisfies α(G) ≤ Σ α(G[Vᵢ]).
    """
    adjacency = graph.adjacency_sets()
    alive: Set[int] = set(range(graph.n))
    bound = 0
    while True:
        cycle = _find_cycle(adjacency, alive)
        if cycle is None:
            break
        bound += len(cycle) // 2
        for v in cycle:
            for w in adjacency[v]:
                adjacency[w].discard(v)
            adjacency[v] = set()
            alive.discard(v)
    bound += forest_alpha(graph, _forest_vertices(adjacency, alive))
    return bound


def _forest_vertices(adjacency: List[Set[int]], alive: Set[int]) -> List[int]:
    return sorted(alive)


def _find_cycle(adjacency: List[Set[int]], alive: Set[int]) -> List[int]:
    """Find any cycle in the residual graph, or ``None``.

    Iterative DFS keeping the explicit ancestor path, so a back edge to an
    on-path vertex yields the cycle directly (a merely *visited* vertex in
    another branch is not enough — that is the classic stack-DFS pitfall).
    """
    # 0 = unvisited (absent), 1 = on the current DFS path, 2 = finished.
    color: Dict[int, int] = {}
    for start in sorted(alive):
        if color.get(start):
            continue
        color[start] = 1
        path = [start]
        frames = [(start, -1, iter(sorted(adjacency[start])))]
        while frames:
            v, parent, neighbours = frames[-1]
            advanced = False
            for w in neighbours:
                if w == parent:
                    continue
                state = color.get(w, 0)
                if state == 1:
                    return path[path.index(w):]
                if state == 0:
                    color[w] = 1
                    path.append(w)
                    frames.append((w, v, iter(sorted(adjacency[w]))))
                    advanced = True
                    break
            if not advanced:
                color[v] = 2
                frames.pop()
                path.pop()
    return None


def combined_upper_bound(graph: Graph) -> int:
    """The minimum of the three classic bounds (the [1] baseline of Table 7)."""
    if graph.n == 0:
        return 0
    best = clique_cover_bound(graph)
    best = min(best, math.floor(lp_upper_bound(graph)))
    best = min(best, cycle_cover_bound(graph))
    return best
