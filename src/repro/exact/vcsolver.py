"""Branch-and-reduce exact solver in the spirit of Akiba–Iwata's VCSolver.

The paper uses VCSolver [1] to obtain the true independence numbers of its
"easy" instances (Table 3) and as the full-rule kernelizer behind
KernelReduMIS (Eval-III).  This module provides both roles:

* :func:`full_kernelize` — exhaustive kernelization with the whole exact
  rule arsenal (degree-0/1, degree-two paths, isolation, **folding**,
  dominance, one-pass dominance, LP), iterated to a fixpoint;
* :func:`maximum_independent_set` — branch-and-reduce: kernelize, prune
  with the best of the clique-cover / LP / cycle-cover bounds, branch on
  the maximum-degree vertex (include N[v]-removed vs. exclude v-removed),
  seeded with a NearLinear lower bound.

Worst-case exponential; a node budget guards against runaways
(:class:`~repro.errors.BudgetExceededError`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from ..core.kernel import KernelResult
from ..core.near_linear import near_linear, near_linear_reduce
from ..core.reductions import (
    find_twin_pair,
    find_unconfined_vertex,
    reduce_degree_two_folding,
    reduce_twin,
    reduce_unconfined,
)
from ..core.trace import DecisionLog
from ..core.result import STAT_DEGREE_TWO_FOLDING, STAT_TWIN, STAT_UNCONFINED
from ..errors import BudgetExceededError
from ..graphs.static_graph import Graph
from .bounds import combined_upper_bound

__all__ = ["ExactResult", "full_kernelize", "maximum_independent_set", "independence_number"]


@dataclass(frozen=True)
class ExactResult:
    """A certified maximum independent set."""

    independent_set: FrozenSet[int]
    nodes_explored: int
    elapsed: float

    @property
    def size(self) -> int:
        """α(G)."""
        return len(self.independent_set)


def _reduce_to_fixpoint(graph: Graph) -> Tuple[Graph, List[int], DecisionLog]:
    """Exhaust every exact rule, folding included, until nothing applies.

    NearLinear's reducer covers everything except degree-two *folding*
    (the one case its path rules skip, Appendix A.2); alternate the two
    until a joint fixpoint, composing id maps and decision logs.
    """
    log = DecisionLog()
    ids = list(range(graph.n))
    current = graph
    while True:
        kernel, kernel_ids, kernel_log = near_linear_reduce(current)
        log.extend_mapped(kernel_log, ids)
        ids = [ids[x] for x in kernel_ids]
        current = kernel
        # Batch every available folding / twin application before paying
        # for another full NearLinear pass (each application recompacts
        # the graph in O(m)).
        changed = False
        while True:
            fold_target = _find_foldable(current)
            if fold_target is not None:
                application = reduce_degree_two_folding(current, fold_target)
                u, v, w = application.fold_record
                log.fold(ids[u], ids[v], ids[w])
                log.bump(STAT_DEGREE_TWO_FOLDING)
            else:
                twins = find_twin_pair(current)
                if twins is not None:
                    application = reduce_twin(current, *twins)
                    log.include(ids[twins[0]])
                    log.include(ids[twins[1]])
                    for doomed in application.removed_vertices - set(twins):
                        log.exclude(ids[doomed])
                    log.bump(STAT_TWIN)
                else:
                    # Last resort: the expensive unconfined-vertex rule —
                    # the one the paper singles out as costly (§3.1).
                    unconfined = find_unconfined_vertex(current)
                    if unconfined is None:
                        break
                    application = reduce_unconfined(current, unconfined)
                    log.exclude(ids[unconfined])
                    log.bump(STAT_UNCONFINED)
            ids = [ids[x] for x in application.old_ids]
            current = application.reduced
            changed = True
        if not changed:
            return current, ids, log


def _find_foldable(graph: Graph) -> Optional[int]:
    """A degree-two vertex with non-adjacent neighbours, or ``None``."""
    for u in range(graph.n):
        if graph.degree(u) == 2:
            v, w = graph.neighbors(u)
            if not graph.has_edge(v, w):
                return u
    return None


def full_kernelize(graph: Graph) -> KernelResult:
    """The full-rule kernel (the paper's KernelReduMIS / VCSolver kernel).

    Strictly stronger than :func:`repro.core.kernelize`'s rule sets; the
    Eval-III benchmark contrasts its (smaller) kernel and (larger) cost
    against LinearTime's and NearLinear's.
    """
    kernel, ids, log = _reduce_to_fixpoint(graph)
    return KernelResult(graph, kernel, tuple(ids), log, "full")


class _Context:
    __slots__ = ("nodes", "node_budget", "best_size")

    def __init__(self, node_budget: int, best_size: int) -> None:
        self.nodes = 0
        self.node_budget = node_budget
        self.best_size = best_size


def _solve(graph: Graph, ctx: _Context, needed: int) -> FrozenSet[int]:
    """Exact MIS of ``graph`` provided α(graph) > ``needed``.

    When α(graph) ≤ needed the subtree is pruned and an empty set comes
    back — the caller only keeps answers strictly beating its threshold.
    """
    ctx.nodes += 1
    if ctx.nodes > ctx.node_budget:
        raise BudgetExceededError(
            f"branch-and-reduce exceeded {ctx.node_budget} nodes",
            best_lower=ctx.best_size,
        )
    kernel, ids, log = _reduce_to_fixpoint(graph)
    offset = log.alpha_offset
    if kernel.n == 0:
        return log.replay(graph).vertices
    # Prune with the tighter of the classic bounds and the paper's
    # Theorem-6.1 by-product bound (Section 6: "a tighter upper bound …
    # to guide an exact computation").
    bound = min(combined_upper_bound(kernel), near_linear(kernel).upper_bound)
    if offset + bound <= needed:
        return frozenset()
    kernel_needed = needed - offset
    degrees = kernel.degrees()
    branch_vertex = max(range(kernel.n), key=lambda v: degrees[v])
    closed = set(kernel.neighbors(branch_vertex))
    closed.add(branch_vertex)
    # Include branch first: taking the branch vertex plus the exact
    # solution of kernel \ N[v].
    include_graph, include_ids = kernel.subgraph(
        [x for x in range(kernel.n) if x not in closed]
    )
    include_solution = _solve(include_graph, ctx, max(kernel_needed - 1, -1))
    best_kernel: FrozenSet[int] = frozenset()
    if include_solution:
        best_kernel = frozenset(include_ids[x] for x in include_solution) | {branch_vertex}
    elif _alpha_is(include_graph, 0):
        # The empty set can legitimately be the include branch's optimum.
        if kernel_needed <= 0:
            best_kernel = frozenset({branch_vertex})
    threshold = max(kernel_needed, len(best_kernel))
    exclude_graph, exclude_ids = kernel.subgraph(
        [x for x in range(kernel.n) if x != branch_vertex]
    )
    exclude_solution = _solve(exclude_graph, ctx, threshold)
    if len(exclude_solution) > threshold:
        best_kernel = frozenset(exclude_ids[x] for x in exclude_solution)
    if len(best_kernel) <= kernel_needed:
        return frozenset()
    lifted_log = log.copy()
    for x in best_kernel:
        lifted_log.include(ids[x])
    return lifted_log.replay(graph).vertices


def _alpha_is(graph: Graph, value: int) -> bool:
    """Cheap check used for the degenerate empty-subproblem case."""
    return graph.n == value


def maximum_independent_set(graph: Graph, node_budget: int = 200_000) -> ExactResult:
    """Compute a certified maximum independent set of ``graph``.

    Seeds the search with NearLinear's solution (often already optimal and
    certified, in which case no branching happens at all).  Raises
    :class:`~repro.errors.BudgetExceededError` when the budget runs out;
    the error carries the best lower bound found.
    """
    start = time.perf_counter()
    heuristic = near_linear(graph)
    best = heuristic.independent_set
    ctx = _Context(node_budget, len(best))
    if heuristic.is_exact:
        return ExactResult(best, 0, time.perf_counter() - start)
    improved = _solve(graph, ctx, len(best))
    if len(improved) > len(best):
        best = improved
    return ExactResult(best, ctx.nodes, time.perf_counter() - start)


def independence_number(graph: Graph, node_budget: int = 200_000) -> int:
    """α(G) via :func:`maximum_independent_set`."""
    return maximum_independent_set(graph, node_budget=node_budget).size
