"""Semi-external Reducing-Peeling: O(n) memory, sequential edge passes.

The paper's closing future-work item, built on the semi-external model of
Liu et al. [30]: the algorithm may hold a constant number of n-sized arrays
in memory but never the adjacency structure; edges arrive only as
sequential passes over the (possibly on-disk) edge list.

Each *round* of :func:`semi_external_bdone` makes one pass to recompute,
for every undecided vertex, its live degree and (when the degree is one)
its unique live neighbour, then applies in-memory what BDOne would:

* degree-0 vertices enter the solution;
* degree-1 vertices enter the solution and their neighbours are deleted
  (ties between adjacent degree-1 vertices break by id, matching the
  degree-one reduction either way);
* if nothing else applies, the highest-degree vertex is peeled.

A final extension phase makes the solution maximal with the same
pass-based discipline (undecided vertices with no solution neighbour join
the solution when they are local id-minima among the remaining candidates,
Luby-style).  The returned result reports the number of passes — the
semi-external model's cost metric.
"""

from __future__ import annotations

import time
from typing import Optional, Union

from ..core.result import MISResult
from ..core.result import STAT_PASSES, STAT_PEEL
from ..errors import ReproError
from ..graphs.static_graph import Graph
from .edge_stream import EdgeStream

__all__ = ["semi_external_bdone"]

_UNDECIDED = 0
_IN = 1
_OUT = 2
_PEELED = 3


def semi_external_bdone(
    source: Union[Graph, str],
    n: int = -1,
    max_rounds: Optional[int] = None,
) -> MISResult:
    """BDOne in the semi-external model; returns pass count in ``stats``.

    ``source`` is a graph or an edge-list path (see
    :class:`~repro.external.edge_stream.EdgeStream`).  ``max_rounds``
    bounds the reduction rounds (defaults to ``n + 2``, enough for any
    input since every round decides at least one vertex).
    """
    start = time.perf_counter()
    stream = EdgeStream(source, n=n)
    vertex_count = stream.n
    status = bytearray(vertex_count)  # all undecided
    degree = [0] * vertex_count
    sole_neighbor = [-1] * vertex_count
    if max_rounds is None:
        max_rounds = vertex_count + 2
    peeled = 0

    for _ in range(max_rounds):
        undecided = _recount(stream, status, degree, sole_neighbor)
        if undecided == 0:
            break
        changed = _apply_reductions(status, degree, sole_neighbor)
        if changed:
            continue
        # Peeling: temporarily drop the highest-degree undecided vertex.
        victim = max(
            (v for v in range(vertex_count) if status[v] == _UNDECIDED),
            key=lambda v: degree[v],
        )
        status[victim] = _PEELED
        peeled += 1
    else:
        raise ReproError(f"semi-external reduction exceeded {max_rounds} rounds")

    surviving = _extend_maximal(stream, status)
    solution = frozenset(v for v in range(vertex_count) if status[v] == _IN)
    return MISResult(
        algorithm="SemiExternalBDOne",
        graph_name=stream._graph.name if stream._graph is not None else str(source),
        independent_set=solution,
        upper_bound=len(solution) + surviving,
        peeled=peeled,
        surviving_peels=surviving,
        is_exact=surviving == 0,
        stats={STAT_PASSES: stream.passes, STAT_PEEL: peeled},
        elapsed=time.perf_counter() - start,
    )


def _recount(stream: EdgeStream, status: bytearray, degree, sole_neighbor) -> int:
    """One pass: live degrees + the unique neighbour of degree-1 vertices."""
    for v in range(stream.n):
        degree[v] = 0
        sole_neighbor[v] = -1
    for u, v in stream.edges():
        if status[u] == _UNDECIDED and status[v] == _UNDECIDED:
            degree[u] += 1
            degree[v] += 1
            sole_neighbor[u] = v
            sole_neighbor[v] = u
    return sum(1 for v in range(stream.n) if status[v] == _UNDECIDED)


def _apply_reductions(status: bytearray, degree, sole_neighbor) -> bool:
    """In-memory sweep of the degree-0/1 reductions; True if anything fired.

    All current degree-0/1 vertices are handled in one sweep in id order;
    the order makes conflicting pairs (two adjacent degree-1 vertices)
    resolve exactly like sequential degree-one reductions would.
    """
    changed = False
    for v in range(len(status)):
        if status[v] != _UNDECIDED:
            continue
        if degree[v] == 0:
            status[v] = _IN
            changed = True
        elif degree[v] == 1:
            w = sole_neighbor[v]
            if status[w] == _OUT:
                # Our neighbour was just deleted by an earlier degree-one
                # application this sweep; we are now degree zero.
                status[v] = _IN
                changed = True
            elif status[w] == _UNDECIDED and (degree[w] != 1 or sole_neighbor[w] == v):
                status[v] = _IN
                status[w] = _OUT
                changed = True
            # Degree counts for w's other neighbours refresh next pass.
    return changed


def _extend_maximal(stream: EdgeStream, status: bytearray) -> int:
    """Pass-based maximal extension; returns surviving peel count.

    Each round makes one pass and classifies every remaining candidate
    (undecided or peeled) as *retired* (adjacent to the solution) or
    *blocked* (adjacent to a smaller-id candidate); unblocked survivors
    join the solution.  The minimum-id non-retired candidate is always
    admitted, so every round makes progress and the loop terminates with
    a maximal solution.
    """
    n = stream.n
    surviving_peels = 0
    retired = bytearray(n)
    blocked = bytearray(n)
    candidate_set = bytearray(n)
    while True:
        candidates = [v for v in range(n) if status[v] in (_UNDECIDED, _PEELED)]
        if not candidates:
            break
        for v in range(n):
            retired[v] = 0
            blocked[v] = 0
            candidate_set[v] = 0
        for v in candidates:
            candidate_set[v] = 1
        for u, v in stream.edges():
            if candidate_set[u] and status[v] == _IN:
                retired[u] = 1
            if candidate_set[v] and status[u] == _IN:
                retired[v] = 1
            if candidate_set[u] and candidate_set[v]:
                # Between two candidates, the smaller id has priority.
                blocked[max(u, v)] = 1
        for v in candidates:
            if retired[v]:
                if status[v] == _PEELED:
                    surviving_peels += 1
                status[v] = _OUT
            elif not blocked[v]:
                status[v] = _IN
        # Progress guarantee: the minimum-id candidate is either retired
        # (solution-adjacent) or unblocked, so the candidate set shrinks.
    return surviving_peels


def _noop() -> None:  # pragma: no cover - placeholder for symmetry
    return None
