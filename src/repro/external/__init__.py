"""Semi-external (I/O-efficient) computation — the paper's future work.

O(n) memory, sequential edge passes: :class:`EdgeStream` provides the
access pattern, :func:`semi_external_bdone` the pass-based BDOne.
"""

from .edge_stream import EdgeStream
from .semi_external import semi_external_bdone

__all__ = ["EdgeStream", "semi_external_bdone"]
