"""Edge streams: multi-pass, O(n)-memory access to a graph's edges.

The paper closes with "extending our techniques to compute independent
sets I/O efficiently" as future work; the semi-external model of Liu et
al. [30] keeps only O(n) state in memory and reads the edge list in
sequential passes.  :class:`EdgeStream` abstracts that access pattern over
either an edge-list file on disk or an in-memory graph (useful for tests),
counting passes so algorithms can report their I/O cost.
"""

from __future__ import annotations

import os
from typing import Iterator, Tuple, Union

from ..errors import GraphFormatError
from ..graphs.static_graph import Graph

__all__ = ["EdgeStream"]


class EdgeStream:
    """Sequential multi-pass edge access with pass accounting.

    Parameters
    ----------
    source:
        Either a :class:`~repro.graphs.static_graph.Graph` or a path to a
        SNAP-style edge-list file with vertex ids in ``0 .. n-1``.
    n:
        Number of vertices.  Required for file sources without a
        ``# repro graph: n=N`` header; ignored for graph sources.
    """

    def __init__(self, source: Union[Graph, str, "os.PathLike[str]"], n: int = -1) -> None:
        self._graph: Graph | None = None
        self._path: str | None = None
        self.passes = 0
        if isinstance(source, Graph):
            self._graph = source
            self.n = source.n
            return
        self._path = os.fspath(source)
        if n < 0:
            n = self._read_header_n()
        if n < 0:
            raise GraphFormatError(
                f"{self._path} has no 'n=' header; pass the vertex count explicitly"
            )
        self.n = n

    def _read_header_n(self) -> int:
        with open(self._path, "r", encoding="utf-8") as handle:
            for raw in handle:
                line = raw.strip()
                if not line:
                    continue
                if line.startswith(("#", "%")):
                    for token in line.split():
                        if token.startswith("n="):
                            return int(token[2:])
                    continue
                break
        return -1

    def edges(self) -> Iterator[Tuple[int, int]]:
        """One sequential pass over all edges (each undirected edge once)."""
        self.passes += 1
        if self._graph is not None:
            yield from self._graph.edges()
            return
        with open(self._path, "r", encoding="utf-8") as handle:
            for line_number, raw in enumerate(handle, start=1):
                line = raw.strip()
                if not line or line.startswith(("#", "%")):
                    continue
                parts = line.split()
                if len(parts) < 2:
                    raise GraphFormatError(f"expected 'u v', got {line!r}", line_number)
                u, v = int(parts[0]), int(parts[1])
                if not (0 <= u < self.n and 0 <= v < self.n):
                    raise GraphFormatError(f"vertex out of range in {line!r}", line_number)
                if u != v:
                    yield (u, v)
