"""Command-line front end for reprolint.

Invoked as ``python -m repro.lint [paths...]`` or via the ``repro lint``
subcommand.  Exit status is 0 when no blocking findings remain: errors
always block; advice blocks only under ``--strict``.

A committed ``lint-baseline.json`` in the working directory is applied
automatically (``--no-baseline`` opts out, ``--baseline PATH`` points
elsewhere), so new rules gate on *regressions* while the absorbed
pre-existing findings stay visible via the summary line.  ``--cache``
enables the on-disk incremental state, ``--jobs`` parses files in
parallel, and ``--sarif-out``/``--format sarif`` emit SARIF 2.1.0 for
GitHub code scanning.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from .baseline import (
    BASELINE_FILENAME,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from .engine import LintRun, blocking, run_lint
from .findings import ADVICE, Finding

__all__ = ["build_parser", "main", "run"]

_DEFAULT_PATHS = ("src", "tests")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "reprolint: per-file and whole-project AST checks for the repo's "
            "hot-path, telemetry, stat-key, oracle-hook, dtype, fork-safety, "
            "request-context and determinism contracts"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(_DEFAULT_PATHS),
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat advice-severity findings as blocking",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "sarif"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--rules",
        metavar="RLxxx[,RLxxx...]",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parse files with N processes (0 = one per CPU; default: 1)",
    )
    parser.add_argument(
        "--cache",
        metavar="PATH",
        default=None,
        help="persist incremental lint state at PATH (off by default)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help=(
            "baseline file of accepted findings "
            f"(default: ./{BASELINE_FILENAME} when present)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="re-record the current findings as the baseline and exit 0",
    )
    parser.add_argument(
        "--sarif-out",
        metavar="PATH",
        default=None,
        help="additionally write a SARIF 2.1.0 report to PATH",
    )
    return parser


def _render(
    findings: Sequence[Finding],
    fmt: str,
    strict: bool,
    run_info: LintRun,
    baselined: int,
    stale: int,
) -> str:
    if fmt == "json":
        payload = {
            "findings": [finding.to_json() for finding in findings],
            "errors": sum(1 for f in findings if f.severity != ADVICE),
            "advice": sum(1 for f in findings if f.severity == ADVICE),
            "strict": strict,
            "baselined": baselined,
            "baseline_stale": stale,
            "files": run_info.files,
            "parsed": run_info.parsed,
            "file_cache_hits": run_info.file_cache_hits,
            "project_cache_hit": run_info.project_cache_hit,
        }
        return json.dumps(payload, indent=2, sort_keys=True)
    lines = [finding.render() for finding in findings]
    errors = sum(1 for f in findings if f.severity != ADVICE)
    advice = len(findings) - errors
    if findings:
        lines.append("")
    summary = (
        f"reprolint: {errors} error(s), {advice} advice finding(s)"
        + (" [strict]" if strict else "")
    )
    if baselined:
        summary += f", {baselined} baselined"
    if run_info.file_cache_hits or run_info.project_cache_hit:
        summary += (
            f", {run_info.file_cache_hits}/{run_info.files} files cached"
            + (" +graph" if run_info.project_cache_hit else "")
        )
    if stale:
        summary += (
            f", {stale} stale baseline entr"
            + ("y" if stale == 1 else "ies")
            + " (refresh with --update-baseline)"
        )
    lines.append(summary)
    return "\n".join(lines)


def _resolve_baseline(args: argparse.Namespace) -> Optional[str]:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return args.baseline
    return BASELINE_FILENAME if os.path.exists(BASELINE_FILENAME) else None


def run(argv: Optional[Sequence[str]] = None) -> int:
    """Parse ``argv``, lint, print the report, return the exit status."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        from .rules import ALL_RULES

        for cls in ALL_RULES:
            print(f"{cls.rule_id}  {cls.name:28s} {cls.summary}")
        return 0
    rules = None
    if args.rules:
        from .rules import default_rules

        wanted: List[str] = [
            part.strip() for part in args.rules.split(",") if part.strip()
        ]
        try:
            rules = default_rules(wanted)
        except KeyError as exc:
            print(f"reprolint: {exc.args[0]}", file=sys.stderr)
            return 2
    from .cache import LintCache

    cache = LintCache(args.cache)
    run_info = run_lint(args.paths, rules=rules, jobs=args.jobs, cache=cache)
    findings = run_info.findings

    baseline_path = args.baseline or BASELINE_FILENAME
    if args.update_baseline:
        count = write_baseline(baseline_path, findings)
        print(f"reprolint: wrote {count} baseline entr"
              + ("y" if count == 1 else "ies")
              + f" to {baseline_path}")
        return 0

    baselined = stale = 0
    resolved = _resolve_baseline(args)
    if resolved is not None:
        findings, baselined, stale = apply_baseline(
            findings, load_baseline(resolved)
        )

    if args.sarif_out or args.format == "sarif":
        from .rules import default_rules as _default
        from .sarif import render_sarif

        report = render_sarif(findings, rules if rules is not None else _default())
        if args.sarif_out:
            with open(args.sarif_out, "w", encoding="utf-8") as handle:
                handle.write(report + "\n")
        if args.format == "sarif":
            print(report)
    if args.format != "sarif":
        print(_render(findings, args.format, args.strict, run_info, baselined, stale))
    return 1 if blocking(findings, strict=args.strict) else 0


def main() -> None:
    """Console entry point (exits the process)."""
    raise SystemExit(run())
