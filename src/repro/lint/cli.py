"""Command-line front end for reprolint.

Invoked as ``python -m repro.lint [paths...]`` or via the ``repro lint``
subcommand.  Exit status is 0 when no blocking findings remain: errors
always block; advice blocks only under ``--strict``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from .engine import blocking, lint_paths
from .findings import ADVICE, Finding

__all__ = ["build_parser", "main", "run"]

_DEFAULT_PATHS = ("src", "tests")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "reprolint: AST checks for the repo's hot-path, telemetry, "
            "stat-key, oracle-hook, and dtype contracts"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(_DEFAULT_PATHS),
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat advice-severity findings as blocking",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--rules",
        metavar="RLxxx[,RLxxx...]",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _render(findings: Sequence[Finding], fmt: str, strict: bool) -> str:
    if fmt == "json":
        payload = {
            "findings": [finding.to_json() for finding in findings],
            "errors": sum(1 for f in findings if f.severity != ADVICE),
            "advice": sum(1 for f in findings if f.severity == ADVICE),
            "strict": strict,
        }
        return json.dumps(payload, indent=2, sort_keys=True)
    lines = [finding.render() for finding in findings]
    errors = sum(1 for f in findings if f.severity != ADVICE)
    advice = len(findings) - errors
    if findings:
        lines.append("")
    lines.append(
        f"reprolint: {errors} error(s), {advice} advice finding(s)"
        + (" [strict]" if strict else "")
    )
    return "\n".join(lines)


def run(argv: Optional[Sequence[str]] = None) -> int:
    """Parse ``argv``, lint, print the report, return the exit status."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        from .rules import ALL_RULES

        for cls in ALL_RULES:
            print(f"{cls.rule_id}  {cls.name:24s} {cls.summary}")
        return 0
    rules = None
    if args.rules:
        from .rules import default_rules

        wanted: List[str] = [part.strip() for part in args.rules.split(",") if part.strip()]
        try:
            rules = default_rules(wanted)
        except KeyError as exc:
            print(f"reprolint: {exc.args[0]}", file=sys.stderr)
            return 2
    findings = lint_paths(args.paths, rules=rules)
    print(_render(findings, args.format, args.strict))
    return 1 if blocking(findings, strict=args.strict) else 0


def main() -> None:
    """Console entry point (exits the process)."""
    raise SystemExit(run())
