"""On-disk incremental cache for reprolint runs.

Two invalidation granularities, matching the two analysis granularities:

* **Per-file** — module-rule findings (RL001–RL003, RL005) are keyed by
  the sha256 of the file's *source text*.  Any edit re-lints just that
  file.
* **Whole-project** — project/graph-rule findings (RL004, RL006–RL009)
  are keyed by a digest over every file's *AST hash* (sha256 of
  ``ast.dump``).  The AST hash is the practical approximation of the
  "import/def surface": comment and formatting edits keep the project
  analysis warm, while any semantic edit — which could add a call edge —
  soundly rebuilds the graph.

The cache stores **raw** (pre-suppression, pre-baseline) findings;
suppression comments are re-read from the current source text on every
run, so editing a ``# reprolint: disable=`` line takes effect without
invalidating anything.  A cache entry also carries the engine/rules key
(rule ids + versions); a mismatch resets the whole file, so stale
formats can never leak findings.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

from .findings import Finding

__all__ = ["LintCache"]

_VERSION = 2


class LintCache:
    """Load/save the incremental state; ``path=None`` disables persistence."""

    def __init__(self, path: Optional[str]) -> None:
        self.path = path
        self.file_hits = 0
        self.project_hit = False
        self.data: Dict[str, object] = self._empty()
        if path and os.path.exists(path):
            self._load(path)

    @staticmethod
    def _empty() -> Dict[str, object]:
        return {
            "version": _VERSION,
            "rules_key": "",
            "files": {},
            "project": {"key": "", "findings": []},
        }

    def _load(self, path: str) -> None:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return
        if (
            isinstance(payload, dict)
            and payload.get("version") == _VERSION
            and isinstance(payload.get("files"), dict)
            and isinstance(payload.get("project"), dict)
        ):
            self.data = payload

    # ------------------------------------------------------------------
    def configure(self, rules_key: str) -> None:
        """Reset the cache when the engine/rule surface changed."""
        if self.data.get("rules_key") != rules_key:
            self.data = self._empty()
            self.data["rules_key"] = rules_key

    # ------------------------------------------------------------------
    def lookup_file(
        self, path: str, content_hash: str
    ) -> Optional[Tuple[str, List[Finding]]]:
        """``(ast_hash, raw module findings)`` when the source is unchanged."""
        entry = self.data["files"].get(path)  # type: ignore[union-attr]
        if not isinstance(entry, dict) or entry.get("content") != content_hash:
            return None
        try:
            findings = [Finding.from_json(r) for r in entry.get("findings", [])]
        except (KeyError, TypeError, ValueError):
            return None
        self.file_hits += 1
        return str(entry.get("ast", "")), findings

    def store_file(
        self,
        path: str,
        content_hash: str,
        ast_hash: str,
        findings: Sequence[Finding],
    ) -> None:
        self.data["files"][path] = {  # type: ignore[index]
            "content": content_hash,
            "ast": ast_hash,
            "findings": [f.to_json() for f in findings],
        }

    def prune(self, keep_paths: Sequence[str]) -> None:
        """Drop entries for files no longer part of the run."""
        keep = set(keep_paths)
        files = self.data["files"]
        for path in list(files):  # type: ignore[union-attr]
            if path not in keep:
                del files[path]  # type: ignore[index]

    # ------------------------------------------------------------------
    def lookup_project(self, key: str) -> Optional[List[Finding]]:
        """Raw project+graph findings when no file's AST surface changed."""
        entry = self.data["project"]
        if not isinstance(entry, dict) or entry.get("key") != key or not key:
            return None
        try:
            findings = [Finding.from_json(r) for r in entry.get("findings", [])]
        except (KeyError, TypeError, ValueError):
            return None
        self.project_hit = True
        return findings

    def store_project(self, key: str, findings: Sequence[Finding]) -> None:
        self.data["project"] = {
            "key": key,
            "findings": [f.to_json() for f in findings],
        }

    # ------------------------------------------------------------------
    def save(self) -> None:
        """Atomically persist (no-op when created with ``path=None``)."""
        if not self.path:
            return
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        tmp = f"{self.path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self.data, handle)
        os.replace(tmp, self.path)
