"""The reprolint engine: discovery, parsing, caching, suppressions, rules.

The engine turns paths into :class:`LintModule` objects (source + AST +
parsed suppression comments) and drives the rules from
:mod:`repro.lint.rules` at three granularities:

* ``check_module`` — per-file rules (RL001–RL003, RL005);
* ``check_project`` — cross-file rules over all modules (RL004);
* ``check_graph`` — call-graph rules over a lazily built
  :class:`~repro.lint.graph.Project` (RL006–RL009).

:func:`run_lint` is the full pipeline with the on-disk incremental
cache (:mod:`repro.lint.cache`) and optional multiprocess parsing;
:func:`lint_paths`/:func:`lint_source`/:func:`lint_sources` are the
simple entry points tests and fixtures use.

Suppressions follow the familiar inline-comment convention::

    risky_line()  # reprolint: disable=RL001
    another()     # reprolint: disable=RL001,RL003
    yet_more()    # reprolint: disable

    # reprolint: disable-file=RL004   (anywhere in the file)

A bare ``disable`` suppresses every rule on that line; ``disable-file``
suppresses the named rules (or all, when bare) for the whole file,
wherever the comment appears.  A ``disable`` comment on a **decorator
line** additionally covers the decorated ``def``/``class`` header it
precedes, so waiving a def-anchored finding does not force the comment
onto the (often long) signature line.  Suppression tables are parsed
from source text alone — no AST — so cached findings can be re-filtered
against edited comments without re-parsing.
"""

from __future__ import annotations

import ast
import hashlib
import os
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from .findings import ADVICE, ERROR, Finding

__all__ = [
    "LintModule",
    "LintRun",
    "blocking",
    "iter_python_files",
    "lint_modules",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "load_module",
    "module_name_for",
    "parse_suppressions",
    "run_lint",
]

#: Bumped whenever finding semantics change; part of the cache key.
ENGINE_VERSION = "2"

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(disable-file|disable)(?:=([A-Za-z0-9_,\s]+))?"
)

#: Sentinel meaning "every rule" in the suppression tables.
_ALL_RULES: FrozenSet[str] = frozenset({"*"})

#: How far below a decorator line the decorated header may sit (multi-line
#: decorator calls and stacked decorators are scanned through).
_DECORATOR_SCAN_LINES = 50

#: Anchors used to derive a dotted module name from a file path.
_PATH_ANCHORS = ("src", "tests", "benchmarks", "examples")


def _parse_rule_list(raw: Optional[str]) -> FrozenSet[str]:
    if raw is None:
        return _ALL_RULES
    ids = frozenset(part.strip() for part in raw.split(",") if part.strip())
    return ids or _ALL_RULES


def parse_suppressions(
    source: str,
) -> Tuple[Dict[int, FrozenSet[str]], FrozenSet[str]]:
    """``(line_disables, file_disables)`` parsed from source text.

    Purely textual (regex over lines), so it works identically for
    freshly parsed modules and cache-hit files whose AST never loads.
    """
    line_disables: Dict[int, FrozenSet[str]] = {}
    file_disables: FrozenSet[str] = frozenset()
    lines = source.splitlines()
    for lineno, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        ids = _parse_rule_list(match.group(2))
        if match.group(1) == "disable-file":
            file_disables = file_disables | ids
            continue
        line_disables[lineno] = line_disables.get(lineno, frozenset()) | ids
        if line.lstrip().startswith("@"):
            # A waiver on a decorator line extends to the header it
            # decorates — findings for a function are anchored at its
            # ``def`` line, which may sit several (decorator) lines below.
            limit = min(lineno + _DECORATOR_SCAN_LINES, len(lines))
            for follow in range(lineno + 1, limit + 1):
                stripped = lines[follow - 1].lstrip()
                if stripped.startswith(("def ", "async def ", "class ")):
                    line_disables[follow] = (
                        line_disables.get(follow, frozenset()) | ids
                    )
                    break
    return line_disables, file_disables


def _suppressed_by(
    finding: Finding,
    file_disables: FrozenSet[str],
    line_disables: Dict[int, FrozenSet[str]],
) -> bool:
    for ids in (file_disables, line_disables.get(finding.line)):
        if ids and ("*" in ids or finding.rule_id in ids):
            return True
    return False


def module_name_for(path: str) -> str:
    """Dotted module name a file path imports as (``src/`` stripped).

    Anchored at the first ``src``/``tests``/``benchmarks``/``examples``
    component so absolute and repo-relative paths agree; falls back to
    the bare filename for paths outside any anchor (fixtures).
    """
    parts = [p for p in path.replace(os.sep, "/").split("/") if p and p != "."]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    for anchor in _PATH_ANCHORS:
        if anchor in parts:
            cut = parts.index(anchor)
            parts = parts[cut + 1 :] if anchor == "src" else parts[cut:]
            break
    else:
        parts = parts[-1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else "<module>"


class LintModule:
    """One parsed source file: path, AST, and suppression tables.

    ``path`` is normalised to ``/`` separators so rules can scope
    themselves by path fragment (``"src/repro/perf/"`` …) portably.
    """

    def __init__(self, path: str, source: str) -> None:
        self.path = path.replace(os.sep, "/")
        self.source = source
        self.tree = ast.parse(source)
        self.line_disables, self.file_disables = parse_suppressions(source)
        self._ast_hash: Optional[str] = None

    @property
    def is_test(self) -> bool:
        """Whether this module lives under ``tests/`` (or is a test file)."""
        parts = self.path.split("/")
        return "tests" in parts or parts[-1].startswith("test_")

    @property
    def ast_hash(self) -> str:
        """Digest of the AST shape — the project cache's per-file key.

        Comment/formatting edits leave it unchanged (keeping the project
        graph warm); any semantic edit, which could add a call edge or a
        def, changes it.
        """
        if self._ast_hash is None:
            dump = ast.dump(self.tree, include_attributes=False)
            self._ast_hash = hashlib.sha256(dump.encode("utf-8")).hexdigest()
        return self._ast_hash

    def path_matches(self, fragments: Iterable[str]) -> bool:
        """Whether any fragment occurs in (or suffixes) the module path."""
        return any(f in self.path for f in fragments)

    def suppressed(self, finding: Finding) -> bool:
        """Whether an inline or file-level comment disables this finding."""
        return _suppressed_by(finding, self.file_disables, self.line_disables)


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files and directories into a sorted list of ``.py`` paths."""
    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = [d for d in dirnames if not d.startswith(".")]
                found.extend(
                    os.path.join(dirpath, name)
                    for name in filenames
                    if name.endswith(".py")
                )
        else:
            found.append(path)
    return sorted(set(found))


def load_module(path: str) -> LintModule:
    """Read and parse one file into a :class:`LintModule`."""
    with open(path, "r", encoding="utf-8") as handle:
        return LintModule(path, handle.read())


def _graph_rules(rules: Sequence) -> List:
    """The rules that override ``check_graph`` (need the project view)."""
    from .rules.base import Rule

    return [
        rule
        for rule in rules
        if type(rule).check_graph is not Rule.check_graph
    ]


def _raw_findings(modules: Sequence[LintModule], rules: Sequence) -> List[Finding]:
    """Every finding, before suppression filtering."""
    findings: List[Finding] = []
    for rule in rules:
        for module in modules:
            findings.extend(rule.check_module(module))
        findings.extend(rule.check_project(modules))
    graph_rules = _graph_rules(rules)
    if graph_rules:
        from .graph import Project

        project = Project(modules)
        for rule in graph_rules:
            findings.extend(rule.check_graph(project))
    return findings


def lint_modules(modules: Sequence[LintModule], rules: Sequence) -> List[Finding]:
    """Run every rule over the modules; return unsuppressed findings, sorted."""
    by_path = {module.path: module for module in modules}
    kept = [
        finding
        for finding in _raw_findings(modules, rules)
        if finding.path not in by_path or not by_path[finding.path].suppressed(finding)
    ]
    kept.sort(key=Finding.sort_key)
    return kept


# ----------------------------------------------------------------------
# The cached pipeline
# ----------------------------------------------------------------------

@dataclass
class LintRun:
    """Outcome of one :func:`run_lint` pipeline execution."""

    findings: List[Finding] = field(default_factory=list)
    files: int = 0
    parsed: int = 0
    file_cache_hits: int = 0
    project_cache_hit: bool = False


def _parse_item(item: Tuple[str, str]):
    """Pool-safe parse worker: ``(path, module_or_None, error_or_None)``."""
    path, source = item
    try:
        return (path, LintModule(path, source), None)
    except SyntaxError as exc:
        return (path, None, (getattr(exc, "lineno", 1) or 1, str(exc)))


def _parse_many(
    items: Sequence[Tuple[str, str]], jobs: int
) -> List[Tuple[str, Optional[LintModule], Optional[Tuple[int, str]]]]:
    """Parse sources, fanning out to a process pool when it pays off."""
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    if jobs > 1 and len(items) >= 8:
        try:
            import multiprocessing

            workers = min(jobs, len(items))
            chunk = max(1, len(items) // (workers * 4))
            with multiprocessing.get_context().Pool(workers) as pool:
                return pool.map(_parse_item, items, chunksize=chunk)
        except (OSError, ImportError, ValueError):
            pass  # fall back to serial parsing (sandboxes without sem support)
    return [_parse_item(item) for item in items]


def _rules_key(rules: Sequence) -> str:
    ids = ",".join(f"{type(r).__module__}.{type(r).__name__}:{r.rule_id}" for r in rules)
    return f"reprolint/{ENGINE_VERSION}|{ids}"


def run_lint(
    paths: Sequence[str],
    rules: Optional[Sequence] = None,
    *,
    jobs: int = 1,
    cache: Optional[object] = None,
) -> LintRun:
    """The full lint pipeline: discover, hash, (re)parse, rules, filter.

    Per-file rule findings are reused from ``cache`` while a file's
    source hash is unchanged; project/graph findings are reused while
    *no* file's AST hash changed.  Raw findings are cached and
    suppressions re-applied from current source text each run, so
    comment edits always take effect.  Unparseable files surface as
    ``RL000`` errors instead of aborting the run.
    """
    if rules is None:
        from .rules import default_rules

        rules = default_rules()
    from .cache import LintCache

    if cache is None:
        cache = LintCache(None)
    cache.configure(_rules_key(rules))

    run = LintRun()
    sources: Dict[str, str] = {}
    rl000: List[Finding] = []
    order: List[str] = []
    for raw_path in iter_python_files(paths):
        norm = raw_path.replace(os.sep, "/")
        try:
            with open(raw_path, "r", encoding="utf-8") as handle:
                sources[norm] = handle.read()
            order.append(norm)
        except (OSError, UnicodeDecodeError) as exc:
            rl000.append(
                Finding(
                    rule_id="RL000",
                    path=norm,
                    line=1,
                    col=0,
                    message=f"could not parse file: {exc}",
                )
            )
    run.files = len(order)

    # ------------------------------------------------------------------
    # Per-file phase: reuse cached module findings on content match.
    # ------------------------------------------------------------------
    content_hashes = {
        path: hashlib.sha256(sources[path].encode("utf-8")).hexdigest()
        for path in order
    }
    ast_hashes: Dict[str, str] = {}
    module_findings: Dict[str, List[Finding]] = {}
    modules: Dict[str, LintModule] = {}
    broken: Dict[str, Tuple[int, str]] = {}
    to_parse: List[str] = []
    for path in order:
        hit = cache.lookup_file(path, content_hashes[path])
        if hit is not None and hit[0]:
            ast_hashes[path], module_findings[path] = hit
        else:
            to_parse.append(path)

    def _ingest(parsed) -> None:
        for path, module, error in parsed:
            if module is None:
                line, message = error
                broken[path] = error
                rl000.append(
                    Finding(
                        rule_id="RL000",
                        path=path,
                        line=line,
                        col=0,
                        message=f"could not parse file: {message}",
                    )
                )
            else:
                modules[path] = module
                ast_hashes[path] = module.ast_hash

    _ingest(_parse_many([(p, sources[p]) for p in to_parse], jobs))
    run.parsed = len(to_parse)
    for path in to_parse:
        module = modules.get(path)
        if module is None:
            continue
        raw: List[Finding] = []
        for rule in rules:
            raw.extend(rule.check_module(module))
        module_findings[path] = raw
        cache.store_file(path, content_hashes[path], module.ast_hash, raw)
    run.file_cache_hits = cache.file_hits

    # ------------------------------------------------------------------
    # Project phase: one key over every file's AST surface.
    # ------------------------------------------------------------------
    surface = "|".join(
        f"{path}={ast_hashes.get(path) or '!' + content_hashes[path]}"
        for path in order
    )
    project_key = hashlib.sha256(
        f"{_rules_key(rules)}|{surface}".encode("utf-8")
    ).hexdigest()
    project_raw = cache.lookup_project(project_key)
    if project_raw is None:
        # Cold project: every module must be in memory for the graph.
        missing = [
            p for p in order if p not in modules and p not in broken
        ]
        _ingest(_parse_many([(p, sources[p]) for p in missing], jobs))
        run.parsed += len(missing)
        ordered_modules = [modules[p] for p in order if p in modules]
        project_raw = []
        for rule in rules:
            project_raw.extend(rule.check_project(ordered_modules))
        graph_rules = _graph_rules(rules)
        if graph_rules:
            from .graph import Project

            project = Project(ordered_modules)
            for rule in graph_rules:
                project_raw.extend(rule.check_graph(project))
        cache.store_project(project_key, project_raw)
    run.project_cache_hit = cache.project_hit

    cache.prune(order)
    cache.save()

    # ------------------------------------------------------------------
    # Suppression filtering from current source text.
    # ------------------------------------------------------------------
    tables = {path: parse_suppressions(sources[path]) for path in order}
    kept: List[Finding] = list(rl000)
    for raw in list(module_findings.values()) + [project_raw]:
        for finding in raw:
            table = tables.get(finding.path)
            if table is not None and _suppressed_by(finding, table[1], table[0]):
                continue
            kept.append(finding)
    kept.sort(key=Finding.sort_key)
    run.findings = kept
    return run


def lint_paths(paths: Sequence[str], rules: Optional[Sequence] = None) -> List[Finding]:
    """Lint the given files/directories with the (default) rule set."""
    return run_lint(paths, rules).findings


def lint_source(
    source: str,
    path: str = "src/repro/snippet.py",
    rules: Optional[Sequence] = None,
) -> List[Finding]:
    """Lint an in-memory snippet (the fixture-test entry point).

    ``path`` controls rule scoping (several rules only apply under
    ``src/``), so fixtures can impersonate any location in the repo.
    """
    return lint_sources({path: source}, rules)


def lint_sources(
    sources: Dict[str, str],
    rules: Optional[Sequence] = None,
) -> List[Finding]:
    """Lint a set of in-memory modules as one project.

    The multi-file fixture entry point: cross-module rules see all the
    snippets as one call graph, so tests can stage e.g. a kernel in one
    "module" calling a helper in another.
    """
    if rules is None:
        from .rules import default_rules

        rules = default_rules()
    return lint_modules(
        [LintModule(path, source) for path, source in sources.items()], rules
    )


def blocking(findings: Iterable[Finding], strict: bool = False) -> List[Finding]:
    """The findings that should fail the run (errors; advice too if strict)."""
    levels = {ERROR, ADVICE} if strict else {ERROR}
    return [finding for finding in findings if finding.severity in levels]
