"""The reprolint engine: file discovery, parsing, suppressions, rule driving.

The engine is deliberately small: it turns paths into
:class:`LintModule` objects (source + AST + parsed suppression comments),
hands them to the rules from :mod:`repro.lint.rules`, filters suppressed
findings, and returns the rest sorted by location.  All repo-specific
knowledge lives in the rules.

Suppressions follow the familiar inline-comment convention::

    risky_line()  # reprolint: disable=RL001
    another()     # reprolint: disable=RL001,RL003
    yet_more()    # reprolint: disable

    # reprolint: disable-file=RL004   (anywhere in the file)

A bare ``disable`` suppresses every rule on that line; ``disable-file``
suppresses the named rules (or all, when bare) for the whole file.
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence

from .findings import ADVICE, ERROR, Finding

__all__ = [
    "LintModule",
    "blocking",
    "iter_python_files",
    "lint_modules",
    "lint_paths",
    "lint_source",
    "load_module",
]

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*(disable-file|disable)(?:=([A-Za-z0-9_,\s]+))?"
)

#: Sentinel meaning "every rule" in the suppression tables.
_ALL_RULES: FrozenSet[str] = frozenset({"*"})


def _parse_rule_list(raw: Optional[str]) -> FrozenSet[str]:
    if raw is None:
        return _ALL_RULES
    ids = frozenset(part.strip() for part in raw.split(",") if part.strip())
    return ids or _ALL_RULES


class LintModule:
    """One parsed source file: path, AST, and suppression tables.

    ``path`` is normalised to ``/`` separators so rules can scope
    themselves by path fragment (``"src/repro/perf/"`` …) portably.
    """

    def __init__(self, path: str, source: str) -> None:
        self.path = path.replace(os.sep, "/")
        self.source = source
        self.tree = ast.parse(source)
        self.line_disables: Dict[int, FrozenSet[str]] = {}
        self.file_disables: FrozenSet[str] = frozenset()
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            ids = _parse_rule_list(match.group(2))
            if match.group(1) == "disable-file":
                self.file_disables = self.file_disables | ids
            else:
                self.line_disables[lineno] = self.line_disables.get(
                    lineno, frozenset()
                ) | ids

    @property
    def is_test(self) -> bool:
        """Whether this module lives under ``tests/`` (or is a test file)."""
        parts = self.path.split("/")
        return "tests" in parts or parts[-1].startswith("test_")

    def path_matches(self, fragments: Iterable[str]) -> bool:
        """Whether any fragment occurs in (or suffixes) the module path."""
        return any(f in self.path for f in fragments)

    def suppressed(self, finding: Finding) -> bool:
        """Whether an inline or file-level comment disables this finding."""
        for ids in (self.file_disables, self.line_disables.get(finding.line)):
            if ids and (ids is _ALL_RULES or "*" in ids or finding.rule_id in ids):
                return True
        return False


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files and directories into a sorted list of ``.py`` paths."""
    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = [d for d in dirnames if not d.startswith(".")]
                found.extend(
                    os.path.join(dirpath, name)
                    for name in filenames
                    if name.endswith(".py")
                )
        else:
            found.append(path)
    return sorted(set(found))


def load_module(path: str) -> LintModule:
    """Read and parse one file into a :class:`LintModule`."""
    with open(path, "r", encoding="utf-8") as handle:
        return LintModule(path, handle.read())


def lint_modules(modules: Sequence[LintModule], rules: Sequence) -> List[Finding]:
    """Run every rule over the modules; return unsuppressed findings, sorted."""
    by_path = {module.path: module for module in modules}
    findings: List[Finding] = []
    for rule in rules:
        for module in modules:
            findings.extend(rule.check_module(module))
        findings.extend(rule.check_project(modules))
    kept = [
        finding
        for finding in findings
        if finding.path not in by_path or not by_path[finding.path].suppressed(finding)
    ]
    kept.sort(key=Finding.sort_key)
    return kept


def lint_paths(paths: Sequence[str], rules: Optional[Sequence] = None) -> List[Finding]:
    """Lint the given files/directories with the (default) rule set.

    Unparseable files surface as ``RL000`` error findings instead of
    aborting the run, so one syntax error does not hide every other
    diagnosis.
    """
    if rules is None:
        from .rules import default_rules

        rules = default_rules()
    modules: List[LintModule] = []
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        try:
            modules.append(load_module(path))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            line = getattr(exc, "lineno", None) or 1
            findings.append(
                Finding(
                    rule_id="RL000",
                    path=path.replace(os.sep, "/"),
                    line=line,
                    col=0,
                    message=f"could not parse file: {exc}",
                )
            )
    findings.extend(lint_modules(modules, rules))
    findings.sort(key=Finding.sort_key)
    return findings


def lint_source(
    source: str,
    path: str = "src/repro/snippet.py",
    rules: Optional[Sequence] = None,
) -> List[Finding]:
    """Lint an in-memory snippet (the fixture-test entry point).

    ``path`` controls rule scoping (several rules only apply under
    ``src/``), so fixtures can impersonate any location in the repo.
    """
    if rules is None:
        from .rules import default_rules

        rules = default_rules()
    return lint_modules([LintModule(path, source)], rules)


def blocking(findings: Iterable[Finding], strict: bool = False) -> List[Finding]:
    """The findings that should fail the run (errors; advice too if strict)."""
    levels = {ERROR, ADVICE} if strict else {ERROR}
    return [finding for finding in findings if finding.severity in levels]
