"""Name-resolution and reaching-assignment substrate for project rules.

The cross-module rules (RL006–RL009) need answers a single-file AST walk
cannot give: *what does this name refer to?* — through imports and
re-exports, registry dicts (``ALGORITHM_BY_NAME[name]``), factory-hook
defaults (``factory = FlatWorkspace if workspace_factory is None else
workspace_factory``) and the bound-local preludes the hot kernels use.
This module is the minimal dataflow layer the call graph
(:mod:`repro.lint.graph`) and the rules build on:

* :class:`ModuleScope` — one module's import table (relative imports
  resolved against its dotted name), top-level defs, registry dicts and
  mutable module globals;
* :class:`FunctionScope` — reaching assignments inside one function, with
  :meth:`FunctionScope.origins_of` resolving an arbitrary expression to a
  set of *origins*.

Origins are coarse tagged tuples — precision is traded for zero false
cycles and predictable cost:

========================  ====================================================
``("func", qname)``       a project function/method (``module:Class.meth``)
``("class", qname)``      a project class
``("instance", qname)``   a value built by instantiating a project class
``("result", qname)``     the return value of calling a project function
``("registry", qname)``   a module-level dispatch dict (name → callable)
``("registry_item", q)``  one value subscripted out of such a dict
``("module", dotted)``    an imported module alias (``np`` → ``numpy``)
``("external", dotted)``  an imported symbol the project does not define
``("param", name)``       a parameter of the enclosing function
``("param_attr", p, a)``  attribute ``a`` of parameter ``p`` (``ws.log``)
``("global_mutable", q)`` a module-level dict/list/set (cache) binding
``("container", kind)``   a locally-built set/dict/list/generator
``("builtin", name)``     a container-constructing builtin
``("const",)``            a literal constant
``("unknown",)``          everything else
========================  ====================================================

Resolution is *unioning*: a name assigned on two branches yields both
origins, and rules decide which tags they care about.  Unresolvable
receivers yield ``("unknown",)`` and produce **no** call-graph edges — the
engine prefers silence to a false cross-module finding.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .engine import LintModule, module_name_for

__all__ = [
    "FunctionScope",
    "HOOK_PARAMS",
    "ModuleScope",
    "Origin",
    "UNKNOWN",
]

Origin = Tuple[str, ...]

#: The resolver's "no idea" answer; never produces call-graph edges.
UNKNOWN: Origin = ("unknown",)

#: Oracle-hook parameter names (shared with RL004): a call through one of
#: these resolves to every value the project passes for that hook.
HOOK_PARAMS = frozenset({"workspace_factory", "state_factory"})

#: Builtins that construct containers, mapped to the container kind.
_CONTAINER_BUILTINS: Dict[str, str] = {
    "set": "set",
    "frozenset": "set",
    "dict": "dict",
    "list": "list",
    "sorted": "list",
    "tuple": "tuple",
}

#: Call targets at module level that build a mutable module global.
_MUTABLE_FACTORIES = frozenset(
    {"dict", "list", "set", "defaultdict", "OrderedDict", "Counter", "deque"}
)

_FUNCTION_DEFS = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Recursion fuse for expression/origin resolution.
_MAX_DEPTH = 12


def _iter_scope_statements(body: Sequence[ast.stmt]) -> Iterator[ast.stmt]:
    """Top-level statements of a scope, looking through control flow.

    ``if``/``try``/``with`` blocks at module level (version guards, lazy
    numpy imports) still bind module names, so their bodies are walked;
    nested function and class bodies are *not* — they are separate scopes.
    """
    for stmt in body:
        yield stmt
        if isinstance(stmt, (ast.If, ast.For, ast.While)):
            yield from _iter_scope_statements(stmt.body)
            yield from _iter_scope_statements(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            yield from _iter_scope_statements(stmt.body)
            for handler in stmt.handlers:
                yield from _iter_scope_statements(handler.body)
            yield from _iter_scope_statements(stmt.orelse)
            yield from _iter_scope_statements(stmt.finalbody)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            yield from _iter_scope_statements(stmt.body)


def iter_function_body(fn: ast.AST) -> Iterator[ast.AST]:
    """Every node of a function body, *excluding* nested def/class scopes.

    Nested ``def``s run in the enclosing frame when called, but their
    assignments bind their own locals — pruning them keeps the enclosing
    scope's reaching-assignment table honest.
    """
    stack: List[ast.AST] = list(getattr(fn, "body", []))
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _FUNCTION_DEFS + (ast.ClassDef,)):
                continue
            stack.append(child)


class ModuleScope:
    """One module's name-binding surface: imports, defs, globals."""

    def __init__(self, module: LintModule) -> None:
        self.module = module
        self.name = module_name_for(module.path)
        self.is_package = module.path.endswith("__init__.py")
        #: local name -> dotted import target (``np`` -> ``numpy``,
        #: ``bdone`` -> ``repro.core.bdone.bdone`` for from-imports).
        self.imports: Dict[str, str] = {}
        #: top-level ``def``/``class`` nodes by name.
        self.defs: Dict[str, ast.AST] = {}
        #: last top-level simple assignment per name.
        self.assignments: Dict[str, ast.expr] = {}
        #: module-level dispatch dicts: name -> the dict's value exprs.
        self.registries: Dict[str, List[ast.expr]] = {}
        #: module-level names bound to mutable containers (caches).
        self.mutable_globals: Set[str] = set()
        for stmt in _iter_scope_statements(module.tree.body):
            self._bind(stmt)

    # ------------------------------------------------------------------
    def _bind(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                if alias.asname:
                    self.imports[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    self.imports[head] = head
        elif isinstance(stmt, ast.ImportFrom):
            base = self.resolve_import_base(stmt.level, stmt.module)
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                target = f"{base}.{alias.name}" if base else alias.name
                self.imports[alias.asname or alias.name] = target
        elif isinstance(stmt, _FUNCTION_DEFS + (ast.ClassDef,)):
            self.defs[stmt.name] = stmt
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            value = stmt.value
            if value is None:
                return
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                self.assignments[target.id] = value
                if self._is_registry(value):
                    self.registries[target.id] = list(value.values)  # type: ignore[union-attr]
                if self._is_mutable(value):
                    self.mutable_globals.add(target.id)

    @staticmethod
    def _is_registry(value: ast.expr) -> bool:
        """A dict display whose values reference callables by name."""
        return isinstance(value, ast.Dict) and any(
            isinstance(v, (ast.Name, ast.Attribute)) for v in value.values
        )

    @staticmethod
    def _is_mutable(value: ast.expr) -> bool:
        if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                              ast.ListComp, ast.SetComp)):
            return True
        return (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in _MUTABLE_FACTORIES
        )

    # ------------------------------------------------------------------
    def resolve_import_base(self, level: int, module: Optional[str]) -> str:
        """The absolute dotted module a (possibly relative) import names."""
        if level == 0:
            return module or ""
        parts = self.name.split(".") if self.name else []
        if not self.is_package and parts:
            parts = parts[:-1]
        drop = level - 1
        if drop:
            parts = parts[:-drop] if drop <= len(parts) else []
        base = ".".join(parts)
        if module:
            return f"{base}.{module}" if base else module
        return base


class FunctionScope:
    """Reaching assignments + origin resolution for one function.

    Built with ``fn=None`` this doubles as the *module-level* resolver
    (imports and top-level defs only) — used to resolve registry values
    and hook keywords outside any function body.
    """

    def __init__(
        self,
        index: "object",
        module_scope: ModuleScope,
        fn: Optional[ast.AST] = None,
        class_qname: Optional[str] = None,
    ) -> None:
        self.index = index  # ProjectIndex (duck-typed to avoid an import cycle)
        self.module_scope = module_scope
        self.fn = fn
        self.class_qname = class_qname
        self.params: List[str] = []
        self.assigns: Dict[str, List[ast.expr]] = {}
        self.local_imports: Dict[str, str] = {}
        if fn is not None:
            self._collect(fn)

    # ------------------------------------------------------------------
    def _collect(self, fn: ast.AST) -> None:
        args = fn.args  # type: ignore[attr-defined]
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            self.params.append(arg.arg)
        for extra in (args.vararg, args.kwarg):
            if extra is not None:
                self.params.append(extra.arg)
        for node in iter_function_body(fn):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.assigns.setdefault(target.id, []).append(node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    self.assigns.setdefault(node.target.id, []).append(node.value)
            elif isinstance(node, ast.NamedExpr):
                if isinstance(node.target, ast.Name):
                    self.assigns.setdefault(node.target.id, []).append(node.value)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.local_imports[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        self.local_imports[head] = head
            elif isinstance(node, ast.ImportFrom):
                base = self.module_scope.resolve_import_base(node.level, node.module)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    target = f"{base}.{alias.name}" if base else alias.name
                    self.local_imports[alias.asname or alias.name] = target

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve_name(
        self,
        name: str,
        _depth: int = 0,
        _stack: Optional[frozenset] = None,
    ) -> Set[Origin]:
        if _depth > _MAX_DEPTH:
            return {UNKNOWN}
        stack = _stack or frozenset()
        if name in stack:
            return {UNKNOWN}
        stack = stack | {name}
        if name == "self" and self.class_qname is not None:
            return {("instance", self.class_qname)}
        if name in self.assigns:
            out: Set[Origin] = set()
            for value in self.assigns[name]:
                out |= self.origins_of(value, _depth + 1, stack)
            if name in self.params:
                out |= self._param_origins(name)
            return out or {UNKNOWN}
        if name in self.params:
            return self._param_origins(name)
        if name in self.local_imports:
            return self.index.resolve_symbol(self.local_imports[name])  # type: ignore[attr-defined]
        scope = self.module_scope
        if name in scope.registries:
            return {("registry", f"{scope.name}:{name}")}
        if name in scope.defs:
            node = scope.defs[name]
            kind = "class" if isinstance(node, ast.ClassDef) else "func"
            return {(kind, f"{scope.name}:{name}")}
        if name in scope.imports:
            return self.index.resolve_symbol(scope.imports[name])  # type: ignore[attr-defined]
        if name in scope.assignments:
            resolver = self if self.fn is None else self.index.module_resolver(  # type: ignore[attr-defined]
                scope
            )
            out = set(resolver.origins_of(scope.assignments[name], _depth + 1, stack))
            if name in scope.mutable_globals:
                out.add(("global_mutable", f"{scope.name}:{name}"))
            return out or {UNKNOWN}
        if name in _CONTAINER_BUILTINS:
            return {("builtin", name)}
        return {UNKNOWN}

    def _param_origins(self, name: str) -> Set[Origin]:
        out: Set[Origin] = {("param", name)}
        if name in HOOK_PARAMS:
            out |= self.index.hook_value_origins(name)  # type: ignore[attr-defined]
        return out

    def origins_of(
        self,
        expr: ast.AST,
        _depth: int = 0,
        _stack: Optional[frozenset] = None,
    ) -> Set[Origin]:
        """Every origin ``expr`` may evaluate to (unioning over branches)."""
        if _depth > _MAX_DEPTH:
            return {UNKNOWN}
        if isinstance(expr, ast.Name):
            return self.resolve_name(expr.id, _depth, _stack)
        if isinstance(expr, ast.Attribute):
            return self._attribute_origins(expr, _depth, _stack)
        if isinstance(expr, ast.Call):
            return self._call_origins(expr, _depth, _stack)
        if isinstance(expr, ast.Subscript):
            out: Set[Origin] = set()
            for origin in self.origins_of(expr.value, _depth + 1, _stack):
                if origin[0] in ("registry", "registry_item"):
                    out.add(("registry_item", origin[1]))
            return out or {UNKNOWN}
        if isinstance(expr, ast.IfExp):
            return self.origins_of(expr.body, _depth + 1, _stack) | self.origins_of(
                expr.orelse, _depth + 1, _stack
            )
        if isinstance(expr, ast.BoolOp):
            out = set()
            for value in expr.values:
                out |= self.origins_of(value, _depth + 1, _stack)
            return out or {UNKNOWN}
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return {("container", "set")}
        if isinstance(expr, (ast.Dict, ast.DictComp)):
            return {("container", "dict")}
        if isinstance(expr, (ast.List, ast.ListComp)):
            return {("container", "list")}
        if isinstance(expr, ast.GeneratorExp):
            return {("container", "generator")}
        if isinstance(expr, ast.Tuple):
            return {("container", "tuple")}
        if isinstance(expr, ast.Constant):
            return {("const",)}
        if isinstance(expr, ast.Await):
            return self.origins_of(expr.value, _depth + 1, _stack)
        return {UNKNOWN}

    # ------------------------------------------------------------------
    def _attribute_origins(
        self, expr: ast.Attribute, depth: int, stack: Optional[frozenset]
    ) -> Set[Origin]:
        out: Set[Origin] = set()
        for origin in self.origins_of(expr.value, depth + 1, stack):
            kind = origin[0]
            if kind == "module":
                out |= self.index.resolve_symbol(f"{origin[1]}.{expr.attr}")  # type: ignore[attr-defined]
            elif kind == "external":
                out.add(("external", f"{origin[1]}.{expr.attr}"))
            elif kind in ("instance", "class"):
                method = self.index.lookup_method(origin[1], expr.attr)  # type: ignore[attr-defined]
                if method is not None:
                    out.add(method)
            elif kind == "param":
                out.add(("param_attr", origin[1], expr.attr))
        return out or {UNKNOWN}

    def _call_origins(
        self, expr: ast.Call, depth: int, stack: Optional[frozenset]
    ) -> Set[Origin]:
        out: Set[Origin] = set()
        for origin in self.origins_of(expr.func, depth + 1, stack):
            kind = origin[0]
            if kind == "class":
                out.add(("instance", origin[1]))
            elif kind == "func":
                out.add(("result", origin[1]))
            elif kind == "builtin":
                out.add(("container", _CONTAINER_BUILTINS[origin[1]]))
        return out or {UNKNOWN}
