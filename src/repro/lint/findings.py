"""The :class:`Finding` record every reprolint rule emits.

A finding is one diagnosed contract violation: rule id, location,
human-readable message, optional fix-it hint, and a severity.  Two
severities exist:

* ``error`` — a hard contract violation; any error makes the checker exit
  non-zero.
* ``advice`` — a dynamic construct the rule could not prove safe (e.g. a
  stat key computed at run time).  Advice is reported but only fails the
  run under ``--strict``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["ADVICE", "ERROR", "Finding"]

#: Severity of a hard contract violation (always fails the run).
ERROR = "error"
#: Severity of an unprovable-but-suspect construct (fails under ``--strict``).
ADVICE = "advice"


@dataclass(frozen=True)
class Finding:
    """One diagnosed violation of a repo contract.

    Attributes
    ----------
    rule_id:
        The ``RLxxx`` identifier of the rule that fired.
    path:
        Repo-relative path of the offending file (``/`` separators).
    line / col:
        1-based line and 0-based column of the offending node.
    message:
        One-sentence description of the violation.
    severity:
        :data:`ERROR` or :data:`ADVICE`.
    fixit:
        Optional remediation hint appended to the human rendering.
    """

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    severity: str = ERROR
    fixit: Optional[str] = field(default=None, compare=False)

    def render(self) -> str:
        """The one-line human rendering (``path:line:col: RLxxx message``)."""
        tag = f" [{self.severity}]" if self.severity != ERROR else ""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule_id}{tag} {self.message}"
        if self.fixit:
            text += f" (fix: {self.fixit})"
        return text

    def to_json(self) -> Dict[str, object]:
        """The JSON-serialisable record for ``--format json``."""
        record: Dict[str, object] = {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
        }
        if self.fixit:
            record["fixit"] = self.fixit
        return record

    def sort_key(self) -> tuple:
        """Stable report order: by file, then position, then rule id."""
        return (self.path, self.line, self.col, self.rule_id)
