"""The :class:`Finding` record every reprolint rule emits.

A finding is one diagnosed contract violation: rule id, location,
human-readable message, optional fix-it hint, and a severity.  Two
severities exist:

* ``error`` — a hard contract violation; any error makes the checker exit
  non-zero.
* ``advice`` — a dynamic construct the rule could not prove safe (e.g. a
  stat key computed at run time).  Advice is reported but only fails the
  run under ``--strict``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["ADVICE", "ERROR", "Finding"]

#: Severity of a hard contract violation (always fails the run).
ERROR = "error"
#: Severity of an unprovable-but-suspect construct (fails under ``--strict``).
ADVICE = "advice"


@dataclass(frozen=True)
class Finding:
    """One diagnosed violation of a repo contract.

    Attributes
    ----------
    rule_id:
        The ``RLxxx`` identifier of the rule that fired.
    path:
        Repo-relative path of the offending file (``/`` separators).
    line / col:
        1-based line and 0-based column of the offending node.
    message:
        One-sentence description of the violation.
    severity:
        :data:`ERROR` or :data:`ADVICE`.
    fixit:
        Optional remediation hint appended to the human rendering.
    """

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    severity: str = ERROR
    fixit: Optional[str] = field(default=None, compare=False)

    def render(self) -> str:
        """The one-line human rendering (``path:line:col: RLxxx message``)."""
        tag = f" [{self.severity}]" if self.severity != ERROR else ""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule_id}{tag} {self.message}"
        if self.fixit:
            text += f" (fix: {self.fixit})"
        return text

    def fingerprint(self) -> "tuple":
        """Line-independent identity used by the baseline and the cache.

        Deliberately excludes ``line``/``col`` so reflowing a file does
        not churn the committed baseline; a message change (which embeds
        the offending names) does invalidate the entry.
        """
        return (self.rule_id, self.path, self.message)

    @classmethod
    def from_json(cls, record: Dict[str, object]) -> "Finding":
        """Rebuild a finding from its :meth:`to_json` record."""
        return cls(
            rule_id=str(record["rule"]),
            path=str(record["path"]),
            line=int(record["line"]),  # type: ignore[arg-type]
            col=int(record["col"]),  # type: ignore[arg-type]
            message=str(record["message"]),
            severity=str(record.get("severity", ERROR)),
            fixit=str(record["fixit"]) if record.get("fixit") else None,
        )

    def to_json(self) -> Dict[str, object]:
        """The JSON-serialisable record for ``--format json``."""
        record: Dict[str, object] = {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
        }
        if self.fixit:
            record["fixit"] = self.fixit
        return record

    def sort_key(self) -> tuple:
        """Stable report order: by file, then position, then rule id."""
        return (self.path, self.line, self.col, self.rule_id)
