"""SARIF 2.1.0 emission for GitHub code-scanning annotations.

One run, one tool (``reprolint``), one result per finding.  Severities
map ``error`` → ``"error"`` and ``advice`` → ``"note"``; every active
rule contributes a ``rules`` metadata entry so the code-scanning UI can
show the contract summary next to each annotation.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .findings import ERROR, Finding

__all__ = ["to_sarif", "render_sarif"]

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def to_sarif(findings: Sequence[Finding], rules: Sequence) -> Dict[str, object]:
    """The SARIF payload as a plain dict (``json.dump``-ready)."""
    rule_meta: List[Dict[str, object]] = []
    rule_index: Dict[str, int] = {}
    for rule in rules:
        rule_index[rule.rule_id] = len(rule_meta)
        rule_meta.append(
            {
                "id": rule.rule_id,
                "name": rule.name,
                "shortDescription": {"text": rule.summary or rule.name},
            }
        )
    results: List[Dict[str, object]] = []
    for finding in findings:
        message = finding.message
        if finding.fixit:
            message = f"{message} (fix: {finding.fixit})"
        result: Dict[str, object] = {
            "ruleId": finding.rule_id,
            "level": "error" if finding.severity == ERROR else "note",
            "message": {"text": message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        if finding.rule_id in rule_index:
            result["ruleIndex"] = rule_index[finding.rule_id]
        results.append(result)
    return {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": (
                            "https://example.invalid/repro/docs/static-analysis"
                        ),
                        "rules": rule_meta,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }


def render_sarif(findings: Sequence[Finding], rules: Sequence) -> str:
    """The SARIF payload serialised for ``--format sarif``/``--sarif-out``."""
    return json.dumps(to_sarif(findings, rules), indent=2, sort_keys=True)
